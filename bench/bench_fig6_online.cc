// Reproduces Fig. 6: online detection quality as a function of the observed
// ratio (fraction of the trajectory seen so far), on (a) the ID & Switch
// datasets of Xi'an and (b) the OOD & Switch datasets of Chengdu.
//
// Paper reference (Fig. 6): all curves rise with the observed ratio, flat at
// the start and steepest mid-trip (anomalies are mid-trajectory); CausalTAD
// dominates at every ratio and reaches decent quality by ratio 0.6, while
// baselines need 0.8-1.0.
//
// The 10-ratio sweep goes through ScoreSetAtRatios / ScoreCheckpoints: one
// incremental roll per trip (CausalTAD reads every ratio off one set of
// running prefix sums) instead of 10 independent re-scores.
//
// A second section measures the online serving throughput (points/sec) of
// three paths and writes it to BENCH_fig6.json ("fig6_throughput"):
//   * rescoring   — the reference RescoringOnlineScorer, which replays
//                   Score() on every update (O(prefix) taped work per
//                   point; forced via SetOnlineRescoringForced),
//   * incremental — the models' own BeginTrip sessions (carried GRU state,
//                   fused no-grad kernels; O(1) per point for the
//                   road-constrained decoders),
//   * batcher     — serve::StreamingBatcher, all trips advancing through
//                   one shared [B, hidden] state matrix (CausalTAD +
//                   TG-VAE).
// Every row records the max-abs diff of the incremental score sequence
// against Score(trip, k) for every k — the streaming parity bound.
//
// A third section ("fig6_service") measures serve::StreamingService — the
// production front-end over the batcher — in a 1-vs-N-shard, pump-on/off
// grid: points/sec, step occupancy, queue-wait p50/p95/p99, and the
// backpressure counters, with the same per-point parity bound.
//
// A fourth section ("fig6_wire") measures the full network path — a
// net::Client feeding a net::Server over a loopback socketpair, frames
// decoded and translated into the same pumped StreamingService — against
// the in-process service with identical options, recording client-observed
// points/sec, the wire-side reject/retransmit counters, the server's
// per-frame dispatch p99, and the same per-point parity bound (wire scores
// must match Score(trip, k) like every other serving layer).
//
// A fifth section ("fig6_fault") reruns the wire path under the
// deterministic net::FaultInjector at 0% / 1% / 5% per-operation fault
// rates (drop + duplicate + truncate split evenly, kills at a tenth of the
// rate, short writes and delays at the full rate) with a reconnecting
// client: throughput under faults, reconnect count, go-back-N + resume
// retransmissions, deduped redeliveries, and the last outage's recovery
// time — with the SAME per-point parity bound as the clean runs, because
// session continuity must not change a single score.
//
// A sixth section ("fig6_cluster") measures the multi-backend router tier:
// a downstream client feeding net::Router in front of 1 vs 3 backend
// Servers (steady-state routed throughput), then two robustness scenarios
// against the 3-backend fleet — a backend killed mid-stream (failover +
// journaled prefix replay; kill-to-recovered time) and a RollSwap under
// load (stage / drain / commit / undrain across the fleet) — all under the
// same per-point parity bound: routed, failed-over, and swapped-under-load
// scores must match Score(trip, k) exactly.
//
// Environment knobs:
//   CAUSALTAD_BENCH_SCALE=smoke|default|full   experiment scale
//   CAUSALTAD_FIG6_METHODS=a,b,c               quality-panel method filter
//   CAUSALTAD_FIG6_SKIP_PANELS=1               skip the quality panels
//   CAUSALTAD_FIG6_SERVICE_SHARDS=N            sharded service configs (4)
//   CAUSALTAD_FIG6_WIRE_ONLY=1                 only the fig6_wire section
//   CAUSALTAD_FIG6_CLUSTER_ONLY=1              only the fig6_cluster section
//   CAUSALTAD_FIG6_JSON=<path>                 output path (BENCH_fig6.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "models/scorer.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/streaming.h"
#include "util/stopwatch.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSetAtRatios;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;
using causaltad::models::SetOnlineRescoringForced;
using causaltad::models::TrajectoryScorer;
using causaltad::traj::Trip;

const std::vector<double> kRatios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9, 1.0};

std::vector<std::string> PanelMethods() {
  std::vector<std::string> methods = {"SAE", "VSAE", "GM-VSAE", "DeepTEA",
                                      "CausalTAD"};
  const char* env = std::getenv("CAUSALTAD_FIG6_METHODS");
  if (env == nullptr) return methods;
  std::vector<std::string> filtered;
  std::string list(env), item;
  for (size_t pos = 0; pos <= list.size(); ++pos) {
    if (pos == list.size() || list[pos] == ',') {
      if (!item.empty()) filtered.push_back(item);
      item.clear();
    } else {
      item += list[pos];
    }
  }
  return filtered.empty() ? methods : filtered;
}

void RunPanel(const causaltad::eval::CityExperimentConfig& config,
              const ExperimentData& data, causaltad::eval::Scale scale,
              bool ood, const char* title) {
  const auto& normal_set = ood ? data.ood_test : data.id_test;
  const auto& anomaly_set = ood ? data.ood_switch : data.id_switch;
  // Subsample to keep the 10-ratio sweep tractable on one core.
  const auto normals = Subsample(normal_set, 400, 31);
  const auto anomalies = Subsample(anomaly_set, 400, 32);

  std::printf("\n== Fig. 6%s — %s ==\n", ood ? "(b)" : "(a)", title);
  for (const char* metric : {"ROC-AUC", "PR-AUC"}) {
    std::printf("\n%s:\n", metric);
    std::vector<std::string> cols = {"Method"};
    for (const double r : kRatios) {
      cols.push_back("r=" + TablePrinter::Fmt(r, 1));
    }
    TablePrinter table(cols);
    table.PrintHeader();
    for (const std::string& name : PanelMethods()) {
      const auto scorer =
          causaltad::eval::FitOrLoad(name, data, config.name, scale);
      // All 10 ratios from one checkpointed pass per set.
      const auto normal_scores = ScoreSetAtRatios(*scorer, normals, kRatios);
      const auto anomaly_scores =
          ScoreSetAtRatios(*scorer, anomalies, kRatios);
      std::vector<std::string> cells = {name};
      for (size_t r = 0; r < kRatios.size(); ++r) {
        const auto result =
            EvaluateScores(normal_scores[r], anomaly_scores[r]);
        cells.push_back(TablePrinter::Fmt(
            std::string(metric) == "ROC-AUC" ? result.roc_auc
                                             : result.pr_auc));
      }
      table.PrintRow(cells);
    }
  }
}

// ---------------------------------------------------------------------------
// Online serving throughput: rescoring vs incremental vs StreamingBatcher.
// ---------------------------------------------------------------------------

struct ThroughputRow {
  std::string city;
  std::string method;
  int64_t trips = 0;
  int64_t points = 0;
  double rescoring_pps = 0.0;    // reference path points/sec
  double incremental_pps = 0.0;  // per-trip incremental sessions
  double batcher_pps = 0.0;      // StreamingBatcher (0 = not applicable)
  double speedup = 0.0;          // incremental / rescoring
  double max_abs_diff = 0.0;     // incremental Update vs Score(trip, k)
  double batcher_max_abs_diff = 0.0;
};

template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    causaltad::util::Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

// Feeds every point of every trip through per-trip BeginTrip sessions.
void DriveSessions(const TrajectoryScorer* scorer,
                   const std::vector<Trip>& trips,
                   std::vector<std::vector<double>>* scores_out) {
  for (size_t i = 0; i < trips.size(); ++i) {
    auto session = scorer->BeginTrip(trips[i]);
    std::vector<double>* scores =
        scores_out != nullptr ? &(*scores_out)[i] : nullptr;
    if (scores != nullptr) scores->clear();
    double score = 0.0;
    for (const auto segment : trips[i].route.segments) {
      score = session->Update(segment);
      if (scores != nullptr) scores->push_back(score);
    }
    if (scores == nullptr) {
      volatile double sink = score;
      (void)sink;
    }
  }
}

ThroughputRow MeasureOnline(const std::string& city,
                            const std::string& method,
                            const TrajectoryScorer* scorer,
                            const CausalTad* causal, ScoreVariant variant,
                            const std::vector<Trip>& trips) {
  ThroughputRow row;
  row.city = city;
  row.method = method;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  // Reference scores Score(trip, k) for every k — the parity ground truth.
  std::vector<std::vector<double>> reference(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    for (int64_t k = 1; k <= trips[i].route.size(); ++k) {
      reference[i].push_back(scorer->Score(trips[i], k));
    }
  }

  // Same protocol for all three paths (best of 3 warm reps), so the
  // published speedups compare like with like.
  constexpr int kReps = 3;
  SetOnlineRescoringForced(true);
  const double rescoring_s =
      BestOf(kReps, [&] { DriveSessions(scorer, trips, nullptr); });
  SetOnlineRescoringForced(false);
  std::vector<std::vector<double>> incremental(trips.size());
  const double incremental_s =
      BestOf(kReps, [&] { DriveSessions(scorer, trips, &incremental); });
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size(); ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(incremental[i][k] - reference[i][k]));
    }
  }
  row.rescoring_pps = row.points / std::max(rescoring_s, 1e-12);
  row.incremental_pps = row.points / std::max(incremental_s, 1e-12);
  row.speedup = row.incremental_pps / std::max(row.rescoring_pps, 1e-12);

  if (causal != nullptr) {
    // StreamingBatcher: all trips live at once, one shared [B, hidden]
    // state; every Step advances one point of every active session.
    std::vector<std::vector<double>> streamed(trips.size());
    const double batcher_s = BestOf(kReps, [&] {
      causaltad::serve::StreamingBatcher batcher(causal, variant,
                                                 causal->lambda());
      std::vector<causaltad::serve::StreamingSession> sessions;
      sessions.reserve(trips.size());
      for (const Trip& trip : trips) sessions.push_back(batcher.Begin(trip));
      for (size_t i = 0; i < trips.size(); ++i) {
        for (const auto segment : trips[i].route.segments) {
          sessions[i].Push(segment);
        }
        sessions[i].End();
      }
      batcher.Flush();
      for (size_t i = 0; i < trips.size(); ++i) {
        streamed[i] = sessions[i].Poll();
      }
    });
    row.batcher_pps = row.points / std::max(batcher_s, 1e-12);
    for (size_t i = 0; i < trips.size(); ++i) {
      for (size_t k = 0; k < reference[i].size(); ++k) {
        row.batcher_max_abs_diff =
            std::max(row.batcher_max_abs_diff,
                     std::abs(streamed[i][k] - reference[i][k]));
      }
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// StreamingService: sharded + pumped serving front-end (1 vs N shards,
// pump on/off), with backpressure engaged by the feed loop.
// ---------------------------------------------------------------------------

causaltad::serve::ServiceOptions BenchServiceOptions() {
  causaltad::serve::ServiceOptions options;
  options.num_shards = 1;
  options.pump = true;
  options.max_session_pending = 8;  // tight enough that bursts backpressure
  options.max_shard_queued = 1 << 14;
  options.batcher.max_batch_rows = 64;
  options.batcher.max_delay_ms = 0.1;
  return options;
}

struct ServiceRow {
  std::string city;
  int shards = 1;
  bool pump = false;
  int64_t trips = 0;
  int64_t points = 0;
  double pps = 0.0;
  double occupancy = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t rejected_session_full = 0;
  int64_t rejected_shard_full = 0;
  double max_abs_diff = 0.0;
};

ServiceRow MeasureService(const std::string& city, const CausalTad* causal,
                          const std::vector<Trip>& trips,
                          const std::vector<std::vector<double>>& reference,
                          int shards, bool pump) {
  ServiceRow row;
  row.city = city;
  row.shards = shards;
  row.pump = pump;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  causaltad::serve::ServiceOptions options = BenchServiceOptions();
  options.num_shards = shards;
  options.pump = pump;

  constexpr int kReps = 3;
  std::vector<std::vector<double>> streamed(trips.size());
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    causaltad::util::Stopwatch watch;
    causaltad::serve::StreamingService service(causal, options);
    std::vector<causaltad::serve::SessionId> ids;
    ids.reserve(trips.size());
    for (const Trip& trip : trips) ids.push_back(service.Begin(trip));
    // Round-robin feed, one point per session per sweep; a rejected push
    // retries next sweep while the pump (or the inline StepAll) drains.
    std::vector<size_t> fed(trips.size(), 0);
    bool done = false;
    while (!done) {
      done = true;
      int64_t accepted = 0;
      for (size_t i = 0; i < trips.size(); ++i) {
        const auto& segments = trips[i].route.segments;
        if (fed[i] >= segments.size()) continue;
        if (service.Push(ids[i], segments[fed[i]]) ==
            causaltad::serve::PushStatus::kAccepted) {
          ++accepted;
          if (++fed[i] == segments.size()) service.End(ids[i]);
        }
        done = false;
      }
      if (!pump) {
        service.StepAll();
      } else if (accepted == 0 && !done) {
        // Fully backpressured: give the pump threads the core.
        std::this_thread::yield();
      }
    }
    service.Shutdown();
    const double elapsed = watch.ElapsedSeconds();
    // Stats ride with the rep whose elapsed becomes the published best,
    // so every JSON row is internally consistent (pps, occupancy, queue
    // waits, and rejections all describe the same run).
    if (rep == 0 || elapsed < best) {
      best = elapsed;
      const causaltad::serve::ServiceStats stats = service.stats();
      row.occupancy = stats.step_occupancy;
      row.p50_ms = stats.queue_wait_p50_ms;
      row.p95_ms = stats.queue_wait_p95_ms;
      row.p99_ms = stats.queue_wait_p99_ms;
      row.rejected_session_full = stats.rejected_session_full;
      row.rejected_shard_full = stats.rejected_shard_full;
      for (size_t i = 0; i < trips.size(); ++i) {
        streamed[i] = service.Poll(ids[i]);
      }
    }
  }
  row.pps = row.points / std::max(best, 1e-12);
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size(); ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(streamed[i][k] - reference[i][k]));
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Metrics-overhead A/B ("fig6_metrics"): the identical 1-shard pumped
// service run with the obs registry live vs obs::SetEnabled(false). The
// instrumented hot path is one relaxed atomic per event, so the published
// overhead_pct is the ceiling guard for src/obs/ (budget: <= 2%).
// ---------------------------------------------------------------------------

struct MetricsRow {
  std::string city;
  int64_t trips = 0;
  int64_t points = 0;
  double metrics_on_pps = 0.0;
  double metrics_off_pps = 0.0;
  double overhead_pct = 0.0;  // (off - on) / off, percent
  double max_abs_diff = 0.0;
};

MetricsRow MeasureMetricsOverhead(
    const std::string& city, const CausalTad* causal,
    const std::vector<Trip>& trips,
    const std::vector<std::vector<double>>& reference) {
  MetricsRow row;
  row.city = city;
  // The per-event cost under test is one relaxed atomic, so the A/B needs
  // a run long enough that scheduler noise does not swamp it: repeat the
  // trip set so each timed run is tens of ms, not single-digit (each
  // repeat is its own set of sessions; scores stay parity-checked).
  constexpr int kRepeat = 8;
  std::vector<Trip> big_trips;
  std::vector<std::vector<double>> big_reference;
  big_trips.reserve(trips.size() * kRepeat);
  big_reference.reserve(reference.size() * kRepeat);
  for (int r = 0; r < kRepeat; ++r) {
    big_trips.insert(big_trips.end(), trips.begin(), trips.end());
    big_reference.insert(big_reference.end(), reference.begin(),
                         reference.end());
  }
  causaltad::obs::SetEnabled(true);
  const ServiceRow on = MeasureService(city, causal, big_trips,
                                       big_reference,
                                       /*shards=*/1, /*pump=*/true);
  causaltad::obs::SetEnabled(false);
  const ServiceRow off = MeasureService(city, causal, big_trips,
                                        big_reference,
                                        /*shards=*/1, /*pump=*/true);
  causaltad::obs::SetEnabled(true);
  row.trips = on.trips;
  row.points = on.points;
  row.metrics_on_pps = on.pps;
  row.metrics_off_pps = off.pps;
  row.overhead_pct =
      (off.pps - on.pps) / std::max(off.pps, 1e-12) * 100.0;
  row.max_abs_diff = std::max(on.max_abs_diff, off.max_abs_diff);
  return row;
}

// ---------------------------------------------------------------------------
// Wire front-end: net::Client -> net::Server (loopback socketpair) ->
// StreamingService, vs the identical service driven in-process.
// ---------------------------------------------------------------------------

struct WireRow {
  std::string city;
  int64_t trips = 0;
  int64_t points = 0;
  double wire_pps = 0.0;    // client-observed, Begin to last Finish
  double inproc_pps = 0.0;  // same service options, driven directly
  double wire_vs_inproc = 0.0;
  int64_t retransmits = 0;
  int64_t rejected_session_full = 0;
  double dispatch_p99_ms = 0.0;  // server-side per-frame dispatch
  double max_abs_diff = 0.0;     // wire scores vs Score(trip, k)
};

WireRow MeasureWire(const std::string& city, const CausalTad* causal,
                    const causaltad::roadnet::RoadNetwork* network,
                    const std::vector<Trip>& trips,
                    const std::vector<std::vector<double>>& reference,
                    double inproc_pps) {
  WireRow row;
  row.city = city;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();
  row.inproc_pps = inproc_pps;

  constexpr int kReps = 3;
  std::vector<std::vector<double>> streamed(trips.size());
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    causaltad::serve::StreamingService service(causal,
                                               BenchServiceOptions());
    causaltad::net::ServerOptions server_options;
    server_options.network = network;  // production validation on
    causaltad::net::Server server(&service, server_options);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "wire bench: server failed to start\n");
      row.max_abs_diff = 1.0;  // poison the parity bound: nothing compared
      return row;
    }
    causaltad::net::ClientOptions client_options;
    client_options.max_inflight = 128;
    auto client = causaltad::net::Client::FromFd(
        server.AddLoopbackConnection(), client_options);
    if (!client->Hello().ok()) {
      std::fprintf(stderr, "wire bench: hello failed: %s\n",
                   client->status().ToString().c_str());
      row.max_abs_diff = 1.0;
      return row;
    }

    causaltad::util::Stopwatch watch;
    std::vector<uint64_t> ids;
    ids.reserve(trips.size());
    for (const Trip& trip : trips) {
      ids.push_back(client->Begin(trip.route.segments.front(),
                                  trip.route.segments.back(),
                                  trip.time_slot));
    }
    // Round-robin, one point per session per sweep — the same concurrent
    // feed the in-process service rows use; the client's window flow
    // control and go-back-N retries absorb backpressure.
    std::vector<size_t> fed(trips.size(), 0);
    bool done = false;
    while (!done) {
      done = true;
      for (size_t i = 0; i < trips.size(); ++i) {
        const auto& segments = trips[i].route.segments;
        if (fed[i] >= segments.size()) continue;
        if (!client->Push(ids[i], segments[fed[i]]).ok()) {
          std::fprintf(stderr, "wire bench: push failed: %s\n",
                       client->status().ToString().c_str());
          row.max_abs_diff = 1.0;
          return row;
        }
        if (++fed[i] < segments.size()) done = false;
      }
    }
    std::vector<std::vector<double>> rep_scores(trips.size());
    for (size_t i = 0; i < trips.size(); ++i) {
      auto finished = client->Finish(ids[i]);
      if (!finished.ok()) {
        std::fprintf(stderr, "wire bench: finish failed: %s\n",
                     finished.status().ToString().c_str());
        row.max_abs_diff = 1.0;
        return row;
      }
      rep_scores[i] = *std::move(finished);
    }
    const double elapsed = watch.ElapsedSeconds();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
      streamed = std::move(rep_scores);
      const causaltad::net::ServerStats stats = server.stats();
      row.retransmits = client->stats().retransmits;
      row.rejected_session_full = stats.rejected_session_full;
      row.dispatch_p99_ms = stats.dispatch_p99_ms;
    }
    server.Stop();
    service.Shutdown();
  }
  row.wire_pps = row.points / std::max(best, 1e-12);
  row.wire_vs_inproc = row.wire_pps / std::max(row.inproc_pps, 1e-12);
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size() && k < streamed[i].size();
         ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(streamed[i][k] - reference[i][k]));
    }
    if (streamed[i].size() != reference[i].size()) {
      std::fprintf(stderr, "wire bench: trip %zu got %zu/%zu scores\n", i,
                   streamed[i].size(), reference[i].size());
      row.max_abs_diff = 1.0;  // poison the parity bound: scores were lost
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Faulted wire path: the same client -> server -> service loopback, with a
// deterministic FaultInjector at both socket boundaries and the client's
// session continuity (reconnect + prefix replay) turned on.
// ---------------------------------------------------------------------------

struct FaultRow {
  std::string city;
  double fault_pct = 0.0;  // per-send fault probability, percent
  int64_t trips = 0;
  int64_t points = 0;
  double pps = 0.0;           // client-observed, faults + recoveries included
  int64_t faults_fired = 0;   // injector total (both endpoints)
  int64_t reconnects = 0;     // outages survived
  int64_t retransmits = 0;    // go-back-N + resume replays
  int64_t dup_scores = 0;     // redeliveries dropped by the dedupe
  double recovery_ms = 0.0;   // last outage: first failure -> resumed
  double max_abs_diff = 0.0;  // faulted wire scores vs Score(trip, k)
};

FaultRow MeasureFault(const std::string& city, const CausalTad* causal,
                      const causaltad::roadnet::RoadNetwork* network,
                      const std::vector<Trip>& trips,
                      const std::vector<std::vector<double>>& reference,
                      double fault_pct) {
  FaultRow row;
  row.city = city;
  row.fault_pct = fault_pct;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  const double f = fault_pct / 100.0;
  constexpr int kReps = 2;
  std::vector<std::vector<double>> streamed(trips.size());
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    causaltad::net::FaultOptions fault_options;
    fault_options.drop_rate = f / 3.0;
    fault_options.dup_rate = f / 3.0;
    fault_options.truncate_rate = f / 3.0;
    fault_options.short_write_rate = f;
    fault_options.kill_rate = f / 10.0;
    fault_options.delay_rate = f;
    fault_options.delay_ms = 0.05;
    fault_options.seed = 0;  // CAUSALTAD_FAULT_SEED, or the fixed default
    causaltad::net::FaultInjector injector(fault_options);

    causaltad::serve::StreamingService service(causal,
                                               BenchServiceOptions());
    causaltad::net::ServerOptions server_options;
    server_options.network = network;
    server_options.detached_linger_ms = 60000.0;  // outages park, not expire
    server_options.fault = &injector;
    causaltad::net::Server server(&service, server_options);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "fault bench: server failed to start\n");
      row.max_abs_diff = 1.0;
      return row;
    }

    causaltad::net::ClientOptions client_options;
    client_options.max_inflight = 64;
    client_options.timeout_ms = 60000.0;
    client_options.reconnect = true;
    client_options.client_id = 5;
    client_options.max_reconnect_attempts = 64;
    client_options.reconnect_base_ms = 1.0;
    client_options.reconnect_max_ms = 50.0;
    client_options.fault = &injector;
    client_options.dialer = [&server] {
      return server.AddLoopbackConnection();
    };
    auto client = causaltad::net::Client::FromFd(
        server.AddLoopbackConnection(), client_options);
    if (!client->Hello().ok()) {
      std::fprintf(stderr, "fault bench: hello failed: %s\n",
                   client->status().ToString().c_str());
      row.max_abs_diff = 1.0;
      return row;
    }

    // Waves of 8 concurrent sessions: a resume handshake re-establishes
    // every live session, so unbounded concurrency makes the handshake
    // itself long enough that at 5% some fault always lands inside it and
    // no recovery attempt can ever complete. Real producers bound their
    // in-flight trips for the same reason.
    constexpr size_t kWave = 8;
    causaltad::util::Stopwatch watch;
    std::vector<std::vector<double>> rep_scores(trips.size());
    for (size_t base = 0; base < trips.size(); base += kWave) {
      const size_t end = std::min(base + kWave, trips.size());
      std::vector<uint64_t> ids(end - base);
      for (size_t i = base; i < end; ++i) {
        ids[i - base] = client->Begin(trips[i].route.segments.front(),
                                      trips[i].route.segments.back(),
                                      trips[i].time_slot);
      }
      std::vector<size_t> fed(end - base, 0);
      bool done = false;
      while (!done) {
        done = true;
        for (size_t i = base; i < end; ++i) {
          const auto& segments = trips[i].route.segments;
          if (fed[i - base] >= segments.size()) continue;
          if (!client->Push(ids[i - base], segments[fed[i - base]]).ok()) {
            std::fprintf(stderr, "fault bench: push failed: %s\n",
                         client->status().ToString().c_str());
            row.max_abs_diff = 1.0;
            return row;
          }
          if (++fed[i - base] < segments.size()) done = false;
        }
      }
      for (size_t i = base; i < end; ++i) {
        auto finished = client->Finish(ids[i - base]);
        if (!finished.ok()) {
          std::fprintf(stderr, "fault bench: finish failed: %s\n",
                       finished.status().ToString().c_str());
          row.max_abs_diff = 1.0;
          return row;
        }
        rep_scores[i] = *std::move(finished);
      }
    }
    const double elapsed = watch.ElapsedSeconds();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
      streamed = std::move(rep_scores);
      const causaltad::net::ClientStats cs = client->stats();
      row.reconnects = cs.reconnects;
      row.retransmits = cs.retransmits;
      row.dup_scores = cs.dup_scores;
      row.recovery_ms = cs.last_recovery_ms;
      const causaltad::net::FaultStats fs = injector.stats();
      row.faults_fired = fs.drops + fs.dups + fs.truncates +
                         fs.short_writes + fs.kills + fs.delays;
    }
    server.Stop();
    service.Shutdown();
  }
  row.pps = row.points / std::max(best, 1e-12);
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size() && k < streamed[i].size();
         ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(streamed[i][k] - reference[i][k]));
    }
    if (streamed[i].size() != reference[i].size()) {
      std::fprintf(stderr, "fault bench: trip %zu got %zu/%zu scores\n", i,
                   streamed[i].size(), reference[i].size());
      row.max_abs_diff = 1.0;  // poison the parity bound: scores were lost
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Cluster path: downstream client -> net::Router -> N backend Servers, each
// over its own pumped StreamingService. Scenarios: steady-state throughput
// (1 vs N backends), kill-a-backend mid-stream (failover + prefix-replay
// recovery time), and RollSwap under load (zero-downtime model swap; the
// resolver hands back the same fitted model, so parity directly validates
// the stage/drain/commit machinery).
// ---------------------------------------------------------------------------

struct ClusterRow {
  std::string city;
  std::string scenario;  // "steady" | "kill" | "swap"
  int backends = 1;
  int64_t trips = 0;
  int64_t points = 0;
  double pps = 0.0;           // client-observed, scenario event included
  int64_t failovers = 0;      // upstream dials that landed off-home
  int64_t migrations = 0;     // drain-triggered leg migrations
  int64_t reconnects = 0;     // upstream outages survived
  int64_t swaps_rolled = 0;   // backends staged+committed by RollSwap
  double recovery_ms = 0.0;   // kill: kill -> every session re-polled
  double max_abs_diff = 0.0;  // routed scores vs Score(trip, k)
};

ClusterRow MeasureCluster(const std::string& city, const CausalTad* causal,
                          const causaltad::roadnet::RoadNetwork* network,
                          const std::vector<Trip>& trips,
                          const std::vector<std::vector<double>>& reference,
                          int num_backends, const std::string& scenario) {
  ClusterRow row;
  row.city = city;
  row.scenario = scenario;
  row.backends = num_backends;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  struct Backend {
    std::unique_ptr<causaltad::serve::StreamingService> service;
    std::unique_ptr<causaltad::net::Server> server;
  };
  const int kReps = scenario == "steady" ? 2 : 1;
  std::vector<std::vector<double>> streamed;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::mutex backends_mu;
    std::vector<Backend> backends(num_backends);
    causaltad::serve::ServiceOptions service_options = BenchServiceOptions();
    service_options.num_shards = 2;
    for (Backend& b : backends) {
      b.service = std::make_unique<causaltad::serve::StreamingService>(
          causal, service_options);
      causaltad::net::ServerOptions server_options;
      server_options.network = network;
      server_options.detached_linger_ms = 60000.0;
      server_options.model_resolver =
          [causal](const std::string&) { return causal; };
      b.server = std::make_unique<causaltad::net::Server>(b.service.get(),
                                                          server_options);
      if (!b.server->Start().ok()) {
        std::fprintf(stderr, "cluster bench: backend failed to start\n");
        row.max_abs_diff = 1.0;
        return row;
      }
    }

    std::vector<causaltad::net::RouterBackend> router_backends(num_backends);
    for (int i = 0; i < num_backends; ++i) {
      router_backends[i].dialer = [&backends, &backends_mu, i] {
        std::lock_guard<std::mutex> lock(backends_mu);
        return backends[i].server != nullptr
                   ? backends[i].server->AddLoopbackConnection()
                   : -1;
      };
    }
    causaltad::net::RouterOptions router_options;
    router_options.upstream.max_inflight = 64;
    router_options.upstream.timeout_ms = 60000.0;
    router_options.upstream.max_reconnect_attempts = 64;
    router_options.upstream.reconnect_base_ms = 1.0;
    router_options.upstream.reconnect_max_ms = 50.0;
    router_options.health_interval_ms = 10.0;
    router_options.health_failure_threshold = 2;
    causaltad::net::Router router(std::move(router_backends),
                                  router_options);
    if (!router.Start().ok()) {
      std::fprintf(stderr, "cluster bench: router failed to start\n");
      row.max_abs_diff = 1.0;
      return row;
    }

    causaltad::net::ClientOptions client_options;
    client_options.max_inflight = 64;
    client_options.timeout_ms = 60000.0;
    auto client = causaltad::net::Client::FromFd(
        router.AddLoopbackConnection(), client_options);
    if (!client->Hello().ok()) {
      std::fprintf(stderr, "cluster bench: hello failed: %s\n",
                   client->status().ToString().c_str());
      row.max_abs_diff = 1.0;
      return row;
    }

    auto fail = [&row](const char* what, const causaltad::util::Status& s) {
      std::fprintf(stderr, "cluster bench: %s failed: %s\n", what,
                   s.ToString().c_str());
      row.max_abs_diff = 1.0;
    };

    causaltad::util::Stopwatch watch;
    std::vector<std::vector<double>> rep_scores(trips.size());
    std::vector<uint64_t> ids(trips.size());
    std::vector<size_t> fed(trips.size(), 0);
    for (size_t i = 0; i < trips.size(); ++i) {
      ids[i] = client->Begin(trips[i].route.segments.front(),
                             trips[i].route.segments.back(),
                             trips[i].time_slot);
    }
    // Round-robin feed up to `until(i)` points per trip; one pass = one
    // point per unfinished trip, so sessions interleave across backends.
    auto feed = [&](const std::function<size_t(size_t)>& until) -> bool {
      bool done = false;
      while (!done) {
        done = true;
        for (size_t i = 0; i < trips.size(); ++i) {
          const auto& segments = trips[i].route.segments;
          const size_t stop = std::min(until(i), segments.size());
          if (fed[i] >= stop) continue;
          if (!client->Push(ids[i], segments[fed[i]]).ok()) {
            fail("push", client->status());
            return false;
          }
          if (++fed[i] < stop) done = false;
        }
      }
      return true;
    };
    // Poll round trips double as an ordering barrier: every score the
    // backends have produced so far lands in rep_scores before we return.
    auto poll_all = [&]() -> bool {
      for (size_t i = 0; i < trips.size(); ++i) {
        auto polled = client->Poll(ids[i]);
        if (!polled.ok()) {
          fail("poll", polled.status());
          return false;
        }
        rep_scores[i].insert(rep_scores[i].end(), polled->begin(),
                             polled->end());
      }
      return true;
    };

    // First half, then the scenario event mid-stream, then the rest.
    if (!feed([&](size_t i) { return trips[i].route.segments.size() / 2; }))
      return row;
    if (!poll_all()) return row;
    if (scenario == "kill") {
      int victim = 0;
      int64_t most = -1;
      for (int i = 0; i < num_backends; ++i) {
        const int64_t begun = backends[i].service->stats().sessions_begun;
        if (begun > most) {
          most = begun;
          victim = i;
        }
      }
      Backend killed;
      {
        std::lock_guard<std::mutex> lock(backends_mu);
        killed = std::move(backends[victim]);
      }
      causaltad::util::Stopwatch recovery;
      killed.server->Stop();
      killed.server.reset();
      killed.service->Shutdown();
      killed.service.reset();
      // Recovery = every surviving session answers a Poll again, which
      // forces the failover dial + journaled prefix replay on each leg.
      if (!poll_all()) return row;
      row.recovery_ms = recovery.ElapsedSeconds() * 1000.0;
    } else if (scenario == "swap") {
      const causaltad::util::Status swapped = router.RollSwap("bench-v1");
      if (!swapped.ok()) {
        fail("roll swap", swapped);
        return row;
      }
    }
    if (!feed([&](size_t i) { return trips[i].route.segments.size(); }))
      return row;
    for (size_t i = 0; i < trips.size(); ++i) {
      auto finished = client->Finish(ids[i]);
      if (!finished.ok()) {
        fail("finish", finished.status());
        return row;
      }
      rep_scores[i].insert(rep_scores[i].end(), finished->begin(),
                           finished->end());
    }
    const double elapsed = watch.ElapsedSeconds();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
      streamed = std::move(rep_scores);
      const causaltad::net::RouterStats rs = router.stats();
      row.failovers = rs.failovers;
      row.migrations = rs.migrations;
      row.reconnects = rs.upstream_reconnects;
      row.swaps_rolled = rs.swaps_rolled;
      if (scenario != "kill") row.recovery_ms = 0.0;
    }
    router.Stop();
    for (Backend& b : backends) {
      std::lock_guard<std::mutex> lock(backends_mu);
      if (b.server != nullptr) b.server->Stop();
      if (b.service != nullptr) b.service->Shutdown();
    }
  }
  row.pps = row.points / std::max(best, 1e-12);
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size() && k < streamed[i].size();
         ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(streamed[i][k] - reference[i][k]));
    }
    if (streamed[i].size() != reference[i].size()) {
      std::fprintf(stderr, "cluster bench: trip %zu got %zu/%zu scores\n",
                   i, streamed[i].size(), reference[i].size());
      row.max_abs_diff = 1.0;  // poison the parity bound: scores were lost
    }
  }
  return row;
}

void WriteJson(const std::string& path, causaltad::eval::Scale scale,
               const std::vector<ThroughputRow>& rows,
               const std::vector<ServiceRow>& service_rows,
               const std::vector<MetricsRow>& metrics_rows,
               const std::vector<WireRow>& wire_rows,
               const std::vector<FaultRow>& fault_rows,
               const std::vector<ClusterRow>& cluster_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figure\": \"fig6\",\n  \"scale\": \"%s\",\n",
               causaltad::eval::ScaleName(scale));
  std::fprintf(f, "  \"units\": \"points_per_sec\",\n");
  std::fprintf(f, "  \"fig6_throughput\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"method\": \"%s\", \"trips\": %lld, "
        "\"points\": %lld, \"rescoring_pps\": %.0f, "
        "\"incremental_pps\": %.0f, \"batcher_pps\": %.0f, "
        "\"speedup\": %.2f, \"max_abs_diff\": %.3g, "
        "\"batcher_max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.method.c_str(), static_cast<long long>(r.trips),
        static_cast<long long>(r.points), r.rescoring_pps, r.incremental_pps,
        r.batcher_pps, r.speedup, r.max_abs_diff, r.batcher_max_abs_diff,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_service\": [\n");
  for (size_t i = 0; i < service_rows.size(); ++i) {
    const ServiceRow& r = service_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"shards\": %d, \"pump\": %s, "
        "\"trips\": %lld, \"points\": %lld, \"pps\": %.0f, "
        "\"occupancy\": %.3f, \"queue_wait_p50_ms\": %.4f, "
        "\"queue_wait_p95_ms\": %.4f, \"queue_wait_p99_ms\": %.4f, "
        "\"rejected_session_full\": %lld, \"rejected_shard_full\": %lld, "
        "\"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.shards, r.pump ? "true" : "false",
        static_cast<long long>(r.trips), static_cast<long long>(r.points),
        r.pps, r.occupancy, r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<long long>(r.rejected_session_full),
        static_cast<long long>(r.rejected_shard_full), r.max_abs_diff,
        i + 1 < service_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_metrics\": [\n");
  for (size_t i = 0; i < metrics_rows.size(); ++i) {
    const MetricsRow& r = metrics_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"trips\": %lld, \"points\": %lld, "
        "\"metrics_on_pps\": %.0f, \"metrics_off_pps\": %.0f, "
        "\"overhead_pct\": %.2f, \"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), static_cast<long long>(r.trips),
        static_cast<long long>(r.points), r.metrics_on_pps,
        r.metrics_off_pps, r.overhead_pct, r.max_abs_diff,
        i + 1 < metrics_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_wire\": [\n");
  for (size_t i = 0; i < wire_rows.size(); ++i) {
    const WireRow& r = wire_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"trips\": %lld, \"points\": %lld, "
        "\"wire_pps\": %.0f, \"inproc_pps\": %.0f, "
        "\"wire_vs_inproc\": %.3f, \"retransmits\": %lld, "
        "\"rejected_session_full\": %lld, \"dispatch_p99_ms\": %.4f, "
        "\"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), static_cast<long long>(r.trips),
        static_cast<long long>(r.points), r.wire_pps, r.inproc_pps,
        r.wire_vs_inproc, static_cast<long long>(r.retransmits),
        static_cast<long long>(r.rejected_session_full), r.dispatch_p99_ms,
        r.max_abs_diff, i + 1 < wire_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_fault\": [\n");
  for (size_t i = 0; i < fault_rows.size(); ++i) {
    const FaultRow& r = fault_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"fault_pct\": %.1f, \"trips\": %lld, "
        "\"points\": %lld, \"pps\": %.0f, \"faults_fired\": %lld, "
        "\"reconnects\": %lld, \"retransmits\": %lld, "
        "\"dup_scores\": %lld, \"recovery_ms\": %.3f, "
        "\"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.fault_pct, static_cast<long long>(r.trips),
        static_cast<long long>(r.points), r.pps,
        static_cast<long long>(r.faults_fired),
        static_cast<long long>(r.reconnects),
        static_cast<long long>(r.retransmits),
        static_cast<long long>(r.dup_scores), r.recovery_ms, r.max_abs_diff,
        i + 1 < fault_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_cluster\": [\n");
  for (size_t i = 0; i < cluster_rows.size(); ++i) {
    const ClusterRow& r = cluster_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"scenario\": \"%s\", \"backends\": %d, "
        "\"trips\": %lld, \"points\": %lld, \"pps\": %.0f, "
        "\"failovers\": %lld, \"migrations\": %lld, "
        "\"reconnects\": %lld, \"swaps_rolled\": %lld, "
        "\"recovery_ms\": %.3f, \"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.scenario.c_str(), r.backends,
        static_cast<long long>(r.trips), static_cast<long long>(r.points),
        r.pps, static_cast<long long>(r.failovers),
        static_cast<long long>(r.migrations),
        static_cast<long long>(r.reconnects),
        static_cast<long long>(r.swaps_rolled), r.recovery_ms,
        r.max_abs_diff, i + 1 < cluster_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  struct Panel {
    causaltad::eval::CityExperimentConfig config;
    bool ood;
    const char* title;
  };
  const std::vector<Panel> panels = {
      {causaltad::eval::XianConfig(scale), false,
       "ID & Switch, Xi'an (observed-ratio sweep)"},
      {causaltad::eval::ChengduConfig(scale), true,
       "OOD & Switch, Chengdu (observed-ratio sweep)"}};

  std::vector<ThroughputRow> rows;
  std::vector<ServiceRow> service_rows;
  std::vector<MetricsRow> metrics_rows;
  std::vector<WireRow> wire_rows;
  std::vector<FaultRow> fault_rows;
  TablePrinter table({"City", "Method", "rescore p/s", "increm p/s",
                      "batcher p/s", "speedup", "max diff"});
  bool printed_header = false;
  int sharded = 4;
  if (const char* env = std::getenv("CAUSALTAD_FIG6_SERVICE_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) sharded = v;
  }
  std::vector<ClusterRow> cluster_rows;
  const bool wire_only = EnvFlag("CAUSALTAD_FIG6_WIRE_ONLY");
  const bool cluster_only = EnvFlag("CAUSALTAD_FIG6_CLUSTER_ONLY");
  for (const Panel& panel : panels) {
    const ExperimentData data =
        causaltad::eval::BuildExperiment(panel.config);
    if (!wire_only && !cluster_only &&
        !EnvFlag("CAUSALTAD_FIG6_SKIP_PANELS")) {
      RunPanel(panel.config, data, scale, panel.ood, panel.title);
    }

    const auto causal_owner = causaltad::eval::FitOrLoad(
        causaltad::eval::kCausalTadName, data, panel.config.name, scale);
    const auto* causal = dynamic_cast<const CausalTad*>(causal_owner.get());
    if (!wire_only && !cluster_only) {
      // Online serving throughput, both cities. GM-VSAE stands in for the
      // RnnVae family (carried encoder, O(prefix) fused re-decode); TG-VAE
      // / RP-VAE / CausalTAD carry O(1)-per-point state.
      const auto gmvsae = causaltad::eval::FitOrLoad(
          "GM-VSAE", data, panel.config.name, scale);
      const CausalTadVariant tg_only(causal, ScoreVariant::kLikelihoodOnly);
      const CausalTadVariant rp_only(causal, ScoreVariant::kScalingOnly);
      const auto online_trips = Subsample(data.id_test, 30, 42);

      if (!printed_header) {
        std::printf("\n== Fig. 6 — online serving throughput (points/sec; "
                    "rescoring vs incremental vs StreamingBatcher) ==\n\n");
        table.PrintHeader();
        printed_header = true;
      }
      struct Entry {
        std::string name;
        const TrajectoryScorer* scorer;
        const CausalTad* batched;
        ScoreVariant variant;
      };
      const std::vector<Entry> entries = {
          {"GM-VSAE", gmvsae.get(), nullptr, ScoreVariant::kFull},
          {"TG-VAE", &tg_only, causal, ScoreVariant::kLikelihoodOnly},
          {"RP-VAE", &rp_only, causal, ScoreVariant::kScalingOnly},
          {"CausalTAD", causal, causal, ScoreVariant::kFull}};
      for (const Entry& entry : entries) {
        rows.push_back(MeasureOnline(panel.config.name, entry.name,
                                     entry.scorer, entry.batched,
                                     entry.variant, online_trips));
        const ThroughputRow& r = rows.back();
        table.PrintRow(
            {r.city, r.method, TablePrinter::Fmt(r.rescoring_pps, 0),
             TablePrinter::Fmt(r.incremental_pps, 0),
             r.batcher_pps > 0 ? TablePrinter::Fmt(r.batcher_pps, 0)
                               : std::string("-"),
             TablePrinter::Fmt(r.speedup, 1) + "x",
             TablePrinter::Fmt(
                 std::max(r.max_abs_diff, r.batcher_max_abs_diff), 7)});
      }
    }

    if (!cluster_only) {
    // StreamingService grid (CausalTAD full score): 1 vs N shards, pump
    // on/off, fed with backpressure engaged. Per-point reference scores
    // come from one checkpointed roll per trip; the wire section reuses
    // both the trips and the reference.
    const auto service_trips = Subsample(data.id_test, 120, 43);
    std::vector<std::vector<int64_t>> checkpoints(service_trips.size());
    for (size_t i = 0; i < service_trips.size(); ++i) {
      for (int64_t k = 1; k <= service_trips[i].route.size(); ++k) {
        checkpoints[i].push_back(k);
      }
    }
    const auto service_reference =
        causal->ScoreCheckpoints(service_trips, checkpoints);
    double inproc_pps = 0.0;
    if (wire_only) {
      // Just the wire row's in-process twin (1 shard, pump on).
      inproc_pps = MeasureService(panel.config.name, causal, service_trips,
                                  service_reference, 1, true)
                       .pps;
    } else {
      std::vector<std::pair<int, bool>> grid = {{1, false}, {1, true}};
      if (sharded > 1) {
        grid.emplace_back(sharded, false);
        grid.emplace_back(sharded, true);
      }
      for (const auto& [shards, pump] : grid) {
        service_rows.push_back(MeasureService(panel.config.name, causal,
                                              service_trips,
                                              service_reference, shards,
                                              pump));
        if (shards == 1 && pump) inproc_pps = service_rows.back().pps;
      }
      // Metrics on/off A/B on the same trips and reference: the published
      // overhead must stay within the src/obs/ budget (<= 2%).
      metrics_rows.push_back(MeasureMetricsOverhead(
          panel.config.name, causal, service_trips, service_reference));
    }
    wire_rows.push_back(MeasureWire(panel.config.name, causal,
                                    &data.city.network, service_trips,
                                    service_reference, inproc_pps));

    // Faulted reruns: a smaller trip set (recoveries stretch wall clock),
    // its own checkpointed reference, 0% as the like-for-like baseline.
    const auto fault_trips = Subsample(data.id_test, 40, 44);
    std::vector<std::vector<int64_t>> fault_checkpoints(fault_trips.size());
    for (size_t i = 0; i < fault_trips.size(); ++i) {
      for (int64_t k = 1; k <= fault_trips[i].route.size(); ++k) {
        fault_checkpoints[i].push_back(k);
      }
    }
    const auto fault_reference =
        causal->ScoreCheckpoints(fault_trips, fault_checkpoints);
    for (const double pct : {0.0, 1.0, 5.0}) {
      fault_rows.push_back(MeasureFault(panel.config.name, causal,
                                        &data.city.network, fault_trips,
                                        fault_reference, pct));
    }
    }  // !cluster_only

    if (!wire_only) {
      // Cluster path: router in front of 1 vs 3 backends, then the two
      // robustness scenarios against the 3-backend fleet.
      const auto cluster_trips = Subsample(data.id_test, 24, 45);
      std::vector<std::vector<int64_t>> cluster_checkpoints(
          cluster_trips.size());
      for (size_t i = 0; i < cluster_trips.size(); ++i) {
        for (int64_t k = 1; k <= cluster_trips[i].route.size(); ++k) {
          cluster_checkpoints[i].push_back(k);
        }
      }
      const auto cluster_reference =
          causal->ScoreCheckpoints(cluster_trips, cluster_checkpoints);
      struct ClusterConfig {
        int backends;
        const char* scenario;
      };
      const std::vector<ClusterConfig> cluster_grid = {
          {1, "steady"}, {3, "steady"}, {3, "kill"}, {3, "swap"}};
      for (const ClusterConfig& cfg : cluster_grid) {
        cluster_rows.push_back(MeasureCluster(
            panel.config.name, causal, &data.city.network, cluster_trips,
            cluster_reference, cfg.backends, cfg.scenario));
      }
    }
  }
  if (!wire_only && !cluster_only) {
    std::printf("\n== Fig. 6 — StreamingService (sharded + pumped "
                "front-end) ==\n\n");
    TablePrinter service_table({"City", "Shards", "Pump", "p/s", "occup",
                                "p50 ms", "p95 ms", "p99 ms", "max diff"});
    service_table.PrintHeader();
    for (const ServiceRow& r : service_rows) {
      service_table.PrintRow(
          {r.city, TablePrinter::Fmt(static_cast<double>(r.shards), 0),
           r.pump ? "on" : "off", TablePrinter::Fmt(r.pps, 0),
           TablePrinter::Fmt(r.occupancy, 2), TablePrinter::Fmt(r.p50_ms, 3),
           TablePrinter::Fmt(r.p95_ms, 3), TablePrinter::Fmt(r.p99_ms, 3),
           TablePrinter::Fmt(r.max_abs_diff, 7)});
    }
  }
  if (!wire_only && !cluster_only && !metrics_rows.empty()) {
    std::printf("\n== Fig. 6 — metrics overhead A/B (registry live vs "
                "obs::SetEnabled(false); 1 shard, pump on) ==\n\n");
    TablePrinter metrics_table({"City", "on p/s", "off p/s", "overhead %",
                                "max diff"});
    metrics_table.PrintHeader();
    for (const MetricsRow& r : metrics_rows) {
      metrics_table.PrintRow({r.city, TablePrinter::Fmt(r.metrics_on_pps, 0),
                              TablePrinter::Fmt(r.metrics_off_pps, 0),
                              TablePrinter::Fmt(r.overhead_pct, 2),
                              TablePrinter::Fmt(r.max_abs_diff, 7)});
    }
  }
  if (!cluster_only) {
  std::printf("\n== Fig. 6 — wire front-end (net::Client -> net::Server "
              "loopback -> StreamingService) ==\n\n");
  TablePrinter wire_table({"City", "wire p/s", "in-proc p/s", "ratio",
                           "retx", "rej", "disp p99 ms", "max diff"});
  wire_table.PrintHeader();
  for (const WireRow& r : wire_rows) {
    wire_table.PrintRow(
        {r.city, TablePrinter::Fmt(r.wire_pps, 0),
         TablePrinter::Fmt(r.inproc_pps, 0),
         TablePrinter::Fmt(r.wire_vs_inproc, 2) + "x",
         TablePrinter::Fmt(static_cast<double>(r.retransmits), 0),
         TablePrinter::Fmt(static_cast<double>(r.rejected_session_full), 0),
         TablePrinter::Fmt(r.dispatch_p99_ms, 4),
         TablePrinter::Fmt(r.max_abs_diff, 7)});
  }
  std::printf("\n== Fig. 6 — faulted wire path (deterministic fault "
              "injection, reconnecting client) ==\n\n");
  TablePrinter fault_table({"City", "fault %", "p/s", "faults", "reconn",
                            "retx", "dup", "recov ms", "max diff"});
  fault_table.PrintHeader();
  for (const FaultRow& r : fault_rows) {
    fault_table.PrintRow(
        {r.city, TablePrinter::Fmt(r.fault_pct, 1),
         TablePrinter::Fmt(r.pps, 0),
         TablePrinter::Fmt(static_cast<double>(r.faults_fired), 0),
         TablePrinter::Fmt(static_cast<double>(r.reconnects), 0),
         TablePrinter::Fmt(static_cast<double>(r.retransmits), 0),
         TablePrinter::Fmt(static_cast<double>(r.dup_scores), 0),
         TablePrinter::Fmt(r.recovery_ms, 2),
         TablePrinter::Fmt(r.max_abs_diff, 7)});
  }
  }  // !cluster_only
  if (!wire_only) {
    std::printf("\n== Fig. 6 — cluster path (net::Router -> N backend "
                "servers; failover, drain, hot swap) ==\n\n");
    TablePrinter cluster_table({"City", "scenario", "backends", "p/s",
                                "failov", "migr", "reconn", "swaps",
                                "recov ms", "max diff"});
    cluster_table.PrintHeader();
    for (const ClusterRow& r : cluster_rows) {
      cluster_table.PrintRow(
          {r.city, r.scenario,
           TablePrinter::Fmt(static_cast<double>(r.backends), 0),
           TablePrinter::Fmt(r.pps, 0),
           TablePrinter::Fmt(static_cast<double>(r.failovers), 0),
           TablePrinter::Fmt(static_cast<double>(r.migrations), 0),
           TablePrinter::Fmt(static_cast<double>(r.reconnects), 0),
           TablePrinter::Fmt(static_cast<double>(r.swaps_rolled), 0),
           TablePrinter::Fmt(r.recovery_ms, 2),
           TablePrinter::Fmt(r.max_abs_diff, 7)});
    }
  }
  std::printf("\n");
  const char* json_env = std::getenv("CAUSALTAD_FIG6_JSON");
  WriteJson(json_env != nullptr ? json_env : "BENCH_fig6.json", scale, rows,
            service_rows, metrics_rows, wire_rows, fault_rows, cluster_rows);
  return 0;
}
