#ifndef CAUSALTAD_NN_TENSOR_H_
#define CAUSALTAD_NN_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/logging.h"

namespace causaltad {
namespace nn {

/// Dense row-major float32 tensor with value semantics (copies are deep).
///
/// The nn substrate only needs rank-1/rank-2 tensors; rank-2 convenience
/// accessors (rows/cols/At) CHECK the rank.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor Scalar(float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const { return shape_[i]; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool defined() const { return !shape_.empty(); }

  /// Rows/cols of a rank-2 tensor. Rank-1 tensors are rejected — use
  /// Reshape({1, n}) to view one as a row vector first (in place, no copy).
  int64_t rows() const {
    CAUSALTAD_DCHECK_EQ(ndim(), 2);
    return shape_[0];
  }
  int64_t cols() const {
    CAUSALTAD_DCHECK_EQ(ndim(), 2);
    return shape_[1];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  float& At(int64_t r, int64_t c) {
    CAUSALTAD_DCHECK_EQ(ndim(), 2);
    return data_[r * shape_[1] + c];
  }
  float At(int64_t r, int64_t c) const {
    CAUSALTAD_DCHECK_EQ(ndim(), 2);
    return data_[r * shape_[1] + c];
  }

  void Fill(float value);
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reinterprets the (row-major) data under a new shape with the same
  /// element count. In place — no copy, unlike round-tripping through
  /// FromVector. Returns *this for chaining.
  Tensor& Reshape(std::vector<int64_t> shape);

  /// Scalar value of a single-element tensor.
  float Item() const {
    CAUSALTAD_CHECK_EQ(numel(), 1);
    return data_[0];
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_TENSOR_H_
