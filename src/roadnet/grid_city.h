#ifndef CAUSALTAD_ROADNET_GRID_CITY_H_
#define CAUSALTAD_ROADNET_GRID_CITY_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "util/random.h"

namespace causaltad {
namespace roadnet {

/// Parameters of the synthetic city used as the stand-in for the DiDi
/// Xi'an/Chengdu road networks (see DESIGN.md §2).
///
/// The city is a jittered grid of two-way streets. Every `arterial_every`-th
/// row/column is an arterial, the ones halfway between are collectors, the
/// rest are local streets. Road class determines speed and, crucially, the
/// ground-truth *driver preference* — the hidden confounder E in the paper's
/// causal graph. A handful of POI hot-spots (malls, office parks) make nearby
/// nodes popular trip endpoints, which realizes the causal edge E → C.
struct GridCityConfig {
  int rows = 12;
  int cols = 12;
  double block_m = 250.0;
  /// Every k-th grid line is an arterial and the line halfway between two
  /// arterials is a collector. k=3 gives the A-C-L-A pattern of real street
  /// grids, where a blocked corridor segment has a *popular* parallel
  /// alternative one block away (the p2-p4 road of the paper's Fig. 1).
  int arterial_every = 3;

  double arterial_pref = 4.0;
  double collector_pref = 1.9;
  double local_pref = 1.0;
  /// Lognormal jitter applied per segment to the class preference, so E is
  /// heterogeneous within each class.
  double pref_jitter_sigma = 0.15;

  double arterial_speed_mps = 16.7;
  double collector_speed_mps = 11.1;
  double local_speed_mps = 8.3;

  /// Number of POI hot-spots that attract trip endpoints.
  int num_pois = 6;
  /// Probability that a POI lands on an arterial intersection (E → C).
  double poi_on_arterial_prob = 0.85;
  /// Spatial reach (meters) of a POI's popularity kernel.
  double poi_reach_m = 450.0;
  /// Peak popularity mass a POI adds to its own node.
  double poi_popularity = 30.0;
  /// Baseline popularity of every node (keeps all pairs possible).
  double base_popularity = 1.0;

  /// Fraction of *local* two-way streets removed, making the grid imperfect.
  /// Removals that would break strong connectivity are skipped.
  double drop_local_street_prob = 0.06;

  /// Node position jitter in meters (realistic, non-degenerate geometry).
  double jitter_m = 15.0;

  geo::LatLon origin{30.66, 104.06};
  uint64_t seed = 17;
};

/// A POI hot-spot anchored at a node.
struct Poi {
  NodeId node = kInvalidNode;
  double popularity = 1.0;
};

/// A synthetic city: the road network plus the ground-truth popularity
/// distribution over trip endpoints induced by POIs.
struct City {
  RoadNetwork network;
  std::vector<Poi> pois;
  /// Per-node endpoint attractiveness; trip generation samples sources and
  /// destinations proportionally to this (the paper's E → C edge).
  std::vector<double> node_popularity;
  GridCityConfig config;
};

/// Synthesizes a city from the config. Deterministic given config.seed.
/// The returned network is guaranteed strongly connected.
City BuildGridCity(const GridCityConfig& config);

}  // namespace roadnet
}  // namespace causaltad

#endif  // CAUSALTAD_ROADNET_GRID_CITY_H_
