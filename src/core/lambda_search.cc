#include "core/lambda_search.h"

#include "eval/metrics.h"
#include "util/logging.h"

namespace causaltad {
namespace core {
namespace {

struct Decomposed {
  std::vector<double> likelihood;
  std::vector<double> scaling;
};

Decomposed DecomposeAll(const CausalTad& model,
                        std::span<const traj::Trip> trips) {
  Decomposed out;
  out.likelihood.reserve(trips.size());
  out.scaling.reserve(trips.size());
  for (const traj::Trip& trip : trips) {
    out.likelihood.push_back(model.ScoreVariantLambda(
        trip, trip.route.size(), ScoreVariant::kLikelihoodOnly, 0.0));
    const int slot =
        model.scaling_table().num_slots() > 1 ? trip.time_slot : 0;
    double scaling = 0.0;
    for (const roadnet::SegmentId s : trip.route.segments) {
      scaling += model.scaling_table().log_scaling(s, slot);
    }
    out.scaling.push_back(scaling);
  }
  return out;
}

std::vector<double> ScoresAt(const Decomposed& d, double lambda) {
  std::vector<double> out(d.likelihood.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = d.likelihood[i] - lambda * d.scaling[i];
  }
  return out;
}

}  // namespace

std::vector<double> DefaultLambdaGrid() {
  return {0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0};
}

LambdaSearchResult SelectLambda(
    const CausalTad& model, std::span<const traj::Trip> validation_normals,
    std::span<const traj::Trip> validation_anomalies,
    std::span<const double> grid) {
  CAUSALTAD_CHECK(!validation_normals.empty());
  CAUSALTAD_CHECK(!validation_anomalies.empty());
  const std::vector<double> default_grid = DefaultLambdaGrid();
  if (grid.empty()) grid = default_grid;

  const Decomposed normals = DecomposeAll(model, validation_normals);
  const Decomposed anomalies = DecomposeAll(model, validation_anomalies);

  LambdaSearchResult result;
  for (const double lambda : grid) {
    const double auc =
        eval::EvaluateScores(ScoresAt(normals, lambda),
                             ScoresAt(anomalies, lambda))
            .roc_auc;
    result.grid.push_back({lambda, auc});
    if (result.grid.size() == 1 || auc > result.best_roc_auc) {
      result.best_roc_auc = auc;
      result.best_lambda = lambda;
    }
  }
  return result;
}

}  // namespace core
}  // namespace causaltad
