#ifndef CAUSALTAD_CORE_RP_VAE_H_
#define CAUSALTAD_CORE_RP_VAE_H_

#include <span>
#include <vector>

#include "nn/modules.h"
#include "roadnet/road_network.h"
#include "util/random.h"

namespace causaltad {
namespace core {

/// Road Preference VAE configuration (paper §V-C).
struct RpVaeConfig {
  int64_t vocab = 0;  // number of road segments; required
  int64_t emb_dim = 32;
  int64_t hidden_dim = 64;
  int64_t latent_dim = 16;
  /// Paper §V-E3 (future work): road preference E is actually
  /// time-dependent (rush-hour congestion). When > 0, the encoder is
  /// conditioned on the departure time slot and the scaling factor is
  /// factorized per (segment, slot) instead of per segment. 0 reproduces
  /// the published (static-E) model.
  int num_time_slots = 0;
  int64_t slot_emb_dim = 8;
};

/// RP-VAE: per-road-segment VAE used to estimate the debiasing scaling
/// factor E_{e_i ~ P(E_i|t_i)}[ 1 / P(t_i|e_i) ] of Eq. (7).
///
/// The encoder Ψe maps a segment embedding to the posterior Q2(E_i|t_i);
/// the decoder Ψd maps a latent sample back to a distribution over all
/// segments. Both are MLPs; every segment is processed independently, which
/// is what makes precomputing the scaling factors possible.
class RpVae : public nn::Module {
 public:
  RpVae(const RpVaeConfig& config, util::Rng* rng);

  /// Training loss L2(t) = Σ_i [ H(t̂_i, t_i) + KL_i ]. Latents are sampled
  /// via reparameterization from `rng`; processed as one batch of rows.
  /// `time_slot` is ignored unless time conditioning is enabled.
  nn::Var Loss(std::span<const roadnet::SegmentId> segments, util::Rng* rng,
               int time_slot = 0) const;

  /// Minibatched Loss over segments drawn from several trips: row i is
  /// conditioned on slots[i] (per-segment departure slot; empty means slot
  /// 0 everywhere). This is what lets CausalTad::Fit fold a whole
  /// minibatch's L2 terms into one tape even under time-aware scaling.
  nn::Var LossBatch(std::span<const roadnet::SegmentId> segments,
                    std::span<const int32_t> slots, util::Rng* rng) const;

  /// Inference-time negative ELBO of one segment (z = posterior mean).
  /// This is the standalone RP-VAE anomaly score of the paper's ablation.
  double SegmentNll(roadnet::SegmentId segment, int time_slot = 0) const;

  /// Batched SegmentNll on the no-grad fast path: one encoder/decoder pass
  /// over all segments (repeats allowed). out[i] == SegmentNll(segments[i],
  /// time_slot).
  std::vector<double> SegmentNllBatch(
      std::span<const roadnet::SegmentId> segments, int time_slot = 0) const;

  /// Monte-Carlo estimate of log E_{e ~ Q2(E|s)}[ 1 / P(s|e) ] with
  /// `num_samples` posterior samples (log-sum-exp aggregated, so large
  /// 1/P values cannot overflow).
  double LogScalingFactor(roadnet::SegmentId segment, int num_samples,
                          util::Rng* rng, int time_slot = 0) const;

  /// Re-quantizes the int8 serving copies of the embedding tables from the
  /// current fp32 weights (see TgVae::RefreshQuantizedEmbeddings).
  void RefreshQuantizedEmbeddings();

  bool time_conditioned() const { return config_.num_time_slots > 0; }
  const RpVaeConfig& config() const { return config_; }

 private:
  struct Posterior {
    nn::Var mu, logvar;
  };
  Posterior Encode(std::span<const int32_t> ids, int time_slot) const;
  /// Per-row-slot variant (slots empty means unconditioned / slot 0).
  Posterior EncodeRows(std::span<const int32_t> ids,
                       std::span<const int32_t> slots) const;

  RpVaeConfig config_;
  nn::Embedding emb_;   // Es
  nn::Linear enc_fc_;   // Ψe body
  nn::Linear mu_head_;
  nn::Linear lv_head_;
  nn::Linear dec_;      // Ψd
  std::unique_ptr<nn::Embedding> slot_emb_;  // time extension only
};

/// Precomputed log scaling factors (paper §V-D: "calculate and store the
/// scaling factor for all road segments in advance"). One value per segment
/// for the published static-E model, one per (slot, segment) for the
/// time-aware extension. Lookup is O(1), which is what keeps online
/// debiased scoring O(1) per point.
class ScalingTable {
 public:
  ScalingTable() = default;

  /// Builds the table for every segment (and slot, when the RP-VAE is time
  /// conditioned). Deterministic given `seed`.
  static ScalingTable Build(const RpVae& rp_vae, int64_t vocab,
                            int num_samples, uint64_t seed);

  double log_scaling(roadnet::SegmentId segment, int slot = 0) const {
    return values_[(num_slots_ > 1 ? slot : 0) * vocab_ + segment];
  }
  const std::vector<double>& values() const { return values_; }
  bool empty() const { return values_.empty(); }
  int num_slots() const { return num_slots_; }

  /// Per-segment values of one slot, centred to zero mean (used for the
  /// paper's Fig. 4 visualization, which "centralizes the scaling factor
  /// part").
  std::vector<double> Centered(int slot = 0) const;

  /// Subtracts each slot's mean from its values, making the table measure
  /// *relative* segment rarity. Without centering, every segment carries a
  /// large common offset (log E[1/P] >= -log marginal frequency), so the
  /// debiasing term would mostly reward longer trajectories — and detours
  /// are longer. The paper itself centralizes the scaling-factor part when
  /// inspecting scores (Fig. 4); CausalTadConfig::center_scaling applies
  /// the same normalization to the score.
  void CenterInPlace();

 private:
  std::vector<double> values_;
  int64_t vocab_ = 0;
  int num_slots_ = 1;
};

}  // namespace core
}  // namespace causaltad

#endif  // CAUSALTAD_CORE_RP_VAE_H_
