#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "util/binary_io.h"
#include "util/csv.h"
#include "util/latency_histogram.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/status.h"

namespace causaltad {
namespace util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += (a.NextU64() != b.NextU64());
  EXPECT_GT(differing, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    hits[v]++;
  }
  for (int h : hits) EXPECT_GT(h, 300);  // ~500 expected each
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 8000; ++i) hits[rng.Categorical(w)]++;
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.4);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  auto p = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int64_t v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  Rng b(21);
  b.Fork();
  EXPECT_EQ(a.NextU64(), b.NextU64());  // parent streams stay in sync
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += (child.NextU64() != a.NextU64());
  EXPECT_GT(differing, 5);
}

TEST(CsvTest, SplitPlain) {
  auto cells = SplitCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvTest, SplitQuotedWithCommaAndQuote) {
  auto cells = SplitCsvLine(R"(x,"a,b","he said ""hi""")");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[1], "a,b");
  EXPECT_EQ(cells[2], "he said \"hi\"");
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string nasty = "a,\"b\" c";
  auto cells = SplitCsvLine(EscapeCsvCell(nasty));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], nasty);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_csv_test.csv")
          .string();
  CsvTable table;
  table.header = {"id", "name"};
  table.rows = {{"1", "alpha,beta"}, {"2", "plain"}};
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
  EXPECT_EQ(loaded->ColumnIndex("name"), 1);
  EXPECT_EQ(loaded->ColumnIndex("missing"), -1);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/dir/nope.csv").ok());
}

TEST(BinaryIoTest, RoundTripAllTypes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_bin_test.bin")
          .string();
  {
    BinaryWriter w(path, 0xABCD1234u, 3);
    w.WriteU32(7);
    w.WriteI64(-42);
    w.WriteF64(3.5);
    w.WriteString("hello");
    w.WriteFloats({1.0f, 2.0f, 3.0f});
    w.WriteInts({9, -9});
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path, 0xABCD1234u, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadF64(), 3.5);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloats(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.ReadInts(), (std::vector<int32_t>{9, -9}));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsBadMagicAndVersion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_bin_test2.bin")
          .string();
  {
    BinaryWriter w(path, 0x11111111u, 1);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_FALSE(BinaryReader(path, 0x22222222u, 1).ok());
  EXPECT_FALSE(BinaryReader(path, 0x11111111u, 2).ok());
  EXPECT_TRUE(BinaryReader(path, 0x11111111u, 1).ok());
  std::remove(path.c_str());
}

TEST(BufferIoTest, RoundTripAllTypes) {
  std::vector<uint8_t> bytes;
  BufferWriter w(&bytes);
  w.WriteU8(0xab);
  w.WriteU32(7);
  w.WriteU64(1ull << 40);
  w.WriteI32(-42);
  w.WriteF64(3.5);
  w.WriteString("hello");
  w.WriteF64s({1.5, -2.5});

  BufferReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_EQ(r.ReadF64(), 3.5);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadF64s(), (std::vector<double>{1.5, -2.5}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferIoTest, NeverReadsPastTheEnd) {
  std::vector<uint8_t> bytes;
  BufferWriter w(&bytes);
  w.WriteU32(5);  // looks like a 5-byte string length...
  w.WriteU8('x');  // ...but only one byte follows

  BufferReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
  // Every later read on a failed reader returns a zero value.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_TRUE(r.ReadF64s().empty());

  // A container length that would overflow the remaining bytes fails too.
  BufferReader r2(bytes.data(), bytes.size());
  EXPECT_TRUE(r2.ReadF64s().empty());
  EXPECT_FALSE(r2.ok());
}

TEST(ParallelPoolTest, GrowsAfterSetParallelThreads) {
  // Regression: Pool::Instance() used to freeze its worker count at the
  // knob in force on the FIRST ParallelFor — raising the knob afterwards
  // was silently ignored. Force a first use under a low knob, raise it,
  // then require 4 shards to run concurrently (each blocks until all four
  // have entered; a frozen pool can only field two, so every waiter times
  // out instead of hanging).
  SetParallelThreads(2);
  ParallelFor(4, 0, [](int64_t, int64_t) {});
  SetParallelThreads(4);

  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  int concurrent_ok = 0;
  ParallelFor(4, 0, [&](int64_t, int64_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    if (cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return entered >= 4; })) {
      ++concurrent_ok;
    }
  });
  EXPECT_EQ(concurrent_ok, 4);
  SetParallelThreads(0);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.TotalCount(), 0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);

  for (int i = 0; i < 99; ++i) hist.Add(1.0);
  hist.Add(100.0);
  EXPECT_EQ(hist.TotalCount(), 100);
  // Quarter-octave buckets: the reported value is the geometric midpoint
  // of the sample's bucket, within ~19% of the true value.
  EXPECT_NEAR(hist.Percentile(50.0), 1.0, 0.25);
  EXPECT_NEAR(hist.Percentile(99.0), 1.0, 0.25);
  EXPECT_NEAR(hist.Percentile(100.0), 100.0, 25.0);
  EXPECT_LE(hist.Percentile(50.0), hist.Percentile(95.0));
  EXPECT_LE(hist.Percentile(95.0), hist.Percentile(100.0));

  // The mean is exact (µs resolution), not bucket-quantized.
  EXPECT_NEAR(hist.MeanMs(), (99.0 * 1.0 + 100.0) / 100.0, 1e-9);

  hist.Reset();
  EXPECT_EQ(hist.TotalCount(), 0);
  EXPECT_EQ(hist.MeanMs(), 0.0);

  // Out-of-range samples clamp to the end buckets instead of indexing out.
  hist.Add(-3.0);
  hist.Add(1e12);
  EXPECT_EQ(hist.TotalCount(), 2);
  EXPECT_GT(hist.Percentile(100.0), hist.Percentile(0.0));
}

TEST(LatencyHistogramTest, WindowedSnapshotSeesOnlyNewSamples) {
  LatencyHistogram hist;
  for (int i = 0; i < 50; ++i) hist.Add(100.0);

  const LatencyHistogram::Snapshot base = hist.TakeSnapshot();
  EXPECT_EQ(hist.CountSince(base), 0);
  EXPECT_EQ(hist.PercentileSince(base, 50.0), 0.0);

  for (int i = 0; i < 20; ++i) hist.Add(1.0);
  EXPECT_EQ(hist.CountSince(base), 20);
  // The window holds only the 1ms samples; the 100ms pre-baseline bulk must
  // not drag the windowed median up.
  EXPECT_NEAR(hist.PercentileSince(base, 50.0), 1.0, 0.25);
  EXPECT_NEAR(hist.Percentile(50.0), 100.0, 25.0);
}

TEST(LatencyHistogramTest, MergedPercentileSinceEmptyWindow) {
  LatencyHistogram a;
  LatencyHistogram b;
  // Pre-baseline samples are invisible to the merged window.
  for (int i = 0; i < 10; ++i) a.Add(5.0);
  const LatencyHistogram* hists[] = {&a, &b};
  const LatencyHistogram::Snapshot bases[] = {a.TakeSnapshot(),
                                              b.TakeSnapshot()};
  EXPECT_EQ(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 50.0),
            0.0);
  EXPECT_EQ(LatencyHistogram::MergedPercentileSince(hists, bases, 0, 50.0),
            0.0);
}

TEST(LatencyHistogramTest, MergedPercentileSinceSingleSample) {
  LatencyHistogram a;
  LatencyHistogram b;
  const LatencyHistogram* hists[] = {&a, &b};
  const LatencyHistogram::Snapshot bases[] = {a.TakeSnapshot(),
                                              b.TakeSnapshot()};
  b.Add(8.0);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 50.0),
              8.0, 2.0);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 100.0),
              8.0, 2.0);
}

TEST(LatencyHistogramTest, MergedPercentileSinceUnionsShardWindows) {
  // Two shards with disjoint latency populations: the merged windowed
  // median sits between them, and the tail comes from the slow shard.
  LatencyHistogram fast;
  LatencyHistogram slow;
  for (int i = 0; i < 1000; ++i) fast.Add(1000.0);  // pre-window noise
  const LatencyHistogram* hists[] = {&fast, &slow};
  const LatencyHistogram::Snapshot bases[] = {fast.TakeSnapshot(),
                                              slow.TakeSnapshot()};
  for (int i = 0; i < 100; ++i) fast.Add(1.0);
  for (int i = 0; i < 100; ++i) slow.Add(64.0);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 25.0),
              1.0, 0.25);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 99.0),
              64.0, 16.0);
  // Matches merging done by hand: the union percentile equals the percentile
  // of one histogram holding both windows.
  LatencyHistogram manual;
  for (int i = 0; i < 100; ++i) manual.Add(1.0);
  for (int i = 0; i < 100; ++i) manual.Add(64.0);
  EXPECT_EQ(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 75.0),
            manual.Percentile(75.0));
}

TEST(LatencyHistogramTest, MergedPercentileSinceConcurrentRecordsDeterministic) {
  // Writers hammer both histograms while the merged window is computed; the
  // final (quiesced) answer must be exact regardless of interleaving, and
  // mid-flight reads must stay within the recorded value range.
  LatencyHistogram shard0;
  LatencyHistogram shard1;
  const LatencyHistogram* hists[] = {&shard0, &shard1};
  const LatencyHistogram::Snapshot bases[] = {shard0.TakeSnapshot(),
                                              shard1.TakeSnapshot()};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const double p =
          LatencyHistogram::MergedPercentileSince(hists, bases, 2, 95.0);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 4.0 * 1.25);
    }
  });
  std::thread w0([&] {
    for (int i = 0; i < 5000; ++i) shard0.Add(2.0);
  });
  std::thread w1([&] {
    for (int i = 0; i < 5000; ++i) shard1.Add(4.0);
  });
  w0.join();
  w1.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(shard0.CountSince(bases[0]), 5000);
  EXPECT_EQ(shard1.CountSince(bases[1]), 5000);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 25.0),
              2.0, 0.5);
  EXPECT_NEAR(LatencyHistogram::MergedPercentileSince(hists, bases, 2, 95.0),
              4.0, 1.0);
}

}  // namespace
}  // namespace util
}  // namespace causaltad
