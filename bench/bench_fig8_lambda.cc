// Reproduces Fig. 8: CausalTAD's performance under different values of the
// balance constant λ, on all eight dataset combinations ("-D" = Detour,
// "-S" = Switch, ID and OOD, both cities).
//
// Paper reference (Fig. 8): λ=0 degrades CausalTAD to the biased VSAE-like
// criterion (fine ID, poor OOD); metrics first rise with λ, peak around
// λ≈0.1, and drop sharply by λ=1 — an interior optimum, because the
// factorized scaling factor is intentionally overestimated (Eq. 6 drops
// denominator terms) and must be downweighted.
//
// No retraining is needed: score(λ) = likelihood − λ · Σ scaling, so each
// trip is decomposed once and recombined per λ.

#include <cstdio>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::ScoreVariant;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::TablePrinter;

struct DecomposedSet {
  std::vector<double> likelihood;   // -log P(c,t) per trip
  std::vector<double> scaling_sum;  // Σ_i log E[1/P(t_i|e_i)] per trip

  std::vector<double> ScoresAt(double lambda) const {
    std::vector<double> out(likelihood.size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = likelihood[i] - lambda * scaling_sum[i];
    }
    return out;
  }
};

DecomposedSet DecomposeSet(const CausalTad& model,
                           const std::vector<causaltad::traj::Trip>& trips) {
  DecomposedSet out;
  for (const auto& trip : trips) {
    out.likelihood.push_back(model.ScoreVariantLambda(
        trip, trip.route.size(), ScoreVariant::kLikelihoodOnly, 0.0));
    double scaling = 0.0;
    for (const auto seg : trip.route.segments) {
      scaling += model.scaling_table().log_scaling(seg);
    }
    out.scaling_sum.push_back(scaling);
  }
  return out;
}

void RunCity(const causaltad::eval::CityExperimentConfig& config,
             causaltad::eval::Scale scale) {
  std::printf("\n== Fig. 8 — λ sweep, %s (scale=%s) ==\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  const ExperimentData data = causaltad::eval::BuildExperiment(config);
  auto scorer = causaltad::eval::FitOrLoad(causaltad::eval::kCausalTadName,
                                           data, config.name, scale);
  const auto* model = dynamic_cast<const CausalTad*>(scorer.get());

  const DecomposedSet id_norm = DecomposeSet(*model, data.id_test);
  const DecomposedSet ood_norm = DecomposeSet(*model, data.ood_test);
  const DecomposedSet id_det = DecomposeSet(*model, data.id_detour);
  const DecomposedSet id_sw = DecomposeSet(*model, data.id_switch);
  const DecomposedSet ood_det = DecomposeSet(*model, data.ood_detour);
  const DecomposedSet ood_sw = DecomposeSet(*model, data.ood_switch);

  const std::vector<double> lambdas = {0.0, 0.01, 0.05, 0.1, 0.5, 1.0};
  struct Combo {
    const char* name;
    const DecomposedSet* normals;
    const DecomposedSet* anomalies;
  };
  const std::vector<Combo> combos = {{"ID-D", &id_norm, &id_det},
                                     {"ID-S", &id_norm, &id_sw},
                                     {"OOD-D", &ood_norm, &ood_det},
                                     {"OOD-S", &ood_norm, &ood_sw}};
  for (const char* metric : {"ROC-AUC", "PR-AUC"}) {
    std::printf("\n%s:\n", metric);
    TablePrinter table({"Combo", "l=0", "l=0.01", "l=0.05", "l=0.1",
                        "l=0.5", "l=1.0"});
    table.PrintHeader();
    for (const Combo& combo : combos) {
      std::vector<std::string> cells = {combo.name};
      for (const double lambda : lambdas) {
        const auto result =
            EvaluateScores(combo.normals->ScoresAt(lambda),
                           combo.anomalies->ScoresAt(lambda));
        cells.push_back(TablePrinter::Fmt(
            std::string(metric) == "ROC-AUC" ? result.roc_auc
                                             : result.pr_auc));
      }
      table.PrintRow(cells);
    }
  }
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  RunCity(causaltad::eval::XianConfig(scale), scale);
  RunCity(causaltad::eval::ChengduConfig(scale), scale);
  return 0;
}
