// Reproduces Fig. 6: online detection quality as a function of the observed
// ratio (fraction of the trajectory seen so far), on (a) the ID & Switch
// datasets of Xi'an and (b) the OOD & Switch datasets of Chengdu.
//
// Paper reference (Fig. 6): all curves rise with the observed ratio, flat at
// the start and steepest mid-trip (anomalies are mid-trajectory); CausalTAD
// dominates at every ratio and reaches decent quality by ratio 0.6, while
// baselines need 0.8-1.0.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSet;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;

void RunPanel(const causaltad::eval::CityExperimentConfig& config,
              causaltad::eval::Scale scale, bool ood, const char* title) {
  const ExperimentData data = causaltad::eval::BuildExperiment(config);
  const auto& normal_set = ood ? data.ood_test : data.id_test;
  const auto& anomaly_set = ood ? data.ood_switch : data.id_switch;
  // Subsample to keep the 10-ratio sweep tractable on one core.
  const auto normals = Subsample(normal_set, 400, 31);
  const auto anomalies = Subsample(anomaly_set, 400, 32);

  std::printf("\n== Fig. 6%s — %s ==\n", ood ? "(b)" : "(a)", title);
  const std::vector<std::string> names = {"SAE", "VSAE", "GM-VSAE",
                                          "DeepTEA", "CausalTAD"};
  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
  for (const char* metric : {"ROC-AUC", "PR-AUC"}) {
    std::printf("\n%s:\n", metric);
    std::vector<std::string> cols = {"Method"};
    for (const double r : ratios) {
      cols.push_back("r=" + TablePrinter::Fmt(r, 1));
    }
    TablePrinter table(cols);
    table.PrintHeader();
    for (const std::string& name : names) {
      const auto scorer =
          causaltad::eval::FitOrLoad(name, data, config.name, scale);
      std::vector<std::string> cells = {name};
      for (const double ratio : ratios) {
        const auto result =
            EvaluateScores(ScoreSet(*scorer, normals, ratio),
                           ScoreSet(*scorer, anomalies, ratio));
        cells.push_back(TablePrinter::Fmt(
            std::string(metric) == "ROC-AUC" ? result.roc_auc
                                             : result.pr_auc));
      }
      table.PrintRow(cells);
    }
  }
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  RunPanel(causaltad::eval::XianConfig(scale), scale, /*ood=*/false,
           "ID & Switch, Xi'an (observed-ratio sweep)");
  RunPanel(causaltad::eval::ChengduConfig(scale), scale, /*ood=*/true,
           "OOD & Switch, Chengdu (observed-ratio sweep)");
  return 0;
}
