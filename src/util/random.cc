#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace causaltad {
namespace util {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  CAUSALTAD_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return static_cast<int64_t>(v % un);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  CAUSALTAD_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (u < w) return static_cast<int64_t>(i);
    u -= w;
  }
  // Floating-point rounding: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int64_t>(i);
  }
  return 0;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = UniformInt(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace util
}  // namespace causaltad
