// OOD generalization: the paper's core claim, as a runnable demo.
//
// A biased baseline (VSAE) and CausalTAD are trained on the same confounded
// corpus (SD pairs concentrated near POIs, routes concentrated on preferred
// roads). Both are then asked to judge trips with *unseen* SD pairs. The
// baseline over-scores normal OOD trips (spurious correlation via the road
// preference confounder E); CausalTAD's do-calculus-derived scaling factor
// compensates, keeping normal OOD trips separable from actual anomalies.

#include <cstdio>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "models/rnn_vae.h"

int main() {
  using namespace causaltad;

  const eval::ExperimentData data =
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke));
  models::FitOptions options;
  options.epochs = 6;
  options.lr = 3e-3f;

  std::printf("Training the biased baseline (VSAE)...\n");
  models::RnnVaeConfig vsae_config;
  vsae_config.vocab = data.vocab();
  vsae_config.emb_dim = 24;
  vsae_config.hidden_dim = 32;
  vsae_config.latent_dim = 16;
  auto vsae = models::MakeVsae(vsae_config);
  vsae->Fit(data.train, options);

  std::printf("Training CausalTAD...\n");
  core::CausalTadConfig causal_config;
  causal_config.tg.emb_dim = 24;
  causal_config.tg.hidden_dim = 32;
  causal_config.tg.latent_dim = 16;
  causal_config.rp.emb_dim = 16;
  causal_config.rp.hidden_dim = 32;
  causal_config.rp.latent_dim = 8;
  core::CausalTad causal(&data.city.network, causal_config);
  causal.Fit(data.train, options);

  auto evaluate = [&](const models::TrajectoryScorer& scorer,
                      const std::vector<traj::Trip>& normals,
                      const std::vector<traj::Trip>& anomalies) {
    std::vector<double> ns, as;
    for (const auto& t : normals) ns.push_back(scorer.ScoreFull(t));
    for (const auto& t : anomalies) as.push_back(scorer.ScoreFull(t));
    return eval::EvaluateScores(ns, as);
  };

  std::printf("\n%-12s %-22s %-22s\n", "", "ID detour ROC-AUC",
              "OOD detour ROC-AUC");
  const auto v_id = evaluate(*vsae, data.id_test, data.id_detour);
  const auto v_ood = evaluate(*vsae, data.ood_test, data.ood_detour);
  const auto c_id = evaluate(causal, data.id_test, data.id_detour);
  const auto c_ood = evaluate(causal, data.ood_test, data.ood_detour);
  std::printf("%-12s %-22.4f %-22.4f\n", "VSAE", v_id.roc_auc,
              v_ood.roc_auc);
  std::printf("%-12s %-22.4f %-22.4f\n", "CausalTAD", c_id.roc_auc,
              c_ood.roc_auc);

  std::printf("\nVSAE drop ID->OOD:      %+.1f%%\n",
              100.0 * (v_ood.roc_auc - v_id.roc_auc) / v_id.roc_auc);
  std::printf("CausalTAD drop ID->OOD: %+.1f%%\n",
              100.0 * (c_ood.roc_auc - c_id.roc_auc) / c_id.roc_auc);
  std::printf("\nThe debiased criterion P(T|do(C)) should lose much less "
              "accuracy than the\nbiased criterion P(T|C) when SD pairs "
              "shift away from the training set.\n");
  return 0;
}
