#ifndef CAUSALTAD_UTIL_BINARY_IO_H_
#define CAUSALTAD_UTIL_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace causaltad {
namespace util {

/// Little-endian binary writer used for model checkpoints and cached corpora.
/// Format primitives: fixed-width ints/floats, length-prefixed strings and
/// vectors. All writers go through this class so checkpoints stay portable.
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write and emits `magic` + `version`.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);

  bool ok() const { return out_.good(); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  void WriteInts(const std::vector<int32_t>& v);
  void WriteI64s(const std::vector<int64_t>& v);
  void WriteBytes(const std::vector<int8_t>& v);

  /// Flushes and reports any accumulated stream error.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t n);

  std::ofstream out_;
  std::string path_;
};

/// Reader counterpart of BinaryWriter; validates magic and version on open.
class BinaryReader {
 public:
  BinaryReader(const std::string& path, uint32_t magic,
               uint32_t expected_version);

  /// Accepts any on-disk version in [min_version, max_version] — the opener
  /// for formats that keep reading their older revisions (checkpoints).
  /// Callers branch on version() for per-revision decoding.
  BinaryReader(const std::string& path, uint32_t magic, uint32_t min_version,
               uint32_t max_version);

  bool ok() const { return ok_; }
  const Status& status() const { return status_; }
  uint32_t version() const { return version_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloats();
  std::vector<int32_t> ReadInts();
  std::vector<int64_t> ReadI64s();
  std::vector<int8_t> ReadBytes();

 private:
  void ReadRaw(void* data, size_t n);
  void Fail(const std::string& msg);

  std::ifstream in_;
  std::string path_;
  bool ok_ = false;
  uint32_t version_ = 0;
  Status status_;
};

/// In-memory little-endian writer appending to a caller-owned byte buffer.
/// The buffer twin of BinaryWriter, used where bytes go to a socket instead
/// of a file (the src/net/ wire frames). Containers carry u32 length
/// prefixes — wire messages are small and bounded, unlike checkpoints.
class BufferWriter {
 public:
  explicit BufferWriter(std::vector<uint8_t>* out) : out_(out) {}

  void WriteU8(uint8_t v) { out_->push_back(v); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  /// u32 length prefix + raw bytes.
  void WriteString(const std::string& s);
  /// u32 count prefix + raw doubles.
  void WriteF64s(const std::vector<double>& v);

 private:
  void WriteRaw(const void* data, size_t n);

  std::vector<uint8_t>* out_;
};

/// Bounded in-memory reader over a byte span; the decode twin of
/// BufferWriter. Never reads past the end: the first short or malformed read
/// flips ok() and every later read returns a zero value, so frame decoding
/// over untrusted network bytes cannot over-read or crash.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  double ReadF64();
  std::string ReadString();
  std::vector<double> ReadF64s();

 private:
  bool Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_BINARY_IO_H_
