#include "nn/autograd.h"

#include <unordered_set>

#include "util/logging.h"

namespace causaltad {
namespace nn {

namespace internal {

Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void()>** backward_slot, Node** self) {
  Var out(std::move(value), /*requires_grad=*/false);
  Node* node = out.node().get();
  for (const Var& p : parents) {
    if (p.defined()) {
      node->parents.push_back(p.node());
      node->requires_grad |= p.requires_grad();
    }
  }
  *self = node;
  *backward_slot = node->requires_grad ? &node->backward : nullptr;
  return out;
}

}  // namespace internal

void Backward(const Var& root) {
  CAUSALTAD_CHECK(root.defined());
  CAUSALTAD_CHECK_EQ(root.value().numel(), 1);

  // Iterative post-order DFS to get a reverse-topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  Node* root_node = root.node().get();
  if (visited.insert(root_node).second) stack.push_back({root_node, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }

  root_node->EnsureGrad();
  root_node->grad[0] += 1.0f;

  // order is post-order (children after parents’ dependencies), so iterate
  // in reverse for the backward sweep.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->requires_grad) {
      node->EnsureGrad();
      node->backward();
    }
  }
}

}  // namespace nn
}  // namespace causaltad
