#include "core/rp_vae.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace causaltad {
namespace core {

RpVae::RpVae(const RpVaeConfig& config, util::Rng* rng)
    : nn::Module("rpvae"),
      config_(config),
      emb_("emb", config.vocab, config.emb_dim, rng),
      enc_fc_("enc_fc",
              config.emb_dim +
                  (config.num_time_slots > 0 ? config.slot_emb_dim : 0),
              config.hidden_dim, rng),
      mu_head_("mu_head", config.hidden_dim, config.latent_dim, rng),
      lv_head_("lv_head", config.hidden_dim, config.latent_dim, rng),
      dec_("dec", config.latent_dim, config.vocab, rng) {
  CAUSALTAD_CHECK_GT(config.vocab, 0);
  RegisterSubmodule(&emb_);
  RegisterSubmodule(&enc_fc_);
  RegisterSubmodule(&mu_head_);
  RegisterSubmodule(&lv_head_);
  RegisterSubmodule(&dec_);
  if (config.num_time_slots > 0) {
    slot_emb_ = std::make_unique<nn::Embedding>(
        "slot_emb", config.num_time_slots, config.slot_emb_dim, rng);
    RegisterSubmodule(slot_emb_.get());
  }
}

RpVae::Posterior RpVae::EncodeRows(std::span<const int32_t> ids,
                                   std::span<const int32_t> slots) const {
  nn::Var x = emb_.Forward(ids);  // [n, emb]
  if (time_conditioned()) {
    if (slots.empty()) {
      const std::vector<int32_t> zero(ids.size(), 0);
      x = nn::ConcatCols({x, slot_emb_->Forward(zero)});
    } else {
      CAUSALTAD_DCHECK_EQ(slots.size(), ids.size());
      x = nn::ConcatCols({x, slot_emb_->Forward(slots)});
    }
  }
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(x));
  Posterior p;
  p.mu = mu_head_.Forward(hidden);
  p.logvar = lv_head_.Forward(hidden);
  return p;
}

RpVae::Posterior RpVae::Encode(std::span<const int32_t> ids,
                               int time_slot) const {
  if (!time_conditioned() || time_slot == 0) return EncodeRows(ids, {});
  const std::vector<int32_t> slots(ids.size(),
                                   static_cast<int32_t>(time_slot));
  return EncodeRows(ids, slots);
}

nn::Var RpVae::LossBatch(std::span<const roadnet::SegmentId> segments,
                         std::span<const int32_t> slots,
                         util::Rng* rng) const {
  CAUSALTAD_CHECK(!segments.empty());
  // Deduplicate (segment, slot) rows with occurrence counts: popular
  // segments recur constantly across a minibatch of overlapping routes, and
  // a count-weighted row has exactly the summed gradient of its repeats
  // (under sampling, one shared latent draw per unique row — still an
  // unbiased estimator of the same expected loss). The [U, vocab] decoder
  // pass, the dominant cost of the joint objective, then scales with unique
  // rows U instead of total route length.
  const int num_slots = std::max(config_.num_time_slots, 1);
  std::vector<int32_t> first_of(config_.vocab * num_slots, -1);
  std::vector<int32_t> ids;
  std::vector<int32_t> unique_slots;
  std::vector<float> counts;
  ids.reserve(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    const int32_t slot =
        !time_conditioned() || slots.empty() ? 0 : slots[i];
    const int64_t key = slot * config_.vocab + segments[i];
    if (first_of[key] < 0) {
      first_of[key] = static_cast<int32_t>(ids.size());
      ids.push_back(segments[i]);
      unique_slots.push_back(slot);
      counts.push_back(0.0f);
    }
    counts[first_of[key]] += 1.0f;
  }
  const bool weighted = ids.size() < segments.size();
  const std::span<const float> weights =
      weighted ? std::span<const float>(counts) : std::span<const float>{};
  const Posterior post =
      EncodeRows(ids, time_conditioned() ? std::span<const int32_t>(
                                               unique_slots)
                                         : std::span<const int32_t>{});
  const nn::Var z =
      rng != nullptr ? nn::Reparameterize(post.mu, post.logvar, rng) : post.mu;
  const nn::Var logits = dec_.Forward(z);  // [U, vocab]
  return nn::Add(nn::SoftmaxCrossEntropy(logits, ids, weights),
                 nn::KlStandardNormal(post.mu, post.logvar, weights));
}

nn::Var RpVae::Loss(std::span<const roadnet::SegmentId> segments,
                    util::Rng* rng, int time_slot) const {
  CAUSALTAD_CHECK(!segments.empty());
  if (!time_conditioned() || time_slot == 0) {
    return LossBatch(segments, {}, rng);
  }
  const std::vector<int32_t> slots(segments.size(),
                                   static_cast<int32_t>(time_slot));
  return LossBatch(segments, slots, rng);
}

void RpVae::RefreshQuantizedEmbeddings() {
  emb_.RefreshQuantized();
  if (slot_emb_ != nullptr) slot_emb_->RefreshQuantized();
}

double RpVae::SegmentNll(roadnet::SegmentId segment, int time_slot) const {
  const std::vector<roadnet::SegmentId> one = {segment};
  return Loss(one, /*rng=*/nullptr, time_slot).value().Item();
}

std::vector<double> RpVae::SegmentNllBatch(
    std::span<const roadnet::SegmentId> segments, int time_slot) const {
  std::vector<double> out(segments.size());
  const int64_t latent = config_.latent_dim;
  // Rows are independent, so shard across the worker pool (each worker
  // thread scopes its own no-grad guard and arena); within a shard, chunk
  // so the [chunk, vocab] decoder logits stay bounded no matter how many
  // segments the caller batches (the eval harness passes whole test sets
  // at once).
  constexpr size_t kChunk = 2048;
  const int64_t shards = std::min<int64_t>(
      util::ParallelThreads(),
      static_cast<int64_t>(segments.size() / (kChunk / 4)));
  util::ParallelFor(
      static_cast<int64_t>(segments.size()),
      shards > 1 ? static_cast<int>(shards) : 1,
      [&](int64_t shard_begin, int64_t shard_end) {
        const nn::InferenceGuard no_grad;
        const nn::kernels::Kernels& kern = nn::kernels::Active();
        for (size_t begin = static_cast<size_t>(shard_begin);
             begin < static_cast<size_t>(shard_end); begin += kChunk) {
          const size_t count =
              std::min(kChunk, static_cast<size_t>(shard_end) - begin);
          const std::vector<int32_t> ids(segments.begin() + begin,
                                         segments.begin() + begin + count);
          const Posterior post = Encode(ids, time_slot);
          const nn::Var logits = dec_.Forward(post.mu);  // [count, vocab]
          for (size_t i = 0; i < count; ++i) {
            out[begin + i] =
                static_cast<double>(kern.softmax_nll_row(
                    logits.value().data() + i * config_.vocab, config_.vocab,
                    ids[i])) +
                static_cast<double>(kern.kl_standard_normal_row(
                    post.mu.value().data() + i * latent,
                    post.logvar.value().data() + i * latent, latent));
          }
        }
      });
  return out;
}

double RpVae::LogScalingFactor(roadnet::SegmentId segment, int num_samples,
                               util::Rng* rng, int time_slot) const {
  CAUSALTAD_CHECK_GT(num_samples, 0);
  const std::vector<int32_t> id = {segment};
  const Posterior post = Encode(id, time_slot);
  const float* mu = post.mu.value().data();
  const float* lv = post.logvar.value().data();
  const int64_t latent = config_.latent_dim;

  // Draw all samples as one [S, latent] batch and decode together.
  nn::Tensor z({num_samples, latent});
  for (int s = 0; s < num_samples; ++s) {
    for (int64_t i = 0; i < latent; ++i) {
      z.At(s, i) = mu[i] + std::exp(0.5f * lv[i]) *
                               static_cast<float>(rng->Gaussian());
    }
  }
  const nn::Var logits = dec_.Forward(nn::Constant(std::move(z)));

  // log E[1/p] = logsumexp_s( -log p_s ) - log S, with
  // log p_s = logit[s, segment] - logsumexp_j logit[s, j].
  const nn::Tensor& lg = logits.value();
  std::vector<double> neg_log_p(num_samples);
  for (int s = 0; s < num_samples; ++s) {
    const float* row = lg.data() + s * config_.vocab;
    double max_v = row[0];
    for (int64_t j = 1; j < config_.vocab; ++j) {
      max_v = std::max<double>(max_v, row[j]);
    }
    double total = 0.0;
    for (int64_t j = 0; j < config_.vocab; ++j) {
      total += std::exp(row[j] - max_v);
    }
    const double log_p = row[segment] - max_v - std::log(total);
    neg_log_p[s] = -log_p;
  }
  double max_nlp = neg_log_p[0];
  for (double v : neg_log_p) max_nlp = std::max(max_nlp, v);
  double acc = 0.0;
  for (double v : neg_log_p) acc += std::exp(v - max_nlp);
  return max_nlp + std::log(acc) - std::log(num_samples);
}

ScalingTable ScalingTable::Build(const RpVae& rp_vae, int64_t vocab,
                                 int num_samples, uint64_t seed) {
  ScalingTable table;
  table.vocab_ = vocab;
  table.num_slots_ =
      rp_vae.time_conditioned() ? rp_vae.config().num_time_slots : 1;
  table.values_.resize(vocab * table.num_slots_);
  util::Rng rng(seed);
  for (int slot = 0; slot < table.num_slots_; ++slot) {
    for (int64_t s = 0; s < vocab; ++s) {
      table.values_[slot * vocab + s] = rp_vae.LogScalingFactor(
          static_cast<roadnet::SegmentId>(s), num_samples, &rng,
          rp_vae.time_conditioned() ? slot : 0);
    }
  }
  return table;
}

void ScalingTable::CenterInPlace() {
  for (int slot = 0; slot < num_slots_; ++slot) {
    double* begin = values_.data() + slot * vocab_;
    double mean = 0.0;
    for (int64_t i = 0; i < vocab_; ++i) mean += begin[i];
    mean /= static_cast<double>(vocab_);
    for (int64_t i = 0; i < vocab_; ++i) begin[i] -= mean;
  }
}

std::vector<double> ScalingTable::Centered(int slot) const {
  CAUSALTAD_CHECK(slot >= 0 && slot < num_slots_);
  const double* begin = values_.data() + slot * vocab_;
  double mean = 0.0;
  for (int64_t i = 0; i < vocab_; ++i) mean += begin[i];
  mean /= static_cast<double>(vocab_);
  std::vector<double> out(vocab_);
  for (int64_t i = 0; i < vocab_; ++i) out[i] = begin[i] - mean;
  return out;
}

}  // namespace core
}  // namespace causaltad
