// Online monitoring over the WIRE, fleet edition: a true client/router/
// backend split inside one process. Two backend servers (each hosting a
// sharded, pumped serve::StreamingService) sit behind a net::Router; the
// client side is a net::Client on a loopback socket, streaming a normal
// trip and a detoured variant of the same trip concurrently and alarming
// while the trips are still in progress.
//
// The example trains CausalTAD, calibrates an alarm threshold from
// held-out normal trips, then runs the client thread: Hello handshake
// (tenant auth), Begin per trip, windowed Push with transparent
// backpressure retries, Poll for scores as the pump threads emit them.
//
// Observability (src/obs/README.md) is wired the way a deployment would:
// every push is trace-sampled, so the shared obs::Tracer holds full span
// chains (client_push_rtt -> router_leg -> server_dispatch -> queue_wait ->
// compute -> emit); at exit one ScrapeStats round trip through the router
// returns the FLEET-WIDE exposition — every backend's series tagged
// backend="<i>" plus the router's own — and the slow-log JSON shows the
// worst chains. CAUSALTAD_METRICS_JSON=<path> additionally streams periodic
// JSON snapshots of the client-side registry to disk.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/threshold.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "traj/anomaly.h"

int main() {
  using namespace causaltad;

  const eval::ExperimentData data =
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke));

  core::CausalTadConfig model_config;
  model_config.tg.emb_dim = 24;
  model_config.tg.hidden_dim = 32;
  model_config.tg.latent_dim = 16;
  model_config.rp.emb_dim = 16;
  model_config.rp.hidden_dim = 32;
  model_config.rp.latent_dim = 8;
  core::CausalTad model(&data.city.network, model_config);
  models::FitOptions options;
  options.epochs = 5;
  options.lr = 3e-3f;
  std::printf("Training...\n");
  model.Fit(data.train, options);

  // Alarm threshold calibrated for a 5% false-positive rate on held-out
  // normal trips.
  std::vector<double> normal_scores;
  for (const auto& t : data.id_test) {
    normal_scores.push_back(model.ScoreFull(t));
  }
  const double threshold = causaltad::eval::ThresholdAtFpr(normal_scores,
                                                           /*target_fpr=*/0.05);
  std::printf("Alarm threshold (5%% FPR on held-out normals): %.3f\n\n",
              threshold);

  // Pick a test trip and fabricate a detour mid-way.
  const traj::Trip& normal = data.id_test[3];
  traj::AnomalyGenerator anomaly_gen(&data.city.network, /*seed=*/99);
  const auto detour = anomaly_gen.MakeDetour(normal, traj::DetourConfig{});
  if (!detour.has_value()) {
    std::printf("could not fabricate a detour for the demo trip\n");
    return 1;
  }

  // One shared tracer collects spans from every tier; per-backend
  // registries keep each backend's kStats scrape scoped, which is what
  // makes the router's fleet aggregation meaningful.
  obs::Tracer tracer;
  tracer.set_slow_threshold_ms(50.0);
  obs::Registry backend_registry[2];
  obs::Registry router_registry;
  obs::Registry client_registry;
  // Opt-in periodic JSON snapshots (CAUSALTAD_METRICS_JSON=<path>).
  const auto json_writer = obs::PeriodicJsonWriter::FromEnv(&client_registry);

  // BACKENDS: two (service, server) pairs, tenant auth and network
  // validation on, each with its own metrics registry.
  struct Backend {
    std::unique_ptr<serve::StreamingService> service;
    std::unique_ptr<net::Server> server;
  };
  std::vector<Backend> backends(2);
  for (int i = 0; i < 2; ++i) {
    serve::ServiceOptions service_options;
    service_options.num_shards = 2;
    service_options.pump = true;
    service_options.max_session_pending = 8;
    service_options.batcher.max_batch_rows = 32;
    service_options.batcher.max_delay_ms = 1.0;
    service_options.registry = &backend_registry[i];
    service_options.tracer = &tracer;
    backends[i].service =
        std::make_unique<serve::StreamingService>(&model, service_options);

    net::ServerOptions server_options;
    server_options.tenant_tokens = {{"fleet-demo", "s3cret"}};
    server_options.admin_tenant = "fleet-demo";  // scrape authorization
    server_options.network = &data.city.network;
    server_options.registry = &backend_registry[i];
    server_options.tracer = &tracer;
    server_options.trace_where = "backend=" + std::to_string(i);
    backends[i].server = std::make_unique<net::Server>(
        backends[i].service.get(), server_options);
    if (!backends[i].server->Start().ok()) {
      std::printf("backend %d failed to start\n", i);
      return 1;
    }
  }

  // ROUTER: consistent-hash fan-out over the two backends; its upstream
  // legs authenticate with the same tenant, and its admin credentials let
  // ScrapeFleet read each backend's exposition.
  net::RouterOptions router_options;
  router_options.tenant_tokens = {{"fleet-demo", "s3cret"}};
  router_options.upstream.tenant = "fleet-demo";
  router_options.upstream.auth_token = "s3cret";
  router_options.registry = &router_registry;
  router_options.tracer = &tracer;
  std::vector<net::RouterBackend> router_backends(2);
  for (int i = 0; i < 2; ++i) {
    net::Server* server = backends[i].server.get();
    router_backends[i].dialer = [server] {
      return server->AddLoopbackConnection();
    };
  }
  net::Router router(std::move(router_backends), router_options);
  if (!router.Start().ok()) {
    std::printf("router failed to start\n");
    return 1;
  }
  const int client_fd = router.AddLoopbackConnection();

  // CLIENT SIDE: its own thread, talking only the wire protocol — exactly
  // what a non-C++ gateway would do over TCP. Every push is trace-sampled
  // so the exit dump has complete chains to show.
  std::string fleet_exposition;
  std::thread client_thread([&] {
    net::ClientOptions client_options;
    client_options.tenant = "fleet-demo";
    client_options.auth_token = "s3cret";
    client_options.max_inflight = 16;
    client_options.registry = &client_registry;
    client_options.tracer = &tracer;
    client_options.trace_sample_period = 1;
    auto client = net::Client::FromFd(client_fd, client_options);
    if (!client->Hello().ok()) {
      std::printf("client auth failed: %s\n",
                  client->status().ToString().c_str());
      return;
    }

    struct Feed {
      const traj::Trip* trip;
      const char* label;
      uint64_t id = 0;
      size_t fed = 0;
      size_t scored = 0;
      bool alarmed = false;
    };
    std::vector<Feed> feeds = {{&normal, "NORMAL  "}, {&*detour, "DETOURED"}};
    for (Feed& feed : feeds) {
      const auto& segments = feed.trip->route.segments;
      feed.id = client->Begin(segments.front(), segments.back(),
                              feed.trip->time_slot);
      std::printf("Streaming %s trip (%lld segments) through the router\n",
                  feed.label,
                  static_cast<long long>(feed.trip->route.size()));
    }
    std::printf("\n");

    // Both trips stream concurrently: push the next observed point of each
    // (Push retries backpressure rejects transparently), then drain
    // whatever ScoreDeltas the fleet has for us.
    bool streaming = true;
    while (streaming) {
      streaming = false;
      for (Feed& feed : feeds) {
        const auto& segments = feed.trip->route.segments;
        if (feed.fed < segments.size()) {
          if (!client->Push(feed.id, segments[feed.fed]).ok()) {
            std::printf("push failed: %s\n",
                        client->status().ToString().c_str());
            return;
          }
          ++feed.fed;
        }
        const auto polled = client->Poll(feed.id);
        if (!polled.ok()) {
          std::printf("poll failed: %s\n", polled.status().ToString().c_str());
          return;
        }
        for (const double score : *polled) {
          const bool alarm = score > threshold;
          if (feed.scored % 3 == 0 || (alarm && !feed.alarmed)) {
            std::printf("  %s seg %2lld  score %7.3f %s\n", feed.label,
                        static_cast<long long>(feed.scored), score,
                        alarm && !feed.alarmed ? "  << ALARM" : "");
          }
          if (alarm) feed.alarmed = true;
          ++feed.scored;
        }
        if (feed.fed < segments.size() || feed.scored < segments.size()) {
          streaming = true;
        }
      }
    }
    for (Feed& feed : feeds) {
      if (!feed.alarmed) {
        std::printf("  %s (no alarm raised)\n", feed.label);
      }
      const auto finished = client->Finish(feed.id);
      if (!finished.ok()) {
        std::printf("finish failed: %s\n",
                    finished.status().ToString().c_str());
      }
    }
    const net::ClientStats& cstats = client->stats();
    std::printf(
        "\nClient wire counters:\n"
        "  pushes sent / retransmits  %lld / %lld\n"
        "  polls sent                 %lld\n"
        "  bytes out / in             %lld / %lld\n",
        static_cast<long long>(cstats.pushes_sent),
        static_cast<long long>(cstats.retransmits),
        static_cast<long long>(cstats.polls_sent),
        static_cast<long long>(cstats.bytes_sent),
        static_cast<long long>(cstats.bytes_received));

    // One Stats round trip through the router reads the whole fleet: both
    // backends' series (tagged backend="<i>") plus the router's own.
    if (!client->ScrapeStats(&fleet_exposition).ok()) {
      std::printf("fleet scrape failed: %s\n",
                  client->status().ToString().c_str());
    }
  });
  client_thread.join();

  router.Stop();
  for (Backend& backend : backends) {
    backend.server->Stop();
    backend.service->Shutdown();
  }

  std::printf("\nFleet-wide exposition (one ScrapeStats via the router):\n");
  std::printf("%s", fleet_exposition.c_str());

  std::printf("\nTrace spans recorded: %lld (slow chains over %.0f ms: %lld)\n",
              static_cast<long long>(tracer.recorded()), 50.0,
              static_cast<long long>(tracer.slow_chains()));
  if (tracer.slow_chains() > 0) {
    std::printf("Slow-request log (full span chains):\n%s",
                tracer.SlowLogJson().c_str());
  }
  if (json_writer != nullptr) {
    std::printf("\nPeriodic JSON snapshots written: %lld "
                "(CAUSALTAD_METRICS_JSON)\n",
                static_cast<long long>(json_writer->writes()));
  }
  std::printf("\nSame O(1)-per-point scores as the in-process service — the "
              "wire adds auth, quotas, tracing, and a fleet-wide metrics "
              "plane any producer can scrape.\n");
  return 0;
}
