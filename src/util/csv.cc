#include "util/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace causaltad {
namespace util {

int CsvTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string EscapeCsvCell(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n') needs_quotes = true;
  }
  if (!cell.empty() &&
      (std::isspace(static_cast<unsigned char>(cell.front())) ||
       std::isspace(static_cast<unsigned char>(cell.back())))) {
    needs_quotes = true;
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

StatusOr<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = SplitCsvLine(line);
    if (first) {
      table.header = std::move(cells);
      first = false;
    } else {
      if (cells.size() != table.header.size()) {
        return Status::InvalidArgument("ragged CSV row in " + path);
      }
      table.rows.push_back(std::move(cells));
    }
  }
  if (first) return Status::InvalidArgument("empty CSV file " + path);
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << EscapeCsvCell(row[i]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::InvalidArgument("row width mismatch");
    }
    write_row(row);
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace util
}  // namespace causaltad
