// Online monitoring: stream an ongoing trip through CausalTAD's O(1)
// incremental session — the deployment mode the paper targets, where a
// ride-hailing platform must flag a detour while the trip is still in
// progress.
//
// The example streams a normal trip and a detoured variant of the same trip
// side by side and reports when the detour's score crosses an alarm
// threshold calibrated from held-out normal trips.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/threshold.h"
#include "traj/anomaly.h"

int main() {
  using namespace causaltad;

  const eval::ExperimentData data =
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke));

  core::CausalTadConfig model_config;
  model_config.tg.emb_dim = 24;
  model_config.tg.hidden_dim = 32;
  model_config.tg.latent_dim = 16;
  model_config.rp.emb_dim = 16;
  model_config.rp.hidden_dim = 32;
  model_config.rp.latent_dim = 8;
  core::CausalTad model(&data.city.network, model_config);
  models::FitOptions options;
  options.epochs = 5;
  options.lr = 3e-3f;
  std::printf("Training...\n");
  model.Fit(data.train, options);

  // Alarm threshold calibrated for a 5% false-positive rate on held-out
  // normal trips.
  std::vector<double> normal_scores;
  for (const auto& t : data.id_test) {
    normal_scores.push_back(model.ScoreFull(t));
  }
  const double threshold = causaltad::eval::ThresholdAtFpr(normal_scores,
                                                           /*target_fpr=*/0.05);
  std::printf("Alarm threshold (5%% FPR on held-out normals): %.3f\n\n",
              threshold);

  // Pick a test trip and fabricate a detour mid-way.
  const traj::Trip& normal = data.id_test[3];
  traj::AnomalyGenerator anomaly_gen(&data.city.network, /*seed=*/99);
  const auto detour = anomaly_gen.MakeDetour(normal, traj::DetourConfig{});
  if (!detour.has_value()) {
    std::printf("could not fabricate a detour for the demo trip\n");
    return 1;
  }

  auto stream = [&](const traj::Trip& trip, const char* label) {
    std::printf("Streaming %s (%lld segments):\n", label,
                static_cast<long long>(trip.route.size()));
    auto session = model.BeginTrip(trip);
    bool alarmed = false;
    for (int64_t k = 0; k < trip.route.size(); ++k) {
      const double score = session->Update(trip.route.segments[k]);
      const bool alarm = score > threshold;
      if (k % 3 == 0 || (alarm && !alarmed)) {
        std::printf("  seg %2lld  score %7.3f %s\n",
                    static_cast<long long>(k), score,
                    alarm ? "  << ALARM" : "");
      }
      if (alarm && !alarmed) alarmed = true;
    }
    if (!alarmed) std::printf("  (no alarm raised)\n");
    std::printf("\n");
  };

  stream(normal, "NORMAL trip");
  stream(*detour, "DETOURED trip");
  std::printf("Each update costs O(1): one GRU step over the successor-"
              "masked softmax plus a precomputed scaling-table lookup.\n");
  return 0;
}
