#ifndef CAUSALTAD_TRAJ_TRIP_IO_H_
#define CAUSALTAD_TRAJ_TRIP_IO_H_

#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace causaltad {
namespace traj {

/// Persistence for trip corpora, so generated datasets can be inspected,
/// shipped, or swapped for externally map-matched data.
///
/// Two formats:
///  * CSV  — one row per trip: metadata columns plus the route as a
///    space-separated segment-id list. Human-inspectable, diff-friendly.
///  * Binary — compact length-prefixed records (util::BinaryWriter framing),
///    ~5x smaller and faster; used for corpus caching.
///
/// Both round-trip every Trip field. Loading validates the route against
/// `network` when one is supplied (segment ids in range, successor-valid).

util::Status SaveTripsCsv(const std::string& path,
                          const std::vector<Trip>& trips);
util::StatusOr<std::vector<Trip>> LoadTripsCsv(
    const std::string& path, const roadnet::RoadNetwork* network = nullptr);

util::Status SaveTripsBinary(const std::string& path,
                             const std::vector<Trip>& trips);
util::StatusOr<std::vector<Trip>> LoadTripsBinary(
    const std::string& path, const roadnet::RoadNetwork* network = nullptr);

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_TRIP_IO_H_
