#ifndef CAUSALTAD_NET_CLIENT_H_
#define CAUSALTAD_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "roadnet/road_network.h"
#include "util/status.h"

namespace causaltad {
namespace net {

/// Client knobs.
struct ClientOptions {
  /// Tenant identity sent in the Hello handshake.
  std::string tenant = "default";
  std::string auth_token;
  /// Flow-control window: Push() blocks (draining scores via Poll round
  /// trips) while this many points are in flight — sent but not yet scored
  /// — across all of the connection's sessions. Bounds both the server-side
  /// queues this client can build and its own retransmit buffer.
  int64_t max_inflight = 256;
  /// Go-back-N: on a retryable PushReject (session_full / shard_full /
  /// quota / out_of_order) resend from the rejected point onward after
  /// draining. Off: rejects surface through the reject callback / TryPush
  /// only, and the rejected point is dropped from the stream.
  bool auto_retry = true;
  /// Sleep between empty Poll round trips while draining, so a blocked
  /// client does not busy-spin the server's event loop.
  double poll_backoff_ms = 0.2;
  /// Bound on any single blocking wait (Hello barrier, drain, Finish).
  double timeout_ms = 30000.0;
};

/// Client-observed outcome of a single push attempt (TryPush).
enum class PushOutcome {
  kAccepted,
  kSessionFull,  // backpressure: retry after draining
  kShardFull,    // shard shedding load
  kQuota,        // tenant quota hit
  kShutdown,     // terminal: service shut down
};

const char* PushOutcomeName(PushOutcome outcome);

/// Wire counters kept by the client.
struct ClientStats {
  int64_t pushes_sent = 0;   // includes retransmissions
  int64_t retransmits = 0;   // go-back-N resends
  int64_t rejects_seen = 0;  // genuine (non-stale) PushRejects
  int64_t polls_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
};

/// Blocking client for the src/net wire protocol, one connection per
/// instance, single-threaded (no internal locks — share across threads
/// behind your own mutex, or give each thread its own connection, as the
/// tests' soak does).
///
/// Two usage modes over the same socket:
///  * Blocking: Begin/Push/End/Finish. Push applies window flow control and
///    (by default) go-back-N retransmission on retryable rejects, so the
///    score stream delivered by Finish is exactly the accepted feed order —
///    wire scores match direct serve::StreamingService scores (net_test
///    asserts 1e-6 relative parity).
///  * Callback poll mode: set score/reject callbacks and call
///    ProcessIncoming(timeout) from your own loop; Poll(session) requests a
///    delta explicitly.
///
/// Error model: protocol-fatal failures (Error frames, decode failures,
/// disconnects) latch into status() and every later call returns it.
class Client {
 public:
  using ScoreCallback =
      std::function<void(uint64_t session, const std::vector<double>&)>;
  using RejectCallback = std::function<void(uint64_t session, RejectReason)>;

  /// Connects to a Server's TCP listener.
  static util::StatusOr<std::unique_ptr<Client>> ConnectTcp(
      const std::string& host, int port, ClientOptions options = {});
  /// Adopts a connected fd (the peer end of Server::AddLoopbackConnection).
  static std::unique_ptr<Client> FromFd(int fd, ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends the tenant handshake and barriers on it: returns the server's
  /// auth verdict before any other traffic is risked.
  util::Status Hello();

  /// Opens a session (client-assigned id, valid on this connection only).
  /// Pipelined — a Begin failure (bad endpoints) surfaces as a latched
  /// connection error on a later call.
  uint64_t Begin(roadnet::SegmentId source, roadnet::SegmentId destination,
                 int32_t time_slot);

  /// Feeds the session's next observed point under window flow control;
  /// blocks draining scores while the window is full. With auto_retry,
  /// retryable rejects are retransmitted in order and the call only fails
  /// on terminal conditions (shutdown, connection error).
  util::Status Push(uint64_t session, roadnet::SegmentId segment);

  /// One push attempt, synchronously barriered: returns what the server did
  /// with exactly this point. Never retransmits (regardless of auto_retry);
  /// a rejected point simply does not join the stream.
  util::StatusOr<PushOutcome> TryPush(uint64_t session,
                                      roadnet::SegmentId segment);

  /// Drains every in-flight point of the session (blocking, with
  /// retransmission), then sends End.
  util::Status End(uint64_t session);

  /// End + drain, returning the session's full score stream (one score per
  /// accepted point, feed order). The session is forgotten client-side.
  util::StatusOr<std::vector<double>> Finish(uint64_t session);

  /// One Poll round trip; returns the scores that arrived for `session`
  /// since the last Poll/Push drain (empty when none, or when a score
  /// callback consumes them).
  util::StatusOr<std::vector<double>> Poll(uint64_t session);

  /// Callback poll mode: processes whatever the server has sent, waiting at
  /// most timeout_ms for the first byte. Runs retransmissions. Returns the
  /// latched connection status.
  util::Status ProcessIncoming(double timeout_ms);

  void set_score_callback(ScoreCallback cb) { score_cb_ = std::move(cb); }
  void set_reject_callback(RejectCallback cb) { reject_cb_ = std::move(cb); }

  /// Latched connection status (OK while the connection is usable).
  const util::Status& status() const { return fatal_; }
  const ClientStats& stats() const { return stats_; }
  /// Points sent but not yet scored, all sessions.
  int64_t inflight() const { return total_inflight_; }

 private:
  struct SentPoint {
    uint64_t seq = 0;
    uint64_t wire_seq = 0;  // latest transmission; stale rejects mismatch
    roadnet::SegmentId segment = roadnet::kInvalidSegment;
  };
  struct Session {
    uint64_t next_seq = 0;
    std::deque<SentPoint> pending;  // sent, not yet scored, feed order
    std::vector<double> scores;     // delivered (when no score callback)
    int64_t resend_from = -1;       // pending index to retransmit from
    bool ended = false;
    bool shutdown = false;  // saw a terminal kShutdown reject
  };

  explicit Client(int fd, ClientOptions options);

  util::Status SendFrame(const Frame& frame);
  util::Status ReadOnce(double timeout_ms, bool* got_bytes);
  void HandleFrame(const Frame& frame);
  /// Sends Poll(session, fresh token) and processes replies until the
  /// matching ScoreDelta arrives (intervening deltas/rejects are processed
  /// too).
  util::Status PollBarrier(uint64_t session);
  /// Retransmits the marked tail of every session with a pending resend.
  util::Status RunResends();
  /// Blocks until total inflight <= target (Poll round trips + backoff).
  util::Status DrainTo(int64_t target, uint64_t focus_session);
  bool Retryable(RejectReason reason) const;

  int fd_ = -1;
  ClientOptions options_;
  FrameDecoder decoder_;
  std::unordered_map<uint64_t, Session> sessions_;
  uint64_t next_session_ = 0;
  uint64_t next_wire_seq_ = 1;
  uint64_t next_token_ = 1;
  uint64_t waiting_token_ = 0;  // PollBarrier's outstanding token, 0 = none
  bool token_seen_ = false;
  // TryPush probe: the wire_seq whose fate the barrier is watching.
  uint64_t probe_wire_seq_ = 0;
  bool probe_rejected_ = false;
  RejectReason probe_reason_ = RejectReason::kSessionFull;
  util::Status fatal_;
  ClientStats stats_;
  int64_t total_inflight_ = 0;
  ScoreCallback score_cb_;
  RejectCallback reject_cb_;
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_CLIENT_H_
