#ifndef CAUSALTAD_MODELS_RNN_VAE_H_
#define CAUSALTAD_MODELS_RNN_VAE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "models/scorer.h"
#include "nn/checkpoint.h"
#include "nn/modules.h"
#include "nn/optim.h"

namespace causaltad {
namespace models {

/// One configurable sequence model covering the paper's learned baselines:
///
///   SAE       — variational=false (plain seq2seq reconstruction)
///   VSAE      — defaults
///   β-VAE     — beta > 1
///   FactorVAE — factor_tc=true (total-correlation discriminator)
///   GM-VSAE   — mixture_k > 0 (Gaussian-mixture latent prior)
///   DeepTEA   — time_conditioned=true (departure-slot conditioning)
///
/// All variants share: a GRU encoder over the observed prefix, a latent (or
/// deterministic) bottleneck, and an autoregressive GRU decoder with a
/// full-vocabulary softmax. The anomaly score is the negative ELBO
/// (reconstruction NLL + beta·KL), i.e. -log P(T|C) estimated from the
/// observed trajectory, which is exactly the biased criterion the paper
/// argues against.
struct RnnVaeConfig {
  int64_t vocab = 0;  // number of road segments; required
  int num_time_slots = 8;
  int64_t emb_dim = 48;
  int64_t hidden_dim = 64;
  int64_t latent_dim = 32;
  int64_t slot_emb_dim = 8;
  bool variational = true;
  float beta = 1.0f;
  int mixture_k = 0;
  bool time_conditioned = false;
  bool factor_tc = false;
  float tc_gamma = 2.0f;
};

class RnnVae : public TrajectoryScorer {
 public:
  RnnVae(std::string name, const RnnVaeConfig& config);
  ~RnnVae() override;

  std::string Name() const override { return name_; }
  void Fit(const std::vector<traj::Trip>& trips,
           const FitOptions& options) override;
  double Score(const traj::Trip& trip, int64_t prefix_len) const override;
  /// No-grad fast path: encodes and decodes all trips as one [B, hidden]
  /// GRU batch (fused steps, packed matmuls, no tape). Matches Score
  /// per element for every model variant.
  std::vector<double> ScoreBatch(
      std::span<const traj::Trip> trips,
      std::span<const int64_t> prefix_lens) const override;
  /// Incremental no-grad session. The encoder state is carried forward (one
  /// fused GRU step per point); the decoder is re-rolled over the observed
  /// prefix with cached input projections, because the ELBO's decode is
  /// conditioned on the posterior of the *whole* prefix — exact parity with
  /// Score(trip, k) therefore costs O(prefix) fused decode steps per
  /// update, against the rescoring path's O(prefix) *taped* encode+decode.
  /// Falls back to the rescoring reference while OnlineRescoringForced().
  std::unique_ptr<OnlineScorer> BeginTrip(
      const traj::Trip& trip) const override;
  util::Status Save(const std::string& path) const override;
  util::Status Load(const std::string& path) override;

  const RnnVaeConfig& config() const { return config_; }

  /// Builds the (negative) ELBO for a prefix on a per-trip tape. When `rng`
  /// is non-null the latent is sampled (training); otherwise the posterior
  /// mean is used. Public so the gradient-parity tests can compare it
  /// against LossBatch.
  nn::Var Loss(const traj::Trip& trip, int64_t prefix_len,
               util::Rng* rng) const;

  /// Minibatched Loss: encodes and decodes all trips (full routes) as
  /// masked [B, hidden] rolls on ONE tape — batched fused GRU steps with
  /// finished-row masking, one batched softmax-CE over every live decode
  /// step, and batched KL reductions. Returns the sum of the per-trip
  /// losses; gradients match per-trip Loss accumulation to float rounding.
  /// When `mu_out` is non-null it receives the posterior-mean batch
  /// [B, latent] (the FactorVAE total-correlation term reuses it).
  nn::Var LossBatch(std::span<const traj::Trip* const> trips, util::Rng* rng,
                    nn::Var* mu_out = nullptr) const;

  /// Trainable parameters of the generative model (excludes the FactorVAE
  /// TC discriminator). Exposed for the gradient-parity tests.
  std::vector<nn::Var> GenerativeParameters() const;

 private:
  struct Net;
  struct OnlineState;
  class OnlineSession;

  /// Per-session carried state for the incremental scorer.
  std::unique_ptr<OnlineState> BeginOnline(const traj::Trip& trip) const;
  double OnlineUpdate(OnlineState* state, roadnet::SegmentId segment) const;

  /// KL of one posterior row against the (mixture) prior with z = mu — the
  /// shared inference-path reduction of ScoreBatch and the online session.
  double PosteriorKlRow(const float* mu_row, const float* lv_row) const;

  nn::Var EncodePrefix(const traj::Trip& trip, int64_t prefix_len) const;
  nn::Var DecodeNll(const traj::Trip& trip, int64_t prefix_len,
                    const nn::Var& h0) const;
  nn::Var MixturePriorLogPdf(const nn::Var& z) const;
  nn::Var GaussianLogPdf(const nn::Var& z, const nn::Var& mu,
                         const nn::Var& logvar) const;

  void TrainDiscriminatorStep(const std::vector<float>& z_value,
                              nn::Adam* disc_opt, util::Rng* rng);
  /// Batched twin: buffers every row of `mu` and runs one adversarial
  /// real-vs-permuted step over the whole minibatch.
  void TrainDiscriminatorBatch(const nn::Tensor& mu, nn::Adam* disc_opt,
                               util::Rng* rng);

  /// Legacy per-trip-tape training loop (FitOptions::per_trip_tape).
  void FitPerTrip(const std::vector<traj::Trip>& trips,
                  const FitOptions& options);

  /// Single-threaded ScoreBatch body for one shard of rows: reads
  /// trips[rows[a]] / prefixes[rows[a]] (already clamped) and writes
  /// out[rows[a]]. ScoreBatch builds the shards (length-bucketed by prefix
  /// length when enabled) and runs one chunk per worker.
  void ScoreBatchChunk(std::span<const traj::Trip> trips,
                       std::span<const int64_t> prefixes,
                       std::span<const int64_t> rows, double* out) const;

  std::string name_;
  RnnVaeConfig config_;
  std::unique_ptr<Net> net_;
  // FactorVAE: replay buffer of recent latents for the permutation trick.
  std::deque<std::vector<float>> z_buffer_;
};

// Factories configuring each named baseline. `base` carries shared dims
// (vocab is required); flags are overridden per model.
std::unique_ptr<TrajectoryScorer> MakeSae(RnnVaeConfig base);
std::unique_ptr<TrajectoryScorer> MakeVsae(RnnVaeConfig base);
std::unique_ptr<TrajectoryScorer> MakeBetaVae(RnnVaeConfig base);
std::unique_ptr<TrajectoryScorer> MakeFactorVae(RnnVaeConfig base);
std::unique_ptr<TrajectoryScorer> MakeGmVsae(RnnVaeConfig base);
std::unique_ptr<TrajectoryScorer> MakeDeepTea(RnnVaeConfig base);

}  // namespace models
}  // namespace causaltad

#endif  // CAUSALTAD_MODELS_RNN_VAE_H_
