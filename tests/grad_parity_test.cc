// Gradient-parity suite for the batched training engine: the minibatched
// [B, hidden] tape (StepBatched, LossBatch) must reproduce the per-trip
// tape's gradients for every generative parameter, and the threaded
// ScoreBatch sharding must reproduce the single-threaded scores exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/causal_tad.h"
#include "core/rp_vae.h"
#include "core/tg_vae.h"
#include "eval/datasets.h"
#include "models/rnn_vae.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "util/parallel.h"

namespace causaltad {
namespace {

constexpr double kGradTol = 1e-4;

const eval::ExperimentData& Data() {
  static const eval::ExperimentData* data = new eval::ExperimentData(
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke)));
  return *data;
}

/// Synthetic variable-length trips over an arbitrary vocab (RnnVae does not
/// need network-valid routes).
std::vector<traj::Trip> SyntheticTrips(int64_t vocab, int count,
                                       uint64_t seed) {
  util::Rng rng(seed);
  std::vector<traj::Trip> trips(count);
  for (int i = 0; i < count; ++i) {
    const int64_t len = 3 + rng.UniformInt(6);  // 3..8
    trips[i].route.segments.resize(len);
    for (int64_t j = 0; j < len; ++j) {
      trips[i].route.segments[j] =
          static_cast<roadnet::SegmentId>(rng.UniformInt(vocab));
    }
    trips[i].time_slot = static_cast<int>(rng.UniformInt(8));
  }
  return trips;
}

std::vector<nn::Tensor> SnapshotGrads(const std::vector<nn::Var>& params) {
  std::vector<nn::Tensor> out;
  out.reserve(params.size());
  for (const nn::Var& p : params) out.push_back(p.grad());
  return out;
}

double MaxAbsGradDiff(const std::vector<nn::Var>& params,
                      const std::vector<nn::Tensor>& reference) {
  double max_diff = 0.0;
  for (size_t i = 0; i < params.size(); ++i) {
    const nn::Tensor& g = params[i].grad();
    for (int64_t j = 0; j < g.numel(); ++j) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(g[j] - reference[i][j])));
    }
  }
  return max_diff;
}

void ZeroGrads(const std::vector<nn::Var>& params) {
  for (const nn::Var& p : params) {
    nn::Var copy = p;
    copy.ZeroGrad();
  }
}

// ---------------------------------------------------------------------------
// Fused batched GRU step vs the op-composed reference.
// ---------------------------------------------------------------------------

TEST(GruStepBatchedTest, MatchesComposedStepForwardAndBackward) {
  util::Rng rng(11);
  const int64_t in = 10, hd = 14, batch = 6;
  nn::GruCell cell("cell", in, hd, &rng);
  const std::vector<nn::Var> params = cell.Parameters();

  nn::Tensor tx({batch, in}), th({batch, hd});
  for (int64_t i = 0; i < tx.numel(); ++i) {
    tx[i] = static_cast<float>(rng.Gaussian()) * 0.7f;
  }
  for (int64_t i = 0; i < th.numel(); ++i) {
    th[i] = static_cast<float>(rng.Gaussian()) * 0.5f;
  }
  // A fixed non-uniform weighting makes the scalar loss sensitive to every
  // output element with a distinct gradient.
  nn::Tensor weight({batch, hd});
  for (int64_t i = 0; i < weight.numel(); ++i) {
    weight[i] = 0.1f + 0.01f * static_cast<float>(i % 17);
  }

  nn::Var x_ref(tx, /*requires_grad=*/true);
  nn::Var h_ref(th, /*requires_grad=*/true);
  const nn::Var out_ref = cell.Step(x_ref, h_ref);
  nn::Backward(nn::Sum(nn::Mul(out_ref, nn::Constant(weight))));
  const std::vector<nn::Tensor> ref_grads = SnapshotGrads(params);
  const nn::Tensor ref_dx = x_ref.grad();
  const nn::Tensor ref_dh = h_ref.grad();
  ZeroGrads(params);

  nn::Var x(tx, /*requires_grad=*/true);
  nn::Var h(th, /*requires_grad=*/true);
  const nn::Var out = cell.StepBatched(x, h);
  for (int64_t i = 0; i < out.value().numel(); ++i) {
    EXPECT_NEAR(out.value()[i], out_ref.value()[i], 1e-5f);
  }
  nn::Backward(nn::Sum(nn::Mul(out, nn::Constant(weight))));
  EXPECT_LT(MaxAbsGradDiff(params, ref_grads), kGradTol);
  for (int64_t i = 0; i < ref_dx.numel(); ++i) {
    EXPECT_NEAR(x.grad()[i], ref_dx[i], kGradTol);
  }
  for (int64_t i = 0; i < ref_dh.numel(); ++i) {
    EXPECT_NEAR(h.grad()[i], ref_dh[i], kGradTol);
  }
}

TEST(GruStepBatchedTest, FinishedRowsPassThroughWithZeroGradient) {
  util::Rng rng(12);
  const int64_t in = 8, hd = 10, batch = 4;
  nn::GruCell cell("cell", in, hd, &rng);

  nn::Tensor tx({batch, in}), th({batch, hd});
  for (int64_t i = 0; i < tx.numel(); ++i) {
    tx[i] = static_cast<float>(rng.Gaussian());
  }
  for (int64_t i = 0; i < th.numel(); ++i) {
    th[i] = static_cast<float>(rng.Gaussian());
  }
  const std::vector<uint8_t> finished = {0, 1, 0, 1};

  nn::Var x(tx, /*requires_grad=*/true);
  nn::Var h(th, /*requires_grad=*/true);
  const nn::Var out = cell.StepBatched(x, h, finished);
  for (int64_t b = 0; b < batch; ++b) {
    if (!finished[b]) continue;
    for (int64_t j = 0; j < hd; ++j) {
      EXPECT_EQ(out.value().At(b, j), th.At(b, j));
    }
  }
  nn::Backward(nn::Sum(out));
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t j = 0; j < in; ++j) {
      if (finished[b]) EXPECT_EQ(x.grad().At(b, j), 0.0f);
    }
    for (int64_t j = 0; j < hd; ++j) {
      // A frozen row's state passes straight through: dL/dh row == dL/dout
      // row (here all ones).
      if (finished[b]) EXPECT_EQ(h.grad().At(b, j), 1.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// RnnVae::LossBatch vs per-trip Loss, all model variants.
// ---------------------------------------------------------------------------

void ExpectRnnVaeParity(models::RnnVaeConfig cfg, const char* name) {
  SCOPED_TRACE(name);
  cfg.vocab = 40;
  cfg.emb_dim = 12;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 8;
  models::RnnVae model(name, cfg);
  const std::vector<traj::Trip> trips = SyntheticTrips(cfg.vocab, 7, 99);
  const std::vector<nn::Var> params = model.GenerativeParameters();
  ASSERT_FALSE(params.empty());

  // Reference: one tape per trip, gradients accumulated across trips
  // (rng=nullptr makes the latent deterministic on both paths).
  double ref_loss = 0.0;
  for (const traj::Trip& trip : trips) {
    const nn::Var loss = model.Loss(trip, trip.route.size(), nullptr);
    ref_loss += loss.value().Item();
    nn::Backward(loss);
  }
  const std::vector<nn::Tensor> ref_grads = SnapshotGrads(params);
  ZeroGrads(params);

  std::vector<const traj::Trip*> ptrs;
  for (const traj::Trip& trip : trips) ptrs.push_back(&trip);
  const nn::Var batched = model.LossBatch(ptrs, nullptr);
  EXPECT_NEAR(batched.value().Item(), ref_loss,
              2e-4 * std::max(1.0, std::abs(ref_loss)));
  nn::Backward(batched);
  EXPECT_LT(MaxAbsGradDiff(params, ref_grads), kGradTol);
}

TEST(RnnVaeGradParityTest, Sae) {
  models::RnnVaeConfig cfg;
  cfg.variational = false;
  ExpectRnnVaeParity(cfg, "SAE");
}

TEST(RnnVaeGradParityTest, Vsae) {
  models::RnnVaeConfig cfg;
  ExpectRnnVaeParity(cfg, "VSAE");
}

TEST(RnnVaeGradParityTest, BetaVae) {
  models::RnnVaeConfig cfg;
  cfg.beta = 4.0f;
  ExpectRnnVaeParity(cfg, "BetaVAE");
}

TEST(RnnVaeGradParityTest, GmVsae) {
  models::RnnVaeConfig cfg;
  cfg.mixture_k = 5;
  ExpectRnnVaeParity(cfg, "GM-VSAE");
}

TEST(RnnVaeGradParityTest, DeepTea) {
  models::RnnVaeConfig cfg;
  cfg.time_conditioned = true;
  ExpectRnnVaeParity(cfg, "DeepTEA");
}

TEST(RnnVaeGradParityTest, FactorVaeGenerativePath) {
  // The TC term is added by Fit on both paths; LossBatch parity covers the
  // generative parameters the discriminator does not touch.
  models::RnnVaeConfig cfg;
  cfg.factor_tc = true;
  ExpectRnnVaeParity(cfg, "FactorVAE");
}

// ---------------------------------------------------------------------------
// TG-VAE / RP-VAE (CausalTAD's two halves) vs per-trip accumulation.
// ---------------------------------------------------------------------------

TEST(TgVaeGradParityTest, LossBatchMatchesPerTripGrads) {
  util::Rng rng(31);
  core::TgVaeConfig cfg;
  cfg.vocab = Data().vocab();
  cfg.emb_dim = 12;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 8;
  core::TgVae tg(&Data().city.network, cfg, &rng);
  const std::vector<nn::Var> params = tg.Parameters();

  std::vector<const traj::Trip*> trips;
  for (int i = 0; i < 6; ++i) trips.push_back(&Data().train[i]);

  double ref_loss = 0.0;
  for (const traj::Trip* trip : trips) {
    const nn::Var loss = tg.Loss(*trip, nullptr);
    ref_loss += loss.value().Item();
    nn::Backward(loss);
  }
  const std::vector<nn::Tensor> ref_grads = SnapshotGrads(params);
  ZeroGrads(params);

  const nn::Var batched = tg.LossBatch(trips, nullptr);
  EXPECT_NEAR(batched.value().Item(), ref_loss,
              2e-4 * std::max(1.0, std::abs(ref_loss)));
  nn::Backward(batched);
  EXPECT_LT(MaxAbsGradDiff(params, ref_grads), kGradTol);
}

TEST(TgVaeGradParityTest, UnconstrainedAblationMatchesToo) {
  util::Rng rng(32);
  core::TgVaeConfig cfg;
  cfg.vocab = Data().vocab();
  cfg.emb_dim = 12;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 8;
  cfg.road_constrained = false;
  cfg.use_sd_decoder = false;
  core::TgVae tg(&Data().city.network, cfg, &rng);
  const std::vector<nn::Var> params = tg.Parameters();

  std::vector<const traj::Trip*> trips;
  for (int i = 0; i < 5; ++i) trips.push_back(&Data().train[i]);

  double ref_loss = 0.0;
  for (const traj::Trip* trip : trips) {
    const nn::Var loss = tg.Loss(*trip, nullptr);
    ref_loss += loss.value().Item();
    nn::Backward(loss);
  }
  const std::vector<nn::Tensor> ref_grads = SnapshotGrads(params);
  ZeroGrads(params);

  const nn::Var batched = tg.LossBatch(trips, nullptr);
  EXPECT_NEAR(batched.value().Item(), ref_loss,
              2e-4 * std::max(1.0, std::abs(ref_loss)));
  nn::Backward(batched);
  EXPECT_LT(MaxAbsGradDiff(params, ref_grads), kGradTol);
}

TEST(RpVaeGradParityTest, LossBatchMatchesPerTripGrads) {
  util::Rng rng(33);
  core::RpVaeConfig cfg;
  cfg.vocab = Data().vocab();
  cfg.emb_dim = 10;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 6;
  cfg.num_time_slots = 8;  // exercise the per-row slot conditioning
  core::RpVae rp(cfg, &rng);
  const std::vector<nn::Var> params = rp.Parameters();

  std::vector<const traj::Trip*> trips;
  for (int i = 0; i < 5; ++i) trips.push_back(&Data().train[i]);

  double ref_loss = 0.0;
  for (const traj::Trip* trip : trips) {
    const nn::Var loss =
        rp.Loss(trip->route.segments, nullptr, trip->time_slot);
    ref_loss += loss.value().Item();
    nn::Backward(loss);
  }
  const std::vector<nn::Tensor> ref_grads = SnapshotGrads(params);
  ZeroGrads(params);

  std::vector<roadnet::SegmentId> segments;
  std::vector<int32_t> slots;
  for (const traj::Trip* trip : trips) {
    segments.insert(segments.end(), trip->route.segments.begin(),
                    trip->route.segments.end());
    slots.insert(slots.end(), trip->route.size(),
                 static_cast<int32_t>(trip->time_slot));
  }
  const nn::Var batched = rp.LossBatch(segments, slots, nullptr);
  EXPECT_NEAR(batched.value().Item(), ref_loss,
              2e-4 * std::max(1.0, std::abs(ref_loss)));
  nn::Backward(batched);
  EXPECT_LT(MaxAbsGradDiff(params, ref_grads), kGradTol);
}

// ---------------------------------------------------------------------------
// Threaded ScoreBatch sharding: identical scores at any thread count.
// ---------------------------------------------------------------------------

TEST(ParallelScoreBatchTest, ShardedScoresMatchSingleThread) {
  models::RnnVaeConfig cfg;
  cfg.vocab = 40;
  cfg.emb_dim = 12;
  cfg.hidden_dim = 16;
  cfg.latent_dim = 8;
  models::RnnVae model("VSAE", cfg);
  const std::vector<traj::Trip> trips = SyntheticTrips(cfg.vocab, 48, 7);
  std::vector<int64_t> prefixes;
  for (const traj::Trip& trip : trips) prefixes.push_back(trip.route.size());

  util::SetParallelThreads(1);
  const std::vector<double> single = model.ScoreBatch(trips, prefixes);
  util::SetParallelThreads(4);
  const std::vector<double> sharded = model.ScoreBatch(trips, prefixes);
  util::SetParallelThreads(0);
  ASSERT_EQ(single.size(), sharded.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], sharded[i]) << "row " << i;
  }
  // And both match the per-trip tape path.
  for (size_t i = 0; i < trips.size(); ++i) {
    EXPECT_NEAR(sharded[i], model.Score(trips[i], prefixes[i]), 1e-4)
        << "row " << i;
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<int> hits(1000, 0);
  util::SetParallelThreads(3);
  util::ParallelFor(1000, 0, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  util::SetParallelThreads(0);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

// ---------------------------------------------------------------------------
// Batched Fit end to end (every variant trains and scores finitely).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Data-parallel training: the trained model must not depend on how many
// threads built the group's forward tapes.
// ---------------------------------------------------------------------------

TEST(DataParallelFitTest, WorkerCountDoesNotChangeTrainedWeights) {
  core::CausalTadConfig cfg;
  cfg.tg.emb_dim = 12;
  cfg.tg.hidden_dim = 16;
  cfg.tg.latent_dim = 8;
  cfg.rp.emb_dim = 8;
  cfg.rp.hidden_dim = 16;
  cfg.rp.latent_dim = 4;
  cfg.scaling_samples = 4;
  const auto train = eval::Subsample(Data().train, 48, 9);
  const auto test = eval::Subsample(Data().id_test, 8, 3);
  std::vector<int64_t> prefixes;
  for (const traj::Trip& trip : test) prefixes.push_back(trip.route.size());

  models::FitOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.lr = 3e-3f;
  options.seed = 33;
  options.data_parallel = true;
  options.data_parallel_width = 3;  // fixed width: trajectory pinned

  util::SetParallelThreads(1);
  core::CausalTad single(&Data().city.network, cfg);
  single.Fit(train, options);
  const std::vector<double> single_scores = single.ScoreBatch(test, prefixes);

  util::SetParallelThreads(4);
  core::CausalTad threaded(&Data().city.network, cfg);
  threaded.Fit(train, options);
  util::SetParallelThreads(1);
  const std::vector<double> threaded_scores =
      threaded.ScoreBatch(test, prefixes);
  util::SetParallelThreads(0);

  ASSERT_EQ(single_scores.size(), threaded_scores.size());
  for (size_t i = 0; i < single_scores.size(); ++i) {
    ASSERT_TRUE(std::isfinite(threaded_scores[i])) << i;
    // Forward tapes are read-only on parameters, backward runs serially in
    // minibatch order: the trained weights are bit-identical, so the scores
    // are too. kGradTol is the ISSUE-level bound; equality is the design.
    EXPECT_NEAR(threaded_scores[i], single_scores[i],
                kGradTol * std::max(1.0, std::abs(single_scores[i])))
        << "trip " << i;
    EXPECT_EQ(threaded_scores[i], single_scores[i]) << "trip " << i;
  }
}

TEST(BatchedFitTest, AllVariantsTrainAndScore) {
  const std::vector<traj::Trip> trips = SyntheticTrips(40, 40, 55);
  models::RnnVaeConfig base;
  base.vocab = 40;
  base.emb_dim = 12;
  base.hidden_dim = 16;
  base.latent_dim = 8;
  models::FitOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  for (auto factory : {models::MakeSae, models::MakeVsae, models::MakeGmVsae,
                       models::MakeDeepTea, models::MakeFactorVae}) {
    auto scorer = factory(base);
    scorer->Fit(trips, options);
    const double score = scorer->ScoreFull(trips.front());
    EXPECT_TRUE(std::isfinite(score)) << scorer->Name();
  }
}

}  // namespace
}  // namespace causaltad
