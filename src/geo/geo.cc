#include "geo/geo.h"

#include <algorithm>

#include "util/logging.h"

namespace causaltad {
namespace geo {
namespace {
constexpr double kDegToRad = M_PI / 180.0;
}

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Vec2 LocalProjection::Project(const LatLon& p) const {
  return {(p.lon - origin_.lon) * meters_per_deg_lon_,
          (p.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjection::Unproject(const Vec2& v) const {
  return {origin_.lat + v.y / meters_per_deg_lat_,
          origin_.lon + v.x / meters_per_deg_lon_};
}

double ProjectOntoSegment(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = ab.Dot(ab);
  if (len2 <= 0.0) return 0.0;
  const double t = (p - a).Dot(ab) / len2;
  return std::clamp(t, 0.0, 1.0);
}

double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const double t = ProjectOntoSegment(p, a, b);
  const Vec2 closest = a + (b - a) * t;
  return (p - closest).Norm();
}

double PolylineLength(const std::vector<Vec2>& pts) {
  double total = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    total += (pts[i] - pts[i - 1]).Norm();
  }
  return total;
}

Vec2 InterpolateAlong(const std::vector<Vec2>& pts, double s) {
  CAUSALTAD_CHECK(!pts.empty());
  if (pts.size() == 1 || s <= 0.0) return pts.front();
  double remaining = s;
  for (size_t i = 1; i < pts.size(); ++i) {
    const double seg = (pts[i] - pts[i - 1]).Norm();
    if (remaining <= seg && seg > 0.0) {
      const double t = remaining / seg;
      return pts[i - 1] + (pts[i] - pts[i - 1]) * t;
    }
    remaining -= seg;
  }
  return pts.back();
}

}  // namespace geo
}  // namespace causaltad
