#include "nn/modules.h"

#include "nn/init.h"
#include "util/logging.h"

namespace causaltad {
namespace nn {

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const NamedParam& p : params_) out.push_back(p.var);
  for (const Module* m : submodules_) {
    auto sub = m->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<NamedParam>* out) const {
  const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
  for (const NamedParam& p : params_) {
    out->push_back({base + "." + p.name, p.var});
  }
  for (const Module* m : submodules_) m->CollectNamed(base, out);
}

std::vector<NamedParam> Module::NamedParameters() const {
  std::vector<NamedParam> out;
  CollectNamed("", &out);
  return out;
}

int64_t Module::NumParams() const {
  int64_t total = 0;
  for (const Var& p : Parameters()) total += p.value().numel();
  return total;
}

Var Module::RegisterParameter(const std::string& name, Tensor init) {
  Var v(std::move(init), /*requires_grad=*/true);
  params_.push_back({name, v});
  return v;
}

void Module::RegisterSubmodule(Module* module) {
  CAUSALTAD_CHECK(module != nullptr);
  submodules_.push_back(module);
}

Linear::Linear(std::string name, int64_t in_dim, int64_t out_dim,
               util::Rng* rng)
    : Module(std::move(name)) {
  w_ = RegisterParameter("w", XavierUniform(in_dim, out_dim, rng));
  b_ = RegisterParameter("b", Tensor::Zeros({1, out_dim}));
}

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim,
                     util::Rng* rng)
    : Module(std::move(name)) {
  table_ = RegisterParameter("table", GaussianInit({vocab, dim}, 0.1, rng));
}

GruCell::GruCell(std::string name, int64_t in_dim, int64_t hidden_dim,
                 util::Rng* rng)
    : Module(std::move(name)), hidden_dim_(hidden_dim) {
  wz_ = RegisterParameter("wz", XavierUniform(in_dim, hidden_dim, rng));
  uz_ = RegisterParameter("uz", XavierUniform(hidden_dim, hidden_dim, rng));
  bz_ = RegisterParameter("bz", Tensor::Zeros({1, hidden_dim}));
  wr_ = RegisterParameter("wr", XavierUniform(in_dim, hidden_dim, rng));
  ur_ = RegisterParameter("ur", XavierUniform(hidden_dim, hidden_dim, rng));
  br_ = RegisterParameter("br", Tensor::Zeros({1, hidden_dim}));
  wh_ = RegisterParameter("wh", XavierUniform(in_dim, hidden_dim, rng));
  uh_ = RegisterParameter("uh", XavierUniform(hidden_dim, hidden_dim, rng));
  bh_ = RegisterParameter("bh", Tensor::Zeros({1, hidden_dim}));
}

Var GruCell::Step(const Var& x, const Var& h) const {
  const Var z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  const Var r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  const Var candidate =
      Tanh(Add(Add(MatMul(x, wh_), MatMul(Mul(r, h), uh_)), bh_));
  // h' = h + z ⊙ (candidate - h)
  return Add(h, Mul(z, Sub(candidate, h)));
}

Mlp::Mlp(std::string name, const std::vector<int64_t>& dims, util::Rng* rng)
    : Module(std::move(name)) {
  CAUSALTAD_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>("fc" + std::to_string(i),
                                               dims[i], dims[i + 1], rng));
    RegisterSubmodule(layers_.back().get());
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Tanh(h);
  }
  return h;
}

}  // namespace nn
}  // namespace causaltad
