#ifndef CAUSALTAD_UTIL_CSV_H_
#define CAUSALTAD_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace causaltad {
namespace util {

/// A parsed CSV document: a header row plus data rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header, or -1 if absent.
  int ColumnIndex(const std::string& column) const;
};

/// Splits one CSV line on commas. Supports double-quoted cells containing
/// commas and doubled quotes; does not support embedded newlines.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Escapes a cell for CSV output (quotes iff it contains , " or whitespace
/// edges).
std::string EscapeCsvCell(const std::string& cell);

/// Reads a CSV file with a header row.
StatusOr<CsvTable> ReadCsv(const std::string& path);

/// Writes a CSV file; `header.size()` must match every row.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_CSV_H_
