#ifndef CAUSALTAD_TRAJ_TRAJECTORY_H_
#define CAUSALTAD_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/geo.h"
#include "roadnet/road_network.h"

namespace causaltad {
namespace traj {

/// A raw GPS point (Definition 1 in the paper): position plus timestamp.
struct GpsPoint {
  geo::LatLon pos;
  double time_s = 0.0;
};

/// A raw GPS trace, the input to map matching.
struct GpsTrace {
  std::vector<GpsPoint> points;
};

/// A map-matched trajectory (Definition 2): an ordered sequence of road
/// segments where consecutive segments are adjacent in the road network.
struct Route {
  std::vector<roadnet::SegmentId> segments;

  bool empty() const { return segments.empty(); }
  int64_t size() const { return static_cast<int64_t>(segments.size()); }
  roadnet::SegmentId source() const { return segments.front(); }
  roadnet::SegmentId destination() const { return segments.back(); }

  /// True iff every consecutive pair is a successor pair in `network` (and
  /// the route is non-empty).
  bool IsValid(const roadnet::RoadNetwork& network) const;

  /// Sum of segment lengths in meters.
  double LengthMeters(const roadnet::RoadNetwork& network) const;
};

/// Jaccard similarity |a ∩ b| / |a ∪ b| over the *sets* of segments, the
/// similarity the paper's Switch anomaly generator thresholds on.
double RouteJaccard(const Route& a, const Route& b);

/// The kind of synthetic anomaly injected into a trip, if any.
enum class AnomalyKind : uint8_t {
  kNone = 0,
  kDetour = 1,
  kSwitch = 2,
};

const char* AnomalyKindName(AnomalyKind kind);

/// One ride-hailing trip: the map-matched route, its SD pair context, the
/// departure time slot (used by the DeepTEA baseline), and ground truth.
struct Trip {
  Route route;
  /// Source/destination *nodes* — the SD pair C is fixed when the order is
  /// placed, before the route exists.
  roadnet::NodeId source_node = roadnet::kInvalidNode;
  roadnet::NodeId dest_node = roadnet::kInvalidNode;
  /// Departure time-of-day slot in [0, num_slots).
  int time_slot = 0;
  /// Index into the experiment's candidate-pair table, or -1 for OOD trips
  /// whose SD pair never occurs in training.
  int32_t sd_pair_id = -1;
  AnomalyKind anomaly = AnomalyKind::kNone;

  bool is_anomaly() const { return anomaly != AnomalyKind::kNone; }
};

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_TRAJECTORY_H_
