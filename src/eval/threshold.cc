#include "eval/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace causaltad {
namespace eval {

double ThresholdAtFpr(std::span<const double> normal_scores,
                      double target_fpr) {
  CAUSALTAD_CHECK(!normal_scores.empty());
  CAUSALTAD_CHECK(target_fpr >= 0.0 && target_fpr <= 1.0);
  std::vector<double> sorted(normal_scores.begin(), normal_scores.end());
  std::sort(sorted.begin(), sorted.end());
  // Flag scores strictly above the threshold. To keep FPR <= target, the
  // threshold is the smallest normal score with at most target_fpr·N
  // normals strictly above it.
  const auto n = static_cast<int64_t>(sorted.size());
  const int64_t allowed =
      static_cast<int64_t>(std::floor(target_fpr * static_cast<double>(n)));
  const int64_t index = std::max<int64_t>(0, n - 1 - allowed);
  return sorted[index];
}

double DetectionReport::Precision() const {
  const int64_t flagged = true_positives + false_positives;
  return flagged == 0 ? 0.0
                      : static_cast<double>(true_positives) / flagged;
}

double DetectionReport::Recall() const {
  const int64_t positives = true_positives + false_negatives;
  return positives == 0 ? 0.0
                        : static_cast<double>(true_positives) / positives;
}

double DetectionReport::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double DetectionReport::FalsePositiveRate() const {
  const int64_t negatives = false_positives + true_negatives;
  return negatives == 0 ? 0.0
                        : static_cast<double>(false_positives) / negatives;
}

DetectionReport EvaluateAtThreshold(std::span<const double> normal_scores,
                                    std::span<const double> anomaly_scores,
                                    double threshold) {
  DetectionReport report;
  report.threshold = threshold;
  for (const double s : normal_scores) {
    if (s > threshold) {
      report.false_positives++;
    } else {
      report.true_negatives++;
    }
  }
  for (const double s : anomaly_scores) {
    if (s > threshold) {
      report.true_positives++;
    } else {
      report.false_negatives++;
    }
  }
  return report;
}

}  // namespace eval
}  // namespace causaltad
