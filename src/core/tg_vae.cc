#include "core/tg_vae.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "nn/init.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace causaltad {
namespace core {

TgVae::TgVae(const roadnet::RoadNetwork* network, const TgVaeConfig& config,
             util::Rng* rng)
    : nn::Module("tgvae"),
      network_(network),
      config_(config),
      sd_emb_("sd_emb", config.vocab, config.emb_dim, rng),
      route_emb_("route_emb", config.vocab, config.emb_dim, rng),
      enc_fc_("enc_fc", 2 * config.emb_dim, config.hidden_dim, rng),
      mu_head_("mu_head", config.hidden_dim, config.latent_dim, rng),
      lv_head_("lv_head", config.hidden_dim, config.latent_dim, rng),
      dec_fc_("dec_fc", config.latent_dim, config.hidden_dim, rng),
      head_s_("head_s", config.hidden_dim, config.vocab, rng),
      head_d_("head_d", config.hidden_dim, config.vocab, rng),
      h0_proj_("h0_proj", config.latent_dim, config.hidden_dim, rng),
      gru_("gru", config.emb_dim, config.hidden_dim, rng),
      out_("out", config.hidden_dim, config.vocab, rng) {
  CAUSALTAD_CHECK(network != nullptr);
  CAUSALTAD_CHECK_EQ(config.vocab, network->num_segments());
  RegisterSubmodule(&sd_emb_);
  RegisterSubmodule(&route_emb_);
  RegisterSubmodule(&enc_fc_);
  RegisterSubmodule(&mu_head_);
  RegisterSubmodule(&lv_head_);
  RegisterSubmodule(&dec_fc_);
  RegisterSubmodule(&head_s_);
  RegisterSubmodule(&head_d_);
  RegisterSubmodule(&h0_proj_);
  RegisterSubmodule(&gru_);
  RegisterSubmodule(&out_);
}

TgVae::Forwarded TgVae::EncodeSd(roadnet::SegmentId s, roadnet::SegmentId d,
                                 util::Rng* rng) const {
  const std::vector<int32_t> s_id = {s};
  const std::vector<int32_t> d_id = {d};
  const nn::Var joint = nn::ConcatCols(
      {sd_emb_.Forward(s_id), sd_emb_.Forward(d_id)});  // [1, 2*emb]
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(joint));
  Forwarded f;
  f.mu = mu_head_.Forward(hidden);
  f.logvar = lv_head_.Forward(hidden);
  f.r = rng != nullptr ? nn::Reparameterize(f.mu, f.logvar, rng) : f.mu;
  return f;
}

nn::Var TgVae::SdDecoderNll(const nn::Var& r, roadnet::SegmentId s,
                            roadnet::SegmentId d) const {
  const nn::Var hidden = nn::Tanh(dec_fc_.Forward(r));
  const std::vector<int32_t> st = {s};
  const std::vector<int32_t> dt = {d};
  return nn::Add(nn::SoftmaxCrossEntropy(head_s_.Forward(hidden), st),
                 nn::SoftmaxCrossEntropy(head_d_.Forward(hidden), dt));
}

nn::Var TgVae::StepCe(const nn::Var& hidden, roadnet::SegmentId current,
                      roadnet::SegmentId next) const {
  if (config_.road_constrained) {
    const auto successors = network_->Successors(current);
    std::vector<int32_t> ids(successors.begin(), successors.end());
    int32_t target_pos = -1;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == next) target_pos = static_cast<int32_t>(i);
    }
    CAUSALTAD_CHECK_GE(target_pos, 0) << "route is not network-valid";
    const nn::Var logits =
        nn::GatherColsDot(hidden, out_.w(), out_.b(), ids);
    const std::vector<int32_t> target = {target_pos};
    return nn::SoftmaxCrossEntropy(logits, target);
  }
  const std::vector<int32_t> target = {next};
  return nn::SoftmaxCrossEntropy(out_.Forward(hidden), target);
}

nn::Var TgVae::Loss(const traj::Trip& trip, util::Rng* rng) const {
  const auto& segs = trip.route.segments;
  CAUSALTAD_CHECK_GE(segs.size(), 2u);
  const roadnet::SegmentId s = segs.front();
  const roadnet::SegmentId d = segs.back();

  const Forwarded f = EncodeSd(s, d, rng);
  nn::Var loss = nn::KlStandardNormal(f.mu, f.logvar);
  if (config_.use_sd_decoder) {
    loss = nn::Add(loss, SdDecoderNll(f.r, s, d));
  }

  nn::Var h = nn::Tanh(h0_proj_.Forward(f.r));
  const std::vector<int32_t> ids(segs.begin(), segs.end() - 1);
  const nn::Var inputs = route_emb_.Forward(ids);  // [n-1, emb]
  for (size_t j = 0; j + 1 < segs.size(); ++j) {
    const std::vector<int32_t> row = {static_cast<int32_t>(j)};
    h = gru_.Step(nn::GatherRows(inputs, row), h);
    loss = nn::Add(loss, StepCe(h, segs[j], segs[j + 1]));
  }
  return loss;
}

nn::Var TgVae::LossBatch(std::span<const traj::Trip* const> trips,
                         util::Rng* rng) const {
  const int64_t batch = static_cast<int64_t>(trips.size());
  CAUSALTAD_CHECK_GT(batch, 0);
  std::vector<int64_t> steps(batch);  // decode steps per trip: |route| - 1
  std::vector<int32_t> s_ids(batch), d_ids(batch);
  int64_t max_steps = 0;
  int64_t total_steps = 0;
  for (int64_t i = 0; i < batch; ++i) {
    const auto& segs = trips[i]->route.segments;
    CAUSALTAD_CHECK_GE(segs.size(), 2u);
    steps[i] = static_cast<int64_t>(segs.size()) - 1;
    s_ids[i] = segs.front();
    d_ids[i] = segs.back();
    max_steps = std::max(max_steps, steps[i]);
    total_steps += steps[i];
  }

  // SD encoder + decoder as one batch (no SD-pair dedup here: each trip
  // draws its own latent sample, and the summed gradients already coincide
  // with per-trip accumulation).
  const nn::Var joint = nn::ConcatCols(
      {sd_emb_.Forward(s_ids), sd_emb_.Forward(d_ids)});  // [B, 2*emb]
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(joint));
  const nn::Var mu = mu_head_.Forward(hidden);
  const nn::Var logvar = lv_head_.Forward(hidden);
  const nn::Var r =
      rng != nullptr ? nn::Reparameterize(mu, logvar, rng) : mu;
  nn::Var loss = nn::KlStandardNormal(mu, logvar);
  if (config_.use_sd_decoder) {
    const nn::Var dec_hidden = nn::Tanh(dec_fc_.Forward(r));
    loss = nn::Add(
        loss,
        nn::Add(nn::SoftmaxCrossEntropy(head_s_.Forward(dec_hidden), s_ids),
                nn::SoftmaxCrossEntropy(head_d_.Forward(dec_hidden), d_ids)));
  }

  // Route decoder: masked [B, hidden] roll. Live rows of every step are
  // gathered into one [Σlive, hidden] block; the successor-masked CEs then
  // collapse into a single subset-softmax op (road-constrained) or one
  // full-vocabulary CE (ablation).
  nn::Var h = nn::Tanh(h0_proj_.Forward(r));  // [B, hidden]
  std::vector<nn::Var> live_states;
  live_states.reserve(max_steps);
  std::vector<int32_t> step_ids(batch);
  std::vector<uint8_t> finished(batch);
  std::vector<int32_t> live_rows;
  std::vector<int32_t> flat_ids, offsets, target_pos;  // road-constrained
  std::vector<int32_t> full_targets;                   // ablation
  if (config_.road_constrained) {
    offsets.reserve(total_steps + 1);
    target_pos.reserve(total_steps);
    offsets.push_back(0);
  } else {
    full_targets.reserve(total_steps);
  }
  for (int64_t j = 0; j < max_steps; ++j) {
    for (int64_t i = 0; i < batch; ++i) {
      const bool live = j < steps[i];
      finished[i] = live ? 0 : 1;
      step_ids[i] =
          live ? static_cast<int32_t>(trips[i]->route.segments[j]) : 0;
    }
    h = gru_.StepBatched(route_emb_.Forward(step_ids), h, finished);
    live_rows.clear();
    for (int64_t i = 0; i < batch; ++i) {
      if (j >= steps[i]) continue;
      live_rows.push_back(static_cast<int32_t>(i));
      const auto& segs = trips[i]->route.segments;
      if (config_.road_constrained) {
        const auto successors = network_->Successors(segs[j]);
        int32_t pos = -1;
        for (size_t c = 0; c < successors.size(); ++c) {
          flat_ids.push_back(successors[c]);
          if (successors[c] == segs[j + 1]) pos = static_cast<int32_t>(c);
        }
        CAUSALTAD_CHECK_GE(pos, 0) << "route is not network-valid";
        target_pos.push_back(pos);
        offsets.push_back(static_cast<int32_t>(flat_ids.size()));
      } else {
        full_targets.push_back(static_cast<int32_t>(segs[j + 1]));
      }
    }
    if (static_cast<int64_t>(live_rows.size()) == batch) {
      live_states.push_back(h);
    } else {
      live_states.push_back(nn::GatherRows(h, live_rows));
    }
  }
  const nn::Var all_states = live_states.size() == 1
                                 ? live_states[0]
                                 : nn::ConcatRows(live_states);
  if (config_.road_constrained) {
    loss = nn::Add(loss,
                   nn::SubsetSoftmaxCrossEntropy(all_states, out_.w(),
                                                 out_.b(), flat_ids, offsets,
                                                 target_pos));
  } else {
    loss = nn::Add(loss, nn::SoftmaxCrossEntropy(out_.Forward(all_states),
                                                 full_targets));
  }
  return loss;
}

double TgVae::ScoreParts::PrefixScore(int64_t prefix_len) const {
  double total = sd_nll + kl;
  const int64_t steps = std::min<int64_t>(
      prefix_len - 1, static_cast<int64_t>(step_nll.size()));
  for (int64_t j = 0; j < steps; ++j) total += step_nll[j];
  return total;
}

TgVae::ScoreParts TgVae::Score(const traj::Trip& trip) const {
  const auto& segs = trip.route.segments;
  CAUSALTAD_CHECK_GE(segs.size(), 1u);
  ScoreParts parts;
  const roadnet::SegmentId s = segs.front();
  const roadnet::SegmentId d = segs.back();

  const Forwarded f = EncodeSd(s, d, /*rng=*/nullptr);
  parts.kl = nn::KlStandardNormal(f.mu, f.logvar).value().Item();
  parts.sd_nll = config_.use_sd_decoder
                     ? SdDecoderNll(f.r, s, d).value().Item()
                     : 0.0;

  nn::Var h = nn::Tanh(h0_proj_.Forward(f.r));
  parts.step_nll.reserve(segs.size() - 1);
  for (size_t j = 0; j + 1 < segs.size(); ++j) {
    parts.step_nll.push_back(StepNll(segs[j], segs[j + 1], &h));
  }
  return parts;
}

std::vector<TgVae::ScoreParts> TgVae::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  // Shard rows across the worker pool (scores are per-row independent; the
  // no-grad guard and scratch arena are thread-local). Shards are
  // length-bucketed by decode-step count: each worker's [B, hidden] roll
  // sees near-uniform row lengths (minimal compaction churn) and shards
  // carry near-equal total work, unlike equal-count splits.
  const int64_t n = static_cast<int64_t>(trips.size());
  std::vector<ScoreParts> parts(n);
  if (n == 0) return parts;
  std::vector<int64_t> costs(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t steps = trips[i].route.size() - 1;
    if (i < static_cast<int64_t>(prefix_lens.size()) && prefix_lens[i] > 0) {
      steps = std::min(steps, prefix_lens[i] - 1);
    }
    costs[i] = steps + 1;
  }
  const std::vector<std::vector<int64_t>> shards = util::RowShards(costs, 8);
  util::ParallelFor(
      static_cast<int64_t>(shards.size()), static_cast<int>(shards.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          ScoreBatchChunk(trips, prefix_lens, shards[s], parts.data());
        }
      });
  return parts;
}

void TgVae::ScoreBatchChunk(std::span<const traj::Trip> all_trips,
                            std::span<const int64_t> prefix_lens,
                            std::span<const int64_t> rows,
                            ScoreParts* out) const {
  const int64_t batch = static_cast<int64_t>(rows.size());
  if (batch == 0) return;
  const nn::InferenceGuard no_grad;
  const nn::kernels::Kernels& kern = nn::kernels::Active();
  // Local views of this shard's rows; `parts` aliases the caller's output
  // slots so the body below reads like the contiguous-chunk original.
  std::vector<const traj::Trip*> trips(batch);
  std::vector<ScoreParts*> parts(batch);
  for (int64_t a = 0; a < batch; ++a) {
    trips[a] = &all_trips[rows[a]];
    parts[a] = &out[rows[a]];
  }

  // SD encode, deduplicated: trips sharing an SD pair (common under the
  // paper's ride-hailing workload — many concurrent orders between the same
  // endpoints) get one posterior, one SD-decoder CE, and one h0 row. The
  // expensive [U, vocab] head logits then scale with unique pairs U, not
  // batch size.
  std::vector<int32_t> s_ids(batch), d_ids(batch);
  std::vector<int64_t> pair_of(batch);  // trip -> unique-pair index
  std::unordered_map<int64_t, int64_t> pair_index;
  std::vector<int32_t> u_s, u_d;  // unique pair endpoints
  int64_t max_steps = 0;
  for (int64_t i = 0; i < batch; ++i) {
    const auto& segs = trips[i]->route.segments;
    CAUSALTAD_CHECK_GE(segs.size(), 1u);
    s_ids[i] = segs.front();
    d_ids[i] = segs.back();
    const int64_t key =
        (static_cast<int64_t>(s_ids[i]) << 32) | static_cast<uint32_t>(d_ids[i]);
    const auto [it, inserted] =
        pair_index.try_emplace(key, static_cast<int64_t>(u_s.size()));
    if (inserted) {
      u_s.push_back(s_ids[i]);
      u_d.push_back(d_ids[i]);
    }
    pair_of[i] = it->second;
  }
  const int64_t unique = static_cast<int64_t>(u_s.size());
  const nn::Var joint = nn::ConcatCols(
      {sd_emb_.Forward(u_s), sd_emb_.Forward(u_d)});  // [U, 2*emb]
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(joint));
  const nn::Var mu = mu_head_.Forward(hidden);      // [U, latent]
  const nn::Var logvar = lv_head_.Forward(hidden);  // [U, latent]
  const int64_t latent = config_.latent_dim;
  std::vector<double> pair_kl(unique), pair_sd_nll(unique, 0.0);
  for (int64_t u = 0; u < unique; ++u) {
    pair_kl[u] = kern.kl_standard_normal_row(
        mu.value().data() + u * latent, logvar.value().data() + u * latent,
        latent);
  }
  if (config_.use_sd_decoder) {
    const nn::Var dec_hidden = nn::Tanh(dec_fc_.Forward(mu));
    const nn::Var logits_s = head_s_.Forward(dec_hidden);  // [U, vocab]
    const nn::Var logits_d = head_d_.Forward(dec_hidden);  // [U, vocab]
    for (int64_t u = 0; u < unique; ++u) {
      pair_sd_nll[u] =
          kern.softmax_nll_row(logits_s.value().data() + u * config_.vocab,
                               config_.vocab, u_s[u]) +
          kern.softmax_nll_row(logits_d.value().data() + u * config_.vocab,
                               config_.vocab, u_d[u]);
    }
  }
  for (int64_t i = 0; i < batch; ++i) {
    parts[i]->kl = pair_kl[pair_of[i]];
    parts[i]->sd_nll = pair_sd_nll[pair_of[i]];
  }

  // Roll all rows through one [B, hidden] decoder state, compacting the
  // batch as short rows finish so long rows stop paying for dead ones.
  // The output weights are transposed once up front so every
  // successor-masked logit is a contiguous dot instead of a vocab-strided
  // column walk — the same O(d·|successors|) step cost as GatherColsDot,
  // but cache-friendly.
  const int64_t hd = config_.hidden_dim;
  nn::internal::ArenaScope decode_scope;
  float* wt = nullptr;  // out_.w() transposed: [vocab, hidden]
  if (config_.road_constrained) {
    wt = nn::internal::ArenaAlloc(config_.vocab * hd);
    kern.pack_transpose(out_.w().value().data(), hd, config_.vocab, wt);
  }

  // steps[i] = number of step NLLs row i needs (per-row prefix budget);
  // rows leave the batch once their count is reached.
  std::vector<int64_t> steps(batch);
  std::vector<int64_t> active(batch);  // position -> original row
  for (int64_t i = 0; i < batch; ++i) {
    steps[i] = static_cast<int64_t>(trips[i]->route.segments.size()) - 1;
    if (rows[i] < static_cast<int64_t>(prefix_lens.size()) &&
        prefix_lens[rows[i]] > 0) {
      steps[i] = std::min(steps[i], prefix_lens[rows[i]] - 1);
    }
    max_steps = std::max(max_steps, steps[i]);
    active[i] = i;
    parts[i]->step_nll.reserve(steps[i]);
  }

  // Project every unique input segment through the gate input weights once;
  // the recurrent loop then just gathers [3*hidden] rows per step instead
  // of re-running the input matmuls.
  std::vector<int32_t> dense_of(config_.vocab, -1);
  std::vector<int32_t> unique_segs;
  for (int64_t i = 0; i < batch; ++i) {
    const auto& segs = trips[i]->route.segments;
    for (int64_t j = 0; j < steps[i]; ++j) {
      if (dense_of[segs[j]] < 0) {
        dense_of[segs[j]] = static_cast<int32_t>(unique_segs.size());
        unique_segs.push_back(segs[j]);
      }
    }
  }
  // When the int8 serving path is active the projection runs directly over
  // the quantized rows (one int8 matmul per unique segment); otherwise it
  // gathers fp32 rows as before. Both scorers (this batched chunk and the
  // streaming StepNllRows) route through the same pair of code paths, so
  // their per-step NLLs stay bit-identical for a given embedding mode.
  nn::Tensor xw_table;
  if (route_emb_.Int8Active()) {
    xw_table = gru_.ProjectInputsQuantized(route_emb_.quantized_rows(),
                                           route_emb_.row_scales(),
                                           unique_segs, config_.emb_dim);
  } else {
    xw_table = gru_.ProjectInputs(
        nn::GatherRows(route_emb_.table(), unique_segs).value());
  }

  const nn::Var pair_h0 = nn::Tanh(h0_proj_.Forward(mu));  // [U, hidden]
  nn::Tensor h0_rows({batch, hd});
  for (int64_t i = 0; i < batch; ++i) {
    std::copy(pair_h0.value().data() + pair_of[i] * hd,
              pair_h0.value().data() + (pair_of[i] + 1) * hd,
              h0_rows.data() + i * hd);
  }
  nn::Var h = nn::Constant(std::move(h0_rows));  // [B, hidden]
  for (int64_t j = 0; j < max_steps; ++j) {
    // Compact: drop rows whose step budget is exhausted.
    size_t keep = 0;
    for (size_t a = 0; a < active.size(); ++a) {
      if (steps[active[a]] > j) ++keep;
    }
    if (keep != active.size()) {
      nn::Tensor compact({static_cast<int64_t>(keep), hd});
      size_t pos = 0, write = 0;
      for (size_t a = 0; a < active.size(); ++a) {
        if (steps[active[a]] > j) {
          std::copy(h.value().data() + a * hd, h.value().data() + (a + 1) * hd,
                    compact.data() + pos * hd);
          ++pos;
          active[write++] = active[a];
        }
      }
      active.resize(keep);
      h = nn::Constant(std::move(compact));
    }

    const int64_t three_h = 3 * hd;
    nn::internal::ArenaScope step_scope;
    float* xw = nn::internal::ArenaAlloc(
        static_cast<int64_t>(active.size()) * three_h);
    for (size_t a = 0; a < active.size(); ++a) {
      const int32_t dense = dense_of[trips[active[a]]->route.segments[j]];
      std::copy(xw_table.data() + dense * three_h,
                xw_table.data() + (dense + 1) * three_h, xw + a * three_h);
    }
    h = gru_.StepFusedProjected(xw, static_cast<int64_t>(active.size()), h);
    const float* b = out_.b().value().data();
    float* full_logits = nullptr;  // unconstrained ablation: [A, vocab]
    if (!config_.road_constrained) {
      full_logits = nn::internal::ArenaAlloc(
          static_cast<int64_t>(active.size()) * config_.vocab);
      kern.matmul_packed(h.value().data(), out_.w().value().data(),
                         full_logits, static_cast<int64_t>(active.size()), hd,
                         config_.vocab, /*accumulate=*/false,
                         /*b_pretransposed=*/false);
    }
    for (size_t a = 0; a < active.size(); ++a) {
      const int64_t i = active[a];
      const auto& segs = trips[i]->route.segments;
      const float* hrow = h.value().data() + a * hd;
      if (config_.road_constrained) {
        const auto successors = network_->Successors(segs[j]);
        const int64_t k = static_cast<int64_t>(successors.size());
        nn::internal::ArenaScope scope;
        float* logits = nn::internal::ArenaAlloc(k);
        int64_t target_pos = -1;
        for (int64_t c = 0; c < k; ++c) {
          const int32_t col = successors[c];
          if (col == segs[j + 1]) target_pos = c;
          logits[c] = b[col] + kern.dot(hrow, wt + col * hd, hd);
        }
        CAUSALTAD_CHECK_GE(target_pos, 0) << "route is not network-valid";
        parts[i]->step_nll.push_back(kern.softmax_nll_row(logits, k,
                                                          target_pos));
      } else {
        float* logits = full_logits + a * config_.vocab;
        for (int64_t c = 0; c < config_.vocab; ++c) logits[c] += b[c];
        parts[i]->step_nll.push_back(
            kern.softmax_nll_row(logits, config_.vocab, segs[j + 1]));
      }
    }
  }
}

TgVae::TripContext TgVae::BeginTrip(roadnet::SegmentId source,
                                    roadnet::SegmentId destination) const {
  // No-grad: session contexts are inference state, never back-propagated.
  const nn::InferenceGuard no_grad;
  TripContext ctx;
  const Forwarded f = EncodeSd(source, destination, /*rng=*/nullptr);
  ctx.kl = nn::KlStandardNormal(f.mu, f.logvar).value().Item();
  ctx.sd_nll = config_.use_sd_decoder
                   ? SdDecoderNll(f.r, source, destination).value().Item()
                   : 0.0;
  ctx.h0 = nn::Tanh(h0_proj_.Forward(f.r));
  return ctx;
}

double TgVae::StepNll(roadnet::SegmentId current, roadnet::SegmentId next,
                      nn::Var* hidden) const {
  const std::vector<int32_t> id = {current};
  *hidden = gru_.Step(route_emb_.Forward(id), *hidden);
  return StepCe(*hidden, current, next).value().Item();
}

void TgVae::RefreshQuantizedEmbeddings() {
  route_emb_.RefreshQuantized();
  sd_emb_.RefreshQuantized();
}

std::vector<float> TgVae::PackedOutWeightsTransposed() const {
  std::vector<float> wt(config_.vocab * config_.hidden_dim);
  nn::kernels::Active().pack_transpose(out_.w().value().data(),
                                       config_.hidden_dim, config_.vocab,
                                       wt.data());
  return wt;
}

void TgVae::StepNllRows(std::span<const roadnet::SegmentId> current,
                        std::span<const roadnet::SegmentId> next,
                        std::span<const int64_t> rows, float* states,
                        const float* wt, double* nll) const {
  const int64_t n = static_cast<int64_t>(current.size());
  if (n == 0) return;
  const int64_t hd = config_.hidden_dim;
  const int64_t emb_dim = config_.emb_dim;
  // Entries are independent (distinct state rows), so shard them across the
  // worker pool; each worker scopes its own no-grad guard and arena and
  // advances its slice of the shared state matrix with one fused GRU step.
  const int64_t shards = std::min<int64_t>(util::ParallelThreads(), n / 16);
  util::ParallelFor(
      n, shards > 1 ? static_cast<int>(shards) : 1,
      [&](int64_t begin, int64_t end) {
        const nn::InferenceGuard no_grad;
        const nn::kernels::Kernels& kern = nn::kernels::Active();
        const int64_t count = end - begin;

        // Project this slice's input embeddings through all three gate
        // weights at once, then take one fused batched step. With int8
        // embeddings active the projection multiplies the quantized rows
        // directly (mirroring ScoreBatchChunk, so streaming and batched
        // scoring agree bit-for-bit); otherwise it gathers fp32 rows.
        std::vector<int32_t> ids(count);
        for (int64_t k = 0; k < count; ++k) {
          ids[k] = static_cast<int32_t>(current[begin + k]);
        }
        nn::Tensor xw;
        if (route_emb_.Int8Active()) {
          xw = gru_.ProjectInputsQuantized(route_emb_.quantized_rows(),
                                           route_emb_.row_scales(), ids,
                                           emb_dim);
        } else {
          nn::Tensor x({count, emb_dim});
          route_emb_.GatherRowValues(ids, x.data());
          xw = gru_.ProjectInputs(x);
        }
        nn::Tensor h({count, hd});
        for (int64_t k = 0; k < count; ++k) {
          const float* src = states + rows[begin + k] * hd;
          std::copy(src, src + hd, h.data() + k * hd);
        }
        const nn::Var hv = gru_.StepFusedProjected(
            xw.data(), count, nn::Constant(std::move(h)));
        const float* hnew = hv.value().data();
        for (int64_t k = 0; k < count; ++k) {
          std::copy(hnew + k * hd, hnew + (k + 1) * hd,
                    states + rows[begin + k] * hd);
        }

        // Per-entry next-segment NLL: successor-masked contiguous dots
        // against the transposed output weights, or one packed full-vocab
        // matmul for the unconstrained ablation.
        const float* b = out_.b().value().data();
        if (config_.road_constrained) {
          for (int64_t k = 0; k < count; ++k) {
            const auto successors = network_->Successors(current[begin + k]);
            const int64_t deg = static_cast<int64_t>(successors.size());
            nn::internal::ArenaScope scope;
            float* logits = nn::internal::ArenaAlloc(deg);
            int64_t target_pos = -1;
            const float* hrow = hnew + k * hd;
            for (int64_t c = 0; c < deg; ++c) {
              const int32_t col = successors[c];
              if (col == next[begin + k]) target_pos = c;
              logits[c] = b[col] + kern.dot(hrow, wt + col * hd, hd);
            }
            CAUSALTAD_CHECK_GE(target_pos, 0)
                << "transition is not network-valid";
            nll[begin + k] = kern.softmax_nll_row(logits, deg, target_pos);
          }
        } else {
          nn::internal::ArenaScope scope;
          float* logits = nn::internal::ArenaAlloc(count * config_.vocab);
          kern.matmul_packed(hnew, out_.w().value().data(), logits, count, hd,
                             config_.vocab, /*accumulate=*/false,
                             /*b_pretransposed=*/false);
          for (int64_t k = 0; k < count; ++k) {
            float* row = logits + k * config_.vocab;
            for (int64_t c = 0; c < config_.vocab; ++c) row[c] += b[c];
            nll[begin + k] =
                kern.softmax_nll_row(row, config_.vocab, next[begin + k]);
          }
        }
      });
}

double TgVae::StepNllFused(roadnet::SegmentId current, roadnet::SegmentId next,
                           nn::Tensor* hidden, const float* wt) const {
  const int64_t row = 0;
  double nll = 0.0;
  StepNllRows(std::span<const roadnet::SegmentId>(&current, 1),
              std::span<const roadnet::SegmentId>(&next, 1),
              std::span<const int64_t>(&row, 1), hidden->data(), wt, &nll);
  return nll;
}

}  // namespace core
}  // namespace causaltad
