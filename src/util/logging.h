#ifndef CAUSALTAD_UTIL_LOGGING_H_
#define CAUSALTAD_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace causaltad {
namespace util {
namespace internal {

/// Collects a fatal-check message via operator<< and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace util
}  // namespace causaltad

/// Aborts with a diagnostic if `cond` is false. For invariants and programming
/// errors only; recoverable failures use util::Status. Supports streaming
/// extra context: CAUSALTAD_CHECK(x) << "details".
#define CAUSALTAD_CHECK(cond)                                             \
  while (!(cond))                                                         \
  ::causaltad::util::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define CAUSALTAD_CHECK_OP(a, b, op)                                      \
  while (!((a)op(b)))                                                     \
  ::causaltad::util::internal::CheckFailStream(__FILE__, __LINE__,        \
                                               #a " " #op " " #b)         \
      << "(" << (a) << " vs " << (b) << ") "

#define CAUSALTAD_CHECK_EQ(a, b) CAUSALTAD_CHECK_OP(a, b, ==)
#define CAUSALTAD_CHECK_NE(a, b) CAUSALTAD_CHECK_OP(a, b, !=)
#define CAUSALTAD_CHECK_LT(a, b) CAUSALTAD_CHECK_OP(a, b, <)
#define CAUSALTAD_CHECK_LE(a, b) CAUSALTAD_CHECK_OP(a, b, <=)
#define CAUSALTAD_CHECK_GT(a, b) CAUSALTAD_CHECK_OP(a, b, >)
#define CAUSALTAD_CHECK_GE(a, b) CAUSALTAD_CHECK_OP(a, b, >=)

/// Debug-only checks, compiled out under NDEBUG.
#ifdef NDEBUG
#define CAUSALTAD_DCHECK(cond) \
  while (false) ::causaltad::util::internal::NullStream()
#define CAUSALTAD_DCHECK_EQ(a, b) CAUSALTAD_DCHECK((a) == (b))
#define CAUSALTAD_DCHECK_LT(a, b) CAUSALTAD_DCHECK((a) < (b))
#else
#define CAUSALTAD_DCHECK(cond) CAUSALTAD_CHECK(cond)
#define CAUSALTAD_DCHECK_EQ(a, b) CAUSALTAD_CHECK_EQ(a, b)
#define CAUSALTAD_DCHECK_LT(a, b) CAUSALTAD_CHECK_LT(a, b)
#endif

#endif  // CAUSALTAD_UTIL_LOGGING_H_
