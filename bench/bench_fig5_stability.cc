// Reproduces Fig. 5: stability under partial distribution shift. The ID and
// OOD test sets are mixed at shift ratio α ∈ {0, 0.2, ..., 1.0} (Detour
// dataset of Xi'an) and ROC/PR-AUC is reported per method.
//
// Paper reference (Fig. 5): all methods decay roughly linearly in α;
// CausalTAD decays slowest and dominates at every ratio; VSAE degrades more
// gracefully than the remaining baselines.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::MixShift;
using causaltad::eval::ScoreSet;
using causaltad::eval::TablePrinter;

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  const auto config = causaltad::eval::XianConfig(scale);
  const ExperimentData data = causaltad::eval::BuildExperiment(config);
  std::printf("== Fig. 5 — AUC vs shift ratio α (Xi'an, Detour, scale=%s) "
              "==\n",
              causaltad::eval::ScaleName(scale));

  // The methods highlighted in the paper's figure.
  const std::vector<std::string> names = {"SAE", "VSAE", "GM-VSAE",
                                          "DeepTEA", "CausalTAD"};
  const std::vector<double> alphas = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  // Cache per-trip scores once per method; mixing only re-partitions them.
  for (const char* metric : {"ROC-AUC", "PR-AUC"}) {
    std::printf("\n%s:\n", metric);
    TablePrinter table({"Method", "a=0.0", "a=0.2", "a=0.4", "a=0.6",
                        "a=0.8", "a=1.0"});
    table.PrintHeader();
    for (const std::string& name : names) {
      const auto scorer =
          causaltad::eval::FitOrLoad(name, data, config.name, scale);
      std::vector<std::string> cells = {name};
      for (const double alpha : alphas) {
        const auto normals = MixShift(data.id_test, data.ood_test, alpha,
                                      /*seed=*/777);
        const auto anomalies = MixShift(data.id_detour, data.ood_detour,
                                        alpha, /*seed=*/778);
        const auto result = EvaluateScores(ScoreSet(*scorer, normals, 1.0),
                                           ScoreSet(*scorer, anomalies, 1.0));
        cells.push_back(TablePrinter::Fmt(
            std::string(metric) == "ROC-AUC" ? result.roc_auc
                                             : result.pr_auc));
      }
      table.PrintRow(cells);
    }
  }
  return 0;
}
