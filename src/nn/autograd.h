#ifndef CAUSALTAD_NN_AUTOGRAD_H_
#define CAUSALTAD_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace causaltad {
namespace nn {

/// A node in the dynamically-built computation graph.
///
/// Users interact with Var handles; Node is exposed so the optimizer can key
/// per-parameter state on stable node pointers.
struct Node {
  Tensor value;
  Tensor grad;  // allocated on first use, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents' grads. Null for leaves and
  /// gradient-free nodes.
  std::function<void()> backward;

  /// Allocates (zeroed) grad storage if absent.
  void EnsureGrad() {
    if (!grad.defined()) grad = Tensor::Zeros(value.shape());
  }
};

/// Reference-counted handle to a graph node. Cheap to copy; the graph stays
/// alive as long as some handle (or a descendant node) references it.
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false)
      : node_(std::make_shared<Node>()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
  }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  /// Gradient tensor (allocated on demand).
  Tensor& grad() {
    node_->EnsureGrad();
    return node_->grad;
  }
  const Tensor& grad() const {
    node_->EnsureGrad();
    return node_->grad;
  }

  /// Clears accumulated gradient (keeps storage).
  void ZeroGrad() {
    if (node_ && node_->grad.defined()) node_->grad.Fill(0.0f);
  }

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode accumulation from `root`, which must be a scalar
/// (1-element) tensor. Gradients accumulate (+=) into every
/// requires_grad node reachable from root; leaves keep them until ZeroGrad.
void Backward(const Var& root);

/// RAII no-grad mode for the calling thread. While at least one guard is
/// alive, every op forward skips tape construction entirely: no parent
/// edges, no requires_grad propagation, no backward closures — the output
/// Var is a bare value. Guards nest; each one also scopes the thread-local
/// scratch arena (allocations made under a guard are released when it dies).
/// This is the inference fast path used by the batched scorers.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

  /// True when the calling thread is inside at least one guard.
  static bool active();

 private:
  size_t arena_slab_;
  int64_t arena_offset_;
};

/// Number of tape nodes (op outputs wired with parent edges for backward)
/// created by the calling thread since it started. Flat across
/// InferenceGuard scopes — tests use it to prove the no-grad path
/// allocates zero tape nodes.
int64_t TapeNodesCreated();

namespace internal {
/// Creates an op output node: value, parents, and requires_grad inferred
/// from parents. Returns the Var plus a pointer to the node's backward slot
/// (null when no parent requires grad, in which case the op must not install
/// a backward closure). Under an InferenceGuard the parents are discarded
/// and the slot is always null.
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void()>** backward_slot, Node** self);

/// Bump-allocates `n` floats from the thread-local scratch arena. The
/// pointer stays valid until the enclosing ArenaScope (or InferenceGuard)
/// is destroyed; storage is recycled, not freed, so steady-state inference
/// performs no heap allocation for scratch. Contents are uninitialized.
float* ArenaAlloc(int64_t n);

/// Watermark guard for the scratch arena: restores the bump pointer on
/// destruction, releasing every ArenaAlloc made inside the scope. Scopes
/// nest (strict stack discipline).
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  size_t slab_;
  int64_t offset_;
};
}  // namespace internal

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_AUTOGRAD_H_
