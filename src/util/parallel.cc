#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace causaltad {
namespace util {
namespace {

thread_local bool in_parallel_worker = false;

std::atomic<int> thread_override{0};

int HardwareDefault() {
  if (const char* env = std::getenv("CAUSALTAD_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Lazily-started persistent pool. Workers live for the process; the
/// static destructor joins them so exit is clean. The worker set grows on
/// demand toward the current ParallelThreads() knob (it never shrinks —
/// parked workers are cheap; a lowered knob just leaves them idle because
/// ParallelFor caps the shard count at the knob).
class Pool {
 public:
  static Pool& Instance() {
    static Pool pool;
    return pool;
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Spawns workers until at least `target` exist. ParallelFor calls this
  /// with the knob in force at call time, so SetParallelThreads /
  /// CAUSALTAD_THREADS changes after the pool's first use still take
  /// effect (the count is not frozen at first ParallelFor).
  void EnsureWorkers(int target) {
    if (target <= size()) return;
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < target) {
      workers_.emplace_back([this] {
        in_parallel_worker = true;
        for (;;) {
          std::function<void()> task;
          {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
          }
          task();
        }
      });
    }
    size_.store(static_cast<int>(workers_.size()),
                std::memory_order_release);
  }

  int size() const { return size_.load(std::memory_order_acquire); }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  Pool() = default;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<int> size_{0};
};

}  // namespace

namespace {

bool BucketingDefault() {
  const char* env = std::getenv("CAUSALTAD_NO_LENGTH_BUCKET");
  return env == nullptr || std::string_view(env) != "1";
}

std::atomic<bool> length_bucketing{BucketingDefault()};

}  // namespace

bool LengthBucketingEnabled() {
  return length_bucketing.load(std::memory_order_relaxed);
}

void SetLengthBucketing(bool enabled) {
  length_bucketing.store(enabled, std::memory_order_relaxed);
}

std::vector<std::vector<int64_t>> RowShards(std::span<const int64_t> costs,
                                            int64_t min_rows_per_shard) {
  const int64_t n = static_cast<int64_t>(costs.size());
  std::vector<std::vector<int64_t>> shards;
  if (n == 0) return shards;
  const int64_t max_shards = std::min<int64_t>(
      ParallelThreads(),
      min_rows_per_shard > 0 ? n / min_rows_per_shard : n);
  if (max_shards <= 1 || !LengthBucketingEnabled()) {
    const int64_t count = std::max<int64_t>(1, max_shards);
    shards.reserve(count);
    const int64_t base = n / count, extra = n % count;
    int64_t begin = 0;
    for (int64_t s = 0; s < count; ++s) {
      const int64_t end = begin + base + (s < extra ? 1 : 0);
      std::vector<int64_t> rows(end - begin);
      for (int64_t i = begin; i < end; ++i) rows[i - begin] = i;
      shards.push_back(std::move(rows));
      begin = end;
    }
    return shards;
  }

  std::vector<int64_t> order(n);
  for (int64_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&costs](int64_t a, int64_t b) {
    return costs[a] > costs[b];
  });
  int64_t total = 0;
  for (const int64_t c : costs) total += std::max<int64_t>(c, 1);
  const int64_t target = (total + max_shards - 1) / max_shards;
  std::vector<int64_t> current;
  int64_t current_cost = 0;
  for (const int64_t row : order) {
    current.push_back(row);
    current_cost += std::max<int64_t>(costs[row], 1);
    if (current_cost >= target &&
        static_cast<int64_t>(shards.size()) + 1 < max_shards) {
      shards.push_back(std::move(current));
      current.clear();
      current_cost = 0;
    }
  }
  if (!current.empty()) shards.push_back(std::move(current));
  return shards;
}

int ParallelThreads() {
  const int forced = thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int hardware = HardwareDefault();
  return hardware;
}

void SetParallelThreads(int threads) {
  thread_override.store(threads > 0 ? threads : 0,
                        std::memory_order_relaxed);
}

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (threads <= 0) threads = ParallelThreads();
  const int64_t shards = std::min<int64_t>(threads, n);
  if (shards <= 1 || in_parallel_worker) {
    fn(0, n);
    return;
  }

  Pool& pool = Pool::Instance();
  pool.EnsureWorkers(static_cast<int>(shards) - 1);
  // One shard runs inline, so a pool of size P serves P+1 shards.
  const int64_t usable = std::min<int64_t>(shards, pool.size() + 1);
  if (usable <= 1) {
    fn(0, n);
    return;
  }

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    int64_t remaining = 0;
  } join;
  join.remaining = usable - 1;

  const int64_t base = n / usable, extra = n % usable;
  int64_t begin = 0;
  // Shard 0 is saved for the calling thread.
  const int64_t first_end = base + (extra > 0 ? 1 : 0);
  int64_t prev_end = first_end;
  for (int64_t s = 1; s < usable; ++s) {
    begin = prev_end;
    const int64_t end = begin + base + (s < extra ? 1 : 0);
    prev_end = end;
    pool.Submit([&fn, &join, begin, end] {
      fn(begin, end);
      // Notify while holding the mutex: after the last decrement the
      // caller destroys the stack-allocated join as soon as it re-acquires
      // mu, so an unlocked notify could land on a dead condition_variable.
      std::lock_guard<std::mutex> lock(join.mu);
      --join.remaining;
      join.cv.notify_one();
    });
  }
  fn(0, first_end);
  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&join] { return join.remaining == 0; });
}

}  // namespace util
}  // namespace causaltad
