#ifndef CAUSALTAD_NN_CHECKPOINT_H_
#define CAUSALTAD_NN_CHECKPOINT_H_

#include <string>

#include "nn/modules.h"
#include "util/status.h"

namespace causaltad {
namespace nn {

/// Checkpoint save knobs.
struct SaveOptions {
  /// Persist embedding tables whose int8 serving copy is fresh
  /// (Embedding::has_quantized()) as dtype-int8 records — the quantized
  /// rows plus per-row scales, a quarter of the fp32 bytes. Loading such a
  /// record restores the exact serving-path values (the fp32 master is
  /// rebuilt by dequantization, so full-precision residue is dropped).
  bool quantize_embeddings = false;
};

/// Writes all named parameters of `module` to a binary checkpoint at `path`.
/// Format (v2): magic/version header, param count, then
/// (name, shape, dtype, data) records — dtype 0 is raw f32, dtype 1 is
/// int8 rows followed by per-row f32 scales. Deterministic given the
/// module's parameter values.
util::Status SaveCheckpoint(const std::string& path, const Module& module,
                            const SaveOptions& options = {});

/// Restores parameters from `path` into `module`, matching records by name
/// and shape. Reads both v1 checkpoints (untagged f32 records) and v2
/// (dtype-tagged, possibly int8). Fails (without partial mutation of
/// mismatched entries) when a record is missing, extra, or
/// shape-mismatched.
util::Status LoadCheckpoint(const std::string& path, Module* module);

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_CHECKPOINT_H_
