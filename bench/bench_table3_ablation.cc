// Reproduces Table III: ablation of CausalTAD's two components on all eight
// dataset combinations. "TG-VAE" scores with the likelihood term only
// (λ = 0); "RP-VAE" scores with the per-segment road-preference ELBO only.
//
// Paper reference (Table III): CausalTAD > TG-VAE alone >> RP-VAE alone;
// RP-VAE is near-random (~0.5) on Switch anomalies because segment-level
// popularity cannot see route switches.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSet;
using causaltad::eval::TablePrinter;

void RunCity(const causaltad::eval::CityExperimentConfig& config,
             causaltad::eval::Scale scale) {
  std::printf("\n== Table III — %s (ablation, scale=%s) ==\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  const ExperimentData data = causaltad::eval::BuildExperiment(config);
  auto scorer = causaltad::eval::FitOrLoad(causaltad::eval::kCausalTadName,
                                           data, config.name, scale);
  auto* model = dynamic_cast<CausalTad*>(scorer.get());

  const CausalTadVariant tg_only(model, ScoreVariant::kLikelihoodOnly);
  const CausalTadVariant rp_only(model, ScoreVariant::kScalingOnly);
  struct Row {
    const char* name;
    const causaltad::models::TrajectoryScorer* scorer;
  };
  const std::vector<Row> rows = {
      {"CausalTAD", model}, {"TG-VAE", &tg_only}, {"RP-VAE", &rp_only}};

  TablePrinter table({"Method", "Metric", "ID Detour", "ID Switch",
                      "OOD Detour", "OOD Switch"});
  table.PrintHeader();
  for (const Row& row : rows) {
    const auto id_norm = ScoreSet(*row.scorer, data.id_test, 1.0);
    const auto ood_norm = ScoreSet(*row.scorer, data.ood_test, 1.0);
    const auto id_det =
        EvaluateScores(id_norm, ScoreSet(*row.scorer, data.id_detour, 1.0));
    const auto id_sw =
        EvaluateScores(id_norm, ScoreSet(*row.scorer, data.id_switch, 1.0));
    const auto ood_det = EvaluateScores(
        ood_norm, ScoreSet(*row.scorer, data.ood_detour, 1.0));
    const auto ood_sw = EvaluateScores(
        ood_norm, ScoreSet(*row.scorer, data.ood_switch, 1.0));
    table.PrintRow({row.name, "ROC-AUC", TablePrinter::Fmt(id_det.roc_auc),
                    TablePrinter::Fmt(id_sw.roc_auc),
                    TablePrinter::Fmt(ood_det.roc_auc),
                    TablePrinter::Fmt(ood_sw.roc_auc)});
    table.PrintRow({row.name, "PR-AUC", TablePrinter::Fmt(id_det.pr_auc),
                    TablePrinter::Fmt(id_sw.pr_auc),
                    TablePrinter::Fmt(ood_det.pr_auc),
                    TablePrinter::Fmt(ood_sw.pr_auc)});
  }
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  RunCity(causaltad::eval::XianConfig(scale), scale);
  RunCity(causaltad::eval::ChengduConfig(scale), scale);
  return 0;
}
