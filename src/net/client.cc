#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/stopwatch.h"

namespace causaltad {
namespace net {

const char* PushOutcomeName(PushOutcome outcome) {
  switch (outcome) {
    case PushOutcome::kAccepted:
      return "accepted";
    case PushOutcome::kSessionFull:
      return "session_full";
    case PushOutcome::kShardFull:
      return "shard_full";
    case PushOutcome::kQuota:
      return "quota";
    case PushOutcome::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

util::StatusOr<std::unique_ptr<Client>> Client::ConnectTcp(
    const std::string& host, int port, ClientOptions options) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return util::Status::IoError("socket failed: " +
                                 std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return util::Status::InvalidArgument("bad host " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return util::Status::IoError("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " + err);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, std::move(options)));
}

std::unique_ptr<Client> Client::FromFd(int fd, ClientOptions options) {
  return std::unique_ptr<Client>(new Client(fd, std::move(options)));
}

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)) {}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

util::Status Client::SendFrame(const Frame& frame) {
  if (!fatal_.ok()) return fatal_;
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    fatal_ = util::Status::IoError("send failed: " +
                                   std::string(std::strerror(errno)));
    return fatal_;
  }
  stats_.bytes_sent += static_cast<int64_t>(bytes.size());
  return util::Status::Ok();
}

util::Status Client::ReadOnce(double timeout_ms, bool* got_bytes) {
  *got_bytes = false;
  if (!fatal_.ok()) return fatal_;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready =
      poll(&pfd, 1, std::max(0, static_cast<int>(timeout_ms)));
  if (ready <= 0) return util::Status::Ok();  // timeout (or EINTR): no bytes
  uint8_t buf[64 * 1024];
  const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
  if (n > 0) {
    *got_bytes = true;
    stats_.bytes_received += n;
    decoder_.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    while (fatal_.ok() && decoder_.Next(&frame)) {
      ++stats_.frames_received;
      HandleFrame(frame);
    }
    if (fatal_.ok() && !decoder_.status().ok()) fatal_ = decoder_.status();
  } else if (n == 0 || (errno != EINTR && errno != EAGAIN)) {
    if (fatal_.ok()) {
      fatal_ = util::Status::IoError("connection closed by server");
    }
  }
  return fatal_;
}

bool Client::Retryable(RejectReason reason) const {
  switch (reason) {
    case RejectReason::kSessionFull:
    case RejectReason::kShardFull:
    case RejectReason::kQuota:
    case RejectReason::kOutOfOrder:
      return true;
    case RejectReason::kShutdown:
      return false;
  }
  return false;
}

void Client::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kScoreDelta: {
      if (frame.token != 0 && frame.token == waiting_token_) {
        token_seen_ = true;
      }
      const auto it = sessions_.find(frame.session);
      if (it == sessions_.end() || frame.scores.empty()) return;
      Session& session = it->second;
      for (size_t k = 0; k < frame.scores.size(); ++k) {
        // Scores acknowledge the oldest in-flight points in feed order.
        if (!session.pending.empty()) {
          session.pending.pop_front();
          --total_inflight_;
        }
      }
      if (score_cb_) {
        score_cb_(frame.session, frame.scores);
      } else {
        session.scores.insert(session.scores.end(), frame.scores.begin(),
                              frame.scores.end());
      }
      return;
    }
    case FrameType::kPushReject: {
      const auto it = sessions_.find(frame.session);
      if (it == sessions_.end()) return;
      Session& session = it->second;
      // Locate the point; a mismatched wire_seq means this reject refers to
      // a transmission we already resent — stale, ignore it.
      auto entry = session.pending.begin();
      while (entry != session.pending.end() && entry->seq != frame.seq) {
        ++entry;
      }
      if (entry == session.pending.end() ||
          entry->wire_seq != frame.wire_seq) {
        return;
      }
      ++stats_.rejects_seen;
      if (reject_cb_) reject_cb_(frame.session, frame.reason);
      if (frame.wire_seq == probe_wire_seq_) {
        // TryPush probe: record the verdict and drop the point — a probe is
        // never retransmitted.
        probe_rejected_ = true;
        probe_reason_ = frame.reason;
        session.pending.erase(entry);
        --total_inflight_;
        return;
      }
      if (frame.reason == RejectReason::kShutdown || !options_.auto_retry) {
        // Terminal (or retries disabled): the rejected point and everything
        // after it can never be accepted in order — drop the tail.
        const int64_t dropped =
            static_cast<int64_t>(session.pending.end() - entry);
        session.pending.erase(entry, session.pending.end());
        total_inflight_ -= dropped;
        if (frame.reason == RejectReason::kShutdown) session.shutdown = true;
        return;
      }
      // Go-back-N: mark the resend point; RunResends retransmits the tail.
      if (session.resend_from < 0 ||
          static_cast<uint64_t>(session.resend_from) > frame.seq) {
        session.resend_from = static_cast<int64_t>(frame.seq);
      }
      return;
    }
    case FrameType::kError: {
      if (fatal_.ok()) {
        fatal_ = util::Status::FailedPrecondition(
            std::string("server error (") + ErrorCodeName(frame.code) +
            "): " + frame.message);
      }
      return;
    }
    default:
      if (fatal_.ok()) {
        fatal_ = util::Status::Internal("server sent a client-only frame");
      }
      return;
  }
}

util::Status Client::RunResends() {
  for (auto& [id, session] : sessions_) {
    if (session.resend_from < 0 || session.shutdown) continue;
    const uint64_t from = static_cast<uint64_t>(session.resend_from);
    session.resend_from = -1;
    for (SentPoint& point : session.pending) {
      if (point.seq < from) continue;
      point.wire_seq = next_wire_seq_++;
      Frame push;
      push.type = FrameType::kPush;
      push.session = id;
      push.seq = point.seq;
      push.wire_seq = point.wire_seq;
      push.segment = point.segment;
      ++stats_.pushes_sent;
      ++stats_.retransmits;
      CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
    }
  }
  return util::Status::Ok();
}

util::Status Client::PollBarrier(uint64_t session) {
  Frame poll_frame;
  poll_frame.type = FrameType::kPoll;
  poll_frame.session = session;
  poll_frame.token = next_token_++;
  ++stats_.polls_sent;
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(poll_frame));
  waiting_token_ = poll_frame.token;
  token_seen_ = false;
  util::Stopwatch watch;
  while (!token_seen_) {
    if (!fatal_.ok()) {
      waiting_token_ = 0;
      return fatal_;
    }
    bool got = false;
    const util::Status status =
        ReadOnce(std::min(50.0, options_.timeout_ms), &got);
    if (!status.ok()) {
      waiting_token_ = 0;
      return status;
    }
    if (!token_seen_ && watch.ElapsedMillis() > options_.timeout_ms) {
      waiting_token_ = 0;
      return util::Status::IoError("timed out waiting for the server");
    }
  }
  waiting_token_ = 0;
  return util::Status::Ok();
}

util::Status Client::DrainTo(int64_t target, uint64_t focus_session) {
  util::Stopwatch watch;
  while (total_inflight_ > target) {
    if (!fatal_.ok()) return fatal_;
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    // Ask for deltas for every session with in-flight points; barrier on
    // the focus session's token, which is sent last.
    std::vector<uint64_t> ids;
    for (const auto& [id, session] : sessions_) {
      if (!session.pending.empty() && id != focus_session) {
        ids.push_back(id);
      }
    }
    if (sessions_.count(focus_session) != 0) ids.push_back(focus_session);
    if (ids.empty()) break;  // nothing left that could still score
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      Frame poll_frame;
      poll_frame.type = FrameType::kPoll;
      poll_frame.session = ids[i];
      poll_frame.token = next_token_++;
      ++stats_.polls_sent;
      CAUSALTAD_RETURN_IF_ERROR(SendFrame(poll_frame));
    }
    CAUSALTAD_RETURN_IF_ERROR(PollBarrier(ids.back()));
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    if (total_inflight_ > target) {
      if (watch.ElapsedMillis() > options_.timeout_ms) {
        return util::Status::IoError("timed out draining in-flight points");
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.poll_backoff_ms));
    }
  }
  return util::Status::Ok();
}

util::Status Client::Hello() {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.tenant = options_.tenant;
  hello.auth_token = options_.auth_token;
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(hello));
  // Barrier on a Poll for a session that cannot exist: the server answers
  // Polls in order (empty delta), so by the time it arrives the Hello
  // verdict — possibly an Error frame — has been processed.
  return PollBarrier(~uint64_t{0});
}

uint64_t Client::Begin(roadnet::SegmentId source,
                       roadnet::SegmentId destination, int32_t time_slot) {
  const uint64_t id = next_session_++;
  sessions_.emplace(id, Session{});
  Frame begin;
  begin.type = FrameType::kBegin;
  begin.session = id;
  begin.source = source;
  begin.destination = destination;
  begin.time_slot = time_slot;
  (void)SendFrame(begin);  // pipelined; failures latch into status()
  return id;
}

util::Status Client::Push(uint64_t session, roadnet::SegmentId segment) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  if (it->second.shutdown) {
    return util::Status::FailedPrecondition("service shut down");
  }
  Session& state = it->second;
  SentPoint point;
  point.seq = state.next_seq++;
  point.wire_seq = next_wire_seq_++;
  point.segment = segment;
  state.pending.push_back(point);
  ++total_inflight_;
  Frame push;
  push.type = FrameType::kPush;
  push.session = session;
  push.seq = point.seq;
  push.wire_seq = point.wire_seq;
  push.segment = segment;
  ++stats_.pushes_sent;
  CAUSALTAD_RETURN_IF_ERROR(SendFrame(push));
  if (total_inflight_ >= options_.max_inflight) {
    // Window full: drain to half so pushes batch between drains.
    CAUSALTAD_RETURN_IF_ERROR(
        DrainTo(std::max<int64_t>(options_.max_inflight / 2, 0), session));
    if (state.shutdown) {
      return util::Status::FailedPrecondition("service shut down");
    }
  }
  return util::Status::Ok();
}

util::StatusOr<PushOutcome> Client::TryPush(uint64_t session,
                                            roadnet::SegmentId segment) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  if (it->second.shutdown) return PushOutcome::kShutdown;
  Session& state = it->second;
  SentPoint point;
  point.seq = state.next_seq;
  point.wire_seq = next_wire_seq_++;
  point.segment = segment;
  Frame push;
  push.type = FrameType::kPush;
  push.session = session;
  push.seq = point.seq;
  push.wire_seq = point.wire_seq;
  push.segment = segment;
  state.pending.push_back(point);
  ++state.next_seq;
  ++total_inflight_;
  ++stats_.pushes_sent;
  probe_wire_seq_ = point.wire_seq;
  probe_rejected_ = false;
  util::Status status = SendFrame(push);
  if (status.ok()) status = PollBarrier(session);
  probe_wire_seq_ = 0;
  if (!status.ok()) return status;
  if (!probe_rejected_) return PushOutcome::kAccepted;
  // The probe was rejected and dropped; un-assign its seq so the next push
  // of this session reuses it (the server never advanced past it).
  --state.next_seq;
  switch (probe_reason_) {
    case RejectReason::kSessionFull:
      return PushOutcome::kSessionFull;
    case RejectReason::kShardFull:
      return PushOutcome::kShardFull;
    case RejectReason::kQuota:
      return PushOutcome::kQuota;
    case RejectReason::kShutdown:
      state.shutdown = true;
      return PushOutcome::kShutdown;
    case RejectReason::kOutOfOrder:
      break;
  }
  return util::Status::Internal(
      "push rejected out of order: the session stream has a gap");
}

util::Status Client::End(uint64_t session) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.ended) {
    return util::Status::InvalidArgument("unknown or ended session");
  }
  util::Stopwatch watch;
  while (!it->second.pending.empty()) {
    if (it->second.shutdown) break;  // dropped tail: nothing more will score
    CAUSALTAD_RETURN_IF_ERROR(RunResends());
    CAUSALTAD_RETURN_IF_ERROR(PollBarrier(session));
    if (!it->second.pending.empty()) {
      if (watch.ElapsedMillis() > options_.timeout_ms) {
        return util::Status::IoError("timed out draining session");
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.poll_backoff_ms));
    }
  }
  it->second.ended = true;
  Frame end;
  end.type = FrameType::kEnd;
  end.session = session;
  return SendFrame(end);
}

util::StatusOr<std::vector<double>> Client::Finish(uint64_t session) {
  CAUSALTAD_RETURN_IF_ERROR(End(session));
  const auto it = sessions_.find(session);
  std::vector<double> scores = std::move(it->second.scores);
  sessions_.erase(it);
  return scores;
}

util::StatusOr<std::vector<double>> Client::Poll(uint64_t session) {
  if (!fatal_.ok()) return fatal_;
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return util::Status::InvalidArgument("unknown session");
  }
  CAUSALTAD_RETURN_IF_ERROR(RunResends());
  CAUSALTAD_RETURN_IF_ERROR(PollBarrier(session));
  std::vector<double> scores = std::move(it->second.scores);
  it->second.scores.clear();
  return scores;
}

util::Status Client::ProcessIncoming(double timeout_ms) {
  bool got = true;
  // First read waits up to timeout_ms; then drain whatever else is ready.
  CAUSALTAD_RETURN_IF_ERROR(ReadOnce(timeout_ms, &got));
  while (got) {
    CAUSALTAD_RETURN_IF_ERROR(ReadOnce(0.0, &got));
  }
  return RunResends();
}

}  // namespace net
}  // namespace causaltad
