#ifndef CAUSALTAD_NET_SERVER_H_
#define CAUSALTAD_NET_SERVER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/fault.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "roadnet/road_network.h"
#include "serve/service.h"
#include "util/latency_histogram.h"
#include "util/status.h"

namespace causaltad {
namespace net {

/// Wire server knobs. See src/net/README.md for the protocol contract and
/// the failure-semantics section for the resume/heartbeat/drain behavior.
struct ServerOptions {
  /// TCP listen port on listen_host (0 picks an ephemeral port, read it back
  /// via port()); -1 disables the listener — loopback-only servers (tests,
  /// benches) accept connections via AddLoopbackConnection() instead.
  int listen_port = -1;
  std::string listen_host = "127.0.0.1";
  /// Per-tenant auth tokens checked against Hello{tenant, auth_token}. An
  /// EMPTY map runs the server open (any tenant, any token) — tests and
  /// local tools; production fills it.
  std::unordered_map<std::string, std::string> tenant_tokens;
  /// Per-tenant shed quota: a tenant may have at most this many accepted-
  /// but-undelivered points (pushed, not yet returned in a ScoreDelta)
  /// across ALL its connections and sessions. Enforced BEFORE the push
  /// reaches a StreamingService shard; the rejected push is answered with
  /// PushReject{quota}. <= 0 disables.
  int64_t tenant_max_pending = 0;
  /// Road network for input validation: Begin/Push segment ids are bounds-
  /// checked and pushed transitions must be legal successors, so a garbage
  /// producer gets an Error frame instead of CHECK-crashing the fused
  /// decode. nullptr trusts the producers (map-matched feeds only).
  const roadnet::RoadNetwork* network = nullptr;
  /// A connection whose outbound queue exceeds this many bytes (client not
  /// reading its ScoreDeltas) is dropped as a slow consumer.
  size_t max_connection_backlog = 8u << 20;
  /// Idle-peer reaping: a connection that has sent NO bytes (frames or
  /// heartbeat pings) for this long is treated as half-open and closed —
  /// its resumable sessions detach, the rest orphan-drain, so a dead peer
  /// stops pinning quota and shard rows. <= 0 disables.
  double heartbeat_timeout_ms = 0.0;
  /// How long a resumable session whose connection died is retained for
  /// re-adoption (scores keep accruing to its retained history). On expiry
  /// it is ended and orphan-drained like a non-resumable session.
  double detached_linger_ms = 10000.0;
  /// Cap on the per-session retained score history (delivered but not yet
  /// client-acked, plus scores emitted while detached). Overflow silently
  /// revokes the session's resumability instead of growing without bound.
  int64_t max_resume_history = 1 << 16;
  /// Injectable monotonic clock in ms for reaping/linger (tests fake it);
  /// null uses the process steady clock.
  std::function<double()> now_ms;
  /// Deterministic fault injection at the socket read/write boundary (see
  /// net::FaultInjector). nullptr = no faults. Must outlive the server.
  FaultInjector* fault = nullptr;
  /// Admin authorization: Admin frames ("stage:<tag>" / "commit") are
  /// accepted only from connections authed as this tenant. Empty string
  /// disables the admin surface on a token-checked server; an OPEN server
  /// (empty tenant_tokens) with an empty admin_tenant accepts admin from
  /// any authed connection (tests, local tools).
  std::string admin_tenant;
  /// Stage-tag resolver behind the hot model swap: maps an Admin
  /// "stage:<tag>" command to loaded weights. Called on a BACKGROUND
  /// thread — slow weight loading must never stall the event loop; the
  /// stage ack is deferred until the load finishes. Returns nullptr on
  /// failure. Every model it returns must outlive the server AND the
  /// service (generations keep raw pointers). nullptr disables staging.
  std::function<const core::CausalTad*(const std::string&)> model_resolver;
  /// Metrics sink for the server's ops counters and per-frame dispatch
  /// histograms (null = obs::Registry::Default()). A kStats frame is
  /// answered with THIS registry's text exposition, so a backend's scrape
  /// covers the server and (when it shares the registry) its service.
  obs::Registry* registry = nullptr;
  /// Span sink for traced pushes (null = tracing off): a Push carrying a
  /// nonzero trace id gets a "server_dispatch" span here.
  obs::Tracer* tracer = nullptr;
  /// The "where" tag on this server's spans, e.g. "backend=1".
  std::string trace_where = "server";
};

/// Ops counters exported by Server::stats(). Counter fields are cumulative
/// since construction; dispatch_*_ms summarize the frame-dispatch latency
/// histogram (frame decoded -> fully handled, the wire-side cost excluding
/// queue wait inside the service).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t connections_reaped = 0;  // idle peers closed by heartbeat timeout
  int64_t frames_received = 0;
  int64_t frames_sent = 0;
  int64_t bytes_received = 0;
  int64_t bytes_sent = 0;
  int64_t pushes_accepted = 0;
  int64_t duplicate_pushes = 0;  // replayed seqs already accepted (resume)
  int64_t rejected_session_full = 0;
  int64_t rejected_shard_full = 0;
  int64_t rejected_quota = 0;
  int64_t rejected_out_of_order = 0;
  int64_t rejected_shutdown = 0;
  int64_t auth_failures = 0;
  int64_t protocol_errors = 0;
  int64_t heartbeats = 0;          // pings answered
  int64_t sessions_detached = 0;   // resumable sessions parked at disconnect
  int64_t sessions_resumed = 0;    // re-adopted from the detached table
  int64_t sessions_resumed_fresh = 0;  // rebuilt via emit-skip prefix replay
  int64_t sessions_detached_live = 0;  // currently parked
  int64_t models_staged = 0;     // background weight loads completed
  int64_t models_committed = 0;  // staged models flipped live via commit
  /// Frame-dispatch latency merged across the per-frame-type histograms
  /// (the registry exposes each frame type's own percentiles under
  /// server_dispatch_ms{frame="..."}).
  double dispatch_mean_ms = 0.0;
  double dispatch_p50_ms = 0.0;
  double dispatch_p95_ms = 0.0;
  double dispatch_p99_ms = 0.0;
};

/// Wire front-end over a serve::StreamingService: accepts TCP and loopback
/// (socketpair) connections on a small poll(2) event loop — ONE reader
/// thread owns every socket, per-connection write queues drain as peers
/// become writable — and translates frames into StreamingService calls.
///
/// Per-connection session namespaces: the client chooses its session ids,
/// the server maps (connection, client id) -> service SessionId, so
/// independent producers never coordinate id allocation. Tenant auth is the
/// mandatory first frame (Hello); per-tenant shed quotas bound the points a
/// tenant may have in flight before Push ever reaches a shard. Scores are
/// pulled: a Poll frame is always answered with exactly one ScoreDelta
/// (possibly empty), which doubles as the client's ordering barrier.
///
/// Session continuity: a Begin carrying a non-zero resume_key makes the
/// session survive its transport — on disconnect it parks in a detached
/// table (scores keep accruing to a retained, client-acked-pruned history)
/// and a Resume on a later connection re-adopts it, redelivering the
/// unacked history and telling the client which seq to replay from. A
/// Resume that finds no detached state rebuilds the session from the
/// client's journaled prefix through StreamingService::BeginSessionAt
/// (emit-skip replay). Replayed pushes below the accepted seq are
/// idempotently ignored, so the accepted stream has no gaps or duplicates.
///
/// Score parity is exact relative to driving the StreamingService directly:
/// the server adds no arithmetic, only transport (tests/net_test.cc asserts
/// 1e-6 relative, the float-ULP bound shared with the other serving layers).
///
/// Thread-safety: Start/Stop/Drain/AddLoopbackConnection/stats/port may be
/// called from any thread; all socket and session-map work happens on the
/// loop thread. The StreamingService is shared and itself thread-safe.
class Server {
 public:
  explicit Server(serve::StreamingService* service, ServerOptions options = {});
  /// Calls Stop().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the TCP listener (when listen_port >= 0) and launches the event
  /// loop thread. Returns an error (and launches nothing) if the bind fails.
  util::Status Start();

  /// Stops the loop, closes every connection, and ends the sessions they
  /// still own (their queued points are still scored by the service, then
  /// drained and discarded). Idempotent; also safe (and still closes any
  /// queued loopback fds) when the server never started.
  void Stop();

  /// Graceful drain: closes the listener, answers new connections, Begins,
  /// and Resumes with Error{shutting_down}, abandons detached sessions
  /// (ending them so the service releases their rows), and lets live
  /// sessions run to completion — a connection is closed once it owns no
  /// sessions. Blocks until everything has drained or timeout_ms elapses
  /// (<= 0 waits forever); returns true when fully drained. Call Stop()
  /// afterwards to join the loop.
  bool Drain(double timeout_ms);

  /// The bound TCP port (valid after a successful Start with a listener).
  int port() const { return port_; }

  /// Creates a connected socketpair, hands one end to the event loop as a
  /// new (unauthenticated) connection, and returns the other end for a
  /// client — the in-process loopback transport used by tests and benches.
  /// The caller owns the returned fd. Safe before or after Start().
  int AddLoopbackConnection();

  ServerStats stats() const;

 private:
  struct SessionState {
    serve::SessionId inner = -1;
    uint64_t expected_seq = 0;  // next client push seq accepted in order
    int64_t delivered = 0;      // cumulative score index delivered so far
    int64_t skip = 0;           // emit-skip base of a fresh-resume rebuild
    uint64_t resume_key = 0;    // 0 = not resumable
    bool ended = false;
    roadnet::SegmentId last = roadnet::kInvalidSegment;
    bool has_last = false;
    // Resumable sessions retain delivered-but-unacked scores for
    // redelivery after reconnect; Poll{offset} acks prune the front.
    std::deque<double> history;
    int64_t history_base = 0;  // cumulative index of history.front()

    /// Scores accepted (or committed to appear) but not yet delivered —
    /// the tenant-quota and orphan-drain unit.
    int64_t Outstanding() const {
      const int64_t deliverable =
          std::max<int64_t>(static_cast<int64_t>(expected_seq), skip);
      return deliverable - delivered;
    }
  };

  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::vector<uint8_t> wbuf;
    size_t woff = 0;
    bool authed = false;
    bool closing = false;  // flush wbuf, then close; reads stop
    double last_activity_ms = 0.0;
    std::string tenant;
    std::shared_ptr<FaultConnection> fault;
    std::unordered_map<uint64_t, SessionState> sessions;
  };

  /// A session whose connection died before its scores drained: the loop
  /// keeps polling it so the service can forget it (and the tenant's quota
  /// is given back as the remaining scores surface).
  struct Orphan {
    serve::SessionId inner = -1;
    std::string tenant;
    int64_t remaining = 0;  // outstanding scores at disconnect
  };

  /// A resumable session parked between connections, keyed by
  /// (tenant, resume_key). The loop keeps polling it into its history so a
  /// reconnecting client can be caught up exactly.
  struct Detached {
    SessionState state;
    std::string tenant;
    double detached_at_ms = 0.0;
  };

  void Loop();
  double NowMs() const;
  void AdoptPending(double now);
  void AcceptTcp(double now);
  void ReadConnection(Connection* conn, double now);
  void HandleFrame(Connection* conn, const Frame& frame);
  void HandleHello(Connection* conn, const Frame& frame);
  void HandleBegin(Connection* conn, const Frame& frame);
  void HandlePush(Connection* conn, const Frame& frame);
  void HandleEnd(Connection* conn, const Frame& frame);
  void HandlePoll(Connection* conn, const Frame& frame);
  void HandleResume(Connection* conn, const Frame& frame);
  void HandleHeartbeat(Connection* conn, const Frame& frame);
  void HandleAdmin(Connection* conn, const Frame& frame);
  /// kStats scrape: answered with an AdminAck carrying the registry's text
  /// exposition (same authorization gate as Admin).
  void HandleStats(Connection* conn, const Frame& frame);
  /// Delivers deferred stage acks once the background load settles.
  void PumpStaging();
  void SendAdminAck(Connection* conn, uint64_t token, AdminStatus status,
                    const std::string& message);
  void SendFrame(Connection* conn, const Frame& frame);
  void SendError(Connection* conn, ErrorCode code, const std::string& message);
  void SendReject(Connection* conn, const Frame& push, RejectReason reason);
  /// Sends the session's score backlog as offset-stamped, chunked deltas;
  /// only the last chunk echoes `token`. `state` may be invalidated when
  /// the send closes the connection — callers must re-check conn->fd.
  void SendScoreChunks(Connection* conn, uint64_t session_id,
                       SessionState* state, const std::vector<double>& scores,
                       int64_t base, uint64_t token);
  bool FlushWrites(Connection* conn);
  void CloseConnection(Connection* conn);
  void DrainOrphans();
  void DrainDetached(double now);
  /// Ends + orphan-drains a formerly-resumable session (linger expiry,
  /// history overflow, or drain).
  void AbandonDetachedLocked(Detached* detached);
  void MaybeForgetSession(Connection* conn, uint64_t id);
  int64_t* TenantPending(const std::string& tenant);
  static std::string DetachedKey(const std::string& tenant,
                                 uint64_t resume_key);

  serve::StreamingService* service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = -1;
  int wake_fds_[2] = {-1, -1};  // loop wakeup pipe: [read, write]
  std::thread loop_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  std::mutex lifecycle_mu_;  // Start/Stop/AddLoopbackConnection

  std::mutex pending_mu_;
  std::vector<int> pending_fds_;  // loopback ends awaiting adoption

  // Loop-thread state.
  std::vector<std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::string, int64_t> tenant_pending_;
  std::deque<Orphan> orphans_;
  std::unordered_map<std::string, Detached> detached_;

  // Model staging (hot swap). stage_state_ is the publication point: the
  // background worker fills staged_model_ / stage_error_ then stores
  // kStageReady/kStageFailed with release; the loop thread reads the state
  // with acquire before touching either. Everything else is loop-only.
  enum StageState { kStageIdle = 0, kStageLoading, kStageReady, kStageFailed };
  std::atomic<int> stage_state_{kStageIdle};
  std::thread stage_worker_;
  std::string stage_tag_;
  const core::CausalTad* staged_model_ = nullptr;
  std::string stage_error_;
  /// Connections owed a stage ack (deduped on conn+token; CloseConnection
  /// purges its entries so no waiter ever dangles).
  std::vector<std::pair<Connection*, uint64_t>> stage_waiters_;
  /// Replay cache for Admin idempotence: a redelivered/resent Admin whose
  /// token matches the last ack gets that ack again instead of re-running
  /// the command (a duplicate "commit" must not mis-report an error).
  Frame last_admin_ack_;
  bool has_last_admin_ack_ = false;

  // Stats: registry-backed counters (stats() races the loop thread by
  // design; both sides are lock-free atomics). ScopedCounter keeps stats()
  // per-instance; the registry series are process-cumulative.
  obs::Registry* registry_ = nullptr;  // options_.registry or Default()
  obs::ScopedCounter connections_accepted_;
  obs::ScopedGauge connections_active_;
  obs::ScopedCounter connections_reaped_;
  obs::ScopedCounter frames_received_;
  obs::ScopedCounter frames_sent_;
  obs::ScopedCounter bytes_received_;
  obs::ScopedCounter bytes_sent_;
  obs::ScopedCounter pushes_accepted_;
  obs::ScopedCounter duplicate_pushes_;
  obs::ScopedCounter rejected_session_full_;
  obs::ScopedCounter rejected_shard_full_;
  obs::ScopedCounter rejected_quota_;
  obs::ScopedCounter rejected_out_of_order_;
  obs::ScopedCounter rejected_shutdown_;
  obs::ScopedCounter auth_failures_;
  obs::ScopedCounter protocol_errors_;
  obs::ScopedCounter heartbeats_;
  obs::ScopedCounter sessions_detached_;
  obs::ScopedCounter sessions_resumed_;
  obs::ScopedCounter sessions_resumed_fresh_;
  obs::ScopedGauge detached_live_;
  obs::ScopedGauge orphans_live_;
  obs::ScopedCounter models_staged_;
  obs::ScopedCounter models_committed_;
  /// Per-frame-type dispatch latency (frame decoded -> fully handled),
  /// indexed by the FrameType wire value; registered as
  /// server_dispatch_ms{frame="push"} etc. The paired baseline snapshots
  /// keep stats() windowed to this server instance.
  obs::Histogram* dispatch_frame_[15] = {};
  util::LatencyHistogram::Snapshot dispatch_base_[15];
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_SERVER_H_
