// Reproduces Fig. 7: (a) training scalability — wall-clock time of one
// training epoch as the training-set fraction grows from 20% to 100%
// (linear in the paper), plus a per-epoch throughput comparison of the
// legacy per-trip-tape trainer against the batched [B, hidden] minibatch
// trainer; (b) average inference runtime per trajectory at different
// observed ratios (iBOAT is far slower than the learned methods;
// CausalTAD ≈ TG-VAE thanks to the O(1) debiased updates and the
// successor-masked softmax).
//
// Both cities of the paper's evaluation (Xi'an and the larger Chengdu
// stand-in) run through parts (a) and (b); every BENCH_fig7.json row
// carries a "city" field.
//
// Part (a) is measured two ways:
//   * a per-fraction one-epoch wall-clock table (stdout), and
//   * a per-trip-tape vs batched-minibatch training comparison — one epoch
//     at 100% of the training set, reported as trips/sec — written to the
//     "fig7a_training" section of BENCH_fig7.json. Per-epoch time is net
//     of the path-independent setup (e.g. CausalTAD's scaling-table
//     rebuild), which is a fixed post-training cost, not a per-epoch one.
//
// Part (b) is measured two ways:
//   * google-benchmark timings of the O(1)-per-segment online sessions
//     (the paper's per-trajectory latency protocol), and
//   * a per-trip-vs-batched comparison — the seed per-trip tape path
//     (Score(), which builds an autograd tape per trajectory) against the
//     batched no-grad fast path (ScoreBatch(), [B, hidden] fused GRU rolls)
//     — written to BENCH_fig7.json so later PRs have a perf trajectory.
//
// Environment knobs:
//   CAUSALTAD_BENCH_SCALE=smoke|default|full   experiment scale
//   CAUSALTAD_FIG7_SKIP_TRAIN_TABLE=1          skip part (a)
//   CAUSALTAD_BENCH_MIN_TIME=<seconds>         google-benchmark MinTime
//   CAUSALTAD_BENCH_JSON=<path>                output path (BENCH_fig7.json)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "nn/kernels/kernels.h"
#include "nn/modules.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::CityExperimentConfig;
using causaltad::eval::ExperimentData;
using causaltad::eval::Scale;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;

const ExperimentData& DataFor(const CityExperimentConfig& config) {
  static std::map<std::string, const ExperimentData*>* cache =
      new std::map<std::string, const ExperimentData*>();
  auto it = cache->find(config.name);
  if (it == cache->end()) {
    it = cache->emplace(config.name,
                        new ExperimentData(causaltad::eval::BuildExperiment(
                            config))).first;
  }
  return *it->second;
}

void TrainingScalabilityTable(const CityExperimentConfig& config,
                              Scale scale) {
  const ExperimentData& data = DataFor(config);
  std::printf("== Fig. 7(a) — one-epoch training time vs training-set "
              "fraction (%s, scale=%s) ==\n\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  const std::vector<std::string> names = {"SAE", "VSAE", "GM-VSAE",
                                          "DeepTEA", "CausalTAD"};
  const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  TablePrinter table(
      {"Method", "20%", "40%", "60%", "80%", "100%"});
  table.PrintHeader();
  causaltad::models::FitOptions options =
      causaltad::eval::FitOptionsFor(scale);
  options.epochs = 1;
  for (const std::string& name : names) {
    std::vector<std::string> cells = {name};
    for (const double frac : fractions) {
      const auto subset = Subsample(
          data.train, static_cast<int64_t>(frac * data.train.size()), 41);
      auto scorer = causaltad::eval::MakeScorer(name, data, scale);
      causaltad::util::Stopwatch watch;
      scorer->Fit(subset, options);
      cells.push_back(TablePrinter::Fmt(watch.ElapsedSeconds(), 2) + "s");
    }
    table.PrintRow(cells);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Part (a), comparison 2: per-trip tape vs batched minibatch training.
// ---------------------------------------------------------------------------

struct TrainRow {
  std::string city;
  std::string method;
  int64_t trips = 0;
  double per_trip_epoch_s = 0.0;
  double batched_epoch_s = 0.0;
  double data_parallel_epoch_s = 0.0;  // batched + FitOptions::data_parallel
  double per_trip_tps = 0.0;  // trips per second
  double batched_tps = 0.0;
  double data_parallel_tps = 0.0;
  double speedup = 0.0;  // per-trip tape -> batched
};

TrainRow MeasureTraining(const CityExperimentConfig& config,
                         const std::string& method, Scale scale) {
  const ExperimentData& data = DataFor(config);
  causaltad::models::FitOptions options =
      causaltad::eval::FitOptionsFor(scale);

  // Path-independent setup cost (scorer bookkeeping, CausalTAD's
  // scaling-table rebuild): one Fit with zero epochs.
  options.epochs = 0;
  double setup_s;
  {
    auto scorer = causaltad::eval::MakeScorer(method, data, scale);
    causaltad::util::Stopwatch watch;
    scorer->Fit(data.train, options);
    setup_s = watch.ElapsedSeconds();
  }

  options.epochs = 1;
  // Index 0: per-trip tape, 1: batched minibatch, 2: batched data-parallel
  // (FitOptions::data_parallel — a no-op for the trainers that do not honor
  // it, which then just repeat the batched timing).
  double epoch_s[3];
  for (const int mode : {0, 1, 2}) {
    auto scorer = causaltad::eval::MakeScorer(method, data, scale);
    options.per_trip_tape = mode == 0;
    options.data_parallel = mode == 2;
    causaltad::util::Stopwatch watch;
    scorer->Fit(data.train, options);
    epoch_s[mode] = std::max(watch.ElapsedSeconds() - setup_s, 1e-9);
  }
  options.data_parallel = false;

  TrainRow row;
  row.city = config.name;
  row.method = method;
  row.trips = static_cast<int64_t>(data.train.size());
  row.per_trip_epoch_s = epoch_s[0];
  row.batched_epoch_s = epoch_s[1];
  row.data_parallel_epoch_s = epoch_s[2];
  row.per_trip_tps = row.trips / row.per_trip_epoch_s;
  row.batched_tps = row.trips / row.batched_epoch_s;
  row.data_parallel_tps = row.trips / row.data_parallel_epoch_s;
  row.speedup = row.per_trip_epoch_s / row.batched_epoch_s;
  return row;
}

// One online pass over a fixed batch of trajectories, prefix-limited to the
// observed ratio. state.counters report the per-trajectory latency.
void OnlineInference(benchmark::State& state,
                     const causaltad::models::TrajectoryScorer* scorer,
                     const std::vector<causaltad::traj::Trip>& trips,
                     double ratio) {
  for (auto _ : state) {
    for (const auto& trip : trips) {
      auto session = scorer->BeginTrip(trip);
      const int64_t prefix = std::max<int64_t>(
          1, static_cast<int64_t>(ratio * trip.route.size()));
      double score = 0.0;
      for (int64_t k = 0; k < prefix; ++k) {
        score = session->Update(trip.route.segments[k]);
      }
      benchmark::DoNotOptimize(score);
    }
  }
  state.counters["us_per_traj"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * trips.size(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// ---------------------------------------------------------------------------
// Per-trip tape path vs batched no-grad fast path (emitted as JSON).
// ---------------------------------------------------------------------------

struct BatchedRow {
  std::string city;
  std::string method;
  double ratio = 0.0;
  double per_trip_us = 0.0;
  double batched_us = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;  // parity guard: batched vs per-trip scores
};

// Best-of-`reps` wall-clock of `fn`, in seconds.
template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    causaltad::util::Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

BatchedRow MeasureBatched(const std::string& city, const std::string& method,
                          const causaltad::models::TrajectoryScorer* scorer,
                          const std::vector<causaltad::traj::Trip>& trips,
                          double ratio) {
  std::vector<int64_t> prefixes;
  prefixes.reserve(trips.size());
  for (const auto& trip : trips) {
    const int64_t n = trip.route.size();
    prefixes.push_back(std::max<int64_t>(
        1, std::min<int64_t>(n, static_cast<int64_t>(std::ceil(ratio * n)))));
  }

  std::vector<double> per_trip_scores(trips.size());
  const double per_trip_s = BestOf(5, [&] {
    for (size_t i = 0; i < trips.size(); ++i) {
      per_trip_scores[i] = scorer->Score(trips[i], prefixes[i]);
    }
  });
  std::vector<double> batched_scores;
  const double batched_s = BestOf(5, [&] {
    batched_scores = scorer->ScoreBatch(trips, prefixes);
  });

  BatchedRow row;
  row.city = city;
  row.method = method;
  row.ratio = ratio;
  row.per_trip_us = per_trip_s * 1e6 / trips.size();
  row.batched_us = batched_s * 1e6 / trips.size();
  row.speedup = row.batched_us > 0.0 ? row.per_trip_us / row.batched_us : 0.0;
  for (size_t i = 0; i < trips.size(); ++i) {
    row.max_abs_diff = std::max(
        row.max_abs_diff, std::abs(batched_scores[i] - per_trip_scores[i]));
  }
  return row;
}

// ---------------------------------------------------------------------------
// Length-bucketed batching: ScoreBatch sharding A/B (emitted as JSON).
// ---------------------------------------------------------------------------

struct BucketRow {
  std::string city;
  std::string method;
  int64_t trips = 0;
  int threads = 0;  // worker-pool width the A/B ran with
  double unbucketed_us = 0.0;  // contiguous equal-count shards
  double bucketed_us = 0.0;    // length-sorted equal-work shards
  double speedup = 0.0;
  double max_abs_diff = 0.0;  // bucketed vs unbucketed scores
};

BucketRow MeasureBucketing(const std::string& city, const std::string& method,
                           const causaltad::models::TrajectoryScorer* scorer,
                           const std::vector<causaltad::traj::Trip>& trips) {
  BucketRow row;
  row.city = city;
  row.method = method;
  row.trips = static_cast<int64_t>(trips.size());
  // Bucketing balances work across the pool, so the gain scales with the
  // thread count; record it so the committed number is interpretable.
  row.threads = causaltad::util::ParallelThreads();
  std::vector<double> scores[2];
  double secs[2];
  for (const bool bucketed : {false, true}) {
    causaltad::util::SetLengthBucketing(bucketed);
    secs[bucketed] =
        BestOf(5, [&] { scores[bucketed] = scorer->ScoreBatch(trips, {}); });
  }
  causaltad::util::SetLengthBucketing(true);
  row.unbucketed_us = secs[0] * 1e6 / trips.size();
  row.bucketed_us = secs[1] * 1e6 / trips.size();
  row.speedup = row.bucketed_us > 0.0 ? row.unbucketed_us / row.bucketed_us
                                      : 0.0;
  for (size_t i = 0; i < trips.size(); ++i) {
    row.max_abs_diff =
        std::max(row.max_abs_diff, std::abs(scores[1][i] - scores[0][i]));
  }
  return row;
}

// ---------------------------------------------------------------------------
// Kernel-substrate A/B: ISA dispatch + int8 embeddings (emitted as JSON).
// ---------------------------------------------------------------------------

struct IsaRow {
  std::string city;
  std::string isa;    // kernel table pinned for this row
  bool int8 = false;  // int8 embedding tables served
  double batched_us = 0.0;
  double max_rel_diff = 0.0;  // scores vs the native fp32 reference row
};

std::vector<IsaRow> MeasureIsaRows(
    const std::string& city, CausalTad* causal,
    const std::vector<causaltad::traj::Trip>& trips) {
  namespace kernels = causaltad::nn::kernels;
  const kernels::Isa native = kernels::ActiveIsa();
  std::vector<double> reference;
  std::vector<IsaRow> rows;
  const auto emit = [&](kernels::Isa isa, bool int8) {
    kernels::SetIsa(isa);
    causaltad::nn::SetInt8Embeddings(int8);
    causal->RebuildServingCache();
    std::vector<double> scores;
    IsaRow row;
    row.city = city;
    row.isa = kernels::IsaName(isa);
    row.int8 = int8;
    row.batched_us =
        BestOf(5, [&] { scores = causal->ScoreBatch(trips, {}); }) * 1e6 /
        trips.size();
    if (reference.empty()) {
      reference = scores;
    } else {
      for (size_t i = 0; i < scores.size(); ++i) {
        row.max_rel_diff = std::max(
            row.max_rel_diff, std::abs(scores[i] - reference[i]) /
                                  std::max(1.0, std::abs(reference[i])));
      }
    }
    rows.push_back(row);
  };
  emit(native, false);  // reference: best ISA, fp32
  if (native != kernels::Isa::kBaseline) {
    emit(kernels::Isa::kBaseline, false);
  }
  emit(native, true);  // best ISA, int8 embeddings
  // Restore the native fp32 serving configuration.
  kernels::SetIsa(native);
  causaltad::nn::SetInt8Embeddings(false);
  causal->RebuildServingCache();
  return rows;
}

void WriteJson(const std::string& path, Scale scale,
               const std::vector<TrainRow>& train_rows,
               const std::vector<BatchedRow>& rows,
               const std::vector<BucketRow>& bucket_rows,
               const std::vector<IsaRow>& isa_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figure\": \"fig7\",\n  \"scale\": \"%s\",\n",
               causaltad::eval::ScaleName(scale));
  std::fprintf(f, "  \"units\": \"us_per_traj\",\n");
  std::fprintf(f, "  \"fig7a_training\": [\n");
  for (size_t i = 0; i < train_rows.size(); ++i) {
    const TrainRow& r = train_rows[i];
    std::fprintf(f,
                 "    {\"city\": \"%s\", \"method\": \"%s\", "
                 "\"trips\": %lld, \"per_trip_epoch_s\": %.3f, "
                 "\"batched_epoch_s\": %.3f, "
                 "\"data_parallel_epoch_s\": %.3f, "
                 "\"per_trip_trips_per_s\": %.0f, "
                 "\"batched_trips_per_s\": %.0f, "
                 "\"data_parallel_trips_per_s\": %.0f, "
                 "\"speedup\": %.2f}%s\n",
                 r.city.c_str(), r.method.c_str(),
                 static_cast<long long>(r.trips), r.per_trip_epoch_s,
                 r.batched_epoch_s, r.data_parallel_epoch_s, r.per_trip_tps,
                 r.batched_tps, r.data_parallel_tps, r.speedup,
                 i + 1 < train_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"per_trip_vs_batched\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BatchedRow& r = rows[i];
    std::fprintf(f,
                 "    {\"city\": \"%s\", \"method\": \"%s\", "
                 "\"ratio\": %.1f, "
                 "\"per_trip_us\": %.2f, \"batched_us\": %.2f, "
                 "\"speedup\": %.2f, \"max_abs_diff\": %.3g}%s\n",
                 r.city.c_str(), r.method.c_str(), r.ratio, r.per_trip_us,
                 r.batched_us, r.speedup, r.max_abs_diff,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fig7_bucketing\": [\n");
  for (size_t i = 0; i < bucket_rows.size(); ++i) {
    const BucketRow& r = bucket_rows[i];
    std::fprintf(f,
                 "    {\"city\": \"%s\", \"method\": \"%s\", "
                 "\"trips\": %lld, \"threads\": %d, "
                 "\"unbucketed_us\": %.2f, "
                 "\"bucketed_us\": %.2f, \"speedup\": %.2f, "
                 "\"max_abs_diff\": %.3g}%s\n",
                 r.city.c_str(), r.method.c_str(),
                 static_cast<long long>(r.trips), r.threads, r.unbucketed_us,
                 r.bucketed_us, r.speedup, r.max_abs_diff,
                 i + 1 < bucket_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fig7_isa\": [\n");
  for (size_t i = 0; i < isa_rows.size(); ++i) {
    const IsaRow& r = isa_rows[i];
    std::fprintf(f,
                 "    {\"city\": \"%s\", \"method\": \"CausalTAD\", "
                 "\"isa\": \"%s\", \"int8\": %s, \"batched_us\": %.2f, "
                 "\"max_rel_diff\": %.3g}%s\n",
                 r.city.c_str(), r.isa.c_str(), r.int8 ? "true" : "false",
                 r.batched_us, r.max_rel_diff,
                 i + 1 < isa_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = causaltad::eval::ScaleFromEnv();
  const std::vector<CityExperimentConfig> cities = {
      causaltad::eval::XianConfig(scale),
      causaltad::eval::ChengduConfig(scale)};

  // Part (a): the per-fraction table plus the per-trip-tape vs batched
  // minibatch training comparison, both cities.
  std::vector<TrainRow> train_rows;
  if (!EnvFlag("CAUSALTAD_FIG7_SKIP_TRAIN_TABLE")) {
    for (const CityExperimentConfig& city : cities) {
      TrainingScalabilityTable(city, scale);
    }
    std::printf("== Fig. 7(a) — per-trip tape vs batched minibatch "
                "training, one epoch at 100%% ==\n\n");
    TablePrinter train_table({"City", "Method", "tape t/s", "batch t/s",
                              "dp t/s", "speedup"});
    train_table.PrintHeader();
    for (const CityExperimentConfig& city : cities) {
      for (const std::string& method :
           {std::string("SAE"), std::string("VSAE"), std::string("GM-VSAE"),
            std::string("DeepTEA"), std::string("CausalTAD")}) {
        train_rows.push_back(MeasureTraining(city, method, scale));
        const TrainRow& r = train_rows.back();
        train_table.PrintRow({r.city, r.method,
                              TablePrinter::Fmt(r.per_trip_tps, 0),
                              TablePrinter::Fmt(r.batched_tps, 0),
                              TablePrinter::Fmt(r.data_parallel_tps, 0),
                              TablePrinter::Fmt(r.speedup, 1) + "x"});
      }
    }
    std::printf("\n");
  }

  // Part (b), comparison 1: seed per-trip tape path vs batched no-grad fast
  // path, both cities, emitted as BENCH_fig7.json.
  std::printf("== Fig. 7(b) — per-trip tape path vs batched no-grad fast "
              "path (40 trips) ==\n\n");
  std::vector<BatchedRow> rows;
  std::vector<BucketRow> bucket_rows;
  std::vector<IsaRow> isa_rows;
  TablePrinter batched_table(
      {"City", "Method", "ratio", "tape us", "batched us", "speedup"});
  batched_table.PrintHeader();
  // The first city's (Xi'an's) fitted models are kept alive for the online
  // latency benchmarks below, so each model is fitted/loaded exactly once.
  std::unique_ptr<causaltad::models::TrajectoryScorer> xian_gmvsae;
  std::unique_ptr<causaltad::models::TrajectoryScorer> xian_causal;
  for (const CityExperimentConfig& city : cities) {
    const ExperimentData& data = DataFor(city);
    auto gmvsae =
        causaltad::eval::FitOrLoad("GM-VSAE", data, city.name, scale);
    auto causal = causaltad::eval::FitOrLoad(
        causaltad::eval::kCausalTadName, data, city.name, scale);
    const CausalTadVariant tg_only(dynamic_cast<CausalTad*>(causal.get()),
                                   ScoreVariant::kLikelihoodOnly);
    const auto batch_trips = Subsample(data.id_test, 40, 42);
    for (const double ratio : {0.2, 0.6, 1.0}) {
      for (const auto& [name, scorer] :
           std::vector<std::pair<std::string,
                                 const causaltad::models::TrajectoryScorer*>>{
               {"GM-VSAE", gmvsae.get()},
               {"TG-VAE", &tg_only},
               {"CausalTAD", causal.get()}}) {
        rows.push_back(
            MeasureBatched(city.name, name, scorer, batch_trips, ratio));
        const BatchedRow& r = rows.back();
        batched_table.PrintRow({r.city, r.method, TablePrinter::Fmt(r.ratio, 1),
                                TablePrinter::Fmt(r.per_trip_us, 1),
                                TablePrinter::Fmt(r.batched_us, 1),
                                TablePrinter::Fmt(r.speedup, 1) + "x"});
      }
    }
    // Quantized serving row: int8 embedding tables behind the same batched
    // fast path (dequantizing gather + int8 gate-projection matmul).
    {
      auto* causal_tad = dynamic_cast<CausalTad*>(causal.get());
      causaltad::nn::SetInt8Embeddings(true);
      causal_tad->RebuildServingCache();
      rows.push_back(MeasureBatched(city.name, "CausalTAD-int8", causal.get(),
                                    batch_trips, 1.0));
      causaltad::nn::SetInt8Embeddings(false);
      causal_tad->RebuildServingCache();
      const BatchedRow& r = rows.back();
      batched_table.PrintRow({r.city, r.method, TablePrinter::Fmt(r.ratio, 1),
                              TablePrinter::Fmt(r.per_trip_us, 1),
                              TablePrinter::Fmt(r.batched_us, 1),
                              TablePrinter::Fmt(r.speedup, 1) + "x"});
    }
    // Length-bucketed ScoreBatch sharding A/B on a mixed-length batch.
    const auto bucket_trips = Subsample(data.id_test, 200, 43);
    for (const auto& [name, scorer] :
         std::vector<std::pair<std::string,
                               const causaltad::models::TrajectoryScorer*>>{
             {"GM-VSAE", gmvsae.get()}, {"CausalTAD", causal.get()}}) {
      bucket_rows.push_back(
          MeasureBucketing(city.name, name, scorer, bucket_trips));
    }
    // Kernel-substrate A/B: baseline vs best-ISA dispatch and int8
    // embeddings, on the same mixed-length batch.
    for (IsaRow& row : MeasureIsaRows(
             city.name, dynamic_cast<CausalTad*>(causal.get()),
             bucket_trips)) {
      isa_rows.push_back(std::move(row));
    }
    if (&city == &cities.front()) {
      xian_gmvsae = std::move(gmvsae);
      xian_causal = std::move(causal);
    }
  }
  std::printf("\n== Length-bucketed ScoreBatch sharding (full routes) ==\n\n");
  TablePrinter bucket_table(
      {"City", "Method", "flat us", "bucketed us", "speedup"});
  bucket_table.PrintHeader();
  for (const BucketRow& r : bucket_rows) {
    bucket_table.PrintRow({r.city, r.method,
                           TablePrinter::Fmt(r.unbucketed_us, 1),
                           TablePrinter::Fmt(r.bucketed_us, 1),
                           TablePrinter::Fmt(r.speedup, 2) + "x"});
  }
  std::printf("\n== Kernel substrate: ISA dispatch + int8 embeddings "
              "(full routes) ==\n\n");
  TablePrinter isa_table({"City", "ISA", "int8", "batched us", "max rel diff"});
  isa_table.PrintHeader();
  for (const IsaRow& r : isa_rows) {
    isa_table.PrintRow({r.city, r.isa, r.int8 ? "yes" : "no",
                        TablePrinter::Fmt(r.batched_us, 1),
                        TablePrinter::Fmt(r.max_rel_diff, 6)});
  }
  std::printf("\n");
  const char* json_env = std::getenv("CAUSALTAD_BENCH_JSON");
  WriteJson(json_env != nullptr ? json_env : "BENCH_fig7.json", scale,
            train_rows, rows, bucket_rows, isa_rows);

  // Part (b), comparison 2: the paper's online-session latency protocol
  // (Xi'an; per-trajectory latency is a method property, not a city one).
  // The learned models are the ones already fitted for comparison 1.
  const CityExperimentConfig& xian = cities.front();
  const ExperimentData& xian_data = DataFor(xian);
  const auto iboat =
      causaltad::eval::FitOrLoad("iBOAT", xian_data, xian.name, scale);
  const CausalTadVariant tg_only(
      dynamic_cast<CausalTad*>(xian_causal.get()),
      ScoreVariant::kLikelihoodOnly);
  const auto online_trips = Subsample(xian_data.id_test, 40, 42);

  std::printf("\n== Fig. 7(b) — online inference runtime per trajectory "
              "(google-benchmark; us_per_traj counter) ==\n");
  double min_time = 0.0;
  if (const char* env = std::getenv("CAUSALTAD_BENCH_MIN_TIME")) {
    min_time = std::atof(env);
  }
  for (const double ratio : {0.2, 0.6, 1.0}) {
    const std::string suffix = "/ratio=" + TablePrinter::Fmt(ratio, 1);
    std::vector<benchmark::internal::Benchmark*> registered = {
        benchmark::RegisterBenchmark(
            ("iBOAT" + suffix).c_str(),
            [ratio, scorer = iboat.get(),
             &online_trips](benchmark::State& s) {
              OnlineInference(s, scorer, online_trips, ratio);
            }),
        benchmark::RegisterBenchmark(
            ("GM-VSAE" + suffix).c_str(),
            [ratio, scorer = xian_gmvsae.get(),
             &online_trips](benchmark::State& s) {
              OnlineInference(s, scorer, online_trips, ratio);
            }),
        benchmark::RegisterBenchmark(
            ("TG-VAE" + suffix).c_str(),
            [ratio, scorer = &tg_only, &online_trips](benchmark::State& s) {
              OnlineInference(s, scorer, online_trips, ratio);
            }),
        benchmark::RegisterBenchmark(
            ("CausalTAD" + suffix).c_str(),
            [ratio, scorer = xian_causal.get(),
             &online_trips](benchmark::State& s) {
              OnlineInference(s, scorer, online_trips, ratio);
            })};
    if (min_time > 0.0) {
      for (auto* b : registered) b->MinTime(min_time);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
