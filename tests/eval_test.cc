#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "eval/datasets.h"
#include "eval/metrics.h"

namespace causaltad {
namespace eval {
namespace {

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(RocAucTest, PerfectSeparation) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, PerfectInversion) {
  const std::vector<double> scores = {0.9, 0.8, 0.1, 0.2};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, AllTiedIsHalf) {
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, KnownHandComputedValue) {
  // scores: N=1, A=2, N=3, A=4  => pairs won: (1<2),(1<4),(3<4) = 3 of 4.
  const std::vector<double> scores = {1, 2, 3, 4};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.75);
}

TEST(RocAucTest, InvariantUnderMonotonicTransform) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.Gaussian(labels.empty() ? 0 : 1, 1));
    labels.push_back(static_cast<uint8_t>(rng.Bernoulli(0.4)));
  }
  labels[0] = 0;
  labels[1] = 1;
  const double base = RocAuc(scores, labels);
  std::vector<double> transformed = scores;
  for (double& s : transformed) s = std::exp(0.3 * s) + 7.0;
  EXPECT_NEAR(RocAuc(transformed, labels), base, 1e-12);
}

TEST(PrAucTest, PerfectSeparationIsOne) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(PrAuc(scores, labels), 1.0);
}

TEST(PrAucTest, KnownHandComputedValue) {
  // Descending: 4(A) p=1 -> AP += 1; 3(N); 2(A) p=2/3 -> AP += 2/3.
  const std::vector<double> scores = {1, 2, 3, 4};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  EXPECT_NEAR(PrAuc(scores, labels), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(PrAucTest, AllTiedEqualsPositiveRate) {
  const std::vector<double> scores = {5, 5, 5, 5, 5};
  const std::vector<uint8_t> labels = {1, 0, 0, 1, 0};
  EXPECT_NEAR(PrAuc(scores, labels), 0.4, 1e-12);
}

TEST(PrAucTest, PermutationInvariantWithTies) {
  std::vector<double> scores = {1, 1, 2, 2, 3, 3};
  std::vector<uint8_t> labels = {0, 1, 1, 0, 1, 0};
  const double base = PrAuc(scores, labels);
  // Swap within tie groups.
  std::swap(labels[0], labels[1]);
  std::swap(scores[0], scores[1]);
  EXPECT_NEAR(PrAuc(scores, labels), base, 1e-12);
}

TEST(EvaluateScoresTest, CombinesSets) {
  const std::vector<double> normal = {0.1, 0.2};
  const std::vector<double> anomaly = {0.8, 0.9};
  const EvalResult r = EvaluateScores(normal, anomaly);
  EXPECT_DOUBLE_EQ(r.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(r.pr_auc, 1.0);
  EXPECT_EQ(r.num_normal, 2);
  EXPECT_EQ(r.num_anomaly, 2);
}

// Property sweep: AUC of random scores is near 0.5, AUC of shifted scores is
// clearly above it, for several seeds.
class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, RandomScoresNearHalfShiftedAboveIt) {
  util::Rng rng(GetParam());
  std::vector<double> normal, anomaly, shifted;
  for (int i = 0; i < 400; ++i) {
    normal.push_back(rng.Gaussian());
    anomaly.push_back(rng.Gaussian());
    shifted.push_back(rng.Gaussian(1.5, 1.0));
  }
  const double random_auc = EvaluateScores(normal, anomaly).roc_auc;
  EXPECT_NEAR(random_auc, 0.5, 0.08);
  const double shifted_auc = EvaluateScores(normal, shifted).roc_auc;
  EXPECT_GT(shifted_auc, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 7, 19, 77));

// ---------------------------------------------------------------------------
// Experiment protocol.
// ---------------------------------------------------------------------------

class ExperimentDataTest : public ::testing::Test {
 protected:
  static const ExperimentData& Data() {
    static const ExperimentData* data = [] {
      auto cfg = XianConfig(Scale::kSmoke);
      return new ExperimentData(BuildExperiment(cfg));
    }();
    return *data;
  }
};

TEST_F(ExperimentDataTest, SplitsAreNonEmptyAndValid) {
  const auto& d = Data();
  EXPECT_FALSE(d.train.empty());
  EXPECT_FALSE(d.id_test.empty());
  EXPECT_FALSE(d.ood_test.empty());
  for (const auto* split :
       {&d.train, &d.id_test, &d.ood_test, &d.id_detour, &d.id_switch,
        &d.ood_detour, &d.ood_switch}) {
    for (const traj::Trip& t : *split) {
      EXPECT_TRUE(t.route.IsValid(d.city.network));
    }
  }
}

TEST_F(ExperimentDataTest, TrainAndIdTestShareSdPairs) {
  const auto& d = Data();
  std::set<int32_t> train_pairs, id_pairs;
  for (const auto& t : d.train) train_pairs.insert(t.sd_pair_id);
  for (const auto& t : d.id_test) id_pairs.insert(t.sd_pair_id);
  EXPECT_EQ(train_pairs, id_pairs);
  EXPECT_EQ(train_pairs.count(-1), 0u);
}

TEST_F(ExperimentDataTest, OodPairsUnseenInTraining) {
  const auto& d = Data();
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> train_sd;
  for (const auto& t : d.train) train_sd.insert({t.source_node, t.dest_node});
  for (const auto& t : d.ood_test) {
    EXPECT_EQ(train_sd.count({t.source_node, t.dest_node}), 0u);
    EXPECT_EQ(t.sd_pair_id, -1);
  }
}

TEST_F(ExperimentDataTest, AnomalySetsAreLabeled) {
  const auto& d = Data();
  for (const auto& t : d.id_detour) {
    EXPECT_EQ(t.anomaly, traj::AnomalyKind::kDetour);
  }
  for (const auto& t : d.ood_switch) {
    EXPECT_EQ(t.anomaly, traj::AnomalyKind::kSwitch);
  }
  for (const auto& t : d.id_test) EXPECT_FALSE(t.is_anomaly());
}

TEST_F(ExperimentDataTest, AnomalyCountsCloseToNormalCounts) {
  const auto& d = Data();
  EXPECT_GT(d.id_detour.size(), d.id_test.size() / 2);
  EXPECT_GT(d.ood_detour.size(), d.ood_test.size() / 2);
  EXPECT_GT(d.id_switch.size(), d.id_test.size() / 3);
  EXPECT_GT(d.ood_switch.size(), d.ood_test.size() / 3);
}

TEST_F(ExperimentDataTest, DeterministicRebuild) {
  const auto& d = Data();
  const ExperimentData d2 = BuildExperiment(XianConfig(Scale::kSmoke));
  ASSERT_EQ(d.train.size(), d2.train.size());
  for (size_t i = 0; i < d.train.size(); ++i) {
    EXPECT_EQ(d.train[i].route.segments, d2.train[i].route.segments);
  }
  ASSERT_EQ(d.ood_switch.size(), d2.ood_switch.size());
  for (size_t i = 0; i < d.ood_switch.size(); ++i) {
    EXPECT_EQ(d.ood_switch[i].route.segments,
              d2.ood_switch[i].route.segments);
  }
}

TEST_F(ExperimentDataTest, ZipfAllocationIsSkewed) {
  const auto& d = Data();
  std::map<int32_t, int> counts;
  for (const auto& t : d.train) counts[t.sd_pair_id]++;
  int max_c = 0, min_c = 1 << 30;
  for (const auto& [pid, c] : counts) {
    max_c = std::max(max_c, c);
    min_c = std::min(min_c, c);
  }
  EXPECT_GT(max_c, min_c);  // popular pairs dominate
}

TEST(MixShiftTest, AlphaControlsComposition) {
  const ExperimentData d = BuildExperiment(XianConfig(Scale::kSmoke));
  for (double alpha : {0.0, 0.5, 1.0}) {
    const auto mixed = MixShift(d.id_test, d.ood_test, alpha, 9);
    ASSERT_FALSE(mixed.empty());
    int64_t ood = 0;
    for (const auto& t : mixed) ood += (t.sd_pair_id == -1);
    const double frac = static_cast<double>(ood) / mixed.size();
    EXPECT_NEAR(frac, alpha, 0.1) << "alpha=" << alpha;
  }
}

TEST(SubsampleTest, RespectsBoundAndIsDeterministic) {
  const ExperimentData d = BuildExperiment(XianConfig(Scale::kSmoke));
  const auto a = Subsample(d.id_test, 10, 5);
  const auto b = Subsample(d.id_test, 10, 5);
  ASSERT_EQ(a.size(), 10u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].route.segments, b[i].route.segments);
  }
  const auto all = Subsample(d.id_test, 1 << 20, 5);
  EXPECT_EQ(all.size(), d.id_test.size());
}

TEST(ConfigTest, CitiesDiffer) {
  const auto xian = XianConfig(Scale::kDefault);
  const auto chengdu = ChengduConfig(Scale::kDefault);
  EXPECT_NE(xian.city.seed, chengdu.city.seed);
  EXPECT_GT(chengdu.city.rows, xian.city.rows);
  EXPECT_GT(chengdu.trips_per_pair, xian.trips_per_pair);
}

}  // namespace
}  // namespace eval
}  // namespace causaltad
