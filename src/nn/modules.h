#ifndef CAUSALTAD_NN_MODULES_H_
#define CAUSALTAD_NN_MODULES_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "util/random.h"

namespace causaltad {
namespace nn {

class Module;

/// A parameter with its hierarchical name ("encoder.fc1.w"). `owner` is the
/// module the parameter was registered on (null for ad-hoc entries built
/// outside a module tree) — the checkpoint writer uses it to recognize
/// embedding tables that carry an int8 serving copy.
struct NamedParam {
  std::string name;
  Var var;
  const Module* owner = nullptr;
};

/// Base class for parameterized components. Subclasses register parameters
/// and submodules in their constructors; Parameters()/NamedParameters()
/// traverse the tree. Names are stable across runs, which is what the
/// checkpoint format keys on.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// All parameters of this module and its submodules.
  std::vector<Var> Parameters() const;

  /// All parameters with hierarchical dotted names.
  std::vector<NamedParam> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t NumParams() const;

 protected:
  /// Creates a trainable leaf and registers it under `name`.
  Var RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child (not owned; typically a member of the subclass).
  void RegisterSubmodule(Module* module);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<NamedParam>* out) const;

  std::string name_;
  std::vector<NamedParam> params_;
  std::vector<Module*> submodules_;
};

/// Fully-connected layer y = x @ w + b, Xavier-initialized.
class Linear : public Module {
 public:
  Linear(std::string name, int64_t in_dim, int64_t out_dim, util::Rng* rng);

  Var Forward(const Var& x) const { return Affine(x, w_, b_); }

  const Var& w() const { return w_; }
  const Var& b() const { return b_; }

 private:
  Var w_, b_;
};

/// Process-wide switch for serving-path int8 embedding reads. Defaults to
/// the CAUSALTAD_INT8_EMB environment variable (off when unset). When on,
/// every Embedding whose quantized copy is fresh (RefreshQuantized() called
/// since the last table mutation) serves its no-grad reads dequantized from
/// the int8 copy; training-tape gathers always read the fp32 master so
/// gradients keep full precision.
bool Int8EmbeddingsEnabled();
void SetInt8Embeddings(bool enabled);

/// Token embedding table [vocab, dim], with an optional int8 serving copy.
///
/// Quantization format: symmetric per-row absmax int8 —
/// q[i,j] = round(table[i,j] / scale[i]), scale[i] = absmax(row i)/127.
/// The fp32 table stays the single authoritative parameter (gradients
/// scatter into it, checkpoints may persist either representation); the
/// int8 copy is a derived cache refreshed by RefreshQuantized(). Callers
/// that mutate the table (Fit, Load, manual writes) must re-refresh before
/// serving — the CausalTad serving-cache rebuild hook does this.
class Embedding : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, util::Rng* rng);

  /// Looks up rows -> [ids.size(), dim]. When the int8 path is active
  /// (switch on + fresh quantized copy) and no tape is being recorded, the
  /// returned values are the dequantized int8 rows — the same values every
  /// other serving-path read sees, so batched and streaming scorers stay
  /// bit-identical. Tape-recording lookups always gather fp32.
  Var Forward(std::span<const int32_t> ids) const;

  /// Gathers rows into out[ids.size() * dim] without building a Var:
  /// dequantized int8 when the int8 path is active, fp32 copies otherwise.
  /// The raw-buffer twin of Forward for the fused scoring paths.
  void GatherRowValues(std::span<const int32_t> ids, float* out) const;

  /// Re-quantizes the int8 copy from the current fp32 table.
  void RefreshQuantized();

  /// True when the switch is on and the quantized copy is fresh — the
  /// condition under which every no-grad read serves int8.
  bool Int8Active() const;

  /// Raw quantized storage for the int8 matmul fast path and the
  /// checkpoint writer. Valid only while Int8Active() / after
  /// RefreshQuantized().
  const int8_t* quantized_rows() const { return quant_.data(); }
  const float* row_scales() const { return scales_.data(); }
  bool has_quantized() const { return quant_valid_; }

  const Var& table() const { return table_; }
  int64_t vocab() const { return table_.value().dim(0); }
  int64_t dim() const { return table_.value().dim(1); }

 private:
  Var table_;
  std::vector<int8_t> quant_;
  std::vector<float> scales_;
  bool quant_valid_ = false;
};

/// Gated recurrent unit cell (Cho et al. 2014).
class GruCell : public Module {
 public:
  GruCell(std::string name, int64_t in_dim, int64_t hidden_dim,
          util::Rng* rng);

  /// One step: x [1,in], h [1,hidden] -> h' [1,hidden]. Composed from
  /// differentiable ops; this is the training path and the reference
  /// implementation for StepFused.
  Var Step(const Var& x, const Var& h) const;

  /// Inference fast path: computes all three gates in one pass over
  /// thread-local arena scratch using the packed MatMul kernel, with no
  /// intermediate Vars. Accepts batches — x [B,in], h [B,hidden] ->
  /// h' [B,hidden]. Numerically equivalent to Step. Falls back to the
  /// op-composed Step whenever a tape is being recorded and some input
  /// requires gradients, so it is always safe to call.
  Var StepFused(const Var& x, const Var& h) const;

  /// Projects input rows through all three gate input weights at once:
  /// row i of the result is [x_i·Wz | x_i·Wr | x_i·Wh] ([n, 3*hidden]).
  /// Batched rolls feed embedding-table rows as inputs, so projecting each
  /// unique row once and gathering per step removes the input half of the
  /// gate matmuls from the recurrent loop.
  Tensor ProjectInputs(const Tensor& xs) const;

  /// StepFused with pre-projected inputs: `xw` points at `batch` rows of
  /// [3*hidden] floats gathered from a ProjectInputs result. Inference
  /// only — requires an active InferenceGuard.
  Var StepFusedProjected(const float* xw, int64_t batch, const Var& h) const;

  /// ProjectInputs over int8-quantized embedding rows: gathers rows `ids`
  /// of the quantized table `q` ([vocab, in] int8, per-row `scales`) and
  /// multiplies them against the packed [Wz | Wr | Wh] gate weights through
  /// the registry's int8 matmul, so the input half of the gate projections
  /// reads a quarter of the fp32 bandwidth. Row i of the result is
  /// scales[ids[i]] * (q[ids[i],:] · [Wz|Wr|Wh]) ([ids.size(), 3*hidden]).
  Tensor ProjectInputsQuantized(const int8_t* q, const float* scales,
                                std::span<const int32_t> ids,
                                int64_t in_dim) const;

  /// Batched *training* step: x [B,in], h [B,hidden] -> h' [B,hidden] as a
  /// single tape node whose hand-written backward reuses the packed MatMul
  /// kernel and the fastmath transcendentals — the tape-aware twin of
  /// StepFused. `finished` (size B, may be empty) marks rows whose sequence
  /// ended before this step: a finished row's state passes through
  /// unchanged and contributes no gradient, which is what lets Fit() roll
  /// variable-length [B, hidden] minibatches through one tape.
  /// Numerically equivalent to Step (values and gradients).
  Var StepBatched(const Var& x, const Var& h,
                  std::span<const uint8_t> finished = {}) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  /// Shared fused-step tail: given gate buffers pre-filled with the input
  /// projections (z = xWz, r = xWr, c = xWh), adds the recurrent terms and
  /// applies the nonlinearities in one pass. Buffers are arena scratch.
  Var FusedGateTail(const Tensor& th, int64_t batch, float* z, float* r,
                    float* c) const;

  /// Arena-packs [Wz | Wr | Wh] side by side ([in, 3*hidden]); the caller
  /// holds the ArenaScope.
  float* PackedGateWeights(int64_t in) const;

  int64_t hidden_dim_;
  Var wz_, uz_, bz_;
  Var wr_, ur_, br_;
  Var wh_, uh_, bh_;
};

/// Multilayer perceptron with tanh activations between layers (none after
/// the last).
class Mlp : public Module {
 public:
  Mlp(std::string name, const std::vector<int64_t>& dims, util::Rng* rng);

  Var Forward(const Var& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_MODULES_H_
