#ifndef CAUSALTAD_MODELS_SCORER_H_
#define CAUSALTAD_MODELS_SCORER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"
#include "util/random.h"
#include "util/status.h"

namespace causaltad {
namespace models {

/// Training options shared by all learned scorers.
struct FitOptions {
  int epochs = 10;
  /// Rows per tape: each optimizer step back-propagates one length-sorted
  /// [batch_size, hidden] minibatch through a single tape (batched fused
  /// GRU steps, finished-row masking). With `per_trip_tape` it reverts to
  /// the legacy meaning — the number of per-trip tapes whose gradients are
  /// accumulated between optimizer steps. Both paths take the same number
  /// of optimizer steps per epoch and sum (not average) per-trip losses,
  /// so a given lr/batch_size tuning transfers between them.
  int batch_size = 16;
  float lr = 1e-3f;
  double grad_clip = 5.0;
  uint64_t seed = 7;
  /// Print per-epoch loss, wall time, and trips/sec to stderr.
  bool verbose = false;
  /// Legacy training path: one autograd tape per trip, gradients
  /// accumulated across batch_size trips. Kept for A/B benchmarking
  /// (bench_fig7_efficiency's fig7a section) and gradient-parity tests.
  bool per_trip_tape = false;
  /// Data-parallel batched training (honored by CausalTad::Fit): groups of
  /// data_parallel_width minibatches build their forward tapes concurrently
  /// — each minibatch samples from its own Rng seeded by the global batch
  /// index, so losses and gradients are independent of worker count — then
  /// the backward passes run serially in minibatch order and one clipped
  /// optimizer step consumes the group's summed gradients. Effective rows
  /// per step are batch_size * data_parallel_width. Ignored with
  /// per_trip_tape.
  bool data_parallel = false;
  /// Minibatches per data-parallel group. The group width fixes the
  /// optimizer trajectory (one step per group), so it is an explicit option
  /// rather than a thread-count read: the same width trains to bit-identical
  /// weights whether ParallelFor runs it on 1 thread or 16. <= 0 snapshots
  /// util::ParallelThreads() at Fit entry.
  int data_parallel_width = 0;
};

/// Epoch iteration plan for minibatched training: trip indices are
/// shuffled, stable-sorted by route length (descending) so each batch_size
/// slice is near-uniform length (minimal finished-row masking waste in the
/// [B, hidden] rolls), and the slices are visited in shuffled order so the
/// optimizer does not always see long trips first. Shared by every batched
/// Fit() so the trainers stay in lockstep.
std::vector<std::vector<int64_t>> LengthSortedBatches(
    const std::vector<traj::Trip>& trips, int64_t batch_size, util::Rng* rng);

/// Incremental scorer for one ongoing trip (the paper's online setting).
/// Segments are fed in order; Update returns the anomaly score of the
/// prefix observed so far. Implementations document their per-update cost.
/// Contract: after feeding the first k segments of the trip's route, the
/// score equals Score(trip, k) — the streaming tests enforce this for
/// every method. (The trip passed to BeginTrip carries the full planned
/// route; its endpoints are SD context models may use from update one.)
class OnlineScorer {
 public:
  virtual ~OnlineScorer() = default;

  /// Feeds the next observed road segment, returns the current score.
  virtual double Update(roadnet::SegmentId segment) = 0;
};

/// Forces every BeginTrip back to the O(prefix)-per-update rescoring
/// reference path (replaying the growing prefix through Score). Defaults to
/// off — models serve their incremental sessions; CAUSALTAD_ONLINE_RESCORE=1
/// starts it on. The fig6 bench and the streaming parity tests A/B the two
/// paths through this switch.
bool OnlineRescoringForced();
void SetOnlineRescoringForced(bool forced);

/// Common interface for every anomaly detector in the evaluation: the
/// CausalTAD core and all baselines. Higher scores mean more anomalous.
class TrajectoryScorer {
 public:
  virtual ~TrajectoryScorer() = default;

  virtual std::string Name() const = 0;

  /// Trains on normal trips. Deterministic given options.seed.
  virtual void Fit(const std::vector<traj::Trip>& trips,
                   const FitOptions& options) = 0;

  /// Anomaly score of the first `prefix_len` segments of the trip. The SD
  /// pair and departure slot are known upfront (set when the order is
  /// placed), so models may use them even for short prefixes.
  /// prefix_len <= 0 or beyond the route scores the full trajectory.
  virtual double Score(const traj::Trip& trip, int64_t prefix_len) const = 0;

  /// Score of the complete trajectory.
  double ScoreFull(const traj::Trip& trip) const {
    return Score(trip, trip.route.size());
  }

  /// Batched scoring: element i is Score(trips[i], prefix_lens[i]) (the
  /// same <=0 / beyond-route clamping applies). `prefix_lens` may be empty,
  /// meaning full trajectories. The base implementation loops over Score;
  /// recurrent models override it with a no-grad fast path that rolls all
  /// trips through one [B, hidden] state, which is how the evaluation
  /// harness and the serving path amortize per-step costs.
  virtual std::vector<double> ScoreBatch(
      std::span<const traj::Trip> trips,
      std::span<const int64_t> prefix_lens) const;

  /// Scores trip i at each prefix length of checkpoints[i] in one pass:
  /// out[i][j] == Score(trips[i], checkpoints[i][j]) (same <=0 /
  /// beyond-route clamping). The base implementation flattens every
  /// (trip, checkpoint) pair into one ScoreBatch call, so models with a
  /// batched fast path amortize it automatically; CausalTad overrides this
  /// with a single incremental roll per trip (every checkpoint read off one
  /// set of running prefix sums), which is what collapses fig6's
  /// observed-ratio sweep from R independent re-scores into one roll.
  virtual std::vector<std::vector<double>> ScoreCheckpoints(
      std::span<const traj::Trip> trips,
      std::span<const std::vector<int64_t>> checkpoints) const;

  /// Starts incremental scoring of one trip (context only; segments are fed
  /// via OnlineScorer::Update). The base implementation re-scores the prefix
  /// on every update — O(prefix) per point; models with recurrent state
  /// override it with sessions that carry the state forward (O(1) per point
  /// for the road-constrained decoders). Overrides fall back to the base
  /// rescoring path while OnlineRescoringForced() is set.
  virtual std::unique_ptr<OnlineScorer> BeginTrip(const traj::Trip& trip) const;

  /// Persists / restores the fitted model.
  virtual util::Status Save(const std::string& path) const = 0;
  virtual util::Status Load(const std::string& path) = 0;
};

}  // namespace models
}  // namespace causaltad

#endif  // CAUSALTAD_MODELS_SCORER_H_
