#ifndef CAUSALTAD_NN_AUTOGRAD_H_
#define CAUSALTAD_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace causaltad {
namespace nn {

/// A node in the dynamically-built computation graph.
///
/// Users interact with Var handles; Node is exposed so the optimizer can key
/// per-parameter state on stable node pointers.
struct Node {
  Tensor value;
  Tensor grad;  // allocated on first use, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents' grads. Null for leaves and
  /// gradient-free nodes.
  std::function<void()> backward;

  /// Allocates (zeroed) grad storage if absent.
  void EnsureGrad() {
    if (!grad.defined()) grad = Tensor::Zeros(value.shape());
  }
};

/// Reference-counted handle to a graph node. Cheap to copy; the graph stays
/// alive as long as some handle (or a descendant node) references it.
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false)
      : node_(std::make_shared<Node>()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
  }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  /// Gradient tensor (allocated on demand).
  Tensor& grad() {
    node_->EnsureGrad();
    return node_->grad;
  }
  const Tensor& grad() const {
    node_->EnsureGrad();
    return node_->grad;
  }

  /// Clears accumulated gradient (keeps storage).
  void ZeroGrad() {
    if (node_ && node_->grad.defined()) node_->grad.Fill(0.0f);
  }

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode accumulation from `root`, which must be a scalar
/// (1-element) tensor. Gradients accumulate (+=) into every
/// requires_grad node reachable from root; leaves keep them until ZeroGrad.
void Backward(const Var& root);

namespace internal {
/// Creates an op output node: value, parents, and requires_grad inferred
/// from parents. Returns the Var plus a pointer to the node's backward slot
/// (null when no parent requires grad, in which case the op must not install
/// a backward closure).
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void()>** backward_slot, Node** self);
}  // namespace internal

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_AUTOGRAD_H_
