#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/fastmath.h"
#include "nn/kernels/kernels.h"
#include "util/logging.h"

namespace causaltad {
namespace nn {
namespace {

using internal::MakeOp;
using kernels::Kernels;

// True when b should be broadcast across a's rows: b is [1, a.cols] (or a
// has rank 2 and b is a 1-element scalar).
enum class BroadcastMode { kNone, kRow, kScalar };

BroadcastMode BroadcastOf(const Tensor& a, const Tensor& b) {
  if (a.SameShape(b)) return BroadcastMode::kNone;
  if (b.numel() == 1) return BroadcastMode::kScalar;
  if (a.ndim() == 2 && b.ndim() == 2 && b.dim(0) == 1 &&
      b.dim(1) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  if (a.ndim() == 2 && b.ndim() == 1 && b.dim(0) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  CAUSALTAD_CHECK(false) << "incompatible shapes for broadcast op";
  return BroadcastMode::kNone;
}

// Accumulates `g` (shaped like the op output / lhs) into rhs grad under the
// given broadcast mode.
void AccumulateBroadcastGrad(const Tensor& g, BroadcastMode mode, float sign,
                             Tensor* db) {
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < g.numel(); ++i) (*db)[i] += sign * g[i];
  } else if (mode == BroadcastMode::kScalar) {
    float total = 0.0f;
    for (int64_t i = 0; i < g.numel(); ++i) total += g[i];
    (*db)[0] += sign * total;
  } else {
    const int64_t rows = g.dim(0), cols = g.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) (*db)[c] += sign * gr[c];
    }
  }
}

Var AddLike(const Var& a, const Var& b, float sign_b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  const BroadcastMode mode = BroadcastOf(ta, tb);
  Tensor out = ta;
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += sign_b * tb[i];
  } else if (mode == BroadcastMode::kScalar) {
    const float v = sign_b * tb[0];
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += v;
  } else {
    const int64_t rows = ta.dim(0), cols = ta.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      float* orow = out.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += sign_b * tb[c];
    }
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, mode, sign_b]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        AccumulateBroadcastGrad(self->grad, mode, sign_b, &nb->grad);
      }
    };
  }
  return result;
}

// out = f(a) elementwise with derivative expressed from (input, output).
template <typename Fwd, typename Bwd>
Var ElementwiseUnary(const Var& a, Fwd fwd, Bwd bwd_factor) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, bwd_factor]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] +=
            self->grad[i] * bwd_factor(na->value[i], self->value[i]);
      }
    };
  }
  return result;
}

}  // namespace

Var Constant(Tensor value) { return Var(std::move(value), false); }

Var Add(const Var& a, const Var& b) { return AddLike(a, b, 1.0f); }
Var Sub(const Var& a, const Var& b) { return AddLike(a, b, -1.0f); }

Var Mul(const Var& a, const Var& b) {
  CAUSALTAD_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= b.value()[i];

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i] * nb->value[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          nb->grad[i] += self->grad[i] * na->value[i];
        }
      }
    };
  }
  return result;
}

Var ScalarMul(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, scalar]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i] * scalar;
      }
    };
  }
  return result;
}

Var ScalarAdd(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i];
      }
    };
  }
  return result;
}

Var MatMul(const Var& a, const Var& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  CAUSALTAD_CHECK_EQ(ta.ndim(), 2);
  CAUSALTAD_CHECK_EQ(tb.ndim(), 2);
  CAUSALTAD_CHECK_EQ(ta.dim(1), tb.dim(0));
  const int64_t m = ta.dim(0), k = ta.dim(1), n = tb.dim(1);
  Tensor out({m, n});
  kernels::Active().matmul_packed(ta.data(), tb.data(), out.data(), m, k, n,
                                  /*accumulate=*/false,
                                  /*b_pretransposed=*/false);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, m, k, n]() {
      const Kernels& kern = kernels::Active();
      const Tensor& g = self->grad;
      if (na->requires_grad) {
        na->EnsureGrad();
        // dA += G · Bᵀ: B ([k,n] row-major) is exactly the pretransposed
        // layout the packed kernel wants for the [m,n]x[n,k] product.
        kern.matmul_packed(g.data(), nb->value.data(), na->grad.data(), m, n,
                           k, /*accumulate=*/true, /*b_pretransposed=*/true);
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        // dB += Aᵀ · G.
        kern.add_matmul_transposed_a(na->value.data(), g.data(),
                                     nb->grad.data(), m, k, n);
      }
    };
  }
  return result;
}

Var Affine(const Var& x, const Var& w, const Var& b) {
  Var y = MatMul(x, w);
  if (!b.defined()) return y;
  return Add(y, b);
}

namespace {

// Transcendental unaries dispatch their forward through the registry's
// vector kernels (the backward closures only need (input, output) pairs, so
// they stay local lambdas like every other ElementwiseUnary).
template <typename Bwd>
Var TranscendentalUnary(const Var& a,
                        void (*const vec)(const float*, float*, int64_t),
                        Bwd bwd_factor) {
  Tensor out(a.value().shape());
  vec(a.value().data(), out.data(), out.numel());
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, bwd_factor]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] +=
            self->grad[i] * bwd_factor(na->value[i], self->value[i]);
      }
    };
  }
  return result;
}

}  // namespace

Var Tanh(const Var& a) {
  return TranscendentalUnary(a, kernels::Active().tanh_vec,
                             [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return TranscendentalUnary(a, kernels::Active().sigmoid_vec,
                             [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Exp(const Var& a) {
  return TranscendentalUnary(a, kernels::Active().exp_vec,
                             [](float, float y) { return y; });
}

Var Neg(const Var& a) { return ScalarMul(a, -1.0f); }

Var Sum(const Var& a) {
  float total = 0.0f;
  for (int64_t i = 0; i < a.value().numel(); ++i) total += a.value()[i];
  Tensor out({1, 1});
  out[0] = total;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t i = 0; i < na->grad.numel(); ++i) na->grad[i] += g;
    };
  }
  return result;
}

Var Mean(const Var& a) {
  return ScalarMul(Sum(a), 1.0f / static_cast<float>(a.value().numel()));
}

Var SumRows(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({rows, 1});
  for (int64_t r = 0; r < rows; ++r) {
    float total = 0.0f;
    const float* row = t.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) total += row[c];
    out[r] = total;
  }
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, rows, cols]() {
      na->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float g = self->grad[r];
        float* da = na->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) da[c] += g;
      }
    };
  }
  return result;
}

Var ConcatRows(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t cols = parts[0].value().dim(1);
  int64_t rows = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(1), cols);
    rows += p.value().dim(0);
  }
  Tensor out({rows, cols});
  int64_t offset = 0;
  for (const Var& p : parts) {
    std::copy(p.value().data(), p.value().data() + p.value().numel(),
              out.data() + offset);
    offset += p.value().numel();
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes]() {
      int64_t offset = 0;
      for (Node* n : nodes) {
        const int64_t count = n->value.numel();
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t i = 0; i < count; ++i) {
            n->grad[i] += self->grad[offset + i];
          }
        }
        offset += count;
      }
    };
  }
  return result;
}

Var ConcatCols(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t rows = parts[0].value().dim(0);
  int64_t cols = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(0), rows);
    cols += p.value().dim(1);
  }
  Tensor out({rows, cols});
  int64_t col_offset = 0;
  for (const Var& p : parts) {
    const int64_t pc = p.value().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(p.value().data() + r * pc, p.value().data() + (r + 1) * pc,
                out.data() + r * cols + col_offset);
    }
    col_offset += pc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes, rows, cols]() {
      int64_t col_offset = 0;
      for (Node* n : nodes) {
        const int64_t pc = n->value.dim(1);
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t c = 0; c < pc; ++c) {
              n->grad[r * pc + c] += self->grad[r * cols + col_offset + c];
            }
          }
        }
        col_offset += pc;
      }
    };
  }
  return result;
}

Var GatherRows(const Var& table, std::span<const int32_t> ids) {
  const Tensor& t = table.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t d = t.dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    CAUSALTAD_DCHECK(ids[i] >= 0 && ids[i] < t.dim(0));
    std::copy(t.data() + ids[i] * d, t.data() + (ids[i] + 1) * d,
              out.data() + static_cast<int64_t>(i) * d);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {table}, &slot, &self);
  if (slot) {
    Node* nt = table.node().get();
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nt, ids_copy, d]() {
      nt->EnsureGrad();
      for (size_t i = 0; i < ids_copy.size(); ++i) {
        const float* g = self->grad.data() + static_cast<int64_t>(i) * d;
        float* dst = nt->grad.data() + ids_copy[i] * d;
        for (int64_t c = 0; c < d; ++c) dst[c] += g[c];
      }
    };
  }
  return result;
}

Var Softmax(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({rows, cols});
  const Kernels& kern = kernels::Active();
  for (int64_t r = 0; r < rows; ++r) {
    kern.softmax_row(t.data() + r * cols, cols, out.data() + r * cols);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, rows, cols]() {
      na->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self->value.data() + r * cols;
        const float* g = self->grad.data() + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += y[c] * g[c];
        float* da = na->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) da[c] += y[c] * (g[c] - dot);
      }
    };
  }
  return result;
}

Var SoftmaxCrossEntropy(const Var& logits, std::span<const int32_t> targets,
                        std::span<const float> row_weights) {
  const Tensor& t = logits.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  CAUSALTAD_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  CAUSALTAD_CHECK(row_weights.empty() ||
                  static_cast<int64_t>(row_weights.size()) == rows);

  // Store probabilities for the backward pass. Masked rows (negative
  // target) keep zeroed probs, so their backward contribution vanishes.
  auto probs = std::make_shared<Tensor>(Tensor({rows, cols}));
  float loss = 0.0f;
  const Kernels& kern = kernels::Active();
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t target = targets[r];
    if (target < 0) continue;
    kern.softmax_row(t.data() + r * cols, cols, probs->data() + r * cols);
    CAUSALTAD_DCHECK(target < cols);
    const float p = std::max((*probs)[r * cols + target], 1e-12f);
    loss -= (row_weights.empty() ? 1.0f : row_weights[r]) * std::log(p);
  }
  Tensor out({1, 1});
  out[0] = loss;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {logits}, &slot, &self);
  if (slot) {
    Node* nl = logits.node().get();
    std::vector<int32_t> tgt(targets.begin(), targets.end());
    std::vector<float> wts(row_weights.begin(), row_weights.end());
    *slot = [self, nl, probs, tgt, wts, rows, cols]() {
      nl->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t r = 0; r < rows; ++r) {
        if (tgt[r] < 0) continue;
        const float gw = wts.empty() ? g : g * wts[r];
        const float* p = probs->data() + r * cols;
        float* dl = nl->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) dl[c] += gw * p[c];
        dl[tgt[r]] -= gw;
      }
    };
  }
  return result;
}

Var GatherColsDot(const Var& h, const Var& w, const Var& b,
                  std::span<const int32_t> ids) {
  const Tensor& th = h.value();
  const Tensor& tw = w.value();
  CAUSALTAD_CHECK_EQ(th.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(0), 1);
  CAUSALTAD_CHECK_EQ(tw.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(1), tw.dim(0));
  const int64_t d = th.dim(1);
  const int64_t big_c = tw.dim(1);
  const int64_t k = static_cast<int64_t>(ids.size());
  Tensor out({1, k});
  for (int64_t j = 0; j < k; ++j) {
    const int32_t col = ids[j];
    CAUSALTAD_DCHECK(col >= 0 && col < big_c);
    float acc = b.defined() ? b.value()[col] : 0.0f;
    const float* hv = th.data();
    for (int64_t i = 0; i < d; ++i) acc += hv[i] * tw.data()[i * big_c + col];
    out[j] = acc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {h, w, b}, &slot, &self);
  if (slot) {
    Node* nh = h.node().get();
    Node* nw = w.node().get();
    Node* nb = b.defined() ? b.node().get() : nullptr;
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nh, nw, nb, ids_copy, d, big_c]() {
      const Tensor& g = self->grad;
      if (nh->requires_grad) {
        nh->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nh->grad[i] += gj * nw->value[i * big_c + col];
          }
        }
      }
      if (nw->requires_grad) {
        nw->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nw->grad[i * big_c + col] += gj * nh->value[i];
          }
        }
      }
      if (nb != nullptr && nb->requires_grad) {
        nb->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          nb->grad[ids_copy[j]] += g[static_cast<int64_t>(j)];
        }
      }
    };
  }
  return result;
}

Var KlStandardNormal(const Var& mu, const Var& logvar,
                     std::span<const float> row_weights) {
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  const int64_t cols = row_weights.empty() ? tm.numel() : tm.dim(1);
  CAUSALTAD_CHECK(row_weights.empty() ||
                  static_cast<int64_t>(row_weights.size()) == tm.dim(0));
  float total = 0.0f;
  for (int64_t i = 0; i < tm.numel(); ++i) {
    const float w = row_weights.empty() ? 1.0f : row_weights[i / cols];
    total += w * (tm[i] * tm[i] + fastmath::Exp(tv[i]) - 1.0f - tv[i]);
  }
  Tensor out({1, 1});
  out[0] = 0.5f * total;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    std::vector<float> wts(row_weights.begin(), row_weights.end());
    *slot = [self, nm, nv, wts, cols]() {
      const float g = self->grad[0];
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < nm->grad.numel(); ++i) {
          const float w = wts.empty() ? 1.0f : wts[i / cols];
          nm->grad[i] += g * w * nm->value[i];
        }
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < nv->grad.numel(); ++i) {
          const float w = wts.empty() ? 1.0f : wts[i / cols];
          nv->grad[i] += g * w * 0.5f * (fastmath::Exp(nv->value[i]) - 1.0f);
        }
      }
    };
  }
  return result;
}

Var Reparameterize(const Var& mu, const Var& logvar, util::Rng* rng) {
  CAUSALTAD_CHECK(rng != nullptr);
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  auto eps = std::make_shared<Tensor>(tm.shape());
  Tensor out = tm;
  for (int64_t i = 0; i < out.numel(); ++i) {
    (*eps)[i] = static_cast<float>(rng->Gaussian());
    out[i] += std::exp(0.5f * tv[i]) * (*eps)[i];
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    *slot = [self, nm, nv, eps]() {
      const Tensor& g = self->grad;
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) nm->grad[i] += g[i];
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) {
          nv->grad[i] +=
              g[i] * 0.5f * std::exp(0.5f * nv->value[i]) * (*eps)[i];
        }
      }
    };
  }
  return result;
}

Var LogSumExpRow(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  CAUSALTAD_CHECK_EQ(t.dim(0), 1);
  const int64_t n = t.dim(1);
  float max_v = t[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, t[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) total += fastmath::Exp(t[i] - max_v);
  Tensor out({1, 1});
  out[0] = max_v + std::log(total);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, n]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      const float lse = self->value[0];
      for (int64_t i = 0; i < n; ++i) {
        na->grad[i] += g * fastmath::Exp(na->value[i] - lse);
      }
    };
  }
  return result;
}

Var LogSumExpRows(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({rows, 1});
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * cols;
    float max_v = row[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, row[c]);
    float total = 0.0f;
    for (int64_t c = 0; c < cols; ++c) total += fastmath::Exp(row[c] - max_v);
    out[r] = max_v + std::log(total);
  }
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, rows, cols]() {
      na->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float g = self->grad[r];
        const float lse = self->value[r];
        const float* row = na->value.data() + r * cols;
        float* da = na->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          da[c] += g * fastmath::Exp(row[c] - lse);
        }
      }
    };
  }
  return result;
}

Var SubsetSoftmaxCrossEntropy(const Var& h, const Var& w, const Var& b,
                              std::span<const int32_t> ids,
                              std::span<const int32_t> offsets,
                              std::span<const int32_t> targets) {
  const Tensor& th = h.value();
  const Tensor& tw = w.value();
  CAUSALTAD_CHECK_EQ(th.ndim(), 2);
  CAUSALTAD_CHECK_EQ(tw.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(1), tw.dim(0));
  const int64_t rows = th.dim(0);
  const int64_t d = th.dim(1);
  const int64_t big_c = tw.dim(1);
  CAUSALTAD_CHECK_EQ(static_cast<int64_t>(offsets.size()), rows + 1);
  CAUSALTAD_CHECK_EQ(static_cast<int64_t>(targets.size()), rows);

  // Transpose w once so every subset logit is a contiguous dot; keep the
  // per-subset probabilities (heap, not arena — they must outlive the
  // forward for the backward closure).
  auto probs = std::make_shared<std::vector<float>>(ids.size(), 0.0f);
  float loss = 0.0f;
  {
    const Kernels& kern = kernels::Active();
    internal::ArenaScope scope;
    float* wt = internal::ArenaAlloc(big_c * d);
    kern.pack_transpose(tw.data(), d, big_c, wt);
    const float* bias = b.defined() ? b.value().data() : nullptr;
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t begin = offsets[r], end = offsets[r + 1];
      const int64_t k = end - begin;
      CAUSALTAD_DCHECK(targets[r] >= 0 && targets[r] < k);
      const float* hrow = th.data() + r * d;
      float* p = probs->data() + begin;
      for (int64_t j = 0; j < k; ++j) {
        const int32_t col = ids[begin + j];
        CAUSALTAD_DCHECK(col >= 0 && col < big_c);
        p[j] = (bias != nullptr ? bias[col] : 0.0f) +
               kern.dot(hrow, wt + col * d, d);
      }
      kern.softmax_row(p, k, p);  // in place: logits -> probabilities
      loss -= std::log(std::max(p[targets[r]], 1e-12f));
    }
  }
  Tensor out({1, 1});
  out[0] = loss;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {h, w, b}, &slot, &self);
  if (slot) {
    Node* nh = h.node().get();
    Node* nw = w.node().get();
    Node* nb = b.defined() ? b.node().get() : nullptr;
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    std::vector<int32_t> off_copy(offsets.begin(), offsets.end());
    std::vector<int32_t> tgt_copy(targets.begin(), targets.end());
    *slot = [self, nh, nw, nb, probs, ids_copy, off_copy, tgt_copy, rows, d,
             big_c]() {
      const float g = self->grad[0];
      internal::ArenaScope scope;
      // dlogit = g·(p - onehot(target)); dh needs w columns contiguously,
      // so transpose w again (arena scratch, released with the scope).
      const float* wt = nullptr;
      if (nh->requires_grad) {
        float* packed = internal::ArenaAlloc(big_c * d);
        kernels::Active().pack_transpose(nw->value.data(), d, big_c, packed);
        wt = packed;
      }
      if (nh->requires_grad) nh->EnsureGrad();
      if (nw->requires_grad) nw->EnsureGrad();
      if (nb != nullptr && nb->requires_grad) nb->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t begin = off_copy[r], end = off_copy[r + 1];
        const float* p = probs->data() + begin;
        const float* hrow = nh->value.data() + r * d;
        float* dhrow =
            nh->requires_grad ? nh->grad.data() + r * d : nullptr;
        for (int64_t j = 0; j < end - begin; ++j) {
          const int32_t col = ids_copy[begin + j];
          const float dl =
              g * (p[j] - (j == tgt_copy[r] ? 1.0f : 0.0f));
          if (dl == 0.0f) continue;
          if (dhrow != nullptr) {
            const float* wcol = wt + col * d;
            for (int64_t i = 0; i < d; ++i) dhrow[i] += dl * wcol[i];
          }
          if (nw->requires_grad) {
            float* dw = nw->grad.data() + col;
            for (int64_t i = 0; i < d; ++i) dw[i * big_c] += dl * hrow[i];
          }
          if (nb != nullptr && nb->requires_grad) nb->grad[col] += dl;
        }
      }
    };
  }
  return result;
}

}  // namespace nn
}  // namespace causaltad
