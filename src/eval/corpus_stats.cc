#include "eval/corpus_stats.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/logging.h"

namespace causaltad {
namespace eval {

CorpusStats ComputeCorpusStats(const roadnet::RoadNetwork& network,
                               const std::vector<traj::Trip>& trips) {
  CorpusStats stats;
  stats.num_trips = static_cast<int64_t>(trips.size());
  if (trips.empty()) return stats;

  std::vector<int64_t> visits(network.num_segments(), 0);
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> pairs;
  stats.min_trip_len = trips.front().route.size();
  for (const traj::Trip& trip : trips) {
    const int64_t n = trip.route.size();
    stats.num_segments_total += n;
    stats.min_trip_len = std::min(stats.min_trip_len, n);
    stats.max_trip_len = std::max(stats.max_trip_len, n);
    pairs.insert({trip.source_node, trip.dest_node});
    for (const roadnet::SegmentId s : trip.route.segments) {
      CAUSALTAD_DCHECK(s >= 0 && s < network.num_segments());
      visits[s]++;
    }
  }
  stats.mean_trip_len =
      static_cast<double>(stats.num_segments_total) / stats.num_trips;
  stats.distinct_sd_pairs = static_cast<int64_t>(pairs.size());

  int64_t covered = 0;
  double class_visits[3] = {0, 0, 0};
  for (int64_t s = 0; s < network.num_segments(); ++s) {
    if (visits[s] > 0) ++covered;
    class_visits[static_cast<int>(network.segment(s).road_class)] +=
        static_cast<double>(visits[s]);
  }
  stats.coverage =
      static_cast<double>(covered) / static_cast<double>(network.num_segments());
  stats.mean_visits =
      covered > 0
          ? static_cast<double>(stats.num_segments_total) / covered
          : 0.0;
  for (int c = 0; c < 3; ++c) {
    stats.class_share[c] =
        class_visits[c] / static_cast<double>(stats.num_segments_total);
  }

  // Gini over visit counts (including zero-visit segments).
  std::vector<int64_t> sorted = visits;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    weighted += (2.0 * (static_cast<double>(i) + 1) - n - 1) * sorted[i];
    total += sorted[i];
  }
  stats.visit_gini = total > 0 ? weighted / (n * total) : 0.0;
  return stats;
}

std::string FormatCorpusStats(const CorpusStats& stats) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "trips=%lld  sd_pairs=%lld  len(mean/min/max)=%.1f/%lld/%lld\n"
      "coverage=%.1f%%  mean_visits=%.1f  visit_gini=%.3f\n"
      "class share: arterial %.1f%%  collector %.1f%%  local %.1f%%",
      static_cast<long long>(stats.num_trips),
      static_cast<long long>(stats.distinct_sd_pairs), stats.mean_trip_len,
      static_cast<long long>(stats.min_trip_len),
      static_cast<long long>(stats.max_trip_len), 100.0 * stats.coverage,
      stats.mean_visits, stats.visit_gini, 100.0 * stats.class_share[0],
      100.0 * stats.class_share[1], 100.0 * stats.class_share[2]);
  return buf;
}

}  // namespace eval
}  // namespace causaltad
