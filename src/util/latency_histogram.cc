#include "util/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace causaltad {
namespace util {
namespace {

constexpr double kFloorMs = 1e-3;  // 1µs

int BucketOf(double ms) {
  if (!(ms > kFloorMs)) return 0;
  const int b = 1 + static_cast<int>(4.0 * std::log2(ms / kFloorMs));
  return std::min(b, LatencyHistogram::kNumBuckets - 1);
}

double BucketMidpoint(int bucket) {
  if (bucket == 0) return kFloorMs;
  // Bucket b covers [floor·2^((b-1)/4), floor·2^(b/4)); report the
  // geometric midpoint.
  return kFloorMs * std::exp2((bucket - 0.5) / 4.0);
}

// Shared rank-walk over an explicit bucket array: the k-th sample in rank
// order, 1-based, p=0 mapping to the first — identical semantics to
// Percentile() so windowed and merged views agree with the lifetime view.
double PercentileOfCounts(const std::array<int64_t, LatencyHistogram::kNumBuckets>& counts,
                          double p) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(clamped / 100.0 *
                                                          total)));
  int64_t seen = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketMidpoint(b);
  }
  return BucketMidpoint(LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::Add(double ms) {
  buckets_[BucketOf(ms)].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(std::llround(std::max(ms, 0.0) * 1000.0),
                    std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const int64_t total = TotalCount();
  if (total == 0) return 0.0;
  return sum_us_.load(std::memory_order_relaxed) / 1000.0 / total;
}

int64_t LatencyHistogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::Percentile(double p) const {
  std::array<int64_t, kNumBuckets> snapshot;
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snapshot[b];
  }
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // The k-th sample in rank order, 1-based; p=0 maps to the first.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(clamped / 100.0 *
                                                          total)));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += snapshot[b];
    if (seen >= rank) return BucketMidpoint(b);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snap;
}

int64_t LatencyHistogram::CountSince(const Snapshot& base) const {
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    total += std::max<int64_t>(
        0, buckets_[b].load(std::memory_order_relaxed) - base.counts[b]);
  }
  return total;
}

double LatencyHistogram::PercentileSince(const Snapshot& base, double p) const {
  std::array<int64_t, kNumBuckets> delta;
  for (int b = 0; b < kNumBuckets; ++b) {
    delta[b] = std::max<int64_t>(
        0, buckets_[b].load(std::memory_order_relaxed) - base.counts[b]);
  }
  return PercentileOfCounts(delta, p);
}

double LatencyHistogram::MergedPercentile(const LatencyHistogram* const* hists,
                                          int n, double p) {
  std::array<int64_t, kNumBuckets> merged{};
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < kNumBuckets; ++b) {
      merged[b] += hists[i]->buckets_[b].load(std::memory_order_relaxed);
    }
  }
  return PercentileOfCounts(merged, p);
}

double LatencyHistogram::MergedPercentileSince(
    const LatencyHistogram* const* hists, const Snapshot* bases, int n,
    double p) {
  std::array<int64_t, kNumBuckets> merged{};
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < kNumBuckets; ++b) {
      merged[b] += std::max<int64_t>(
          0, hists[i]->buckets_[b].load(std::memory_order_relaxed) -
                 bases[i].counts[b]);
    }
  }
  return PercentileOfCounts(merged, p);
}

}  // namespace util
}  // namespace causaltad
