#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/metrics.h"

namespace causaltad {
namespace core {
namespace {

using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

CausalTadConfig TinyConfig() {
  CausalTadConfig cfg;
  cfg.tg.emb_dim = 16;
  cfg.tg.hidden_dim = 24;
  cfg.tg.latent_dim = 12;
  cfg.rp.emb_dim = 12;
  cfg.rp.hidden_dim = 24;
  cfg.rp.latent_dim = 8;
  cfg.scaling_samples = 6;
  return cfg;
}

models::FitOptions QuickFit(int epochs = 5) {
  models::FitOptions options;
  options.epochs = epochs;
  options.lr = 3e-3f;
  options.seed = 21;
  return options;
}

class CausalTadTest : public ::testing::Test {
 protected:
  static CausalTad& Fitted() {
    static CausalTad* model = [] {
      auto* m = new CausalTad(&Data().city.network, TinyConfig());
      m->Fit(Data().train, QuickFit());
      return m;
    }();
    return *model;
  }
};

// ---------------------------------------------------------------------------
// TG-VAE mechanics.
// ---------------------------------------------------------------------------

TEST(TgVaeTest, LossIsFiniteAndPositive) {
  util::Rng rng(5);
  TgVaeConfig cfg = TinyConfig().tg;
  cfg.vocab = Data().vocab();
  TgVae tg(&Data().city.network, cfg, &rng);
  util::Rng sample_rng(6);
  const nn::Var loss = tg.Loss(Data().train.front(), &sample_rng);
  EXPECT_TRUE(std::isfinite(loss.value().Item()));
  EXPECT_GT(loss.value().Item(), 0.0f);
}

TEST(TgVaeTest, RoadConstrainedStepNllBoundedByLogSuccessors) {
  // At initialization the masked softmax runs over <= max-degree logits, so
  // every step NLL is at most ~log(max successors) + slack; a full-vocab
  // softmax would start near log(V) instead. This is the paper's
  // road-constrained prediction property.
  util::Rng rng(7);
  TgVaeConfig cfg = TinyConfig().tg;
  cfg.vocab = Data().vocab();
  TgVae tg(&Data().city.network, cfg, &rng);
  int64_t max_deg = 0;
  for (roadnet::SegmentId s = 0; s < Data().city.network.num_segments();
       ++s) {
    max_deg = std::max<int64_t>(
        max_deg,
        static_cast<int64_t>(Data().city.network.Successors(s).size()));
  }
  const auto parts = tg.Score(Data().train.front());
  for (const double nll : parts.step_nll) {
    EXPECT_LT(nll, std::log(static_cast<double>(max_deg)) + 2.0);
  }
  EXPECT_GT(std::log(static_cast<double>(Data().vocab())),
            std::log(static_cast<double>(max_deg)) + 2.0);
}

TEST(TgVaeTest, ScorePartsShape) {
  util::Rng rng(8);
  TgVaeConfig cfg = TinyConfig().tg;
  cfg.vocab = Data().vocab();
  TgVae tg(&Data().city.network, cfg, &rng);
  const traj::Trip& trip = Data().train[2];
  const auto parts = tg.Score(trip);
  EXPECT_EQ(static_cast<int64_t>(parts.step_nll.size()),
            trip.route.size() - 1);
  EXPECT_GE(parts.kl, 0.0);
  // PrefixScore is non-decreasing in the prefix length.
  double prev = parts.PrefixScore(1);
  for (int64_t k = 2; k <= trip.route.size(); ++k) {
    const double cur = parts.PrefixScore(k);
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
}

TEST(TgVaeTest, SdDecoderCanBeDisabled) {
  util::Rng rng(9);
  TgVaeConfig cfg = TinyConfig().tg;
  cfg.vocab = Data().vocab();
  cfg.use_sd_decoder = false;
  TgVae tg(&Data().city.network, cfg, &rng);
  const auto parts = tg.Score(Data().train.front());
  EXPECT_EQ(parts.sd_nll, 0.0);
}

// ---------------------------------------------------------------------------
// RP-VAE and the scaling table.
// ---------------------------------------------------------------------------

TEST(RpVaeTest, SegmentNllFinite) {
  util::Rng rng(10);
  RpVaeConfig cfg = TinyConfig().rp;
  cfg.vocab = Data().vocab();
  RpVae rp(cfg, &rng);
  for (roadnet::SegmentId s = 0; s < 5; ++s) {
    EXPECT_TRUE(std::isfinite(rp.SegmentNll(s)));
  }
}

TEST(RpVaeTest, LogScalingFactorIsNonNegativeAndFinite) {
  // 1/P >= 1 always, so log E[1/P] >= 0; the MC estimator must keep it
  // finite even for rare segments (log-sum-exp aggregation).
  util::Rng rng(11);
  RpVaeConfig cfg = TinyConfig().rp;
  cfg.vocab = Data().vocab();
  RpVae rp(cfg, &rng);
  util::Rng mc(12);
  for (roadnet::SegmentId s = 0; s < 10; ++s) {
    const double v = rp.LogScalingFactor(s, 8, &mc);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(RpVaeTest, ScalingEstimatorVarianceShrinksWithSamples) {
  util::Rng rng(13);
  RpVaeConfig cfg = TinyConfig().rp;
  cfg.vocab = Data().vocab();
  RpVae rp(cfg, &rng);
  auto spread = [&](int num_samples) {
    std::vector<double> estimates;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      util::Rng mc(100 + seed);
      estimates.push_back(rp.LogScalingFactor(3, num_samples, &mc));
    }
    double lo = estimates[0], hi = estimates[0];
    for (double e : estimates) {
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(64), spread(2) + 1e-9);
}

TEST(ScalingTableTest, DeterministicGivenSeed) {
  util::Rng rng(14);
  RpVaeConfig cfg = TinyConfig().rp;
  cfg.vocab = Data().vocab();
  RpVae rp(cfg, &rng);
  const ScalingTable a = ScalingTable::Build(rp, cfg.vocab, 4, 99);
  const ScalingTable b = ScalingTable::Build(rp, cfg.vocab, 4, 99);
  EXPECT_EQ(a.values(), b.values());
}

TEST(ScalingTableTest, CenteredHasZeroMean) {
  util::Rng rng(15);
  RpVaeConfig cfg = TinyConfig().rp;
  cfg.vocab = Data().vocab();
  RpVae rp(cfg, &rng);
  const ScalingTable table = ScalingTable::Build(rp, cfg.vocab, 4, 99);
  const auto centered = table.Centered();
  double mean = 0;
  for (double v : centered) mean += v;
  EXPECT_NEAR(mean / centered.size(), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// CausalTAD end to end.
// ---------------------------------------------------------------------------

TEST_F(CausalTadTest, DetectsDetoursInDistribution) {
  std::vector<double> normal, anomaly;
  for (const auto& t : Data().id_test) normal.push_back(Fitted().ScoreFull(t));
  for (const auto& t : Data().id_detour) {
    anomaly.push_back(Fitted().ScoreFull(t));
  }
  EXPECT_GT(eval::EvaluateScores(normal, anomaly).roc_auc, 0.7);
}

TEST_F(CausalTadTest, LambdaZeroEqualsLikelihoodOnly) {
  const traj::Trip& trip = Data().id_test.front();
  const double full_l0 = Fitted().ScoreVariantLambda(
      trip, trip.route.size(), ScoreVariant::kFull, 0.0);
  const double tg_only = Fitted().ScoreVariantLambda(
      trip, trip.route.size(), ScoreVariant::kLikelihoodOnly, 0.1);
  EXPECT_NEAR(full_l0, tg_only, 1e-9);
}

TEST_F(CausalTadTest, ScoreIsLinearInLambda) {
  // score(λ) = likelihood - λ · Σ scaling, so λ enters linearly: the slope
  // inferred from any two λ values must predict a third exactly.
  const traj::Trip& trip = Data().ood_test.front();
  const auto at = [&](double lambda) {
    return Fitted().ScoreVariantLambda(trip, trip.route.size(),
                                       ScoreVariant::kFull, lambda);
  };
  const double s0 = at(0.0);
  const double slope = (at(1.0) - s0) / 1.0;
  EXPECT_NEAR(at(0.3), s0 + 0.3 * slope, 1e-6);
  EXPECT_NEAR(at(0.7), s0 + 0.7 * slope, 1e-6);
}

TEST(TgVaeTest, ScoreBatchMatchesScoreWithoutRoadConstraint) {
  // The full-vocabulary (unconstrained-ablation) batched decode path must
  // also match the per-trip scorer.
  util::Rng rng(77);
  TgVaeConfig cfg = TinyConfig().tg;
  cfg.vocab = Data().vocab();
  cfg.road_constrained = false;
  TgVae tg(&Data().city.network, cfg, &rng);
  std::vector<traj::Trip> batch(Data().id_test.begin(),
                                Data().id_test.begin() + 4);
  const auto parts = tg.ScoreBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto ref = tg.Score(batch[i]);
    ASSERT_EQ(parts[i].step_nll.size(), ref.step_nll.size());
    EXPECT_NEAR(parts[i].PrefixScore(batch[i].route.size()),
                ref.PrefixScore(batch[i].route.size()), 1e-5);
  }
}

TEST_F(CausalTadTest, ScoreBatchMatchesPerTripAcrossVariants) {
  // The [B, hidden] no-grad fast path must reproduce the per-trip tape
  // path for the full model and both ablation variants.
  std::vector<traj::Trip> batch(Data().id_test.begin(),
                                Data().id_test.begin() + 5);
  batch.push_back(Data().ood_test.front());
  std::vector<int64_t> prefixes;
  for (size_t i = 0; i < batch.size(); ++i) {
    const int64_t n = batch[i].route.size();
    prefixes.push_back(i % 2 == 0 ? n : std::max<int64_t>(1, n / 2));
  }
  for (const ScoreVariant variant :
       {ScoreVariant::kFull, ScoreVariant::kLikelihoodOnly,
        ScoreVariant::kScalingOnly}) {
    const std::vector<double> batched =
        Fitted().ScoreBatchVariantLambda(batch, prefixes, variant, 0.1);
    ASSERT_EQ(batched.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const double per_trip =
          Fitted().ScoreVariantLambda(batch[i], prefixes[i], variant, 0.1);
      EXPECT_NEAR(batched[i], per_trip, 1e-5)
          << ScoreVariantName(variant) << " trip " << i;
    }
  }
  // The TrajectoryScorer override also goes through the fast path.
  const std::vector<double> via_interface =
      Fitted().ScoreBatch(batch, prefixes);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(via_interface[i], Fitted().Score(batch[i], prefixes[i]),
                1e-5);
  }
}

TEST_F(CausalTadTest, OnlineSessionMatchesBatchPrefixScores) {
  // The O(1)-per-segment online session must reproduce the batch prefix
  // scores exactly (paper §V-D). This is the key online-correctness
  // invariant.
  for (int trip_idx : {0, 3, 7}) {
    const traj::Trip& trip = Data().id_test[trip_idx];
    auto online = Fitted().BeginTrip(trip);
    for (int64_t k = 1; k <= trip.route.size(); ++k) {
      const double incremental = online->Update(trip.route.segments[k - 1]);
      const double batch = Fitted().Score(trip, k);
      EXPECT_NEAR(incremental, batch, 1e-4)
          << "trip " << trip_idx << " prefix " << k;
    }
  }
}

TEST_F(CausalTadTest, PopularSegmentsGetSmallerScalingThanRareOnes) {
  // The debiasing mechanism: rare segments must receive larger
  // log E[1/P(t|e)] than popular ones, which is what compensates the
  // likelihood's underestimation of unpopular roads (paper §V-E1).
  std::map<roadnet::SegmentId, int64_t> usage;
  for (const auto& t : Data().train) {
    for (const auto s : t.route.segments) usage[s]++;
  }
  std::vector<std::pair<int64_t, roadnet::SegmentId>> by_usage;
  for (roadnet::SegmentId s = 0; s < Data().vocab(); ++s) {
    by_usage.push_back({usage.count(s) ? usage[s] : 0, s});
  }
  std::sort(by_usage.begin(), by_usage.end());
  const size_t decile = by_usage.size() / 10;
  ASSERT_GT(decile, 0u);
  double rare_mean = 0, popular_mean = 0;
  for (size_t i = 0; i < decile; ++i) {
    rare_mean += Fitted().scaling_table().log_scaling(by_usage[i].second);
    popular_mean += Fitted().scaling_table().log_scaling(
        by_usage[by_usage.size() - 1 - i].second);
  }
  EXPECT_GT(rare_mean / decile, popular_mean / decile);
}

TEST_F(CausalTadTest, DecomposeShapesAndConsistency) {
  const traj::Trip& trip = Data().id_test[2];
  const auto decomp = Fitted().Decompose(trip);
  EXPECT_EQ(static_cast<int64_t>(decomp.step_nll.size()),
            trip.route.size() - 1);
  EXPECT_EQ(static_cast<int64_t>(decomp.log_scaling.size()),
            trip.route.size());
  // Reassemble the full score from the decomposition.
  double score = decomp.sd_nll + decomp.kl;
  for (double v : decomp.step_nll) score += v;
  for (double v : decomp.log_scaling) score -= Fitted().lambda() * v;
  EXPECT_NEAR(score, Fitted().ScoreFull(trip), 1e-6);
}

TEST_F(CausalTadTest, SaveLoadPreservesScores) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_core.bin")
          .string();
  ASSERT_TRUE(Fitted().Save(path).ok());
  CausalTad restored(&Data().city.network, TinyConfig());
  ASSERT_TRUE(restored.Load(path).ok());
  for (int i = 0; i < 5; ++i) {
    const traj::Trip& t = Data().id_test[i];
    EXPECT_NEAR(restored.ScoreFull(t), Fitted().ScoreFull(t), 1e-6);
  }
  std::remove(path.c_str());
}

TEST_F(CausalTadTest, VariantViewsReportPaperNames) {
  const CausalTadVariant tg(&Fitted(), ScoreVariant::kLikelihoodOnly);
  const CausalTadVariant rp(&Fitted(), ScoreVariant::kScalingOnly);
  EXPECT_EQ(tg.Name(), "TG-VAE");
  EXPECT_EQ(rp.Name(), "RP-VAE");
  const traj::Trip& trip = Data().id_test.front();
  EXPECT_NEAR(tg.ScoreFull(trip),
              Fitted().ScoreVariantLambda(trip, trip.route.size(),
                                          ScoreVariant::kLikelihoodOnly, 0),
              1e-9);
  EXPECT_TRUE(std::isfinite(rp.ScoreFull(trip)));
}

TEST_F(CausalTadTest, RpVariantIgnoresRouteShape) {
  // RP-VAE scores depend only on which segments are visited; two routes
  // over identical segment multisets score identically.
  const traj::Trip& trip = Data().id_test.front();
  traj::Trip reversed_meta = trip;  // same segments, metadata irrelevant
  reversed_meta.time_slot = (trip.time_slot + 1) % 8;
  const CausalTadVariant rp(&Fitted(), ScoreVariant::kScalingOnly);
  EXPECT_DOUBLE_EQ(rp.ScoreFull(trip), rp.ScoreFull(reversed_meta));
}

}  // namespace
}  // namespace core
}  // namespace causaltad
