#include "nn/checkpoint.h"

#include <map>

#include "util/binary_io.h"

namespace causaltad {
namespace nn {
namespace {
constexpr uint32_t kMagic = 0xCA057AD0;
// v1: (name, shape, f32 data) records. v2: records carry a u32 dtype tag
// between shape and data — 0 = f32, 1 = int8 rows + per-row f32 scales.
constexpr uint32_t kMinVersion = 1;
constexpr uint32_t kVersion = 2;

constexpr uint32_t kDtypeF32 = 0;
constexpr uint32_t kDtypeI8 = 1;

/// The embedding whose int8 copy backs this param, or null. Only an
/// Embedding's own "table" parameter qualifies (an Embedding registers
/// exactly that one param).
const Embedding* QuantizedSourceOf(const NamedParam& p) {
  const auto* emb = dynamic_cast<const Embedding*>(p.owner);
  if (emb == nullptr || !emb->has_quantized()) return nullptr;
  // Owner identity is enough today, but guard on the node too so a future
  // Embedding with extra params cannot mis-tag them.
  return p.var.node() == emb->table().node() ? emb : nullptr;
}

}  // namespace

util::Status SaveCheckpoint(const std::string& path, const Module& module,
                            const SaveOptions& options) {
  util::BinaryWriter writer(path, kMagic, kVersion);
  if (!writer.ok()) return util::Status::IoError("cannot open " + path);
  const auto params = module.NamedParameters();
  writer.WriteU64(params.size());
  for (const NamedParam& p : params) {
    writer.WriteString(p.name);
    const auto& shape = p.var.value().shape();
    writer.WriteU64(shape.size());
    for (int64_t d : shape) writer.WriteI64(d);
    const Embedding* emb =
        options.quantize_embeddings ? QuantizedSourceOf(p) : nullptr;
    if (emb != nullptr) {
      const int64_t rows = p.var.value().dim(0);
      const int64_t dim = p.var.value().dim(1);
      writer.WriteU32(kDtypeI8);
      writer.WriteBytes(std::vector<int8_t>(
          emb->quantized_rows(), emb->quantized_rows() + rows * dim));
      writer.WriteFloats(
          std::vector<float>(emb->row_scales(), emb->row_scales() + rows));
    } else {
      writer.WriteU32(kDtypeF32);
      writer.WriteFloats(p.var.value().vec());
    }
  }
  return writer.Close();
}

util::Status LoadCheckpoint(const std::string& path, Module* module) {
  util::BinaryReader reader(path, kMagic, kMinVersion, kVersion);
  if (!reader.ok()) return reader.status();

  std::map<std::string, std::pair<std::vector<int64_t>, std::vector<float>>>
      records;
  const uint64_t count = reader.ReadU64();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    const std::string name = reader.ReadString();
    const uint64_t ndim = reader.ReadU64();
    std::vector<int64_t> shape(ndim);
    for (uint64_t d = 0; d < ndim; ++d) shape[d] = reader.ReadI64();
    const uint32_t dtype =
        reader.version() >= 2 ? reader.ReadU32() : kDtypeF32;
    if (dtype == kDtypeF32) {
      records[name] = {std::move(shape), reader.ReadFloats()};
    } else if (dtype == kDtypeI8) {
      const std::vector<int8_t> q = reader.ReadBytes();
      const std::vector<float> scales = reader.ReadFloats();
      if (!reader.ok()) break;
      if (shape.size() != 2 ||
          static_cast<int64_t>(q.size()) != shape[0] * shape[1] ||
          static_cast<int64_t>(scales.size()) != shape[0]) {
        return util::Status::InvalidArgument(
            "malformed int8 record for " + name + " in " + path);
      }
      std::vector<float> values(q.size());
      const int64_t dim = shape[1];
      for (int64_t r = 0; r < shape[0]; ++r) {
        for (int64_t c = 0; c < dim; ++c) {
          values[r * dim + c] =
              static_cast<float>(q[r * dim + c]) * scales[r];
        }
      }
      records[name] = {std::move(shape), std::move(values)};
    } else {
      return util::Status::InvalidArgument(
          "unknown dtype tag for " + name + " in " + path);
    }
  }
  if (!reader.ok()) return reader.status();

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return util::Status::InvalidArgument(
        "checkpoint/module parameter count mismatch for " + path);
  }
  // Validate everything before mutating anything.
  for (const NamedParam& p : params) {
    auto it = records.find(p.name);
    if (it == records.end()) {
      return util::Status::InvalidArgument("missing parameter " + p.name);
    }
    if (it->second.first != p.var.value().shape()) {
      return util::Status::InvalidArgument("shape mismatch for " + p.name);
    }
  }
  for (NamedParam& p : params) {
    p.var.mutable_value().vec() = records[p.name].second;
  }
  return util::Status::Ok();
}

}  // namespace nn
}  // namespace causaltad
