#include "net/frame.h"

#include <cstring>

#include "util/binary_io.h"

namespace causaltad {
namespace net {
namespace {

bool ValidReason(uint8_t v) {
  return v >= static_cast<uint8_t>(RejectReason::kSessionFull) &&
         v <= static_cast<uint8_t>(RejectReason::kShutdown);
}

bool ValidErrorCode(uint8_t v) {
  return v >= static_cast<uint8_t>(ErrorCode::kAuthRequired) &&
         v <= static_cast<uint8_t>(ErrorCode::kShuttingDown);
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kSessionFull:
      return "session_full";
    case RejectReason::kShardFull:
      return "shard_full";
    case RejectReason::kQuota:
      return "quota";
    case RejectReason::kOutOfOrder:
      return "out_of_order";
    case RejectReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kAuthRequired:
      return "auth_required";
    case ErrorCode::kAuthFailed:
      return "auth_failed";
    case ErrorCode::kUnknownSession:
      return "unknown_session";
    case ErrorCode::kDuplicateSession:
      return "duplicate_session";
    case ErrorCode::kInvalidSegment:
      return "invalid_segment";
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kBegin:
      return "begin";
    case FrameType::kPush:
      return "push";
    case FrameType::kEnd:
      return "end";
    case FrameType::kPoll:
      return "poll";
    case FrameType::kScoreDelta:
      return "score_delta";
    case FrameType::kPushReject:
      return "push_reject";
    case FrameType::kError:
      return "error";
    case FrameType::kResume:
      return "resume";
    case FrameType::kResumeAck:
      return "resume_ack";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kAdmin:
      return "admin";
    case FrameType::kAdminAck:
      return "admin_ack";
    case FrameType::kStats:
      return "stats";
  }
  return "unknown";
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t length_at = out->size();
  util::BufferWriter w(out);
  w.WriteU32(0);  // payload length backpatched below
  w.WriteU8(kWireVersion);
  w.WriteU8(static_cast<uint8_t>(frame.type));
  switch (frame.type) {
    case FrameType::kHello:
      w.WriteString(frame.tenant);
      w.WriteString(frame.auth_token);
      break;
    case FrameType::kBegin:
      w.WriteU64(frame.session);
      w.WriteI32(frame.source);
      w.WriteI32(frame.destination);
      w.WriteI32(frame.time_slot);
      w.WriteU64(frame.resume_key);
      break;
    case FrameType::kPush:
      w.WriteU64(frame.session);
      w.WriteU64(frame.seq);
      w.WriteU64(frame.wire_seq);
      w.WriteI32(frame.segment);
      // Optional trace extension: appended only for sampled pushes, so the
      // common un-traced frame keeps its v3 size.
      if (frame.trace_id != 0) w.WriteU64(frame.trace_id);
      break;
    case FrameType::kEnd:
      w.WriteU64(frame.session);
      break;
    case FrameType::kPoll:
      w.WriteU64(frame.session);
      w.WriteU64(frame.token);
      w.WriteU64(frame.offset);
      break;
    case FrameType::kScoreDelta:
      w.WriteU64(frame.session);
      w.WriteU64(frame.token);
      w.WriteU64(frame.offset);
      w.WriteF64s(frame.scores);
      break;
    case FrameType::kPushReject:
      w.WriteU64(frame.session);
      w.WriteU64(frame.seq);
      w.WriteU64(frame.wire_seq);
      w.WriteU8(static_cast<uint8_t>(frame.reason));
      break;
    case FrameType::kError:
      w.WriteU8(static_cast<uint8_t>(frame.code));
      w.WriteString(frame.message);
      break;
    case FrameType::kResume:
      w.WriteU64(frame.session);
      w.WriteU64(frame.resume_key);
      w.WriteI32(frame.source);
      w.WriteI32(frame.destination);
      w.WriteI32(frame.time_slot);
      w.WriteU64(frame.offset);
      break;
    case FrameType::kResumeAck:
      w.WriteU64(frame.session);
      w.WriteU64(frame.offset);
      break;
    case FrameType::kHeartbeat:
      w.WriteU64(frame.token);
      w.WriteU64(frame.seq);
      break;
    case FrameType::kAdmin:
      w.WriteU64(frame.token);
      w.WriteString(frame.message);
      break;
    case FrameType::kAdminAck:
      w.WriteU64(frame.token);
      w.WriteU64(frame.seq);
      w.WriteString(frame.message);
      break;
    case FrameType::kStats:
      w.WriteU64(frame.token);
      break;
  }
  const uint32_t payload =
      static_cast<uint32_t>(out->size() - length_at - sizeof(uint32_t));
  std::memcpy(out->data() + length_at, &payload, sizeof(payload));
}

util::StatusOr<Frame> DecodeFramePayload(const uint8_t* payload, size_t size) {
  util::BufferReader r(payload, size);
  const uint8_t version = r.ReadU8();
  const uint8_t type = r.ReadU8();
  if (!r.ok()) {
    return util::Status::InvalidArgument("frame shorter than its header");
  }
  if (version != kWireVersion) {
    return util::Status::InvalidArgument(
        "unsupported wire version " + std::to_string(version));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  switch (frame.type) {
    case FrameType::kHello:
      frame.tenant = r.ReadString();
      frame.auth_token = r.ReadString();
      break;
    case FrameType::kBegin:
      frame.session = r.ReadU64();
      frame.source = r.ReadI32();
      frame.destination = r.ReadI32();
      frame.time_slot = r.ReadI32();
      frame.resume_key = r.ReadU64();
      break;
    case FrameType::kPush:
      frame.session = r.ReadU64();
      frame.seq = r.ReadU64();
      frame.wire_seq = r.ReadU64();
      frame.segment = r.ReadI32();
      // Optional trace extension: a v4 Push may carry a trailing trace id.
      // A partial tail (1-7 bytes) fails ReadU64 and falls through to the
      // truncation error below — garbage never parses as a trace.
      if (r.ok() && r.remaining() > 0) frame.trace_id = r.ReadU64();
      break;
    case FrameType::kEnd:
      frame.session = r.ReadU64();
      break;
    case FrameType::kPoll:
      frame.session = r.ReadU64();
      frame.token = r.ReadU64();
      frame.offset = r.ReadU64();
      break;
    case FrameType::kScoreDelta:
      frame.session = r.ReadU64();
      frame.token = r.ReadU64();
      frame.offset = r.ReadU64();
      frame.scores = r.ReadF64s();
      break;
    case FrameType::kPushReject: {
      frame.session = r.ReadU64();
      frame.seq = r.ReadU64();
      frame.wire_seq = r.ReadU64();
      const uint8_t reason = r.ReadU8();
      if (r.ok() && !ValidReason(reason)) {
        return util::Status::InvalidArgument("unknown reject reason");
      }
      frame.reason = static_cast<RejectReason>(reason);
      break;
    }
    case FrameType::kError: {
      const uint8_t code = r.ReadU8();
      if (r.ok() && !ValidErrorCode(code)) {
        return util::Status::InvalidArgument("unknown error code");
      }
      frame.code = static_cast<ErrorCode>(code);
      frame.message = r.ReadString();
      break;
    }
    case FrameType::kResume:
      frame.session = r.ReadU64();
      frame.resume_key = r.ReadU64();
      frame.source = r.ReadI32();
      frame.destination = r.ReadI32();
      frame.time_slot = r.ReadI32();
      frame.offset = r.ReadU64();
      break;
    case FrameType::kResumeAck:
      frame.session = r.ReadU64();
      frame.offset = r.ReadU64();
      break;
    case FrameType::kHeartbeat:
      frame.token = r.ReadU64();
      frame.seq = r.ReadU64();
      break;
    case FrameType::kAdmin:
      frame.token = r.ReadU64();
      frame.message = r.ReadString();
      break;
    case FrameType::kAdminAck:
      frame.token = r.ReadU64();
      frame.seq = r.ReadU64();
      frame.message = r.ReadString();
      break;
    case FrameType::kStats:
      frame.token = r.ReadU64();
      break;
    default:
      return util::Status::InvalidArgument("unknown frame type " +
                                           std::to_string(type));
  }
  if (!r.ok()) return util::Status::InvalidArgument("truncated frame payload");
  if (r.remaining() != 0) {
    return util::Status::InvalidArgument("trailing bytes after frame payload");
  }
  return frame;
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  if (!status_.ok()) return;  // poisoned: drop everything
  // Reclaim consumed prefix before growing, so a long-lived connection's
  // buffer stays the size of one partial frame, not the whole history.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<int64_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::Next(Frame* frame) {
  if (!status_.ok()) return false;
  if (buffer_.size() - consumed_ < sizeof(uint32_t)) return false;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, buffer_.data() + consumed_, sizeof(payload_len));
  if (payload_len > kMaxFramePayload) {
    status_ = util::Status::InvalidArgument(
        "frame payload " + std::to_string(payload_len) + " exceeds cap " +
        std::to_string(kMaxFramePayload));
    return false;
  }
  if (buffer_.size() - consumed_ < sizeof(uint32_t) + payload_len) {
    return false;  // wait for the rest of the payload
  }
  util::StatusOr<Frame> decoded = DecodeFramePayload(
      buffer_.data() + consumed_ + sizeof(uint32_t), payload_len);
  if (!decoded.ok()) {
    status_ = decoded.status();
    return false;
  }
  consumed_ += sizeof(uint32_t) + payload_len;
  *frame = std::move(decoded).value();
  return true;
}

}  // namespace net
}  // namespace causaltad
