#include "traj/anomaly.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace causaltad {
namespace traj {
namespace {

// Samples an integer index in [lo_frac*n, hi_frac*n), clamped to [lo, hi].
int64_t SampleIndex(int64_t n, double lo_frac, double hi_frac, int64_t lo,
                    int64_t hi, util::Rng* rng) {
  int64_t a = std::max<int64_t>(lo, static_cast<int64_t>(lo_frac * n));
  int64_t b = std::min<int64_t>(hi, static_cast<int64_t>(hi_frac * n));
  if (b < a) return -1;
  return a + rng->UniformInt(b - a + 1);
}

// Generalized reroute cost: length / preference^gamma per segment.
std::vector<double> RerouteCosts(const roadnet::RoadNetwork& network,
                                 double gamma) {
  std::vector<double> costs(network.num_segments());
  for (int64_t s = 0; s < network.num_segments(); ++s) {
    const roadnet::Segment& seg = network.segment(s);
    costs[s] = seg.length_m / std::pow(seg.preference, gamma);
  }
  return costs;
}

}  // namespace

AnomalyGenerator::AnomalyGenerator(const roadnet::RoadNetwork* network,
                                   uint64_t seed)
    : network_(network), engine_(network), rng_(seed) {
  CAUSALTAD_CHECK(network != nullptr);
}

std::optional<Trip> AnomalyGenerator::MakeDetour(const Trip& base,
                                                 const DetourConfig& config) {
  const Route& route = base.route;
  const int64_t n = route.size();
  if (n < 8) return std::nullopt;
  const double base_len = route.LengthMeters(*network_);
  const std::vector<double> costs =
      RerouteCosts(*network_, config.preference_gamma);

  for (int attempt = 0; attempt < config.max_tries; ++attempt) {
    const int64_t i =
        SampleIndex(n, config.i_lo, config.i_hi, 0, n - 3, &rng_);
    const int64_t j =
        SampleIndex(n, config.j_lo, config.j_hi, i + 2, n - 1, &rng_);
    if (i < 0 || j < 0 || j <= i + 1) continue;
    const int64_t k = i + 1 + rng_.UniformInt(j - i - 1);

    // Temporarily delete t_k (both directions of the road).
    std::vector<uint8_t> blocked(network_->num_segments(), 0);
    const roadnet::SegmentId tk = route.segments[k];
    blocked[tk] = 1;
    const roadnet::SegmentId twin = network_->segment(tk).reverse;
    if (twin != roadnet::kInvalidSegment) blocked[twin] = 1;

    const roadnet::RouteResult reroute = engine_.SegmentToSegment(
        route.segments[i], route.segments[j], costs, &blocked);
    if (!reroute.found) continue;

    Route detoured;
    detoured.segments.assign(route.segments.begin(),
                             route.segments.begin() + i);
    detoured.segments.insert(detoured.segments.end(),
                             reroute.segments.begin(), reroute.segments.end());
    detoured.segments.insert(detoured.segments.end(),
                             route.segments.begin() + j + 1,
                             route.segments.end());
    if (detoured.segments == route.segments) continue;

    const double extra =
        (detoured.LengthMeters(*network_) - base_len) / base_len;
    if (extra < config.min_extra_ratio || extra > config.max_extra_ratio) {
      continue;
    }
    CAUSALTAD_DCHECK(detoured.IsValid(*network_));

    Trip anomaly = base;
    anomaly.route = std::move(detoured);
    anomaly.anomaly = AnomalyKind::kDetour;
    return anomaly;
  }
  return std::nullopt;
}

std::optional<Trip> AnomalyGenerator::MakeSwitch(
    const Trip& base, std::span<const Route> same_sd_pool,
    const SwitchConfig& config) {
  const Route& route = base.route;
  const int64_t n = route.size();
  if (n < 6 || same_sd_pool.empty()) return std::nullopt;
  const double base_len = route.LengthMeters(*network_);
  const std::vector<double> costs =
      RerouteCosts(*network_, config.preference_gamma);

  // Rank pool candidates by similarity; prefer those under the threshold,
  // falling back to the least similar one (as in the paper: "sample a
  // trajectory from those with a low similarity score").
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t idx = 0; idx < same_sd_pool.size(); ++idx) {
    if (same_sd_pool[idx].segments == route.segments) continue;
    ranked.push_back({RouteJaccard(route, same_sd_pool[idx]), idx});
  }
  if (ranked.empty()) return std::nullopt;
  std::sort(ranked.begin(), ranked.end());
  size_t num_eligible = 0;
  while (num_eligible < ranked.size() &&
         ranked[num_eligible].first <= config.max_similarity) {
    ++num_eligible;
  }
  if (num_eligible == 0) num_eligible = 1;

  for (int attempt = 0; attempt < config.max_tries; ++attempt) {
    const Route& alt =
        same_sd_pool[ranked[rng_.UniformInt(num_eligible)].second];
    const int64_t m =
        SampleIndex(n, config.switch_lo, config.switch_hi, 1, n - 2, &rng_);
    if (m < 0) continue;

    // Connect the abandoned prefix to the alternative route: search from
    // t_m and join alt at the cheapest segment in its latter portion.
    const auto tree = engine_.SegmentSearch(route.segments[m], costs);
    const int64_t alt_n = alt.size();
    int64_t best_q = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int64_t q = alt_n / 3; q < alt_n; ++q) {
      const double c = tree.dist[alt.segments[q]];
      if (c < best_cost) {
        best_cost = c;
        best_q = q;
      }
    }
    if (best_q < 0 ||
        best_cost == std::numeric_limits<double>::infinity()) {
      continue;
    }

    const std::vector<roadnet::SegmentId> connector =
        roadnet::ShortestPathEngine::ReconstructPath(tree,
                                                     alt.segments[best_q]);
    Route switched;
    switched.segments.assign(route.segments.begin(),
                             route.segments.begin() + m);
    switched.segments.insert(switched.segments.end(), connector.begin(),
                             connector.end());
    switched.segments.insert(switched.segments.end(),
                             alt.segments.begin() + best_q + 1,
                             alt.segments.end());
    if (switched.segments == route.segments) continue;
    const double len = switched.LengthMeters(*network_);
    if (len > config.max_length_ratio * base_len) continue;
    CAUSALTAD_DCHECK(switched.IsValid(*network_));

    Trip anomaly = base;
    anomaly.route = std::move(switched);
    anomaly.anomaly = AnomalyKind::kSwitch;
    return anomaly;
  }
  return std::nullopt;
}

}  // namespace traj
}  // namespace causaltad
