#include "net/socket_io.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstring>

#include "net/fault.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace net {
namespace {

/// send(2) with EINTR retried; everything else surfaces to the caller.
ssize_t RawSend(int fd, const uint8_t* data, size_t size) {
  while (true) {
    const ssize_t n = send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Best-effort full transmission (for duplicate/truncate payloads): stops
/// at would-block or error — a partially-delivered fault is still a fault.
void SendBestEffort(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = RawSend(fd, data + off, size - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void KillSocket(int fd) { shutdown(fd, SHUT_RDWR); }

}  // namespace

IoResult SendSome(int fd, const uint8_t* data, size_t size,
                  FaultConnection* fault) {
  IoResult result;
  size_t keep = size;
  FaultConnection::Action action = FaultConnection::Action::kPass;
  if (fault != nullptr) action = fault->OnSend(size, &keep);
  switch (action) {
    case FaultConnection::Action::kKill:
      KillSocket(fd);
      result.error = ECONNRESET;
      return result;
    case FaultConnection::Action::kDrop:
      // Swallowed in flight: the caller believes the bytes left, the peer
      // never sees them, and the connection dies under both of them.
      KillSocket(fd);
      result.n = static_cast<ssize_t>(size);
      return result;
    case FaultConnection::Action::kDuplicate:
      // The peer's length-prefixed decoder desyncs on the second copy and
      // poisons — both sides treat that as a transport failure.
      SendBestEffort(fd, data, size);
      SendBestEffort(fd, data, size);
      result.n = static_cast<ssize_t>(size);
      return result;
    case FaultConnection::Action::kTruncate:
      // A mid-frame cut: the prefix arrives, then EOF.
      SendBestEffort(fd, data, keep);
      KillSocket(fd);
      result.n = static_cast<ssize_t>(size);
      return result;
    case FaultConnection::Action::kShortWrite:
    case FaultConnection::Action::kPass:
      break;
  }
  const ssize_t n = RawSend(fd, data, keep);
  if (n >= 0) {
    result.n = n;
    return result;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    result.would_block = true;
    return result;
  }
  result.error = errno;
  return result;
}

IoResult RecvSome(int fd, uint8_t* buf, size_t size, FaultConnection* fault) {
  IoResult result;
  size_t keep = size;
  FaultConnection::Action action = FaultConnection::Action::kPass;
  if (fault != nullptr) action = fault->OnRecv(size, &keep);
  if (action == FaultConnection::Action::kKill) {
    KillSocket(fd);
    result.error = ECONNRESET;
    return result;
  }
  while (true) {
    const ssize_t n = recv(fd, buf, keep, 0);
    if (n > 0) {
      result.n = n;
      return result;
    }
    if (n == 0) {
      result.peer_closed = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    result.error = errno;
    return result;
  }
}

util::Status SendAll(int fd, const uint8_t* data, size_t size,
                     double timeout_ms, FaultConnection* fault) {
  util::Stopwatch watch;
  size_t off = 0;
  while (off < size) {
    const IoResult r = SendSome(fd, data + off, size - off, fault);
    if (!r.ok()) {
      return util::Status::IoError("send failed: " +
                                   std::string(std::strerror(r.error)));
    }
    if (r.n > 0) {
      off += static_cast<size_t>(r.n);
      continue;
    }
    // Would-block (or a zero-byte fault verdict): wait for writability
    // instead of failing — the peer may simply be slow to drain.
    const double remaining_ms = timeout_ms - watch.ElapsedMillis();
    if (remaining_ms <= 0.0) {
      return util::Status::IoError("send timed out");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = poll(
        &pfd, 1,
        std::max(1, static_cast<int>(std::min(remaining_ms, 100.0))));
    if (ready < 0 && errno != EINTR) {
      return util::Status::IoError("poll failed: " +
                                   std::string(std::strerror(errno)));
    }
  }
  return util::Status::Ok();
}

}  // namespace net
}  // namespace causaltad
