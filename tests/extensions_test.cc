// Tests for the library extensions: trip corpus IO, corpus statistics,
// threshold calibration, validation-based lambda search, and the paper's
// future-work time-aware scaling factors.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/causal_tad.h"
#include "core/lambda_search.h"
#include "eval/corpus_stats.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/threshold.h"
#include "traj/trip_io.h"

namespace causaltad {
namespace {

const eval::ExperimentData& Data() {
  static const eval::ExperimentData* data = new eval::ExperimentData(
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke)));
  return *data;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Trip IO.
// ---------------------------------------------------------------------------

class TripIoTest : public ::testing::TestWithParam<bool> {
 protected:
  // Round-trips through CSV (param=false) or binary (param=true).
  util::StatusOr<std::vector<traj::Trip>> RoundTrip(
      const std::vector<traj::Trip>& trips,
      const roadnet::RoadNetwork* network) {
    const std::string path = TempPath(GetParam() ? "ct_trips.bin"
                                                 : "ct_trips.csv");
    const util::Status saved = GetParam()
                                   ? traj::SaveTripsBinary(path, trips)
                                   : traj::SaveTripsCsv(path, trips);
    if (!saved.ok()) return saved;
    auto loaded = GetParam() ? traj::LoadTripsBinary(path, network)
                             : traj::LoadTripsCsv(path, network);
    std::remove(path.c_str());
    return loaded;
  }
};

TEST_P(TripIoTest, RoundTripPreservesEverything) {
  std::vector<traj::Trip> subset(Data().id_detour.begin(),
                                 Data().id_detour.begin() + 10);
  subset.insert(subset.end(), Data().ood_test.begin(),
                Data().ood_test.begin() + 5);
  auto loaded = RoundTrip(subset, &Data().city.network);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ((*loaded)[i].route.segments, subset[i].route.segments);
    EXPECT_EQ((*loaded)[i].source_node, subset[i].source_node);
    EXPECT_EQ((*loaded)[i].dest_node, subset[i].dest_node);
    EXPECT_EQ((*loaded)[i].time_slot, subset[i].time_slot);
    EXPECT_EQ((*loaded)[i].sd_pair_id, subset[i].sd_pair_id);
    EXPECT_EQ((*loaded)[i].anomaly, subset[i].anomaly);
  }
}

TEST_P(TripIoTest, ValidatesRoutesAgainstNetwork) {
  std::vector<traj::Trip> bad(Data().id_test.begin(),
                              Data().id_test.begin() + 2);
  std::swap(bad[0].route.segments.front(), bad[0].route.segments.back());
  auto loaded = RoundTrip(bad, &Data().city.network);
  EXPECT_FALSE(loaded.ok());
  // Without a network, structural validation is skipped.
  auto lenient = RoundTrip(bad, nullptr);
  EXPECT_TRUE(lenient.ok());
}

INSTANTIATE_TEST_SUITE_P(Formats, TripIoTest, ::testing::Bool());

TEST(TripIoTest2, LoadMissingFileFails) {
  EXPECT_FALSE(traj::LoadTripsCsv("/nonexistent/trips.csv").ok());
  EXPECT_FALSE(traj::LoadTripsBinary("/nonexistent/trips.bin").ok());
}

// ---------------------------------------------------------------------------
// Corpus statistics.
// ---------------------------------------------------------------------------

TEST(CorpusStatsTest, BasicInvariants) {
  const auto stats =
      eval::ComputeCorpusStats(Data().city.network, Data().train);
  EXPECT_EQ(stats.num_trips, static_cast<int64_t>(Data().train.size()));
  EXPECT_GT(stats.coverage, 0.0);
  EXPECT_LE(stats.coverage, 1.0);
  EXPECT_GE(stats.min_trip_len, 1);
  EXPECT_LE(stats.min_trip_len, stats.max_trip_len);
  EXPECT_GE(stats.mean_trip_len, stats.min_trip_len);
  EXPECT_LE(stats.mean_trip_len, stats.max_trip_len);
  double share = 0.0;
  for (double c : stats.class_share) share += c;
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_GT(stats.distinct_sd_pairs, 0);
}

TEST(CorpusStatsTest, ConfoundedCorpusHasSkewedTraffic) {
  const auto stats =
      eval::ComputeCorpusStats(Data().city.network, Data().train);
  // The whole point of the generator: traffic concentrates on corridors.
  EXPECT_GT(stats.visit_gini, 0.3);
  // Arterials carry a disproportionate share relative to their prevalence.
  EXPECT_GT(stats.class_share[0], 0.4);
}

TEST(CorpusStatsTest, UniformSyntheticGiniNearZero) {
  // One trip per segment -> perfectly uniform visit counts.
  std::vector<traj::Trip> uniform;
  for (roadnet::SegmentId s = 0; s < Data().city.network.num_segments();
       ++s) {
    traj::Trip t;
    t.route.segments = {s};
    uniform.push_back(t);
  }
  const auto stats = eval::ComputeCorpusStats(Data().city.network, uniform);
  EXPECT_NEAR(stats.visit_gini, 0.0, 1e-9);
  EXPECT_NEAR(stats.coverage, 1.0, 1e-9);
}

TEST(CorpusStatsTest, FormatMentionsKeyNumbers) {
  const auto stats =
      eval::ComputeCorpusStats(Data().city.network, Data().train);
  const std::string text = eval::FormatCorpusStats(stats);
  EXPECT_NE(text.find("coverage"), std::string::npos);
  EXPECT_NE(text.find("gini"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Threshold calibration.
// ---------------------------------------------------------------------------

TEST(ThresholdTest, FprIsRespectedOnCalibrationSet) {
  std::vector<double> normal;
  for (int i = 0; i < 1000; ++i) normal.push_back(i * 0.01);
  for (double fpr : {0.0, 0.05, 0.2}) {
    const double thr = eval::ThresholdAtFpr(normal, fpr);
    int64_t above = 0;
    for (double s : normal) above += (s > thr);
    EXPECT_LE(static_cast<double>(above) / normal.size(), fpr + 1e-12)
        << "fpr=" << fpr;
  }
}

TEST(ThresholdTest, ZeroFprFlagsNothingOnCalibrationSet) {
  const std::vector<double> normal = {1.0, 5.0, 3.0};
  const double thr = eval::ThresholdAtFpr(normal, 0.0);
  EXPECT_GE(thr, 5.0);
}

TEST(ThresholdTest, ReportCountsAndDerivedMetrics) {
  const std::vector<double> normal = {1, 2, 3, 4};
  const std::vector<double> anomaly = {3.5, 5, 6};
  const auto report = eval::EvaluateAtThreshold(normal, anomaly, 3.0);
  EXPECT_EQ(report.false_positives, 1);  // the 4
  EXPECT_EQ(report.true_negatives, 3);
  EXPECT_EQ(report.true_positives, 3);
  EXPECT_EQ(report.false_negatives, 0);
  EXPECT_NEAR(report.Precision(), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(report.Recall(), 1.0, 1e-12);
  EXPECT_NEAR(report.FalsePositiveRate(), 0.25, 1e-12);
  EXPECT_GT(report.F1(), 0.85);
}

TEST(ThresholdTest, DegenerateReportsAreZeroNotNan) {
  const std::vector<double> normal = {1, 2};
  const std::vector<double> anomaly = {0.1};
  const auto report = eval::EvaluateAtThreshold(normal, anomaly, 10.0);
  EXPECT_EQ(report.Precision(), 0.0);
  EXPECT_EQ(report.Recall(), 0.0);
  EXPECT_EQ(report.F1(), 0.0);
}

// ---------------------------------------------------------------------------
// Lambda search + time-aware scaling.
// ---------------------------------------------------------------------------

core::CausalTadConfig TinyConfig() {
  core::CausalTadConfig cfg;
  cfg.tg.emb_dim = 16;
  cfg.tg.hidden_dim = 24;
  cfg.tg.latent_dim = 12;
  cfg.rp.emb_dim = 12;
  cfg.rp.hidden_dim = 24;
  cfg.rp.latent_dim = 8;
  cfg.scaling_samples = 4;
  return cfg;
}

TEST(LambdaSearchTest, AgreesWithDirectScoring) {
  core::CausalTad model(&Data().city.network, TinyConfig());
  models::FitOptions options;
  options.epochs = 3;
  options.lr = 3e-3f;
  model.Fit(Data().train, options);

  const std::vector<double> grid = {0.0, 0.1, 0.5};
  const auto result =
      core::SelectLambda(model, Data().id_test, Data().id_detour, grid);
  ASSERT_EQ(result.grid.size(), 3u);
  // Cross-check one grid point against direct EvaluateCombo-style scoring.
  std::vector<double> normal, anomaly;
  for (const auto& t : Data().id_test) {
    normal.push_back(model.ScoreVariantLambda(t, t.route.size(),
                                              core::ScoreVariant::kFull,
                                              0.1));
  }
  for (const auto& t : Data().id_detour) {
    anomaly.push_back(model.ScoreVariantLambda(t, t.route.size(),
                                               core::ScoreVariant::kFull,
                                               0.1));
  }
  const double direct = eval::EvaluateScores(normal, anomaly).roc_auc;
  EXPECT_NEAR(result.grid[1].second, direct, 1e-9);
  // Best is the max of the grid.
  for (const auto& [lambda, auc] : result.grid) {
    EXPECT_LE(auc, result.best_roc_auc + 1e-12);
  }
}

TEST(LambdaSearchTest, DefaultGridContainsPaperValue) {
  const auto grid = core::DefaultLambdaGrid();
  EXPECT_NE(std::find(grid.begin(), grid.end(), 0.1), grid.end());
  EXPECT_EQ(grid.front(), 0.0);
}

TEST(TimeAwareScalingTest, TablePerSlotAndScoreUsesTripSlot) {
  core::CausalTadConfig cfg = TinyConfig();
  cfg.time_aware_scaling = true;
  core::CausalTad model(&Data().city.network, cfg);
  models::FitOptions options;
  options.epochs = 2;
  options.lr = 3e-3f;
  model.Fit(Data().train, options);

  EXPECT_EQ(model.scaling_table().num_slots(), cfg.num_time_slots);
  // Scores differ across slots for the same route (time-dependent E).
  traj::Trip trip = Data().id_test.front();
  trip.time_slot = 0;
  const double s0 = model.ScoreFull(trip);
  trip.time_slot = 3;
  const double s3 = model.ScoreFull(trip);
  EXPECT_NE(s0, s3);

  // Online session matches batch under time-aware scaling too.
  auto session = model.BeginTrip(trip);
  double last = 0;
  for (const auto seg : trip.route.segments) last = session->Update(seg);
  EXPECT_NEAR(last, model.ScoreFull(trip), 1e-4);
}

TEST(TimeAwareScalingTest, StaticModelHasOneSlot) {
  core::CausalTad model(&Data().city.network, TinyConfig());
  models::FitOptions options;
  options.epochs = 1;
  options.lr = 3e-3f;
  model.Fit(Data().train, options);
  EXPECT_EQ(model.scaling_table().num_slots(), 1);
}

TEST(CenteredScalingTest, TableIsZeroMeanByDefault) {
  core::CausalTad model(&Data().city.network, TinyConfig());
  models::FitOptions options;
  options.epochs = 1;
  options.lr = 3e-3f;
  model.Fit(Data().train, options);
  double mean = 0;
  for (double v : model.scaling_table().values()) mean += v;
  mean /= static_cast<double>(model.scaling_table().values().size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(CenteredScalingTest, CanBeDisabled) {
  core::CausalTadConfig cfg = TinyConfig();
  cfg.center_scaling = false;
  core::CausalTad model(&Data().city.network, cfg);
  models::FitOptions options;
  options.epochs = 1;
  options.lr = 3e-3f;
  model.Fit(Data().train, options);
  // Raw log E[1/P] values are all >= 0 and clearly not zero-mean.
  double mean = 0;
  for (double v : model.scaling_table().values()) {
    EXPECT_GE(v, 0.0);
    mean += v;
  }
  mean /= static_cast<double>(model.scaling_table().values().size());
  EXPECT_GT(mean, 0.5);
}

}  // namespace
}  // namespace causaltad
