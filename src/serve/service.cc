#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace causaltad {
namespace serve {
namespace {

/// splitmix64 — cheap stateless mix so consecutive session counters spread
/// uniformly over the shards.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

StreamingService::StreamingService(const core::CausalTad* model,
                                   ServiceOptions options)
    : StreamingService(model, core::ScoreVariant::kFull, model->lambda(),
                       std::move(options)) {}

StreamingService::StreamingService(const core::CausalTad* model,
                                   core::ScoreVariant variant, double lambda,
                                   ServiceOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  CAUSALTAD_CHECK_GT(options_.num_shards, 0);
  options_.batcher.queue_wait = &queue_wait_;
  shards_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->batcher = std::make_unique<StreamingBatcher>(
        model, variant, lambda, options_.batcher);
    shards_.push_back(std::move(shard));
  }
  if (options_.pump) {
    for (auto& shard : shards_) {
      shard->pump = std::thread([this, s = shard.get()] { PumpLoop(s); });
    }
  }
}

StreamingService::~StreamingService() { Shutdown(); }

void StreamingService::PumpLoop(Shard* shard) {
  // Idle poll period: a fraction of the admission deadline, so a partial
  // batch is picked up well within max_delay_ms of becoming due.
  const double delay_ms = std::max(options_.batcher.max_delay_ms, 0.1);
  const auto idle_wait =
      std::chrono::microseconds(std::max<int64_t>(
          50, static_cast<int64_t>(delay_ms * 1000.0 / 4.0)));
  while (!stop_.load(std::memory_order_acquire)) {
    if (shard->batcher->StepIfReady() > 0) continue;  // hot: step again
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv.wait_for(lock, idle_wait, [this] {
      return stop_.load(std::memory_order_acquire);
    });
  }
}

StreamingService::Shard* StreamingService::ShardOf(SessionId id,
                                                   SessionId* inner) {
  CAUSALTAD_CHECK_GE(id, 0);
  const int64_t n = static_cast<int64_t>(shards_.size());
  *inner = id / n;
  return shards_[id % n].get();
}

SessionId StreamingService::BeginSession(roadnet::SegmentId source,
                                         roadnet::SegmentId destination,
                                         int time_slot) {
  return BeginSessionAt(source, destination, time_slot, /*emit_skip=*/0);
}

SessionId StreamingService::BeginSessionAt(roadnet::SegmentId source,
                                           roadnet::SegmentId destination,
                                           int time_slot, int64_t emit_skip) {
  const uint64_t seq = next_session_.fetch_add(1, std::memory_order_relaxed);
  const int64_t n = static_cast<int64_t>(shards_.size());
  const int64_t shard = static_cast<int64_t>(Mix(seq) % shards_.size());
  const SessionId inner = shards_[shard]->batcher->BeginSessionAt(
      source, destination, time_slot, emit_skip);
  sessions_begun_.fetch_add(1, std::memory_order_relaxed);
  // Bijective (inner, shard) -> service id; decoding needs no lock or map.
  return inner * n + shard;
}

SessionId StreamingService::Begin(const traj::Trip& trip) {
  CAUSALTAD_CHECK(!trip.route.empty());
  return BeginSession(trip.route.segments.front(),
                      trip.route.segments.back(), trip.time_slot);
}

PushStatus StreamingService::Push(SessionId id, roadnet::SegmentId segment) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  // The shared lock pins the pre-shutdown world: Shutdown() cannot proceed
  // to join-and-flush until this enqueue has landed (so it gets scored), and
  // once Shutdown() holds the lock exclusively every later Push sees
  // accepting_ == false.
  std::shared_lock<std::shared_mutex> accepting_lock(accepting_mu_);
  if (!accepting_) return PushStatus::kShutdown;
  const PushStatus status =
      shard->batcher->TryPush(inner, segment, options_.max_session_pending,
                              options_.max_shard_queued);
  switch (status) {
    case PushStatus::kAccepted:
      points_accepted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case PushStatus::kSessionFull:
      rejected_session_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case PushStatus::kShardFull:
      rejected_shard_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case PushStatus::kShutdown:
      break;  // unreachable: the batcher has no lifecycle
  }
  return status;
}

void StreamingService::End(SessionId id) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  shard->batcher->End(inner);
}

std::vector<double> StreamingService::Poll(SessionId id) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  return shard->batcher->Poll(inner);
}

int64_t StreamingService::StepAll() {
  int64_t points = 0;
  for (auto& shard : shards_) points += shard->batcher->StepIfReady();
  return points;
}

void StreamingService::Flush() {
  for (auto& shard : shards_) shard->batcher->Flush();
}

void StreamingService::Shutdown() {
  // Held for the whole body: a concurrent Shutdown must BLOCK until the
  // first caller has joined the pumps and flushed, not return early into
  // a still-draining (or mid-destruction) service.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  {
    // Close admission FIRST, before the pumps are joined and the final
    // flush runs: any Push already past its accepting_ check finishes its
    // enqueue before this exclusive lock is granted (so the flush below
    // scores it), and every Push after it returns kShutdown. Without the
    // barrier, a push landing between the pump join and the flush — or
    // after the flush — would be accepted and never scored.
    std::unique_lock<std::shared_mutex> accepting_lock(accepting_mu_);
    accepting_ = false;
  }
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      // Under the shard mutex, or the notify can land in the window
      // between a pump's predicate check and its wait and be lost,
      // stalling the join for a full idle_wait timeout.
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->cv.notify_all();
    }
    if (shard->pump.joinable()) shard->pump.join();
  }
  // Every point accepted before Shutdown gets its score.
  Flush();
  stop_time_ = std::chrono::steady_clock::now();
}

ServiceStats StreamingService::stats() const {
  ServiceStats stats;
  stats.sessions_begun = sessions_begun_.load(std::memory_order_relaxed);
  stats.points_accepted = points_accepted_.load(std::memory_order_relaxed);
  stats.rejected_session_full =
      rejected_session_full_.load(std::memory_order_relaxed);
  stats.rejected_shard_full =
      rejected_shard_full_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const StreamingBatcher::Counters counters = shard->batcher->counters();
    stats.steps += counters.steps;
    stats.points_scored += counters.points;
  }
  if (stats.steps > 0) {
    stats.step_occupancy =
        static_cast<double>(stats.points_scored) /
        static_cast<double>(stats.steps * options_.batcher.max_batch_rows);
  }
  auto end = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (stop_time_ != std::chrono::steady_clock::time_point{}) {
      end = stop_time_;
    }
  }
  const double seconds =
      std::chrono::duration<double>(end - start_).count();
  if (seconds > 0.0) stats.points_per_sec = stats.points_scored / seconds;
  stats.queue_wait_p50_ms = queue_wait_.Percentile(50.0);
  stats.queue_wait_p95_ms = queue_wait_.Percentile(95.0);
  stats.queue_wait_p99_ms = queue_wait_.Percentile(99.0);
  return stats;
}

int64_t StreamingService::queued_points() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->batcher->queued_points();
  return total;
}

int64_t StreamingService::tracked_sessions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->batcher->tracked_sessions();
  }
  return total;
}

}  // namespace serve
}  // namespace causaltad
