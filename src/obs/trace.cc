#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace causaltad {
namespace obs {
namespace {

// The slow log is a forensic aid, not a database: keep the most recent
// chains and drop the oldest once full.
constexpr size_t kMaxSlowChains = 64;

std::string Escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

double TraceNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer(size_t capacity) : capacity_(capacity < 16 ? 16 : capacity) {
  ring_.reserve(capacity_);
}

Tracer* Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return tracer;
}

void Tracer::Record(uint64_t trace_id, const std::string& stage,
                    const std::string& where, double start_ms,
                    double duration_ms, bool root) {
  if (trace_id == 0 || !Enabled()) return;
  Span span;
  span.trace_id = trace_id;
  span.stage = stage;
  span.where = where;
  span.start_ms = start_ms;
  span.duration_ms = duration_ms;

  std::lock_guard<std::mutex> lock(mu_);
  if (root && slow_threshold_ms_ > 0.0 && duration_ms >= slow_threshold_ms_) {
    SlowChain chain;
    chain.root = span;
    for (const Span& s : ring_) {
      if (s.trace_id == trace_id) chain.spans.push_back(s);
    }
    if (slow_.size() >= kMaxSlowChains) slow_.erase(slow_.begin());
    slow_.push_back(std::move(chain));
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void Tracer::set_slow_threshold_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = ms;
}

std::vector<Span> Tracer::SpansFor(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  for (const Span& s : ring_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::string Tracer::SpanJson(const Span& span) {
  char num[64];
  std::string out = "{\"trace_id\": ";
  std::snprintf(num, sizeof(num), "%llu",
                static_cast<unsigned long long>(span.trace_id));
  out += num;
  out += ", \"stage\": \"" + Escape(span.stage) + "\"";
  out += ", \"where\": \"" + Escape(span.where) + "\"";
  std::snprintf(num, sizeof(num), "%.4f", span.start_ms);
  out += std::string(", \"start_ms\": ") + num;
  std::snprintf(num, sizeof(num), "%.4f", span.duration_ms);
  out += std::string(", \"duration_ms\": ") + num;
  out += "}";
  return out;
}

std::string Tracer::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  " + SpanJson(ring_[i]);
  }
  out += "\n]\n";
  return out;
}

std::string Tracer::SlowLogJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  for (size_t i = 0; i < slow_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"root\": " + SpanJson(slow_[i].root) + ", \"spans\": [";
    for (size_t k = 0; k < slow_[i].spans.size(); ++k) {
      if (k > 0) out += ", ";
      out += SpanJson(slow_[i].spans[k]);
    }
    out += "]}";
  }
  out += "\n]\n";
  return out;
}

int64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t Tracer::slow_chains() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(slow_.size());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  slow_.clear();
}

}  // namespace obs
}  // namespace causaltad
