#include "roadnet/grid_city.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"
#include "util/logging.h"

namespace causaltad {
namespace roadnet {
namespace {

struct StreetSpec {
  RoadClass road_class;
  double speed;
  double base_pref;
};

// Classifies a grid line index into arterial / collector / local. Every
// arterial_every-th line is arterial and the line halfway between two
// arterials is a collector.
StreetSpec ClassifyLine(int index, const GridCityConfig& cfg) {
  const int k = cfg.arterial_every;
  if (k > 0 && index % k == 0) {
    return {RoadClass::kArterial, cfg.arterial_speed_mps, cfg.arterial_pref};
  }
  if (k > 1 && index % k == k / 2) {
    return {RoadClass::kCollector, cfg.collector_speed_mps,
            cfg.collector_pref};
  }
  return {RoadClass::kLocal, cfg.local_speed_mps, cfg.local_pref};
}

}  // namespace

City BuildGridCity(const GridCityConfig& config) {
  CAUSALTAD_CHECK_GE(config.rows, 2);
  CAUSALTAD_CHECK_GE(config.cols, 2);
  util::Rng rng(config.seed);
  util::Rng jitter_rng = rng.Fork();
  util::Rng pref_rng = rng.Fork();
  util::Rng poi_rng = rng.Fork();
  util::Rng drop_rng = rng.Fork();

  const geo::LocalProjection proj(config.origin);
  auto node_at = [&](int r, int c) {
    return static_cast<NodeId>(r * config.cols + c);
  };

  // Node positions on a jittered grid.
  std::vector<geo::LatLon> node_pos;
  node_pos.reserve(static_cast<size_t>(config.rows) * config.cols);
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      const geo::Vec2 p{
          c * config.block_m + jitter_rng.Gaussian(0, config.jitter_m),
          r * config.block_m + jitter_rng.Gaussian(0, config.jitter_m)};
      node_pos.push_back(proj.Unproject(p));
    }
  }

  // Candidate two-way streets. A horizontal edge lies on a row line, a
  // vertical edge on a column line; the line determines the street class.
  struct EdgeRecord {
    NodeId a, b;
    StreetSpec spec;
    double pref;
  };
  std::vector<EdgeRecord> edges;
  auto jittered_pref = [&](double base) {
    return base * std::exp(pref_rng.Gaussian(0, config.pref_jitter_sigma));
  };
  for (int r = 0; r < config.rows; ++r) {
    const StreetSpec spec = ClassifyLine(r, config);
    for (int c = 0; c + 1 < config.cols; ++c) {
      edges.push_back({node_at(r, c), node_at(r, c + 1), spec,
                       jittered_pref(spec.base_pref)});
    }
  }
  for (int c = 0; c < config.cols; ++c) {
    const StreetSpec spec = ClassifyLine(c, config);
    for (int r = 0; r + 1 < config.rows; ++r) {
      edges.push_back({node_at(r, c), node_at(r + 1, c), spec,
                       jittered_pref(spec.base_pref)});
    }
  }

  // Mark local streets for removal (imperfect grid).
  std::vector<uint8_t> dropped(edges.size(), 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].spec.road_class == RoadClass::kLocal &&
        drop_rng.Bernoulli(config.drop_local_street_prob)) {
      dropped[i] = 1;
    }
  }

  auto assemble = [&]() {
    RoadNetworkBuilder b;
    for (const auto& pos : node_pos) b.AddNode(pos);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (dropped[i]) continue;
      const auto& e = edges[i];
      b.AddTwoWaySegment(e.a, e.b, e.spec.road_class,
                         static_cast<float>(e.spec.speed),
                         static_cast<float>(e.pref));
    }
    return b.Build();
  };

  City city;
  city.config = config;
  city.network = assemble();
  // Restore dropped streets until the network is strongly connected. The
  // grid minus a few local streets is almost always fine; this loop is a
  // correctness guarantee, not a hot path.
  while (!city.network.IsStronglyConnected()) {
    bool restored = false;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (dropped[i]) {
        dropped[i] = 0;
        restored = true;
        break;
      }
    }
    CAUSALTAD_CHECK(restored) << "grid city unexpectedly disconnected";
    city.network = assemble();
  }

  // Place POIs, preferring arterial intersections (the E -> C edge of the
  // causal graph: popular destinations sit on preferred roads).
  std::vector<NodeId> arterial_nodes;
  for (NodeId n = 0; n < city.network.num_nodes(); ++n) {
    for (SegmentId s : city.network.OutSegments(n)) {
      if (city.network.segment(s).road_class == RoadClass::kArterial) {
        arterial_nodes.push_back(n);
        break;
      }
    }
  }
  for (int i = 0; i < config.num_pois; ++i) {
    NodeId node;
    if (!arterial_nodes.empty() &&
        poi_rng.Bernoulli(config.poi_on_arterial_prob)) {
      node = arterial_nodes[poi_rng.UniformInt(
          static_cast<int64_t>(arterial_nodes.size()))];
    } else {
      node =
          static_cast<NodeId>(poi_rng.UniformInt(city.network.num_nodes()));
    }
    city.pois.push_back(
        {node, config.poi_popularity * poi_rng.Uniform(0.6, 1.4)});
  }

  // Node popularity = base + sum of POI Gaussian kernels.
  city.node_popularity.assign(city.network.num_nodes(),
                              config.base_popularity);
  for (const Poi& poi : city.pois) {
    const geo::LatLon center = city.network.node(poi.node).pos;
    for (NodeId n = 0; n < city.network.num_nodes(); ++n) {
      const double d = geo::HaversineMeters(center, city.network.node(n).pos);
      const double k = d / config.poi_reach_m;
      city.node_popularity[n] += poi.popularity * std::exp(-0.5 * k * k);
    }
  }

  return city;
}

}  // namespace roadnet
}  // namespace causaltad
