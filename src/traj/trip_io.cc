#include "traj/trip_io.h"

#include <sstream>

#include "util/binary_io.h"
#include "util/csv.h"

namespace causaltad {
namespace traj {
namespace {

constexpr uint32_t kMagic = 0x7219CAFE;
constexpr uint32_t kVersion = 1;

util::Status ValidateTrip(const Trip& trip,
                          const roadnet::RoadNetwork* network,
                          size_t index) {
  if (trip.route.empty()) {
    return util::Status::InvalidArgument("trip " + std::to_string(index) +
                                         " has an empty route");
  }
  if (network != nullptr && !trip.route.IsValid(*network)) {
    return util::Status::InvalidArgument(
        "trip " + std::to_string(index) +
        " is not a valid route of the given network");
  }
  return util::Status::Ok();
}

std::string EncodeRoute(const Route& route) {
  std::ostringstream out;
  for (size_t i = 0; i < route.segments.size(); ++i) {
    if (i) out << ' ';
    out << route.segments[i];
  }
  return out.str();
}

util::StatusOr<Route> DecodeRoute(const std::string& text) {
  Route route;
  std::istringstream in(text);
  long long value;
  while (in >> value) {
    route.segments.push_back(static_cast<roadnet::SegmentId>(value));
  }
  if (!in.eof()) return util::Status::InvalidArgument("bad route cell");
  return route;
}

}  // namespace

util::Status SaveTripsCsv(const std::string& path,
                          const std::vector<Trip>& trips) {
  util::CsvTable table;
  table.header = {"source_node", "dest_node", "time_slot",
                  "sd_pair_id",  "anomaly",   "route"};
  table.rows.reserve(trips.size());
  for (const Trip& trip : trips) {
    table.rows.push_back({std::to_string(trip.source_node),
                          std::to_string(trip.dest_node),
                          std::to_string(trip.time_slot),
                          std::to_string(trip.sd_pair_id),
                          std::to_string(static_cast<int>(trip.anomaly)),
                          EncodeRoute(trip.route)});
  }
  return util::WriteCsv(path, table);
}

util::StatusOr<std::vector<Trip>> LoadTripsCsv(
    const std::string& path, const roadnet::RoadNetwork* network) {
  auto table_or = util::ReadCsv(path);
  if (!table_or.ok()) return table_or.status();
  const util::CsvTable& table = *table_or;
  if (table.header !=
      std::vector<std::string>{"source_node", "dest_node", "time_slot",
                               "sd_pair_id", "anomaly", "route"}) {
    return util::Status::InvalidArgument("unexpected trip CSV header");
  }
  std::vector<Trip> trips;
  trips.reserve(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    Trip trip;
    trip.source_node = static_cast<roadnet::NodeId>(std::stol(row[0]));
    trip.dest_node = static_cast<roadnet::NodeId>(std::stol(row[1]));
    trip.time_slot = std::stoi(row[2]);
    trip.sd_pair_id = static_cast<int32_t>(std::stol(row[3]));
    const int kind = std::stoi(row[4]);
    if (kind < 0 || kind > 2) {
      return util::Status::InvalidArgument("bad anomaly kind");
    }
    trip.anomaly = static_cast<AnomalyKind>(kind);
    auto route_or = DecodeRoute(row[5]);
    if (!route_or.ok()) return route_or.status();
    trip.route = std::move(*route_or);
    CAUSALTAD_RETURN_IF_ERROR(ValidateTrip(trip, network, i));
    trips.push_back(std::move(trip));
  }
  return trips;
}

util::Status SaveTripsBinary(const std::string& path,
                             const std::vector<Trip>& trips) {
  util::BinaryWriter writer(path, kMagic, kVersion);
  if (!writer.ok()) return util::Status::IoError("cannot open " + path);
  writer.WriteU64(trips.size());
  for (const Trip& trip : trips) {
    writer.WriteI64(trip.source_node);
    writer.WriteI64(trip.dest_node);
    writer.WriteI64(trip.time_slot);
    writer.WriteI64(trip.sd_pair_id);
    writer.WriteU32(static_cast<uint32_t>(trip.anomaly));
    writer.WriteInts(std::vector<int32_t>(trip.route.segments.begin(),
                                          trip.route.segments.end()));
  }
  return writer.Close();
}

util::StatusOr<std::vector<Trip>> LoadTripsBinary(
    const std::string& path, const roadnet::RoadNetwork* network) {
  util::BinaryReader reader(path, kMagic, kVersion);
  if (!reader.ok()) return reader.status();
  const uint64_t count = reader.ReadU64();
  std::vector<Trip> trips;
  trips.reserve(count);
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    Trip trip;
    trip.source_node = static_cast<roadnet::NodeId>(reader.ReadI64());
    trip.dest_node = static_cast<roadnet::NodeId>(reader.ReadI64());
    trip.time_slot = static_cast<int>(reader.ReadI64());
    trip.sd_pair_id = static_cast<int32_t>(reader.ReadI64());
    const uint32_t kind = reader.ReadU32();
    if (kind > 2) return util::Status::InvalidArgument("bad anomaly kind");
    trip.anomaly = static_cast<AnomalyKind>(kind);
    const std::vector<int32_t> segments = reader.ReadInts();
    trip.route.segments.assign(segments.begin(), segments.end());
    if (!reader.ok()) break;
    CAUSALTAD_RETURN_IF_ERROR(ValidateTrip(trip, network, i));
    trips.push_back(std::move(trip));
  }
  if (!reader.ok()) return reader.status();
  return trips;
}

}  // namespace traj
}  // namespace causaltad
