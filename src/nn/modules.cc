#include "nn/modules.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "nn/init.h"
#include "nn/kernels/kernels.h"
#include "util/logging.h"

namespace causaltad {
namespace nn {

namespace {

using kernels::Kernels;

// -1 = read CAUSALTAD_INT8_EMB on first query, 0/1 = explicit.
std::atomic<int> g_int8_embeddings{-1};

}  // namespace

bool Int8EmbeddingsEnabled() {
  int v = g_int8_embeddings.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("CAUSALTAD_INT8_EMB");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    g_int8_embeddings.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetInt8Embeddings(bool enabled) {
  g_int8_embeddings.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const NamedParam& p : params_) out.push_back(p.var);
  for (const Module* m : submodules_) {
    auto sub = m->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<NamedParam>* out) const {
  const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
  for (const NamedParam& p : params_) {
    out->push_back({base + "." + p.name, p.var, this});
  }
  for (const Module* m : submodules_) m->CollectNamed(base, out);
}

std::vector<NamedParam> Module::NamedParameters() const {
  std::vector<NamedParam> out;
  CollectNamed("", &out);
  return out;
}

int64_t Module::NumParams() const {
  int64_t total = 0;
  for (const Var& p : Parameters()) total += p.value().numel();
  return total;
}

Var Module::RegisterParameter(const std::string& name, Tensor init) {
  Var v(std::move(init), /*requires_grad=*/true);
  params_.push_back({name, v});
  return v;
}

void Module::RegisterSubmodule(Module* module) {
  CAUSALTAD_CHECK(module != nullptr);
  submodules_.push_back(module);
}

Linear::Linear(std::string name, int64_t in_dim, int64_t out_dim,
               util::Rng* rng)
    : Module(std::move(name)) {
  w_ = RegisterParameter("w", XavierUniform(in_dim, out_dim, rng));
  b_ = RegisterParameter("b", Tensor::Zeros({1, out_dim}));
}

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim,
                     util::Rng* rng)
    : Module(std::move(name)) {
  table_ = RegisterParameter("table", GaussianInit({vocab, dim}, 0.1, rng));
}

bool Embedding::Int8Active() const {
  return quant_valid_ && Int8EmbeddingsEnabled();
}

void Embedding::RefreshQuantized() {
  const Tensor& t = table_.value();
  quant_.resize(t.numel());
  scales_.resize(t.dim(0));
  kernels::QuantizeRowsI8(t.data(), t.dim(0), t.dim(1), quant_.data(),
                          scales_.data());
  quant_valid_ = true;
}

Var Embedding::Forward(std::span<const int32_t> ids) const {
  // Tape-recording lookups must gather fp32 so gradients scatter into the
  // master table at full precision; only no-grad reads serve int8.
  const bool taping = !InferenceGuard::active() && table_.requires_grad();
  if (!taping && Int8Active()) {
    const int64_t d = dim();
    Tensor out({static_cast<int64_t>(ids.size()), d});
    kernels::Active().dequant_rows_i8(quant_.data(), scales_.data(), d,
                                      ids.data(), ids.size(), out.data());
    return Var(std::move(out), /*requires_grad=*/false);
  }
  return GatherRows(table_, ids);
}

void Embedding::GatherRowValues(std::span<const int32_t> ids,
                                float* out) const {
  const Kernels& kern = kernels::Active();
  const int64_t d = dim();
  if (Int8Active()) {
    kern.dequant_rows_i8(quant_.data(), scales_.data(), d, ids.data(),
                         ids.size(), out);
  } else {
    kern.gather_rows_f32(table_.value().data(), d, ids.data(), ids.size(),
                         out);
  }
}

GruCell::GruCell(std::string name, int64_t in_dim, int64_t hidden_dim,
                 util::Rng* rng)
    : Module(std::move(name)), hidden_dim_(hidden_dim) {
  wz_ = RegisterParameter("wz", XavierUniform(in_dim, hidden_dim, rng));
  uz_ = RegisterParameter("uz", XavierUniform(hidden_dim, hidden_dim, rng));
  bz_ = RegisterParameter("bz", Tensor::Zeros({1, hidden_dim}));
  wr_ = RegisterParameter("wr", XavierUniform(in_dim, hidden_dim, rng));
  ur_ = RegisterParameter("ur", XavierUniform(hidden_dim, hidden_dim, rng));
  br_ = RegisterParameter("br", Tensor::Zeros({1, hidden_dim}));
  wh_ = RegisterParameter("wh", XavierUniform(in_dim, hidden_dim, rng));
  uh_ = RegisterParameter("uh", XavierUniform(hidden_dim, hidden_dim, rng));
  bh_ = RegisterParameter("bh", Tensor::Zeros({1, hidden_dim}));
}

Var GruCell::Step(const Var& x, const Var& h) const {
  const Var z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  const Var r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  const Var candidate =
      Tanh(Add(Add(MatMul(x, wh_), MatMul(Mul(r, h), uh_)), bh_));
  // h' = h + z ⊙ (candidate - h)
  return Add(h, Mul(z, Sub(candidate, h)));
}

Var GruCell::StepFused(const Var& x, const Var& h) const {
  if (!InferenceGuard::active() &&
      (x.requires_grad() || h.requires_grad() || wz_.requires_grad())) {
    return Step(x, h);
  }
  const Tensor& tx = x.value();
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(tx.dim(0), th.dim(0));
  CAUSALTAD_DCHECK_EQ(th.dim(1), hidden_dim_);
  const int64_t batch = tx.dim(0);
  const int64_t in = tx.dim(1);
  const int64_t hd = hidden_dim_;

  const Kernels& kern = kernels::Active();
  internal::ArenaScope scope;
  float* z = internal::ArenaAlloc(batch * hd);
  float* r = internal::ArenaAlloc(batch * hd);
  float* c = internal::ArenaAlloc(batch * hd);

  // Input halves of the gate pre-activations: z = xWz, r = xWr, c = xWh.
  kern.matmul_packed(tx.data(), wz_.value().data(), z, batch, in, hd, false,
                     false);
  kern.matmul_packed(tx.data(), wr_.value().data(), r, batch, in, hd, false,
                     false);
  kern.matmul_packed(tx.data(), wh_.value().data(), c, batch, in, hd, false,
                     false);
  return FusedGateTail(th, batch, z, r, c);
}

float* GruCell::PackedGateWeights(int64_t in) const {
  // [Wz | Wr | Wh] packed side by side in arena scratch (caller holds the
  // ArenaScope): one gemm against it is identical math to three separate
  // input-weight gemms, amortized over every unique row.
  const int64_t hd = hidden_dim_;
  float* fused = internal::ArenaAlloc(in * 3 * hd);
  for (int64_t p = 0; p < in; ++p) {
    std::copy(wz_.value().data() + p * hd, wz_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd);
    std::copy(wr_.value().data() + p * hd, wr_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd + hd);
    std::copy(wh_.value().data() + p * hd, wh_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd + 2 * hd);
  }
  return fused;
}

Tensor GruCell::ProjectInputs(const Tensor& xs) const {
  const int64_t n = xs.dim(0);
  const int64_t in = xs.dim(1);
  const int64_t hd = hidden_dim_;
  internal::ArenaScope scope;
  float* fused = PackedGateWeights(in);
  Tensor out({n, 3 * hd});
  kernels::Active().matmul_packed(xs.data(), fused, out.data(), n, in, 3 * hd,
                                  false, false);
  return out;
}

Tensor GruCell::ProjectInputsQuantized(const int8_t* q, const float* scales,
                                       std::span<const int32_t> ids,
                                       int64_t in_dim) const {
  const int64_t n = static_cast<int64_t>(ids.size());
  const int64_t hd = hidden_dim_;
  const Kernels& kern = kernels::Active();
  internal::ArenaScope scope;
  float* fused = PackedGateWeights(in_dim);
  // Gather the quantized rows contiguously (int8: a quarter of the fp32
  // gather traffic) with their per-row scales, then one int8 gemm.
  std::vector<int8_t> rows(n * in_dim);
  std::vector<float> row_scales(n);
  for (int64_t i = 0; i < n; ++i) {
    const int8_t* src = q + static_cast<int64_t>(ids[i]) * in_dim;
    std::copy(src, src + in_dim, rows.data() + i * in_dim);
    row_scales[i] = scales[ids[i]];
  }
  Tensor out({n, 3 * hd});
  kern.matmul_i8(rows.data(), row_scales.data(), fused, out.data(), n, in_dim,
                 3 * hd);
  return out;
}

Var GruCell::StepFusedProjected(const float* xw, int64_t batch,
                                const Var& h) const {
  CAUSALTAD_CHECK(InferenceGuard::active());
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(th.dim(0), batch);
  const int64_t hd = hidden_dim_;
  internal::ArenaScope scope;
  float* z = internal::ArenaAlloc(batch * hd);
  float* r = internal::ArenaAlloc(batch * hd);
  float* c = internal::ArenaAlloc(batch * hd);
  for (int64_t b = 0; b < batch; ++b) {
    const float* row = xw + b * 3 * hd;
    std::copy(row, row + hd, z + b * hd);
    std::copy(row + hd, row + 2 * hd, r + b * hd);
    std::copy(row + 2 * hd, row + 3 * hd, c + b * hd);
  }
  return FusedGateTail(th, batch, z, r, c);
}

Var GruCell::StepBatched(const Var& x, const Var& h,
                         std::span<const uint8_t> finished) const {
  const Tensor& tx = x.value();
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(tx.dim(0), th.dim(0));
  CAUSALTAD_DCHECK_EQ(th.dim(1), hidden_dim_);
  const int64_t batch = tx.dim(0);
  const int64_t in = tx.dim(1);
  const int64_t hd = hidden_dim_;
  CAUSALTAD_DCHECK(finished.empty() ||
                   static_cast<int64_t>(finished.size()) == batch);

  // Post-activation gates, saved for the backward pass (heap, not arena —
  // the tape outlives this call). Planes: z rows [0,B), r rows [B,2B),
  // candidate rows [2B,3B).
  auto acts = std::make_shared<Tensor>(Tensor({3 * batch, hd}));
  float* z = acts->data();
  float* r = z + batch * hd;
  float* c = r + batch * hd;

  const Kernels& kern = kernels::Active();
  internal::ArenaScope scope;
  // Input halves, then recurrent halves accumulated on top.
  kern.matmul_packed(tx.data(), wz_.value().data(), z, batch, in, hd, false,
                     false);
  kern.matmul_packed(tx.data(), wr_.value().data(), r, batch, in, hd, false,
                     false);
  kern.matmul_packed(tx.data(), wh_.value().data(), c, batch, in, hd, false,
                     false);
  kern.matmul_packed(th.data(), uz_.value().data(), z, batch, hd, hd,
                     /*accumulate=*/true, false);
  kern.matmul_packed(th.data(), ur_.value().data(), r, batch, hd, hd,
                     /*accumulate=*/true, false);
  float* rh = internal::ArenaAlloc(batch * hd);
  kern.gru_gates_zr(th.data(), bz_.value().data(), br_.value().data(), z, r,
                    rh, batch, hd);
  kern.matmul_packed(rh, uh_.value().data(), c, batch, hd, hd,
                     /*accumulate=*/true, false);

  Tensor out({batch, hd});
  kern.gru_out_blend(th.data(), bh_.value().data(), z, c, out.data(),
                     finished.empty() ? nullptr : finished.data(), batch, hd);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = internal::MakeOp(
      std::move(out),
      {x, h, wz_, uz_, bz_, wr_, ur_, br_, wh_, uh_, bh_}, &slot, &self);
  if (slot == nullptr) return result;

  Node* nx = x.node().get();
  Node* nh = h.node().get();
  Node* nwz = wz_.node().get();
  Node* nuz = uz_.node().get();
  Node* nbz = bz_.node().get();
  Node* nwr = wr_.node().get();
  Node* nur = ur_.node().get();
  Node* nbr = br_.node().get();
  Node* nwh = wh_.node().get();
  Node* nuh = uh_.node().get();
  Node* nbh = bh_.node().get();
  std::vector<uint8_t> fin(finished.begin(), finished.end());
  *slot = [self, nx, nh, nwz, nuz, nbz, nwr, nur, nbr, nwh, nuh, nbh, acts,
           fin, batch, in, hd]() {
    const Kernels& kern = kernels::Active();
    const float* g = self->grad.data();
    const float* z = acts->data();
    const float* r = z + batch * hd;
    const float* c = r + batch * hd;
    const float* hv = nh->value.data();

    internal::ArenaScope scope;
    float* da_z = internal::ArenaAlloc(batch * hd);
    float* da_r = internal::ArenaAlloc(batch * hd);
    float* da_c = internal::ArenaAlloc(batch * hd);
    float* drh = internal::ArenaAlloc(batch * hd);
    float* rh = internal::ArenaAlloc(batch * hd);

    // Pass 1 — gate pre-activation grads that only need z, c, h and g:
    //   dz = g ⊙ (c - h),  da_z = dz · z(1-z)
    //   dc = g ⊙ z,        da_c = dc · (1-c²)
    for (int64_t b = 0; b < batch; ++b) {
      float* dazr = da_z + b * hd;
      float* dacr = da_c + b * hd;
      if (!fin.empty() && fin[b]) {
        std::fill(dazr, dazr + hd, 0.0f);
        std::fill(dacr, dacr + hd, 0.0f);
        continue;
      }
      const float* grow = g + b * hd;
      const float* zrow = z + b * hd;
      const float* crow = c + b * hd;
      const float* hrow = hv + b * hd;
      for (int64_t j = 0; j < hd; ++j) {
        dazr[j] = grow[j] * (crow[j] - hrow[j]) * zrow[j] * (1.0f - zrow[j]);
        dacr[j] = grow[j] * zrow[j] * (1.0f - crow[j] * crow[j]);
      }
    }

    // d(r⊙h) = da_c · Uhᵀ (Uh row-major is already the pretransposed
    // layout the packed kernel wants).
    kern.matmul_packed(da_c, nuh->value.data(), drh, batch, hd, hd,
                       /*accumulate=*/false, /*b_pretransposed=*/true);

    // Pass 2 — da_r = (drh ⊙ h) · r(1-r), the r⊙h operand for dUh, and the
    // elementwise parts of dh: g ⊙ (1-z) + drh ⊙ r (finished rows pass g
    // straight through).
    const bool need_dh = nh->requires_grad;
    if (need_dh) nh->EnsureGrad();
    for (int64_t b = 0; b < batch; ++b) {
      float* darr = da_r + b * hd;
      float* rhrow = rh + b * hd;
      const float* rrow = r + b * hd;
      const float* hrow = hv + b * hd;
      float* dhrow = need_dh ? nh->grad.data() + b * hd : nullptr;
      if (!fin.empty() && fin[b]) {
        std::fill(darr, darr + hd, 0.0f);
        std::fill(rhrow, rhrow + hd, 0.0f);
        if (dhrow != nullptr) {
          const float* grow = g + b * hd;
          for (int64_t j = 0; j < hd; ++j) dhrow[j] += grow[j];
        }
        continue;
      }
      const float* grow = g + b * hd;
      const float* zrow = z + b * hd;
      const float* drhrow = drh + b * hd;
      for (int64_t j = 0; j < hd; ++j) {
        darr[j] = drhrow[j] * hrow[j] * rrow[j] * (1.0f - rrow[j]);
        rhrow[j] = rrow[j] * hrow[j];
        if (dhrow != nullptr) {
          dhrow[j] += grow[j] * (1.0f - zrow[j]) + drhrow[j] * rrow[j];
        }
      }
    }

    // Matrix halves of dh and dx, then the weight/bias accumulations.
    if (need_dh) {
      kern.matmul_packed(da_z, nuz->value.data(), nh->grad.data(), batch, hd,
                         hd, /*accumulate=*/true, /*b_pretransposed=*/true);
      kern.matmul_packed(da_r, nur->value.data(), nh->grad.data(), batch, hd,
                         hd, /*accumulate=*/true, /*b_pretransposed=*/true);
    }
    if (nx->requires_grad) {
      nx->EnsureGrad();
      kern.matmul_packed(da_z, nwz->value.data(), nx->grad.data(), batch, hd,
                         in, /*accumulate=*/true, /*b_pretransposed=*/true);
      kern.matmul_packed(da_r, nwr->value.data(), nx->grad.data(), batch, hd,
                         in, /*accumulate=*/true, /*b_pretransposed=*/true);
      kern.matmul_packed(da_c, nwh->value.data(), nx->grad.data(), batch, hd,
                         in, /*accumulate=*/true, /*b_pretransposed=*/true);
    }
    const float* xv = nx->value.data();
    const auto weight_grad = [&](Node* nw, const float* da, const float* lhs,
                                 int64_t lhs_cols) {
      if (!nw->requires_grad) return;
      nw->EnsureGrad();
      kern.add_matmul_transposed_a(lhs, da, nw->grad.data(), batch, lhs_cols,
                                   hd);
    };
    weight_grad(nwz, da_z, xv, in);
    weight_grad(nwr, da_r, xv, in);
    weight_grad(nwh, da_c, xv, in);
    weight_grad(nuz, da_z, hv, hd);
    weight_grad(nur, da_r, hv, hd);
    weight_grad(nuh, da_c, rh, hd);
    const auto bias_grad = [&](Node* nb, const float* da) {
      if (!nb->requires_grad) return;
      nb->EnsureGrad();
      for (int64_t b = 0; b < batch; ++b) {
        const float* darow = da + b * hd;
        for (int64_t j = 0; j < hd; ++j) nb->grad[j] += darow[j];
      }
    };
    bias_grad(nbz, da_z);
    bias_grad(nbr, da_r);
    bias_grad(nbh, da_c);
  };
  return result;
}

Var GruCell::FusedGateTail(const Tensor& th, int64_t batch, float* z,
                           float* r, float* c) const {
  const int64_t hd = hidden_dim_;
  const Kernels& kern = kernels::Active();
  // Recurrent halves: z += hUz, r += hUr (the candidate's hU term needs the
  // finished r first).
  kern.matmul_packed(th.data(), uz_.value().data(), z, batch, hd, hd,
                     /*accumulate=*/true, false);
  kern.matmul_packed(th.data(), ur_.value().data(), r, batch, hd, hd,
                     /*accumulate=*/true, false);

  // One fused pass: bias + sigmoid for z and r, then r ⊙ h (rh aliases the
  // r buffer — inference never needs the post-sigmoid r again) for the
  // candidate's recurrent matmul.
  kern.gru_gates_zr(th.data(), bz_.value().data(), br_.value().data(), z, r,
                    /*rh=*/r, batch, hd);
  kern.matmul_packed(r, uh_.value().data(), c, batch, hd, hd,
                     /*accumulate=*/true, false);

  // h' = h + z ⊙ (tanh(c + bh) - h), written straight into the output.
  Tensor out({batch, hd});
  kern.gru_out_blend(th.data(), bh_.value().data(), z, c, out.data(),
                     /*finished=*/nullptr, batch, hd);
  return Var(std::move(out), /*requires_grad=*/false);
}

Mlp::Mlp(std::string name, const std::vector<int64_t>& dims, util::Rng* rng)
    : Module(std::move(name)) {
  CAUSALTAD_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>("fc" + std::to_string(i),
                                               dims[i], dims[i + 1], rng));
    RegisterSubmodule(layers_.back().get());
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Tanh(h);
  }
  return h;
}

}  // namespace nn
}  // namespace causaltad
