#include "nn/tensor.h"

#include <numeric>

namespace causaltad {
namespace nn {
namespace {
int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CAUSALTAD_CHECK_GT(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(NumelOf(shape_), 0.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t({1});
  t.data_[0] = value;
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  CAUSALTAD_CHECK_EQ(NumelOf(t.shape_),
                     static_cast<int64_t>(values.size()));
  t.data_ = std::move(values);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::Reshape(std::vector<int64_t> shape) {
  CAUSALTAD_CHECK_EQ(NumelOf(shape), numel());
  shape_ = std::move(shape);
  return *this;
}

}  // namespace nn
}  // namespace causaltad
