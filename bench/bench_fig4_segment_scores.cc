// Reproduces Fig. 4: per-segment anomaly scores of a *normal* trajectory
// with an unseen (OOD) SD pair, under a biased baseline (VSAE) and under
// CausalTAD's decomposition (likelihood NLL plus centred scaling factor).
//
// Paper reference (Fig. 4): the baseline assigns extreme scores (> 5) to
// the unpopular segments an OOD trip must traverse, flagging a normal trip
// as anomalous; CausalTAD's scaling factor compensates exactly those
// segments, keeping its per-segment scores flat.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::eval::ExperimentData;

// Per-segment score under an RnnVae-style scorer: marginal increase of the
// prefix score when the segment arrives.
std::vector<double> MarginalScores(
    const causaltad::models::TrajectoryScorer& scorer,
    const causaltad::traj::Trip& trip) {
  std::vector<double> out;
  double prev = 0.0;
  for (int64_t k = 1; k <= trip.route.size(); ++k) {
    const double cur = scorer.Score(trip, k);
    out.push_back(cur - prev);
    prev = cur;
  }
  return out;
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  const auto config = causaltad::eval::XianConfig(scale);
  const ExperimentData data = causaltad::eval::BuildExperiment(config);

  const auto vsae =
      causaltad::eval::FitOrLoad("VSAE", data, config.name, scale);
  const auto causal = causaltad::eval::FitOrLoad(
      causaltad::eval::kCausalTadName, data, config.name, scale);
  const auto* model = dynamic_cast<const CausalTad*>(causal.get());

  // Pick the OOD normal trip the baseline considers most anomalous — the
  // paper's motivating case of a false positive on an unseen SD pair.
  const causaltad::traj::Trip* worst = nullptr;
  double worst_score = -1e18;
  for (const auto& trip : data.ood_test) {
    const double per_seg =
        vsae->ScoreFull(trip) / static_cast<double>(trip.route.size());
    if (per_seg > worst_score) {
      worst_score = per_seg;
      worst = &trip;
    }
  }

  std::printf("== Fig. 4 — per-segment scores of a normal OOD trajectory "
              "(%s, scale=%s) ==\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  std::printf("trip: %lld segments, unseen SD pair (%d -> %d)\n\n",
              static_cast<long long>(worst->route.size()),
              worst->source_node, worst->dest_node);

  const std::vector<double> vsae_scores = MarginalScores(*vsae, *worst);
  const auto decomp = model->Decompose(*worst);

  std::printf("%-5s %-12s %-14s %-16s %-16s\n", "idx", "VSAE(a)",
              "CausalTAD nll", "centred scaling", "CausalTAD(b)");
  for (size_t i = 0; i < worst->route.segments.size(); ++i) {
    const double nll = i == 0 ? 0.0 : decomp.step_nll[i - 1];
    const double scaling = decomp.centered_scaling[i];
    const double debiased = nll - model->lambda() * scaling;
    std::printf("%-5zu %-12.3f %-14.3f %-16.3f %-16.3f\n", i,
                vsae_scores[i], nll, scaling, debiased);
  }

  const double vsae_max =
      *std::max_element(vsae_scores.begin(), vsae_scores.end());
  double causal_max = -1e18;
  for (size_t i = 0; i < worst->route.segments.size(); ++i) {
    const double nll = i == 0 ? 0.0 : decomp.step_nll[i - 1];
    causal_max = std::max(causal_max,
                          nll - model->lambda() * decomp.centered_scaling[i]);
  }
  std::printf("\nmax per-segment score: VSAE=%.3f  CausalTAD=%.3f "
              "(paper: baseline spikes >5 on unpopular segments; CausalTAD "
              "stays flat)\n",
              vsae_max, causal_max);
  return 0;
}
