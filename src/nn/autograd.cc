#include "nn/autograd.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace causaltad {
namespace nn {

namespace {

thread_local int inference_depth = 0;
thread_local int64_t tape_nodes_created = 0;

// Thread-local slab arena for inference scratch. Slabs are stable
// (never reallocated), so nested scopes can bump/restore freely while
// earlier pointers stay valid.
struct Arena {
  static constexpr int64_t kMinSlabFloats = 1 << 16;

  struct Slab {
    std::unique_ptr<float[]> data;
    int64_t size = 0;
  };

  std::vector<Slab> slabs;
  size_t slab = 0;       // index of the slab being bumped
  int64_t offset = 0;    // floats consumed in that slab

  float* Alloc(int64_t n) {
    while (slab < slabs.size() && slabs[slab].size - offset < n) {
      ++slab;
      offset = 0;
    }
    if (slab == slabs.size()) {
      const int64_t size = std::max(n, kMinSlabFloats);
      slabs.push_back({std::make_unique<float[]>(size), size});
      offset = 0;
    }
    float* out = slabs[slab].data.get() + offset;
    offset += n;
    return out;
  }
};

Arena& ThreadArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

InferenceGuard::InferenceGuard() {
  ++inference_depth;
  Arena& arena = ThreadArena();
  arena_slab_ = arena.slab;
  arena_offset_ = arena.offset;
}

InferenceGuard::~InferenceGuard() {
  --inference_depth;
  Arena& arena = ThreadArena();
  arena.slab = arena_slab_;
  arena.offset = arena_offset_;
}

bool InferenceGuard::active() { return inference_depth > 0; }

int64_t TapeNodesCreated() { return tape_nodes_created; }

namespace internal {

float* ArenaAlloc(int64_t n) { return ThreadArena().Alloc(n); }

ArenaScope::ArenaScope() {
  Arena& arena = ThreadArena();
  slab_ = arena.slab;
  offset_ = arena.offset;
}

ArenaScope::~ArenaScope() {
  Arena& arena = ThreadArena();
  arena.slab = slab_;
  arena.offset = offset_;
}

Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void()>** backward_slot, Node** self) {
  Var out(std::move(value), /*requires_grad=*/false);
  Node* node = out.node().get();
  *self = node;
  if (InferenceGuard::active()) {
    *backward_slot = nullptr;
    return out;
  }
  for (const Var& p : parents) {
    if (p.defined()) {
      node->parents.push_back(p.node());
      node->requires_grad |= p.requires_grad();
    }
  }
  if (!node->parents.empty()) ++tape_nodes_created;
  *backward_slot = node->requires_grad ? &node->backward : nullptr;
  return out;
}

}  // namespace internal

void Backward(const Var& root) {
  CAUSALTAD_CHECK(root.defined());
  CAUSALTAD_CHECK_EQ(root.value().numel(), 1);

  // Iterative post-order DFS to get a reverse-topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  Node* root_node = root.node().get();
  if (visited.insert(root_node).second) stack.push_back({root_node, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }

  root_node->EnsureGrad();
  root_node->grad[0] += 1.0f;

  // order is post-order (children after parents’ dependencies), so iterate
  // in reverse for the backward sweep. The whole sweep runs under one arena
  // watermark: backward closures (fused GRU step, MatMul, the subset CE)
  // bump-allocate their transpose/gate scratch from the thread-local arena,
  // and this scope guarantees everything is released when the sweep ends
  // even if a closure skips its own ArenaScope — so steady-state training
  // performs no heap allocation for backward scratch.
  internal::ArenaScope sweep_scope;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->requires_grad) {
      node->EnsureGrad();
      node->backward();
    }
  }
}

}  // namespace nn
}  // namespace causaltad
