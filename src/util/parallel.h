#ifndef CAUSALTAD_UTIL_PARALLEL_H_
#define CAUSALTAD_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace causaltad {
namespace util {

/// Worker-thread count used by ParallelFor when the caller passes
/// threads <= 0. Defaults to std::thread::hardware_concurrency, overridable
/// once via the CAUSALTAD_THREADS environment variable or at any time via
/// SetParallelThreads. Always >= 1.
int ParallelThreads();

/// Overrides the default thread count (0 restores the hardware default).
void SetParallelThreads(int threads);

/// Splits [0, n) into up to `threads` contiguous ranges and runs
/// fn(begin, end) for each, one range inline and the rest on a persistent
/// worker pool; blocks until every range completes. threads <= 0 means
/// ParallelThreads(). Calls from inside a worker (nested parallelism) run
/// inline, so callers never deadlock the pool. fn must be thread-safe.
void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Shards `n` per-row-independent jobs across the pool: `chunk(begin, end)`
/// returns the results for rows [begin, end) and the pieces are scattered
/// into one output vector. Runs single-threaded (one chunk call) when fewer
/// than `min_rows_per_shard` rows would land on each worker — small batches
/// lose more to pool latency than they gain. This is the shared skeleton of
/// every sharded ScoreBatch.
template <typename T, typename ChunkFn>
std::vector<T> ShardedRows(int64_t n, int64_t min_rows_per_shard,
                           const ChunkFn& chunk) {
  const int64_t shards = std::min<int64_t>(
      ParallelThreads(),
      min_rows_per_shard > 0 ? n / min_rows_per_shard : n);
  if (shards <= 1) return chunk(static_cast<int64_t>(0), n);
  std::vector<T> out(n);
  ParallelFor(n, static_cast<int>(shards), [&](int64_t begin, int64_t end) {
    std::vector<T> piece = chunk(begin, end);
    std::move(piece.begin(), piece.end(), out.begin() + begin);
  });
  return out;
}

/// Elements [begin, min(end, s.size())) of s; empty when begin is at or
/// past the end. Sharded ScoreBatch implementations use this to slice an
/// optional per-row prefix list whose tail rows mean "full route".
template <typename T>
std::span<const T> ClampedSubspan(std::span<const T> s, int64_t begin,
                                  int64_t end) {
  if (begin >= static_cast<int64_t>(s.size())) return {};
  return s.subspan(begin,
                   std::min<int64_t>(end, static_cast<int64_t>(s.size())) -
                       begin);
}

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_PARALLEL_H_
