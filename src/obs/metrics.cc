#include "obs/metrics.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace causaltad {
namespace obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Series key and exposition label block: {a="b",c="d"} or "" when
/// unlabeled. Quotes and backslashes in values are escaped, so a value can
/// never break the line grammar.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    for (const char c : labels[i].second) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Registry* Registry::Default() {
  static Registry* registry = new Registry();
  return registry;
}

Registry::Entry* Registry::FindOrCreateLocked(const std::string& name,
                                              const Labels& labels,
                                              Kind kind) {
  const std::string key = name + RenderLabels(labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    CAUSALTAD_CHECK(it->second.kind == kind)
        << "metric " << key << " re-registered as a different type";
    return &it->second;
  }
  Entry entry;
  entry.name = name;
  entry.labels = labels;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, labels, Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, labels, Kind::kHistogram)->histogram.get();
}

std::string Registry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "# causaltad_metrics v" + std::to_string(kExpositionVersion) + "\n";
  for (const auto& [key, entry] : entries_) {
    const std::string labels = RenderLabels(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += entry.name + labels + " " +
               std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += entry.name + labels + " " +
               std::to_string(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram* h = entry.histogram.get();
        out += entry.name + "_count" + labels + " " +
               std::to_string(h->count()) + "\n";
        out += entry.name + "_mean_ms" + labels + " " +
               FmtDouble(h->mean_ms()) + "\n";
        out += entry.name + "_p50_ms" + labels + " " +
               FmtDouble(h->percentile(50.0)) + "\n";
        out += entry.name + "_p95_ms" + labels + " " +
               FmtDouble(h->percentile(95.0)) + "\n";
        out += entry.name + "_p99_ms" + labels + " " +
               FmtDouble(h->percentile(99.0)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"version\": " + std::to_string(kExpositionVersion) +
                    ", \"metrics\": [";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"" + JsonEscape(entry.name) + "\", \"labels\": {";
    for (size_t i = 0; i < entry.labels.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(entry.labels[i].first) + "\": \"" +
             JsonEscape(entry.labels[i].second) + "\"";
    }
    out += "}, ";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "\"type\": \"counter\", \"value\": " +
               std::to_string(entry.counter->value());
        break;
      case Kind::kGauge:
        out += "\"type\": \"gauge\", \"value\": " +
               std::to_string(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram* h = entry.histogram.get();
        out += "\"type\": \"histogram\", \"count\": " +
               std::to_string(h->count()) +
               ", \"mean_ms\": " + FmtDouble(h->mean_ms()) +
               ", \"p50_ms\": " + FmtDouble(h->percentile(50.0)) +
               ", \"p95_ms\": " + FmtDouble(h->percentile(95.0)) +
               ", \"p99_ms\": " + FmtDouble(h->percentile(99.0));
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

int64_t Registry::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

PeriodicJsonWriter::PeriodicJsonWriter(const Registry* registry,
                                       std::string path, double interval_ms)
    : registry_(registry), path_(std::move(path)), interval_ms_(interval_ms) {
  CAUSALTAD_CHECK(registry_ != nullptr);
  thread_ = std::thread([this] { Main(); });
}

PeriodicJsonWriter::~PeriodicJsonWriter() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  WriteOnce();  // final snapshot, so a clean exit never loses the tail
}

std::unique_ptr<PeriodicJsonWriter> PeriodicJsonWriter::FromEnv(
    const Registry* registry) {
  const char* path = std::getenv("CAUSALTAD_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return nullptr;
  double interval_ms = 1000.0;
  if (const char* env = std::getenv("CAUSALTAD_METRICS_JSON_INTERVAL_MS")) {
    const double v = std::atof(env);
    if (v > 0) interval_ms = v;
  }
  return std::make_unique<PeriodicJsonWriter>(registry, path, interval_ms);
}

void PeriodicJsonWriter::Main() {
  while (!stop_.load(std::memory_order_acquire)) {
    WriteOnce();
    // Sleep in small slices so destruction is prompt.
    double left = interval_ms_;
    while (left > 0 && !stop_.load(std::memory_order_acquire)) {
      const double slice = left < 10.0 ? left : 10.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      left -= slice;
    }
  }
}

void PeriodicJsonWriter::WriteOnce() {
  const std::string snapshot = registry_->JsonSnapshot();
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;  // transient (dir missing, perms): retry next tick
  const size_t n = std::fwrite(snapshot.data(), 1, snapshot.size(), f);
  std::fclose(f);
  if (n != snapshot.size() || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return;
  }
  writes_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace obs
}  // namespace causaltad
