// Reproduces Fig. 7: (a) training scalability — wall-clock time of one
// training epoch as the training-set fraction grows from 20% to 100%
// (linear in the paper); (b) average inference runtime per trajectory at
// different observed ratios (iBOAT is far slower than the learned methods;
// CausalTAD ≈ TG-VAE thanks to the O(1) debiased updates and the
// successor-masked softmax).
//
// Part (b) is measured two ways:
//   * google-benchmark timings of the O(1)-per-segment online sessions
//     (the paper's per-trajectory latency protocol), and
//   * a per-trip-vs-batched comparison — the seed per-trip tape path
//     (Score(), which builds an autograd tape per trajectory) against the
//     batched no-grad fast path (ScoreBatch(), [B, hidden] fused GRU rolls)
//     — written to BENCH_fig7.json so later PRs have a perf trajectory.
//
// Environment knobs:
//   CAUSALTAD_BENCH_SCALE=smoke|default|full   experiment scale
//   CAUSALTAD_FIG7_SKIP_TRAIN_TABLE=1          skip part (a)
//   CAUSALTAD_BENCH_MIN_TIME=<seconds>         google-benchmark MinTime
//   CAUSALTAD_BENCH_JSON=<path>                output path (BENCH_fig7.json)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "util/stopwatch.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::ExperimentData;
using causaltad::eval::Scale;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;

const ExperimentData& Data() {
  static const ExperimentData* data = [] {
    return new ExperimentData(causaltad::eval::BuildExperiment(
        causaltad::eval::XianConfig(causaltad::eval::ScaleFromEnv())));
  }();
  return *data;
}

void TrainingScalabilityTable(Scale scale) {
  std::printf("== Fig. 7(a) — one-epoch training time vs training-set "
              "fraction (Xi'an, scale=%s) ==\n\n",
              causaltad::eval::ScaleName(scale));
  const std::vector<std::string> names = {"SAE", "VSAE", "GM-VSAE",
                                          "DeepTEA", "CausalTAD"};
  const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  TablePrinter table(
      {"Method", "20%", "40%", "60%", "80%", "100%"});
  table.PrintHeader();
  causaltad::models::FitOptions options =
      causaltad::eval::FitOptionsFor(scale);
  options.epochs = 1;
  for (const std::string& name : names) {
    std::vector<std::string> cells = {name};
    for (const double frac : fractions) {
      const auto subset = Subsample(
          Data().train,
          static_cast<int64_t>(frac * Data().train.size()), 41);
      auto scorer = causaltad::eval::MakeScorer(name, Data(), scale);
      causaltad::util::Stopwatch watch;
      scorer->Fit(subset, options);
      cells.push_back(TablePrinter::Fmt(watch.ElapsedSeconds(), 2) + "s");
    }
    table.PrintRow(cells);
  }
  std::printf("\n");
}

// One online pass over a fixed batch of trajectories, prefix-limited to the
// observed ratio. state.counters report the per-trajectory latency.
void OnlineInference(benchmark::State& state,
                     const causaltad::models::TrajectoryScorer* scorer,
                     double ratio) {
  const auto trips = Subsample(Data().id_test, 40, 42);
  for (auto _ : state) {
    for (const auto& trip : trips) {
      auto session = scorer->BeginTrip(trip);
      const int64_t prefix = std::max<int64_t>(
          1, static_cast<int64_t>(ratio * trip.route.size()));
      double score = 0.0;
      for (int64_t k = 0; k < prefix; ++k) {
        score = session->Update(trip.route.segments[k]);
      }
      benchmark::DoNotOptimize(score);
    }
  }
  state.counters["us_per_traj"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * trips.size(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// ---------------------------------------------------------------------------
// Per-trip tape path vs batched no-grad fast path (emitted as JSON).
// ---------------------------------------------------------------------------

struct BatchedRow {
  std::string method;
  double ratio = 0.0;
  double per_trip_us = 0.0;
  double batched_us = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;  // parity guard: batched vs per-trip scores
};

// Best-of-`reps` wall-clock of `fn`, in seconds.
template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    causaltad::util::Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

BatchedRow MeasureBatched(const std::string& method,
                          const causaltad::models::TrajectoryScorer* scorer,
                          const std::vector<causaltad::traj::Trip>& trips,
                          double ratio) {
  std::vector<int64_t> prefixes;
  prefixes.reserve(trips.size());
  for (const auto& trip : trips) {
    const int64_t n = trip.route.size();
    prefixes.push_back(std::max<int64_t>(
        1, std::min<int64_t>(n, static_cast<int64_t>(std::ceil(ratio * n)))));
  }

  std::vector<double> per_trip_scores(trips.size());
  const double per_trip_s = BestOf(5, [&] {
    for (size_t i = 0; i < trips.size(); ++i) {
      per_trip_scores[i] = scorer->Score(trips[i], prefixes[i]);
    }
  });
  std::vector<double> batched_scores;
  const double batched_s = BestOf(5, [&] {
    batched_scores = scorer->ScoreBatch(trips, prefixes);
  });

  BatchedRow row;
  row.method = method;
  row.ratio = ratio;
  row.per_trip_us = per_trip_s * 1e6 / trips.size();
  row.batched_us = batched_s * 1e6 / trips.size();
  row.speedup = row.batched_us > 0.0 ? row.per_trip_us / row.batched_us : 0.0;
  for (size_t i = 0; i < trips.size(); ++i) {
    row.max_abs_diff = std::max(
        row.max_abs_diff, std::abs(batched_scores[i] - per_trip_scores[i]));
  }
  return row;
}

void WriteJson(const std::string& path, Scale scale,
               const std::vector<BatchedRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figure\": \"fig7b\",\n  \"scale\": \"%s\",\n",
               causaltad::eval::ScaleName(scale));
  std::fprintf(f, "  \"units\": \"us_per_traj\",\n");
  std::fprintf(f, "  \"per_trip_vs_batched\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BatchedRow& r = rows[i];
    std::fprintf(f,
                 "    {\"method\": \"%s\", \"ratio\": %.1f, "
                 "\"per_trip_us\": %.2f, \"batched_us\": %.2f, "
                 "\"speedup\": %.2f, \"max_abs_diff\": %.3g}%s\n",
                 r.method.c_str(), r.ratio, r.per_trip_us, r.batched_us,
                 r.speedup, r.max_abs_diff,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = causaltad::eval::ScaleFromEnv();
  if (!EnvFlag("CAUSALTAD_FIG7_SKIP_TRAIN_TABLE")) {
    TrainingScalabilityTable(scale);
  }

  const auto config = causaltad::eval::XianConfig(scale);
  // Fitted models shared across registered benchmarks.
  static auto iboat =
      causaltad::eval::FitOrLoad("iBOAT", Data(), config.name, scale);
  static auto gmvsae =
      causaltad::eval::FitOrLoad("GM-VSAE", Data(), config.name, scale);
  static auto causal = causaltad::eval::FitOrLoad(
      causaltad::eval::kCausalTadName, Data(), config.name, scale);
  static CausalTadVariant tg_only(dynamic_cast<CausalTad*>(causal.get()),
                                  ScoreVariant::kLikelihoodOnly);

  // Part (b), comparison 1: seed per-trip tape path vs batched no-grad fast
  // path, emitted as BENCH_fig7.json.
  std::printf("== Fig. 7(b) — per-trip tape path vs batched no-grad fast "
              "path (40 trips) ==\n\n");
  const auto batch_trips = Subsample(Data().id_test, 40, 42);
  std::vector<BatchedRow> rows;
  TablePrinter batched_table(
      {"Method", "ratio", "tape us", "batched us", "speedup"});
  batched_table.PrintHeader();
  for (const double ratio : {0.2, 0.6, 1.0}) {
    for (const auto& [name, scorer] :
         std::vector<std::pair<std::string,
                               const causaltad::models::TrajectoryScorer*>>{
             {"GM-VSAE", gmvsae.get()},
             {"TG-VAE", &tg_only},
             {"CausalTAD", causal.get()}}) {
      rows.push_back(MeasureBatched(name, scorer, batch_trips, ratio));
      const BatchedRow& r = rows.back();
      batched_table.PrintRow({r.method, TablePrinter::Fmt(r.ratio, 1),
                              TablePrinter::Fmt(r.per_trip_us, 1),
                              TablePrinter::Fmt(r.batched_us, 1),
                              TablePrinter::Fmt(r.speedup, 1) + "x"});
    }
  }
  std::printf("\n");
  const char* json_env = std::getenv("CAUSALTAD_BENCH_JSON");
  WriteJson(json_env != nullptr ? json_env : "BENCH_fig7.json", scale, rows);

  // Part (b), comparison 2: the paper's online-session latency protocol.
  std::printf("\n== Fig. 7(b) — online inference runtime per trajectory "
              "(google-benchmark; us_per_traj counter) ==\n");
  double min_time = 0.0;
  if (const char* env = std::getenv("CAUSALTAD_BENCH_MIN_TIME")) {
    min_time = std::atof(env);
  }
  for (const double ratio : {0.2, 0.6, 1.0}) {
    const std::string suffix = "/ratio=" + TablePrinter::Fmt(ratio, 1);
    std::vector<benchmark::internal::Benchmark*> registered = {
        benchmark::RegisterBenchmark(
            ("iBOAT" + suffix).c_str(),
            [&, ratio](benchmark::State& s) {
              OnlineInference(s, iboat.get(), ratio);
            }),
        benchmark::RegisterBenchmark(
            ("GM-VSAE" + suffix).c_str(),
            [&, ratio](benchmark::State& s) {
              OnlineInference(s, gmvsae.get(), ratio);
            }),
        benchmark::RegisterBenchmark(
            ("TG-VAE" + suffix).c_str(),
            [&, ratio](benchmark::State& s) {
              OnlineInference(s, &tg_only, ratio);
            }),
        benchmark::RegisterBenchmark(
            ("CausalTAD" + suffix).c_str(),
            [&, ratio](benchmark::State& s) {
              OnlineInference(s, causal.get(), ratio);
            })};
    if (min_time > 0.0) {
      for (auto* b : registered) b->MinTime(min_time);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
