// Fault-tolerance tests for the wire layer: partial-write/EAGAIN handling,
// fd lifecycle across server churn, deterministic reconnect backoff,
// heartbeat reaping + transparent resume, randomized fault-injection soaks
// (drop/dup/truncate/kill/delay), a kill-the-server-mid-stream soak that
// destroys ALL serving state and still ends with exact score parity, and
// graceful drain semantics.

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/service.h"
#include "serve/streaming.h"
#include "util/logging.h"
#include "util/random.h"

namespace causaltad {
namespace {

using core::CausalTad;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using net::BackoffDelayMs;
using net::Client;
using net::ClientOptions;
using net::FaultInjector;
using net::FaultOptions;
using net::FaultStats;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::Server;
using net::ServerOptions;
using serve::ServiceOptions;
using serve::StreamingBatcher;
using serve::StreamingService;
using serve::StreamingSession;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

const CausalTad* FittedCausal() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

double Tol(double reference, double rel = 1e-6) {
  return rel * std::max(1.0, std::abs(reference));
}

std::vector<traj::Trip> ParityTrips() {
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 6, 7);
  const auto detours = eval::Subsample(Data().id_detour, 2, 8);
  trips.insert(trips.end(), detours.begin(), detours.end());
  return trips;
}

/// Reference scores from one single-consumer StreamingBatcher (the exact
/// arithmetic every recovery path must reproduce).
std::vector<std::vector<double>> BatcherReference(
    const CausalTad* causal, const std::vector<traj::Trip>& trips) {
  StreamingBatcher batcher(causal);
  std::vector<StreamingSession> sessions;
  for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    for (const auto segment : trips[i].route.segments) {
      sessions[i].Push(segment);
    }
    sessions[i].End();
  }
  batcher.Flush();
  std::vector<std::vector<double>> scores(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) scores[i] = sessions[i].Poll();
  return scores;
}

ServiceOptions PumpedServiceOptions() {
  ServiceOptions options;
  options.num_shards = 2;
  options.pump = true;
  options.max_session_pending = 8;
  options.batcher.max_batch_rows = 16;
  options.batcher.max_delay_ms = 0.25;
  return options;
}

void ExpectScoresMatch(const std::vector<double>& got,
                       const std::vector<double>& reference,
                       const std::string& label) {
  ASSERT_EQ(got.size(), reference.size()) << label;
  for (size_t k = 0; k < reference.size(); ++k) {
    EXPECT_NEAR(got[k], reference[k], Tol(reference[k]))
        << label << " k=" << k;
  }
}

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

// ---------------------------------------------------------------------------
// Partial writes and EAGAIN.
// ---------------------------------------------------------------------------

// A non-blocking socket with a tiny send buffer and a slow reader: the
// client's large Hello cannot leave in one send(2), so the send path MUST
// wait out EAGAIN and resume the partial write. (The pre-SendAll client
// latched a fatal IoError on the first EAGAIN and this test failed.)
TEST(NetFaultTest, PartialWriteBlockedSenderCompletes) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  const int flags = fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);

  std::thread fake_server([peer = fds[1]] {
    // Let the writer fill the buffer and hit EAGAIN before reading a byte.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    FrameDecoder decoder;
    uint8_t buf[2048];
    bool answered = false;
    while (!answered) {
      const ssize_t n = recv(peer, buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.Feed(buf, static_cast<size_t>(n));
      Frame frame;
      while (decoder.Next(&frame)) {
        if (frame.type != FrameType::kPoll) continue;
        Frame delta;
        delta.type = FrameType::kScoreDelta;
        delta.session = frame.session;
        delta.token = frame.token;
        std::vector<uint8_t> bytes;
        EncodeFrame(delta, &bytes);
        size_t off = 0;
        while (off < bytes.size()) {
          const ssize_t sent =
              send(peer, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
          if (sent <= 0) break;
          off += static_cast<size_t>(sent);
        }
        answered = true;
      }
      // Slow reader: keep the writer blocked across several resumes.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    close(peer);
  });

  ClientOptions options;
  options.tenant = std::string(200 * 1024, 't');  // ~200 KiB Hello frame
  options.timeout_ms = 10000.0;
  auto client = Client::FromFd(fds[0], options);
  EXPECT_TRUE(client->Hello().ok()) << client->status().ToString();
  fake_server.join();
}

// Every send chopped to a tiny prefix (short_write_rate = 1) on BOTH
// endpoints: the resume-the-remainder paths in client SendAll and server
// FlushWrites carry the full stream and scores stay exact.
TEST(NetFaultTest, ShortWriteFaultStreamStillExact) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  const traj::Trip& trip = trips[0];

  FaultOptions fault_options;
  fault_options.short_write_rate = 1.0;
  fault_options.seed = 7;
  FaultInjector faults(fault_options);

  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  server_options.fault = &faults;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.fault = &faults;
  auto client =
      Client::FromFd(server.AddLoopbackConnection(), client_options);
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
  const uint64_t id =
      client->Begin(trip.route.segments.front(), trip.route.segments.back(),
                    trip.time_slot);
  for (const auto segment : trip.route.segments) {
    ASSERT_TRUE(client->Push(id, segment).ok())
        << client->status().ToString();
  }
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ExpectScoresMatch(*scores, reference[0], "short-write trip");
  EXPECT_GT(faults.stats().short_writes, 0);
  server.Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Fd lifecycle.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, OpenFdCountStableAcrossChurn) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  StreamingService service(causal, PumpedServiceOptions());
  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);
  for (int round = 0; round < 8; ++round) {
    {
      // Never-started server holding a queued loopback fd: teardown must
      // still reap it (the old Stop() early-returned and leaked it).
      Server server(&service, ServerOptions{});
      const int peer = server.AddLoopbackConnection();
      close(peer);
    }
    {
      // Loopback connection churn through a live server + graceful drain.
      Server server(&service, ServerOptions{});
      ASSERT_TRUE(server.Start().ok());
      for (int i = 0; i < 4; ++i) {
        auto client = Client::FromFd(server.AddLoopbackConnection());
        ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
      }
      EXPECT_TRUE(server.Drain(5000.0));
      server.Stop();
    }
    {
      // TCP listener churn (Drain closes the listener; Stop must not
      // double-close it).
      ServerOptions tcp_options;
      tcp_options.listen_port = 0;
      Server server(&service, tcp_options);
      ASSERT_TRUE(server.Start().ok());
      auto client = Client::ConnectTcp("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      ASSERT_TRUE((*client)->Hello().ok());
      EXPECT_TRUE(server.Drain(5000.0));
      server.Stop();
    }
  }
  EXPECT_EQ(CountOpenFds(), baseline);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Reconnect backoff.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, BackoffScheduleDeterministicAndBudgetLatches) {
  // Jitter-free schedule: exact exponential doubling, capped.
  EXPECT_DOUBLE_EQ(BackoffDelayMs(0, 10.0, 2000.0, 0.0, nullptr), 10.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(3, 10.0, 2000.0, 0.0, nullptr), 80.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(12, 10.0, 2000.0, 0.0, nullptr), 2000.0);
  // Same seed -> same jittered schedule; jitter stays within its band.
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  for (int k = 0; k < 12; ++k) {
    const double a = BackoffDelayMs(k, 10.0, 2000.0, 0.1, &rng_a);
    const double b = BackoffDelayMs(k, 10.0, 2000.0, 0.1, &rng_b);
    EXPECT_DOUBLE_EQ(a, b) << "attempt " << k;
    const double nominal = std::min(10.0 * std::pow(2.0, k), 2000.0);
    EXPECT_GE(a, nominal * 0.9 - 1e-9) << "attempt " << k;
    EXPECT_LE(a, nominal * 1.1 + 1e-9) << "attempt " << k;
  }

  // A client whose redials all fail sleeps the schedule exactly
  // max_reconnect_attempts times, then latches the fatal. This pins the
  // LEGACY exponential ladder, so decorrelated backoff is off.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[1]);  // peer gone: the first send hits EPIPE
  ClientOptions options;
  options.reconnect = true;
  options.decorrelated_backoff = false;
  options.max_reconnect_attempts = 5;
  options.reconnect_base_ms = 1.0;
  options.reconnect_max_ms = 8.0;
  options.reconnect_jitter = 0.25;
  options.client_id = 7;
  std::vector<double> sleeps;
  options.sleeper = [&sleeps](double ms) { sleeps.push_back(ms); };
  options.dialer = [] { return -1; };
  auto client = Client::FromFd(fds[0], options);
  EXPECT_FALSE(client->Hello().ok());
  EXPECT_FALSE(client->status().ok());
  ASSERT_EQ(sleeps.size(), 5u);
  for (size_t k = 0; k < sleeps.size(); ++k) {
    const double nominal =
        std::min(1.0 * std::pow(2.0, static_cast<double>(k)), 8.0);
    EXPECT_GE(sleeps[k], nominal * 0.75 - 1e-9) << "attempt " << k;
    EXPECT_LE(sleeps[k], nominal * 1.25 + 1e-9) << "attempt " << k;
  }
}

// Decorrelated-jitter backoff: bounds, determinism, and — the point of the
// schedule — cross-client spread. A fleet failing over together must NOT
// retry in lockstep the way a shared exponential ladder makes it.
TEST(NetFaultTest, DecorrelatedBackoffBoundsAndSpread) {
  using net::DecorrelatedBackoffMs;
  // nullptr rng takes the deterministic midpoint of [base, 3*prev].
  EXPECT_DOUBLE_EQ(DecorrelatedBackoffMs(10.0, 10.0, 2000.0, nullptr),
                   20.0);  // base + 0.5 * (3*10 - 10)
  EXPECT_DOUBLE_EQ(DecorrelatedBackoffMs(20.0, 10.0, 2000.0, nullptr),
                   35.0);  // base + 0.5 * (3*20 - 10)
  // The cap binds; prev below base is lifted to base.
  EXPECT_DOUBLE_EQ(DecorrelatedBackoffMs(5000.0, 10.0, 2000.0, nullptr),
                   2000.0);
  EXPECT_DOUBLE_EQ(DecorrelatedBackoffMs(1.0, 10.0, 2000.0, nullptr), 20.0);

  // Same seed -> same wandering schedule; every step within [base, max].
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  double prev_a = 10.0;
  double prev_b = 10.0;
  for (int k = 0; k < 20; ++k) {
    prev_a = DecorrelatedBackoffMs(prev_a, 10.0, 2000.0, &rng_a);
    prev_b = DecorrelatedBackoffMs(prev_b, 10.0, 2000.0, &rng_b);
    EXPECT_DOUBLE_EQ(prev_a, prev_b) << "step " << k;
    EXPECT_GE(prev_a, 10.0) << "step " << k;
    EXPECT_LE(prev_a, 2000.0) << "step " << k;
  }

  // 200 clients, 4 attempts into a shared outage. The legacy ladder bunches
  // every client inside nominal*(1 +/- jitter); the decorrelated schedules
  // must spread across the band instead of re-converging on one instant.
  constexpr int kClients = 200;
  constexpr double kBase = 10.0;
  constexpr double kMax = 2000.0;
  std::vector<double> fourth(kClients);
  for (int c = 0; c < kClients; ++c) {
    util::Rng rng(1000 + c);
    double prev = kBase;
    for (int k = 0; k < 4; ++k) {
      prev = DecorrelatedBackoffMs(prev, kBase, kMax, &rng);
      EXPECT_GE(prev, kBase);
      EXPECT_LE(prev, kMax);
    }
    fourth[c] = prev;
  }
  // Herd metric: the share inside the legacy +/-25% band around the
  // equivalent exponential nominal (base * 2^4, where EVERY legacy client
  // sits) must be a minority.
  const double nominal = std::min(kBase * 16.0, kMax);
  int in_band = 0;
  for (const double d : fourth) {
    if (d >= nominal * 0.75 && d <= nominal * 1.25) ++in_band;
  }
  EXPECT_LT(in_band, kClients / 2)
      << "decorrelated schedules re-bunched around the exponential nominal";
  // Coverage: samples land across the whole band, not one octave. Split
  // [base, max] into 8 geometric bins; no bin may hold > 60% of clients
  // and at least 3 distinct bins must be populated.
  std::array<int, 8> bins{};
  for (const double d : fourth) {
    const double t = std::log(d / kBase) / std::log(kMax / kBase);
    const int bin = std::min(7, std::max(0, static_cast<int>(t * 8)));
    ++bins[bin];
  }
  int populated = 0;
  for (const int count : bins) {
    if (count > 0) ++populated;
    EXPECT_LE(count, (kClients * 6) / 10) << "one bin holds the herd";
  }
  EXPECT_GE(populated, 3);
}

// ---------------------------------------------------------------------------
// Heartbeats, reaping, resume.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, HeartbeatReapsIdlePeerAndResumeReattaches) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 4);

  StreamingService service(causal, PumpedServiceOptions());
  std::atomic<double> clock_ms{0.0};
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  server_options.heartbeat_timeout_ms = 1000.0;
  server_options.detached_linger_ms = 0.0;  // parked sessions never expire
  server_options.now_ms = [&clock_ms] { return clock_ms.load(); };
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.reconnect = true;
  client_options.client_id = 11;
  client_options.reconnect_base_ms = 1.0;
  client_options.reconnect_max_ms = 20.0;
  client_options.dialer = [&server] {
    return server.AddLoopbackConnection();
  };
  auto client =
      Client::FromFd(server.AddLoopbackConnection(), client_options);
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();

  // Pings count as activity: an idle-but-heartbeating peer is never reaped.
  clock_ms.store(900.0);
  ASSERT_TRUE(client->Heartbeat().ok()) << client->status().ToString();
  clock_ms.store(1800.0);
  ASSERT_TRUE(client->Heartbeat().ok()) << client->status().ToString();
  EXPECT_EQ(server.stats().connections_reaped, 0);
  EXPECT_GE(server.stats().heartbeats, 2);

  // Half a trip, then silence past the timeout: the server reaps the
  // half-open connection and parks the resumable session.
  const uint64_t id =
      client->Begin(trip.route.segments.front(), trip.route.segments.back(),
                    trip.time_slot);
  const size_t half = trip.route.size() / 2;
  for (size_t k = 0; k < half; ++k) {
    ASSERT_TRUE(client->Push(id, trip.route.segments[k]).ok())
        << client->status().ToString();
  }
  // Poll is a barrier: Push is fire-and-forget, so without it the fake
  // clock could jump while Begin/Push bytes are still unread and the reap
  // would race the session's very creation. Poll moves out any scores
  // already delivered — keep them for the final comparison.
  const auto early = client->Poll(id);
  ASSERT_TRUE(early.ok()) << early.status().ToString();
  clock_ms.store(5000.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().connections_reaped < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().connections_reaped, 1);
  EXPECT_GE(server.stats().sessions_detached, 1);

  // The next op hits the dead transport; the client transparently redials
  // and the server re-adopts the parked session — no gaps, no duplicates.
  for (size_t k = half; k < trip.route.size(); ++k) {
    ASSERT_TRUE(client->Push(id, trip.route.segments[k]).ok())
        << client->status().ToString();
  }
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  std::vector<double> all = *early;
  all.insert(all.end(), scores->begin(), scores->end());
  ExpectScoresMatch(all, reference[0], "reaped-and-resumed trip");
  EXPECT_GE(client->stats().reconnects, 1);
  EXPECT_GE(server.stats().sessions_resumed, 1);
  server.Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Randomized fault soak.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, RandomizedFaultSoakParity) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  FaultOptions fault_options;
  fault_options.drop_rate = 0.02;
  fault_options.dup_rate = 0.02;
  fault_options.truncate_rate = 0.02;
  fault_options.kill_rate = 0.01;
  fault_options.delay_rate = 0.05;
  fault_options.delay_ms = 0.2;
  fault_options.seed = 20240612;
  FaultInjector server_faults(fault_options);
  FaultInjector client_faults(fault_options);

  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  server_options.fault = &server_faults;
  server_options.detached_linger_ms = 60000.0;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.reconnect = true;
  client_options.client_id = 3;
  client_options.max_inflight = 24;
  client_options.max_reconnect_attempts = 16;
  client_options.reconnect_base_ms = 1.0;
  client_options.reconnect_max_ms = 50.0;
  client_options.timeout_ms = 60000.0;
  client_options.fault = &client_faults;
  client_options.dialer = [&server] {
    return server.AddLoopbackConnection();
  };
  auto client =
      Client::FromFd(server.AddLoopbackConnection(), client_options);
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();

  for (size_t i = 0; i < trips.size(); ++i) {
    const uint64_t id = client->Begin(trips[i].route.segments.front(),
                                      trips[i].route.segments.back(),
                                      trips[i].time_slot);
    for (const auto segment : trips[i].route.segments) {
      ASSERT_TRUE(client->Push(id, segment).ok())
          << "trip " << i << ": " << client->status().ToString();
    }
    const auto scores = client->Finish(id);
    ASSERT_TRUE(scores.ok()) << "trip " << i << ": "
                             << scores.status().ToString();
    ExpectScoresMatch(*scores, reference[i],
                      "faulted trip " + std::to_string(i));
  }

  const FaultStats ss = server_faults.stats();
  const FaultStats cs = client_faults.stats();
  EXPECT_GT(ss.drops + ss.dups + ss.truncates + ss.kills + ss.delays +
                cs.drops + cs.dups + cs.truncates + cs.kills + cs.delays,
            0)
      << "fault rates too low to exercise anything";
  EXPECT_GE(client->stats().reconnects, 1);
  server.Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Kill-the-server soak: full serving-state loss, exact parity after.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, KillServerMidStreamSoakExactParity) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  // One serving generation at a time; a "kill" destroys the Server AND the
  // StreamingService (every session, queue, and score on the server side is
  // gone), then a fresh generation comes up. Clients must rebuild their
  // sessions from their own journals.
  struct Generation {
    std::unique_ptr<StreamingService> service;
    std::unique_ptr<Server> server;
  };
  std::mutex live_mu;
  Server* live = nullptr;
  auto make_generation = [&]() {
    Generation gen;
    gen.service =
        std::make_unique<StreamingService>(causal, PumpedServiceOptions());
    ServerOptions server_options;
    server_options.network = &Data().city.network;
    gen.server = std::make_unique<Server>(gen.service.get(), server_options);
    CAUSALTAD_CHECK(gen.server->Start().ok());
    return gen;
  };
  Generation gen = make_generation();
  {
    std::lock_guard<std::mutex> lock(live_mu);
    live = gen.server.get();
  }
  auto dial = [&live_mu, &live]() {
    std::lock_guard<std::mutex> lock(live_mu);
    return live != nullptr ? live->AddLoopbackConnection() : -1;
  };

  constexpr int kProducers = 3;
  std::vector<std::vector<size_t>> assigned(kProducers);
  for (size_t i = 0; i < trips.size(); ++i) {
    assigned[i % kProducers].push_back(i);
  }
  std::vector<std::vector<std::vector<double>>> got(kProducers);
  std::vector<std::string> errors(kProducers);
  std::atomic<int64_t> total_reconnects{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      ClientOptions options;
      options.reconnect = true;
      options.client_id = 100 + static_cast<uint64_t>(p);
      options.max_inflight = 16;
      options.max_reconnect_attempts = 64;
      options.reconnect_base_ms = 2.0;
      options.reconnect_max_ms = 100.0;
      options.timeout_ms = 60000.0;
      options.dialer = dial;
      int fd = -1;
      while ((fd = dial()) < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      auto client = Client::FromFd(fd, options);
      if (!client->Hello().ok()) {
        errors[p] = "hello: " + client->status().ToString();
        return;
      }
      for (const size_t i : assigned[p]) {
        const auto& segments = trips[i].route.segments;
        const uint64_t id = client->Begin(segments.front(), segments.back(),
                                          trips[i].time_slot);
        for (const auto segment : segments) {
          if (!client->Push(id, segment).ok()) {
            errors[p] =
                "push trip " + std::to_string(i) + ": " +
                client->status().ToString();
            return;
          }
          // Pace the stream so the kill cycles land mid-trip.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        const auto scores = client->Finish(id);
        if (!scores.ok()) {
          errors[p] = "finish trip " + std::to_string(i) + ": " +
                      scores.status().ToString();
          return;
        }
        got[p].push_back(*scores);
      }
      total_reconnects.fetch_add(client->stats().reconnects);
    });
  }

  for (int cycle = 0; cycle < 3; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    {
      std::lock_guard<std::mutex> lock(live_mu);
      live = nullptr;
    }
    gen.server.reset();   // hard kill: every connection dies mid-stream
    gen.service.reset();  // and every serving-side session with it
    gen = make_generation();
    {
      std::lock_guard<std::mutex> lock(live_mu);
      live = gen.server.get();
    }
  }
  for (auto& producer : producers) producer.join();
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_TRUE(errors[p].empty()) << "producer " << p << ": " << errors[p];
    ASSERT_EQ(got[p].size(), assigned[p].size());
    for (size_t j = 0; j < assigned[p].size(); ++j) {
      ExpectScoresMatch(got[p][j], reference[assigned[p][j]],
                        "producer " + std::to_string(p) + " trip " +
                            std::to_string(assigned[p][j]));
    }
  }
  EXPECT_GE(total_reconnects.load(), 1)
      << "no producer ever saw a kill: soak did not exercise recovery";
}

// Regression: a fresh rebuild replays the journaled prefix as ordinary
// pushes, and those are subject to the service's admission backpressure
// like any other push. With a prefix much longer than max_session_pending,
// part of the replay bounces with kSessionFull — and since replayed-prefix
// points are not in `pending` (their scores were already delivered), the
// pre-fix client dropped those rejects as stale. The admission gap then
// bounced every later seq as out_of_order forever: the rebuilt session
// stalled and Finish timed out. The fix tracks replay transmissions per
// seq and re-replays the journal from the rejected gap.
TEST(NetFaultTest, LongPrefixRebuildSurvivesAdmissionBackpressure) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  size_t longest = 0;
  for (size_t i = 1; i < trips.size(); ++i) {
    if (trips[i].route.size() > trips[longest].route.size()) longest = i;
  }
  const auto& segments = trips[longest].route.segments;

  ServiceOptions tight = PumpedServiceOptions();
  tight.num_shards = 1;
  tight.max_session_pending = 2;  // the replayed prefix MUST bounce
  ASSERT_GE(segments.size(),
            4 * static_cast<size_t>(tight.max_session_pending) + 4)
      << "trip too short to overflow the admission window on replay";

  struct Generation {
    std::unique_ptr<StreamingService> service;
    std::unique_ptr<Server> server;
  };
  std::mutex live_mu;
  Server* live = nullptr;
  auto make_generation = [&]() {
    Generation gen;
    gen.service = std::make_unique<StreamingService>(causal, tight);
    ServerOptions server_options;
    server_options.network = &Data().city.network;
    gen.server = std::make_unique<Server>(gen.service.get(), server_options);
    CAUSALTAD_CHECK(gen.server->Start().ok());
    return gen;
  };
  Generation gen = make_generation();
  live = gen.server.get();

  ClientOptions options;
  options.reconnect = true;
  options.client_id = 77;
  options.max_inflight = 64;
  options.max_reconnect_attempts = 32;
  options.reconnect_base_ms = 1.0;
  options.reconnect_max_ms = 20.0;
  options.timeout_ms = 30000.0;
  options.dialer = [&live_mu, &live] {
    std::lock_guard<std::mutex> lock(live_mu);
    return live != nullptr ? live->AddLoopbackConnection() : -1;
  };
  auto client = Client::FromFd(options.dialer(), options);
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();

  const uint64_t id = client->Begin(segments.front(), segments.back(),
                                    trips[longest].time_slot);
  const size_t tail_start = segments.size() - 3;
  std::vector<double> got;
  for (size_t k = 0; k < tail_start; ++k) {
    ASSERT_TRUE(client->Push(id, segments[k]).ok())
        << client->status().ToString();
  }
  // Drain every prefix score so the journal is the ONLY copy of the prefix
  // (the rebuild cannot lean on in-flight go-back-N retransmits).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (got.size() < tail_start) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "prefix scores never drained";
    auto polled = client->Poll(id);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    got.insert(got.end(), polled->begin(), polled->end());
  }

  // Kill the whole serving side and bring up a fresh generation: no
  // detached state survives, so the resume is a fresh rebuild that must
  // re-push the entire journaled prefix through the window of 2.
  {
    std::lock_guard<std::mutex> lock(live_mu);
    live = nullptr;
  }
  gen.server.reset();
  gen.service.reset();
  gen = make_generation();
  {
    std::lock_guard<std::mutex> lock(live_mu);
    live = gen.server.get();
  }

  for (size_t k = tail_start; k < segments.size(); ++k) {
    ASSERT_TRUE(client->Push(id, segments[k]).ok())
        << client->status().ToString();
  }
  auto finished = client->Finish(id);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  got.insert(got.end(), finished->begin(), finished->end());
  ExpectScoresMatch(got, reference[longest], "long-prefix rebuild");
  EXPECT_GE(client->stats().reconnects, 1);
  // The rebuild re-pushed the whole journaled prefix at least once.
  EXPECT_GE(client->stats().retransmits, static_cast<int64_t>(tail_start));
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(NetFaultTest, DrainStopsAdmissionAndLetsLiveSessionsFinish) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 4);

  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::FromFd(server.AddLoopbackConnection());
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();
  const uint64_t id =
      client->Begin(trip.route.segments.front(), trip.route.segments.back(),
                    trip.time_slot);
  const size_t half = trip.route.size() / 2;
  for (size_t k = 0; k < half; ++k) {
    ASSERT_TRUE(client->Push(id, trip.route.segments[k]).ok());
  }
  // Poll is a barrier: without it Drain() can engage before the server has
  // read the (fire-and-forget) Begin, see a session-less connection, and
  // legitimately kick it. It also moves out any already-delivered scores.
  const auto early = client->Poll(id);
  ASSERT_TRUE(early.ok()) << early.status().ToString();

  std::atomic<bool> drained{false};
  std::thread drainer([&] { drained.store(server.Drain(20000.0)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // New work is refused while draining...
  auto late = Client::FromFd(server.AddLoopbackConnection());
  const bool late_admitted = late->Hello().ok();

  // ...but the live session runs to completion with exact scores.
  util::Status push_status = util::Status::Ok();
  for (size_t k = half; k < trip.route.size() && push_status.ok(); ++k) {
    push_status = client->Push(id, trip.route.segments[k]);
  }
  const auto scores = push_status.ok()
                          ? client->Finish(id)
                          : util::StatusOr<std::vector<double>>(push_status);
  drainer.join();  // before any assert: a joinable thread would terminate()

  EXPECT_FALSE(late_admitted);
  ASSERT_TRUE(push_status.ok()) << push_status.ToString();
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  std::vector<double> all = *early;
  all.insert(all.end(), scores->begin(), scores->end());
  ExpectScoresMatch(all, reference[0], "drained trip");
  EXPECT_TRUE(drained.load());
  EXPECT_EQ(server.stats().connections_active, 0);
  server.Stop();
  service.Shutdown();
}

}  // namespace
}  // namespace causaltad
