#include "core/tg_vae.h"

#include <algorithm>

#include "nn/init.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace causaltad {
namespace core {

TgVae::TgVae(const roadnet::RoadNetwork* network, const TgVaeConfig& config,
             util::Rng* rng)
    : nn::Module("tgvae"),
      network_(network),
      config_(config),
      sd_emb_("sd_emb", config.vocab, config.emb_dim, rng),
      route_emb_("route_emb", config.vocab, config.emb_dim, rng),
      enc_fc_("enc_fc", 2 * config.emb_dim, config.hidden_dim, rng),
      mu_head_("mu_head", config.hidden_dim, config.latent_dim, rng),
      lv_head_("lv_head", config.hidden_dim, config.latent_dim, rng),
      dec_fc_("dec_fc", config.latent_dim, config.hidden_dim, rng),
      head_s_("head_s", config.hidden_dim, config.vocab, rng),
      head_d_("head_d", config.hidden_dim, config.vocab, rng),
      h0_proj_("h0_proj", config.latent_dim, config.hidden_dim, rng),
      gru_("gru", config.emb_dim, config.hidden_dim, rng),
      out_("out", config.hidden_dim, config.vocab, rng) {
  CAUSALTAD_CHECK(network != nullptr);
  CAUSALTAD_CHECK_EQ(config.vocab, network->num_segments());
  RegisterSubmodule(&sd_emb_);
  RegisterSubmodule(&route_emb_);
  RegisterSubmodule(&enc_fc_);
  RegisterSubmodule(&mu_head_);
  RegisterSubmodule(&lv_head_);
  RegisterSubmodule(&dec_fc_);
  RegisterSubmodule(&head_s_);
  RegisterSubmodule(&head_d_);
  RegisterSubmodule(&h0_proj_);
  RegisterSubmodule(&gru_);
  RegisterSubmodule(&out_);
}

TgVae::Forwarded TgVae::EncodeSd(roadnet::SegmentId s, roadnet::SegmentId d,
                                 util::Rng* rng) const {
  const std::vector<int32_t> s_id = {s};
  const std::vector<int32_t> d_id = {d};
  const nn::Var joint = nn::ConcatCols(
      {sd_emb_.Forward(s_id), sd_emb_.Forward(d_id)});  // [1, 2*emb]
  const nn::Var hidden = nn::Tanh(enc_fc_.Forward(joint));
  Forwarded f;
  f.mu = mu_head_.Forward(hidden);
  f.logvar = lv_head_.Forward(hidden);
  f.r = rng != nullptr ? nn::Reparameterize(f.mu, f.logvar, rng) : f.mu;
  return f;
}

nn::Var TgVae::SdDecoderNll(const nn::Var& r, roadnet::SegmentId s,
                            roadnet::SegmentId d) const {
  const nn::Var hidden = nn::Tanh(dec_fc_.Forward(r));
  const std::vector<int32_t> st = {s};
  const std::vector<int32_t> dt = {d};
  return nn::Add(nn::SoftmaxCrossEntropy(head_s_.Forward(hidden), st),
                 nn::SoftmaxCrossEntropy(head_d_.Forward(hidden), dt));
}

nn::Var TgVae::StepCe(const nn::Var& hidden, roadnet::SegmentId current,
                      roadnet::SegmentId next) const {
  if (config_.road_constrained) {
    const auto successors = network_->Successors(current);
    std::vector<int32_t> ids(successors.begin(), successors.end());
    int32_t target_pos = -1;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == next) target_pos = static_cast<int32_t>(i);
    }
    CAUSALTAD_CHECK_GE(target_pos, 0) << "route is not network-valid";
    const nn::Var logits =
        nn::GatherColsDot(hidden, out_.w(), out_.b(), ids);
    const std::vector<int32_t> target = {target_pos};
    return nn::SoftmaxCrossEntropy(logits, target);
  }
  const std::vector<int32_t> target = {next};
  return nn::SoftmaxCrossEntropy(out_.Forward(hidden), target);
}

nn::Var TgVae::Loss(const traj::Trip& trip, util::Rng* rng) const {
  const auto& segs = trip.route.segments;
  CAUSALTAD_CHECK_GE(segs.size(), 2u);
  const roadnet::SegmentId s = segs.front();
  const roadnet::SegmentId d = segs.back();

  const Forwarded f = EncodeSd(s, d, rng);
  nn::Var loss = nn::KlStandardNormal(f.mu, f.logvar);
  if (config_.use_sd_decoder) {
    loss = nn::Add(loss, SdDecoderNll(f.r, s, d));
  }

  nn::Var h = nn::Tanh(h0_proj_.Forward(f.r));
  const std::vector<int32_t> ids(segs.begin(), segs.end() - 1);
  const nn::Var inputs = route_emb_.Forward(ids);  // [n-1, emb]
  for (size_t j = 0; j + 1 < segs.size(); ++j) {
    const std::vector<int32_t> row = {static_cast<int32_t>(j)};
    h = gru_.Step(nn::GatherRows(inputs, row), h);
    loss = nn::Add(loss, StepCe(h, segs[j], segs[j + 1]));
  }
  return loss;
}

double TgVae::ScoreParts::PrefixScore(int64_t prefix_len) const {
  double total = sd_nll + kl;
  const int64_t steps = std::min<int64_t>(
      prefix_len - 1, static_cast<int64_t>(step_nll.size()));
  for (int64_t j = 0; j < steps; ++j) total += step_nll[j];
  return total;
}

TgVae::ScoreParts TgVae::Score(const traj::Trip& trip) const {
  const auto& segs = trip.route.segments;
  CAUSALTAD_CHECK_GE(segs.size(), 1u);
  ScoreParts parts;
  const roadnet::SegmentId s = segs.front();
  const roadnet::SegmentId d = segs.back();

  const Forwarded f = EncodeSd(s, d, /*rng=*/nullptr);
  parts.kl = nn::KlStandardNormal(f.mu, f.logvar).value().Item();
  parts.sd_nll = config_.use_sd_decoder
                     ? SdDecoderNll(f.r, s, d).value().Item()
                     : 0.0;

  nn::Var h = nn::Tanh(h0_proj_.Forward(f.r));
  parts.step_nll.reserve(segs.size() - 1);
  for (size_t j = 0; j + 1 < segs.size(); ++j) {
    parts.step_nll.push_back(StepNll(segs[j], segs[j + 1], &h));
  }
  return parts;
}

TgVae::TripContext TgVae::BeginTrip(roadnet::SegmentId source,
                                    roadnet::SegmentId destination) const {
  TripContext ctx;
  const Forwarded f = EncodeSd(source, destination, /*rng=*/nullptr);
  ctx.kl = nn::KlStandardNormal(f.mu, f.logvar).value().Item();
  ctx.sd_nll = config_.use_sd_decoder
                   ? SdDecoderNll(f.r, source, destination).value().Item()
                   : 0.0;
  ctx.h0 = nn::Tanh(h0_proj_.Forward(f.r));
  return ctx;
}

double TgVae::StepNll(roadnet::SegmentId current, roadnet::SegmentId next,
                      nn::Var* hidden) const {
  const std::vector<int32_t> id = {current};
  *hidden = gru_.Step(route_emb_.Forward(id), *hidden);
  return StepCe(*hidden, current, next).value().Item();
}

}  // namespace core
}  // namespace causaltad
