#ifndef CAUSALTAD_NN_INIT_H_
#define CAUSALTAD_NN_INIT_H_

#include <cmath>

#include "nn/tensor.h"
#include "util/random.h"

namespace causaltad {
namespace nn {

/// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
inline Tensor XavierUniform(int64_t fan_in, int64_t fan_out, util::Rng* rng) {
  Tensor t({fan_in, fan_out});
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
  return t;
}

/// Gaussian init with the given stddev.
inline Tensor GaussianInit(std::vector<int64_t> shape, double stddev,
                           util::Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(0, stddev));
  }
  return t;
}

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_INIT_H_
