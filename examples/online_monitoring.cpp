// Online monitoring over the WIRE: a true client/server split in two
// threads of one process. The server side hosts serve::StreamingService
// behind net::Server (the length-prefixed binary protocol a gateway or
// simulator would speak); the client side is a net::Client on a loopback
// socket, streaming a normal trip and a detoured variant of the same trip
// concurrently and alarming while the trips are still in progress.
//
// The example trains CausalTAD, calibrates an alarm threshold from
// held-out normal trips, then runs the client thread: Hello handshake
// (tenant auth), Begin per trip, windowed Push with transparent
// backpressure retries, Poll for scores as the server's pump threads emit
// them. The final dump shows both sides' ops counters: the service's
// points/sec and queue waits, and the server's wire-level accounting
// (frames, bytes, rejects, per-frame dispatch latency).

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/threshold.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/service.h"
#include "traj/anomaly.h"

int main() {
  using namespace causaltad;

  const eval::ExperimentData data =
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke));

  core::CausalTadConfig model_config;
  model_config.tg.emb_dim = 24;
  model_config.tg.hidden_dim = 32;
  model_config.tg.latent_dim = 16;
  model_config.rp.emb_dim = 16;
  model_config.rp.hidden_dim = 32;
  model_config.rp.latent_dim = 8;
  core::CausalTad model(&data.city.network, model_config);
  models::FitOptions options;
  options.epochs = 5;
  options.lr = 3e-3f;
  std::printf("Training...\n");
  model.Fit(data.train, options);

  // Alarm threshold calibrated for a 5% false-positive rate on held-out
  // normal trips.
  std::vector<double> normal_scores;
  for (const auto& t : data.id_test) {
    normal_scores.push_back(model.ScoreFull(t));
  }
  const double threshold = causaltad::eval::ThresholdAtFpr(normal_scores,
                                                           /*target_fpr=*/0.05);
  std::printf("Alarm threshold (5%% FPR on held-out normals): %.3f\n\n",
              threshold);

  // Pick a test trip and fabricate a detour mid-way.
  const traj::Trip& normal = data.id_test[3];
  traj::AnomalyGenerator anomaly_gen(&data.city.network, /*seed=*/99);
  const auto detour = anomaly_gen.MakeDetour(normal, traj::DetourConfig{});
  if (!detour.has_value()) {
    std::printf("could not fabricate a detour for the demo trip\n");
    return 1;
  }

  // SERVER SIDE: the sharded, pumped StreamingService behind the wire
  // front-end. The server's event loop runs on its own thread; tenant auth
  // and network validation are on, as a deployment would run them.
  serve::ServiceOptions service_options;
  service_options.num_shards = 2;
  service_options.pump = true;
  service_options.max_session_pending = 8;
  service_options.batcher.max_batch_rows = 32;
  service_options.batcher.max_delay_ms = 1.0;
  serve::StreamingService service(&model, service_options);

  net::ServerOptions server_options;
  server_options.tenant_tokens = {{"fleet-demo", "s3cret"}};
  server_options.network = &data.city.network;
  net::Server server(&service, server_options);
  if (!server.Start().ok()) {
    std::printf("server failed to start\n");
    return 1;
  }
  const int client_fd = server.AddLoopbackConnection();

  // CLIENT SIDE: its own thread, talking only the wire protocol — exactly
  // what a non-C++ gateway would do over TCP.
  std::thread client_thread([&] {
    net::ClientOptions client_options;
    client_options.tenant = "fleet-demo";
    client_options.auth_token = "s3cret";
    client_options.max_inflight = 16;
    auto client = net::Client::FromFd(client_fd, client_options);
    if (!client->Hello().ok()) {
      std::printf("client auth failed: %s\n",
                  client->status().ToString().c_str());
      return;
    }

    struct Feed {
      const traj::Trip* trip;
      const char* label;
      uint64_t id = 0;
      size_t fed = 0;
      size_t scored = 0;
      bool alarmed = false;
    };
    std::vector<Feed> feeds = {{&normal, "NORMAL  "}, {&*detour, "DETOURED"}};
    for (Feed& feed : feeds) {
      const auto& segments = feed.trip->route.segments;
      feed.id = client->Begin(segments.front(), segments.back(),
                              feed.trip->time_slot);
      std::printf("Streaming %s trip (%lld segments) over the wire\n",
                  feed.label,
                  static_cast<long long>(feed.trip->route.size()));
    }
    std::printf("\n");

    // Both trips stream concurrently: push the next observed point of each
    // (Push retries backpressure rejects transparently), then drain
    // whatever ScoreDeltas the server has for us.
    bool streaming = true;
    while (streaming) {
      streaming = false;
      for (Feed& feed : feeds) {
        const auto& segments = feed.trip->route.segments;
        if (feed.fed < segments.size()) {
          if (!client->Push(feed.id, segments[feed.fed]).ok()) {
            std::printf("push failed: %s\n",
                        client->status().ToString().c_str());
            return;
          }
          ++feed.fed;
        }
        const auto polled = client->Poll(feed.id);
        if (!polled.ok()) {
          std::printf("poll failed: %s\n", polled.status().ToString().c_str());
          return;
        }
        for (const double score : *polled) {
          const bool alarm = score > threshold;
          if (feed.scored % 3 == 0 || (alarm && !feed.alarmed)) {
            std::printf("  %s seg %2lld  score %7.3f %s\n", feed.label,
                        static_cast<long long>(feed.scored), score,
                        alarm && !feed.alarmed ? "  << ALARM" : "");
          }
          if (alarm) feed.alarmed = true;
          ++feed.scored;
        }
        if (feed.fed < segments.size() || feed.scored < segments.size()) {
          streaming = true;
        }
      }
    }
    for (Feed& feed : feeds) {
      if (!feed.alarmed) {
        std::printf("  %s (no alarm raised)\n", feed.label);
      }
      const auto finished = client->Finish(feed.id);
      if (!finished.ok()) {
        std::printf("finish failed: %s\n",
                    finished.status().ToString().c_str());
      }
    }
    const net::ClientStats& cstats = client->stats();
    std::printf(
        "\nClient wire counters:\n"
        "  pushes sent / retransmits  %lld / %lld\n"
        "  polls sent                 %lld\n"
        "  bytes out / in             %lld / %lld\n",
        static_cast<long long>(cstats.pushes_sent),
        static_cast<long long>(cstats.retransmits),
        static_cast<long long>(cstats.polls_sent),
        static_cast<long long>(cstats.bytes_sent),
        static_cast<long long>(cstats.bytes_received));
  });
  client_thread.join();

  const net::ServerStats wire = server.stats();
  server.Stop();
  service.Shutdown();
  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\nServer wire counters:\n"
      "  frames in/out              %lld / %lld\n"
      "  pushes accepted            %lld\n"
      "  rejects (sess/shard/quota) %lld / %lld / %lld\n"
      "  dispatch mean / p99        %.4f / %.4f ms\n",
      static_cast<long long>(wire.frames_received),
      static_cast<long long>(wire.frames_sent),
      static_cast<long long>(wire.pushes_accepted),
      static_cast<long long>(wire.rejected_session_full),
      static_cast<long long>(wire.rejected_shard_full),
      static_cast<long long>(wire.rejected_quota),
      wire.dispatch_mean_ms, wire.dispatch_p99_ms);
  std::printf(
      "\nService ops counters (%d shards, pump on):\n"
      "  points accepted/scored   %lld / %lld\n"
      "  batches fired            %lld (occupancy %.2f)\n"
      "  queue wait p50/p95/p99   %.3f / %.3f / %.3f ms\n",
      service.num_shards(), static_cast<long long>(stats.points_accepted),
      static_cast<long long>(stats.points_scored),
      static_cast<long long>(stats.steps), stats.step_occupancy,
      stats.queue_wait_p50_ms, stats.queue_wait_p95_ms,
      stats.queue_wait_p99_ms);
  std::printf("Same O(1)-per-point scores as the in-process service — the "
              "wire adds auth, quotas, and a transport any producer can "
              "speak.\n");
  return 0;
}
