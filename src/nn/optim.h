#ifndef CAUSALTAD_NN_OPTIM_H_
#define CAUSALTAD_NN_OPTIM_H_

#include <span>
#include <vector>

#include "nn/autograd.h"

namespace causaltad {
namespace nn {

/// Adam hyperparameters (Kingma & Ba 2015), the optimizer the paper trains
/// all models with.
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam optimizer over a fixed parameter list.
class Adam {
 public:
  Adam(std::vector<Var> params, const AdamConfig& config = {});

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Clears all parameter gradients.
  void ZeroGrad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  int64_t step_count() const { return step_; }

 private:
  std::vector<Var> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
};

/// L2 norm of all gradients concatenated.
double GlobalGradNorm(std::span<const Var> params);

/// Scales gradients so the global norm is at most `max_norm`.
void ClipGradNorm(std::span<const Var> params, double max_norm);

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_OPTIM_H_
