#include "nn/modules.h"

#include <cmath>

#include "nn/fastmath.h"
#include "nn/init.h"
#include "util/logging.h"

namespace causaltad {
namespace nn {

std::vector<Var> Module::Parameters() const {
  std::vector<Var> out;
  for (const NamedParam& p : params_) out.push_back(p.var);
  for (const Module* m : submodules_) {
    auto sub = m->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<NamedParam>* out) const {
  const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
  for (const NamedParam& p : params_) {
    out->push_back({base + "." + p.name, p.var});
  }
  for (const Module* m : submodules_) m->CollectNamed(base, out);
}

std::vector<NamedParam> Module::NamedParameters() const {
  std::vector<NamedParam> out;
  CollectNamed("", &out);
  return out;
}

int64_t Module::NumParams() const {
  int64_t total = 0;
  for (const Var& p : Parameters()) total += p.value().numel();
  return total;
}

Var Module::RegisterParameter(const std::string& name, Tensor init) {
  Var v(std::move(init), /*requires_grad=*/true);
  params_.push_back({name, v});
  return v;
}

void Module::RegisterSubmodule(Module* module) {
  CAUSALTAD_CHECK(module != nullptr);
  submodules_.push_back(module);
}

Linear::Linear(std::string name, int64_t in_dim, int64_t out_dim,
               util::Rng* rng)
    : Module(std::move(name)) {
  w_ = RegisterParameter("w", XavierUniform(in_dim, out_dim, rng));
  b_ = RegisterParameter("b", Tensor::Zeros({1, out_dim}));
}

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim,
                     util::Rng* rng)
    : Module(std::move(name)) {
  table_ = RegisterParameter("table", GaussianInit({vocab, dim}, 0.1, rng));
}

GruCell::GruCell(std::string name, int64_t in_dim, int64_t hidden_dim,
                 util::Rng* rng)
    : Module(std::move(name)), hidden_dim_(hidden_dim) {
  wz_ = RegisterParameter("wz", XavierUniform(in_dim, hidden_dim, rng));
  uz_ = RegisterParameter("uz", XavierUniform(hidden_dim, hidden_dim, rng));
  bz_ = RegisterParameter("bz", Tensor::Zeros({1, hidden_dim}));
  wr_ = RegisterParameter("wr", XavierUniform(in_dim, hidden_dim, rng));
  ur_ = RegisterParameter("ur", XavierUniform(hidden_dim, hidden_dim, rng));
  br_ = RegisterParameter("br", Tensor::Zeros({1, hidden_dim}));
  wh_ = RegisterParameter("wh", XavierUniform(in_dim, hidden_dim, rng));
  uh_ = RegisterParameter("uh", XavierUniform(hidden_dim, hidden_dim, rng));
  bh_ = RegisterParameter("bh", Tensor::Zeros({1, hidden_dim}));
}

Var GruCell::Step(const Var& x, const Var& h) const {
  const Var z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  const Var r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  const Var candidate =
      Tanh(Add(Add(MatMul(x, wh_), MatMul(Mul(r, h), uh_)), bh_));
  // h' = h + z ⊙ (candidate - h)
  return Add(h, Mul(z, Sub(candidate, h)));
}

Var GruCell::StepFused(const Var& x, const Var& h) const {
  if (!InferenceGuard::active() &&
      (x.requires_grad() || h.requires_grad() || wz_.requires_grad())) {
    return Step(x, h);
  }
  const Tensor& tx = x.value();
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(tx.dim(0), th.dim(0));
  CAUSALTAD_DCHECK_EQ(th.dim(1), hidden_dim_);
  const int64_t batch = tx.dim(0);
  const int64_t in = tx.dim(1);
  const int64_t hd = hidden_dim_;

  internal::ArenaScope scope;
  float* z = internal::ArenaAlloc(batch * hd);
  float* r = internal::ArenaAlloc(batch * hd);
  float* c = internal::ArenaAlloc(batch * hd);

  // Input halves of the gate pre-activations: z = xWz, r = xWr, c = xWh.
  internal::MatMulPacked(tx.data(), wz_.value().data(), z, batch, in, hd);
  internal::MatMulPacked(tx.data(), wr_.value().data(), r, batch, in, hd);
  internal::MatMulPacked(tx.data(), wh_.value().data(), c, batch, in, hd);
  return FusedGateTail(th, batch, z, r, c);
}

Tensor GruCell::ProjectInputs(const Tensor& xs) const {
  const int64_t n = xs.dim(0);
  const int64_t in = xs.dim(1);
  const int64_t hd = hidden_dim_;
  // One gemm against [Wz | Wr | Wh] packed side by side: identical math to
  // three separate input-weight gemms, amortized over every unique row.
  internal::ArenaScope scope;
  float* fused = internal::ArenaAlloc(in * 3 * hd);
  for (int64_t p = 0; p < in; ++p) {
    std::copy(wz_.value().data() + p * hd, wz_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd);
    std::copy(wr_.value().data() + p * hd, wr_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd + hd);
    std::copy(wh_.value().data() + p * hd, wh_.value().data() + (p + 1) * hd,
              fused + p * 3 * hd + 2 * hd);
  }
  Tensor out({n, 3 * hd});
  internal::MatMulPacked(xs.data(), fused, out.data(), n, in, 3 * hd);
  return out;
}

Var GruCell::StepFusedProjected(const float* xw, int64_t batch,
                                const Var& h) const {
  CAUSALTAD_CHECK(InferenceGuard::active());
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(th.dim(0), batch);
  const int64_t hd = hidden_dim_;
  internal::ArenaScope scope;
  float* z = internal::ArenaAlloc(batch * hd);
  float* r = internal::ArenaAlloc(batch * hd);
  float* c = internal::ArenaAlloc(batch * hd);
  for (int64_t b = 0; b < batch; ++b) {
    const float* row = xw + b * 3 * hd;
    std::copy(row, row + hd, z + b * hd);
    std::copy(row + hd, row + 2 * hd, r + b * hd);
    std::copy(row + 2 * hd, row + 3 * hd, c + b * hd);
  }
  return FusedGateTail(th, batch, z, r, c);
}

Var GruCell::StepBatched(const Var& x, const Var& h,
                         std::span<const uint8_t> finished) const {
  const Tensor& tx = x.value();
  const Tensor& th = h.value();
  CAUSALTAD_DCHECK_EQ(tx.dim(0), th.dim(0));
  CAUSALTAD_DCHECK_EQ(th.dim(1), hidden_dim_);
  const int64_t batch = tx.dim(0);
  const int64_t in = tx.dim(1);
  const int64_t hd = hidden_dim_;
  CAUSALTAD_DCHECK(finished.empty() ||
                   static_cast<int64_t>(finished.size()) == batch);

  // Post-activation gates, saved for the backward pass (heap, not arena —
  // the tape outlives this call). Planes: z rows [0,B), r rows [B,2B),
  // candidate rows [2B,3B).
  auto acts = std::make_shared<Tensor>(Tensor({3 * batch, hd}));
  float* z = acts->data();
  float* r = z + batch * hd;
  float* c = r + batch * hd;

  internal::ArenaScope scope;
  // Input halves, then recurrent halves accumulated on top.
  internal::MatMulPacked(tx.data(), wz_.value().data(), z, batch, in, hd);
  internal::MatMulPacked(tx.data(), wr_.value().data(), r, batch, in, hd);
  internal::MatMulPacked(tx.data(), wh_.value().data(), c, batch, in, hd);
  internal::MatMulPacked(th.data(), uz_.value().data(), z, batch, hd, hd,
                         /*accumulate=*/true);
  internal::MatMulPacked(th.data(), ur_.value().data(), r, batch, hd, hd,
                         /*accumulate=*/true);
  const float* bz = bz_.value().data();
  const float* br = br_.value().data();
  float* rh = internal::ArenaAlloc(batch * hd);
  for (int64_t b = 0; b < batch; ++b) {
    const float* hrow = th.data() + b * hd;
    float* zrow = z + b * hd;
    float* rrow = r + b * hd;
    float* rhrow = rh + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      zrow[j] = fastmath::Sigmoid(zrow[j] + bz[j]);
      rrow[j] = fastmath::Sigmoid(rrow[j] + br[j]);
      rhrow[j] = rrow[j] * hrow[j];
    }
  }
  internal::MatMulPacked(rh, uh_.value().data(), c, batch, hd, hd,
                         /*accumulate=*/true);

  Tensor out({batch, hd});
  const float* bh = bh_.value().data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* hrow = th.data() + b * hd;
    float* orow = out.data() + b * hd;
    if (!finished.empty() && finished[b]) {
      std::copy(hrow, hrow + hd, orow);
      continue;
    }
    const float* zrow = z + b * hd;
    float* crow = c + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      crow[j] = fastmath::Tanh(crow[j] + bh[j]);
      orow[j] = hrow[j] + zrow[j] * (crow[j] - hrow[j]);
    }
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = internal::MakeOp(
      std::move(out),
      {x, h, wz_, uz_, bz_, wr_, ur_, br_, wh_, uh_, bh_}, &slot, &self);
  if (slot == nullptr) return result;

  Node* nx = x.node().get();
  Node* nh = h.node().get();
  Node* nwz = wz_.node().get();
  Node* nuz = uz_.node().get();
  Node* nbz = bz_.node().get();
  Node* nwr = wr_.node().get();
  Node* nur = ur_.node().get();
  Node* nbr = br_.node().get();
  Node* nwh = wh_.node().get();
  Node* nuh = uh_.node().get();
  Node* nbh = bh_.node().get();
  std::vector<uint8_t> fin(finished.begin(), finished.end());
  *slot = [self, nx, nh, nwz, nuz, nbz, nwr, nur, nbr, nwh, nuh, nbh, acts,
           fin, batch, in, hd]() {
    const float* g = self->grad.data();
    const float* z = acts->data();
    const float* r = z + batch * hd;
    const float* c = r + batch * hd;
    const float* hv = nh->value.data();

    internal::ArenaScope scope;
    float* da_z = internal::ArenaAlloc(batch * hd);
    float* da_r = internal::ArenaAlloc(batch * hd);
    float* da_c = internal::ArenaAlloc(batch * hd);
    float* drh = internal::ArenaAlloc(batch * hd);
    float* rh = internal::ArenaAlloc(batch * hd);

    // Pass 1 — gate pre-activation grads that only need z, c, h and g:
    //   dz = g ⊙ (c - h),  da_z = dz · z(1-z)
    //   dc = g ⊙ z,        da_c = dc · (1-c²)
    for (int64_t b = 0; b < batch; ++b) {
      float* dazr = da_z + b * hd;
      float* dacr = da_c + b * hd;
      if (!fin.empty() && fin[b]) {
        std::fill(dazr, dazr + hd, 0.0f);
        std::fill(dacr, dacr + hd, 0.0f);
        continue;
      }
      const float* grow = g + b * hd;
      const float* zrow = z + b * hd;
      const float* crow = c + b * hd;
      const float* hrow = hv + b * hd;
      for (int64_t j = 0; j < hd; ++j) {
        dazr[j] = grow[j] * (crow[j] - hrow[j]) * zrow[j] * (1.0f - zrow[j]);
        dacr[j] = grow[j] * zrow[j] * (1.0f - crow[j] * crow[j]);
      }
    }

    // d(r⊙h) = da_c · Uhᵀ (Uh row-major is already the pretransposed
    // layout the packed kernel wants).
    internal::MatMulPacked(da_c, nuh->value.data(), drh, batch, hd, hd,
                           /*accumulate=*/false, /*b_pretransposed=*/true);

    // Pass 2 — da_r = (drh ⊙ h) · r(1-r), the r⊙h operand for dUh, and the
    // elementwise parts of dh: g ⊙ (1-z) + drh ⊙ r (finished rows pass g
    // straight through).
    const bool need_dh = nh->requires_grad;
    if (need_dh) nh->EnsureGrad();
    for (int64_t b = 0; b < batch; ++b) {
      float* darr = da_r + b * hd;
      float* rhrow = rh + b * hd;
      const float* rrow = r + b * hd;
      const float* hrow = hv + b * hd;
      float* dhrow = need_dh ? nh->grad.data() + b * hd : nullptr;
      if (!fin.empty() && fin[b]) {
        std::fill(darr, darr + hd, 0.0f);
        std::fill(rhrow, rhrow + hd, 0.0f);
        if (dhrow != nullptr) {
          const float* grow = g + b * hd;
          for (int64_t j = 0; j < hd; ++j) dhrow[j] += grow[j];
        }
        continue;
      }
      const float* grow = g + b * hd;
      const float* zrow = z + b * hd;
      const float* drhrow = drh + b * hd;
      for (int64_t j = 0; j < hd; ++j) {
        darr[j] = drhrow[j] * hrow[j] * rrow[j] * (1.0f - rrow[j]);
        rhrow[j] = rrow[j] * hrow[j];
        if (dhrow != nullptr) {
          dhrow[j] += grow[j] * (1.0f - zrow[j]) + drhrow[j] * rrow[j];
        }
      }
    }

    // Matrix halves of dh and dx, then the weight/bias accumulations.
    if (need_dh) {
      internal::MatMulPacked(da_z, nuz->value.data(), nh->grad.data(), batch,
                             hd, hd, /*accumulate=*/true,
                             /*b_pretransposed=*/true);
      internal::MatMulPacked(da_r, nur->value.data(), nh->grad.data(), batch,
                             hd, hd, /*accumulate=*/true,
                             /*b_pretransposed=*/true);
    }
    if (nx->requires_grad) {
      nx->EnsureGrad();
      internal::MatMulPacked(da_z, nwz->value.data(), nx->grad.data(), batch,
                             hd, in, /*accumulate=*/true,
                             /*b_pretransposed=*/true);
      internal::MatMulPacked(da_r, nwr->value.data(), nx->grad.data(), batch,
                             hd, in, /*accumulate=*/true,
                             /*b_pretransposed=*/true);
      internal::MatMulPacked(da_c, nwh->value.data(), nx->grad.data(), batch,
                             hd, in, /*accumulate=*/true,
                             /*b_pretransposed=*/true);
    }
    const float* xv = nx->value.data();
    const auto weight_grad = [&](Node* nw, const float* da, const float* lhs,
                                 int64_t lhs_cols) {
      if (!nw->requires_grad) return;
      nw->EnsureGrad();
      internal::AddMatMulTransposedA(lhs, da, nw->grad.data(), batch,
                                     lhs_cols, hd);
    };
    weight_grad(nwz, da_z, xv, in);
    weight_grad(nwr, da_r, xv, in);
    weight_grad(nwh, da_c, xv, in);
    weight_grad(nuz, da_z, hv, hd);
    weight_grad(nur, da_r, hv, hd);
    weight_grad(nuh, da_c, rh, hd);
    const auto bias_grad = [&](Node* nb, const float* da) {
      if (!nb->requires_grad) return;
      nb->EnsureGrad();
      for (int64_t b = 0; b < batch; ++b) {
        const float* darow = da + b * hd;
        for (int64_t j = 0; j < hd; ++j) nb->grad[j] += darow[j];
      }
    };
    bias_grad(nbz, da_z);
    bias_grad(nbr, da_r);
    bias_grad(nbh, da_c);
  };
  return result;
}

Var GruCell::FusedGateTail(const Tensor& th, int64_t batch, float* z,
                           float* r, float* c) const {
  const int64_t hd = hidden_dim_;
  // Recurrent halves: z += hUz, r += hUr (the candidate's hU term needs the
  // finished r first).
  internal::MatMulPacked(th.data(), uz_.value().data(), z, batch, hd, hd,
                         /*accumulate=*/true);
  internal::MatMulPacked(th.data(), ur_.value().data(), r, batch, hd, hd,
                         /*accumulate=*/true);

  // One fused pass: bias + sigmoid for z and r, then r ⊙ h (reusing r as
  // the buffer) for the candidate's recurrent matmul.
  const float* bz = bz_.value().data();
  const float* br = br_.value().data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* hrow = th.data() + b * hd;
    float* zrow = z + b * hd;
    float* rrow = r + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      zrow[j] = fastmath::Sigmoid(zrow[j] + bz[j]);
      rrow[j] = hrow[j] * fastmath::Sigmoid(rrow[j] + br[j]);
    }
  }
  internal::MatMulPacked(r, uh_.value().data(), c, batch, hd, hd,
                         /*accumulate=*/true);

  // h' = h + z ⊙ (tanh(c + bh) - h), written straight into the output.
  Tensor out({batch, hd});
  const float* bh = bh_.value().data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* hrow = th.data() + b * hd;
    const float* zrow = z + b * hd;
    const float* crow = c + b * hd;
    float* orow = out.data() + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      const float cand = fastmath::Tanh(crow[j] + bh[j]);
      orow[j] = hrow[j] + zrow[j] * (cand - hrow[j]);
    }
  }
  return Var(std::move(out), /*requires_grad=*/false);
}

Mlp::Mlp(std::string name, const std::vector<int64_t>& dims, util::Rng* rng)
    : Module(std::move(name)) {
  CAUSALTAD_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>("fc" + std::to_string(i),
                                               dims[i], dims[i + 1], rng));
    RegisterSubmodule(layers_.back().get());
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Tanh(h);
  }
  return h;
}

}  // namespace nn
}  // namespace causaltad
