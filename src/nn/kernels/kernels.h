#ifndef CAUSALTAD_NN_KERNELS_KERNELS_H_
#define CAUSALTAD_NN_KERNELS_KERNELS_H_

#include <cstdint>

namespace causaltad {
namespace nn {
namespace kernels {

// ---------------------------------------------------------------------------
// Runtime-dispatched compute substrate. One generic implementation
// (kernel_impl.inc) is compiled into three translation units — baseline
// (portable -O2), AVX2+FMA, and AVX-512 — and the best table the host
// supports is selected once by CPUID at first use. Every hot value-level
// kernel in nn/, core/, and serve/ dispatches through Active() instead of
// file-local statics, so a single binary runs as fast as each host allows.
//
// Selection:  CPUID picks the widest supported ISA.  The CAUSALTAD_ISA
// environment variable (baseline|avx2|avx512) overrides it for tests and CI;
// requesting an ISA the host lacks falls back to the best supported one with
// a warning.  SetIsa()/Get() are the programmatic hooks benches and parity
// tests use to pin a backend mid-process.
//
// Determinism: for a fixed table, every kernel is bit-deterministic and
// independent of batch composition (per-row arithmetic never reads other
// rows). Across tables, baseline differs from avx2/avx512 by FMA contraction
// and avx512 additionally by its 16-lane reduction order — parity tests use
// a 1e-6 relative tolerance across tables (1e-5 on cancellation-heavy raw
// accumulations, where the error is relative to the partial products rather
// than the sum) and exact equality within one.
// ---------------------------------------------------------------------------

enum class Isa { kBaseline = 0, kAvx2 = 1, kAvx512 = 2 };

/// One backend: a table of raw row-major buffer kernels. All pointers are
/// always populated.
struct Kernels {
  Isa isa;
  const char* name;

  /// SIMD-friendly multi-lane dot product of two contiguous length-k rows.
  float (*dot)(const float* a, const float* b, int64_t k);

  /// Packs src [r,c] (row-major) transposed into dst [c,r].
  void (*pack_transpose)(const float* src, int64_t r, int64_t c, float* dst);

  /// out[m,n] = a[m,k] @ b[k,n] (+= when `accumulate`). Packs b transposed
  /// into thread-local arena scratch unless `b_pretransposed` (b already
  /// [n,k] row-major, e.g. every dX = dY·Wᵀ backward term).
  void (*matmul_packed)(const float* a, const float* b, float* out, int64_t m,
                        int64_t k, int64_t n, bool accumulate,
                        bool b_pretransposed);

  /// Grad-accumulate helper: out[k,n] += a[m,k]ᵀ @ g[m,n] — the dW = Xᵀ·dY
  /// half of every affine/GRU backward.
  void (*add_matmul_transposed_a)(const float* a, const float* g, float* out,
                                  int64_t m, int64_t k, int64_t n);

  /// Elementwise transcendental vector ops (fastmath polynomials, compiled
  /// per-TU so the op-composed and fused paths stay bit-identical).
  void (*exp_vec)(const float* x, float* out, int64_t n);
  void (*tanh_vec)(const float* x, float* out, int64_t n);
  void (*sigmoid_vec)(const float* x, float* out, int64_t n);

  /// Row softmax (max-shifted) of one length-n logits row into out.
  void (*softmax_row)(const float* logits, int64_t n, float* out);

  /// -log softmax(row)[target] for one length-n logits row (max-shifted,
  /// 1e-12 probability floor).
  float (*softmax_nll_row)(const float* row, int64_t n, int64_t target);

  /// KL( N(mu, diag(exp(lv))) || N(0,I) ) of one length-n row.
  float (*kl_standard_normal_row)(const float* mu, const float* lv, int64_t n);

  /// Fused GRU gate pass over a [batch, hd] block:
  ///   z = sigmoid(z + bz);  r = sigmoid(r + br);  rh = r ⊙ h.
  /// rh may alias r (the inference tail reuses the buffer); when it does,
  /// the post-sigmoid r is not preserved.
  void (*gru_gates_zr)(const float* h, const float* bz, const float* br,
                       float* z, float* r, float* rh, int64_t batch,
                       int64_t hd);

  /// Fused GRU output blend: c = tanh(c + bh) (updated in place — the
  /// batched-tape backward reads the post-activation), out = h + z⊙(c - h).
  /// Rows with finished[b] != 0 copy h through and leave c untouched;
  /// `finished` may be null.
  void (*gru_out_blend)(const float* h, const float* bh, const float* z,
                        float* c, float* out, const uint8_t* finished,
                        int64_t batch, int64_t hd);

  /// Embedding gather: out[i,:] = table[ids[i],:] for n rows of width d.
  void (*gather_rows_f32)(const float* table, int64_t d, const int32_t* ids,
                          int64_t n, float* out);

  /// Quantized embedding gather: out[i,:] = scales[ids[i]] * q[ids[i],:]
  /// (int8 symmetric per-row quantization).
  void (*dequant_rows_i8)(const int8_t* q, const float* scales, int64_t d,
                          const int32_t* ids, int64_t n, float* out);

  /// Quantized matmul: out[i,:] = a_scales[i] * (int8 row a[i,:] @ b[k,n]).
  /// A is read as int8 (quarter the bandwidth of fp32); accumulation is
  /// fp32, the per-row scale applied after. Not accumulating.
  void (*matmul_i8)(const int8_t* a, const float* a_scales, const float* b,
                    float* out, int64_t m, int64_t k, int64_t n);
};

/// The table selected for this process (CPUID best, CAUSALTAD_ISA override,
/// or the last SetIsa). Never null; cheap enough to call per-op.
const Kernels& Active();

/// The ISA of Active().
Isa ActiveIsa();

/// True when this host can execute `isa`.
bool Supported(Isa isa);

/// The table for a specific ISA. CHECK-fails if unsupported on this host.
const Kernels& Get(Isa isa);

/// Pins Active() to `isa` for the rest of the process (parity tests and the
/// fig7_isa bench). CHECK-fails if unsupported. Not thread-safe against
/// concurrent kernel users — call before spawning workers.
void SetIsa(Isa isa);

const char* IsaName(Isa isa);

/// Symmetric per-row absmax int8 quantization: scales[i] = absmax(row)/127
/// (1 when the row is all zero), q[i,j] = round(src[i,j]/scales[i]).
/// Re-quantizing a dequantized table is exact (the absmax element maps back
/// to ±127 and reproduces the same scale), so quantized checkpoints
/// round-trip bit-identically. ISA-independent.
void QuantizeRowsI8(const float* src, int64_t rows, int64_t d, int8_t* q,
                    float* scales);

}  // namespace kernels
}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_KERNELS_KERNELS_H_
