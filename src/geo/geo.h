#ifndef CAUSALTAD_GEO_GEO_H_
#define CAUSALTAD_GEO_GEO_H_

#include <cmath>
#include <vector>

namespace causaltad {
namespace geo {

/// WGS84-style geographic coordinate (degrees).
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Point in a local planar (metric) frame, meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
};

/// Mean Earth radius (meters), as used by the haversine formula.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle distance between two geographic points, in meters.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Equirectangular projection anchored at an origin; accurate to well under
/// 0.1% over city-scale extents, which is all the road-network substrate
/// needs. Projection is invertible (Unproject ∘ Project = identity up to
/// floating point).
class LocalProjection {
 public:
  explicit LocalProjection(const LatLon& origin);

  Vec2 Project(const LatLon& p) const;
  LatLon Unproject(const Vec2& v) const;

  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

/// Euclidean distance from point `p` to segment [a, b] in the local frame.
double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b);

/// Closest point on segment [a, b] to `p`, returned as the interpolation
/// parameter in [0, 1] along a->b.
double ProjectOntoSegment(const Vec2& p, const Vec2& a, const Vec2& b);

/// Total length of a polyline (consecutive-point Euclidean distances).
double PolylineLength(const std::vector<Vec2>& pts);

/// Interpolates a point at arclength `s` (clamped to [0, length]) along a
/// polyline with at least one point.
Vec2 InterpolateAlong(const std::vector<Vec2>& pts, double s);

}  // namespace geo
}  // namespace causaltad

#endif  // CAUSALTAD_GEO_GEO_H_
