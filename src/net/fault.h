#ifndef CAUSALTAD_NET_FAULT_H_
#define CAUSALTAD_NET_FAULT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "util/random.h"

namespace causaltad {
namespace net {

/// Per-operation fault probabilities, each in [0, 1] and evaluated in the
/// order listed (the first that fires wins; `delay` composes with any of
/// them). All default to 0 — an injector with default options is a no-op
/// pass-through, so production paths can keep the hook unconditionally.
struct FaultOptions {
  /// Swallow the bytes, report success, then kill the connection: the peer
  /// sees a clean transport failure with this payload lost in flight.
  double drop_rate = 0.0;
  /// Send the bytes twice: the peer's length-prefixed decoder desyncs and
  /// poisons, which both endpoints treat as a transport failure.
  double dup_rate = 0.0;
  /// Send a strict prefix of the bytes, then kill the connection — a
  /// mid-frame cut, the classic partial-delivery failure.
  double truncate_rate = 0.0;
  /// Deliver only a small prefix but stay alive: exercises the callers'
  /// partial-write resume paths without ending the connection.
  double short_write_rate = 0.0;
  /// Kill the connection before transferring anything.
  double kill_rate = 0.0;
  /// Sleep delay_ms before the transfer (applied independently of the
  /// verdict above).
  double delay_rate = 0.0;
  double delay_ms = 1.0;
  /// PRNG seed. 0 reads CAUSALTAD_FAULT_SEED from the environment (falling
  /// back to a fixed default), so CI soaks replay bit-identically.
  uint64_t seed = 0;
};

/// Cumulative counts of the faults actually fired, all connections.
struct FaultStats {
  int64_t sends = 0;   // send-side decisions taken (incl. passes)
  int64_t recvs = 0;   // recv-side decisions taken (incl. passes)
  int64_t drops = 0;
  int64_t dups = 0;
  int64_t truncates = 0;
  int64_t short_writes = 0;
  int64_t kills = 0;
  int64_t delays = 0;
};

class FaultInjector;

/// One endpoint's fault state: an independent deterministic PRNG stream
/// forked from the injector at Attach(), so a connection's fault schedule
/// does not depend on what other connections do concurrently. Created by
/// FaultInjector::Attach(); used by the socket_io helpers.
///
/// Thread-safe (each decision takes a short internal lock), though in
/// practice one connection's I/O happens on one thread.
class FaultConnection {
 public:
  enum class Action : uint8_t {
    kPass,
    kDrop,
    kDuplicate,
    kTruncate,
    kShortWrite,
    kKill,
  };

  /// Send-side verdict for a transfer of `size` bytes. On kTruncate and
  /// kShortWrite, *keep_bytes is the prefix length to transfer (>= 1 when
  /// size >= 1). May sleep (delay fault).
  Action OnSend(size_t size, size_t* keep_bytes);

  /// Recv-side verdict: kPass, kKill, or kShortWrite (cap the read size to
  /// *keep_bytes). May sleep (delay fault).
  Action OnRecv(size_t size, size_t* keep_bytes);

 private:
  friend class FaultInjector;
  FaultConnection(FaultInjector* owner, util::Rng rng)
      : owner_(owner), rng_(rng) {}

  Action Decide(size_t size, size_t* keep_bytes, bool send_side);

  FaultInjector* owner_;
  std::mutex mu_;
  util::Rng rng_;
};

/// Seeded, deterministic fault source hooked at the socket read/write
/// boundary of net::Server and net::Client (via their Options). One
/// injector is shared by any number of connections; each Attach() forks an
/// independent PRNG stream. Must outlive every attached connection.
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options = {});

  /// Forks a per-connection deterministic fault stream. Attach order is the
  /// only coupling between connections, so a fixed connect sequence replays
  /// the exact same fault schedule.
  std::shared_ptr<FaultConnection> Attach();

  FaultStats stats() const;
  const FaultOptions& options() const { return options_; }

 private:
  friend class FaultConnection;

  FaultOptions options_;
  mutable std::mutex mu_;
  util::Rng rng_;  // fork source
  FaultStats stats_;
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_FAULT_H_
