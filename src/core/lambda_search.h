#ifndef CAUSALTAD_CORE_LAMBDA_SEARCH_H_
#define CAUSALTAD_CORE_LAMBDA_SEARCH_H_

#include <span>
#include <vector>

#include "core/causal_tad.h"
#include "traj/trajectory.h"

namespace causaltad {
namespace core {

/// Validation-based selection of the balance constant λ (paper §VI-H: "we
/// recommend conducting the grid search on the validation dataset to
/// determine the best value of λ for other datasets").
///
/// Because score(λ) = likelihood − λ·Σ scaling is linear in λ, each
/// validation trip is decomposed once and the whole grid is evaluated from
/// the cached parts — no retraining, no re-scoring.
struct LambdaSearchResult {
  double best_lambda = 0.0;
  double best_roc_auc = 0.0;
  /// (λ, ROC-AUC) for every grid point, in grid order.
  std::vector<std::pair<double, double>> grid;
};

/// Default grid: the values the paper sweeps in Fig. 8 plus 0.2.
std::vector<double> DefaultLambdaGrid();

/// Evaluates the grid on validation normals vs anomalies and returns the
/// ROC-AUC-maximizing λ. The model must already be fitted.
LambdaSearchResult SelectLambda(
    const CausalTad& model, std::span<const traj::Trip> validation_normals,
    std::span<const traj::Trip> validation_anomalies,
    std::span<const double> grid = {});

}  // namespace core
}  // namespace causaltad

#endif  // CAUSALTAD_CORE_LAMBDA_SEARCH_H_
