#include "serve/service.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/logging.h"

namespace causaltad {
namespace serve {
namespace {

/// splitmix64 — cheap stateless mix so consecutive session counters spread
/// uniformly over the shards.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

StreamingService::StreamingService(const core::CausalTad* model,
                                   ServiceOptions options)
    : StreamingService(model, core::ScoreVariant::kFull, model->lambda(),
                       std::move(options)) {
  lambda_from_model_ = true;
}

StreamingService::StreamingService(const core::CausalTad* model,
                                   core::ScoreVariant variant, double lambda,
                                   ServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.registry ? options_.registry
                                  : obs::Registry::Default()),
      variant_(variant),
      lambda_(lambda),
      start_(std::chrono::steady_clock::now()) {
  CAUSALTAD_CHECK_GT(options_.num_shards, 0);
  sessions_begun_.Bind(registry_, "service_sessions_begun_total");
  points_accepted_.Bind(registry_, "service_points_accepted_total");
  rejected_session_full_.Bind(registry_,
                              "service_rejected_session_full_total");
  rejected_shard_full_.Bind(registry_, "service_rejected_shard_full_total");
  model_swaps_.Bind(registry_, "service_model_swaps_total");
  generations_retired_.Bind(registry_, "service_generations_retired_total");
  model_.store(model, std::memory_order_relaxed);
  shards_.reserve(options_.num_shards);
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->queue_wait = registry_->GetHistogram(
        "service_queue_wait_ms", {{"shard", std::to_string(i)}});
    shard->stats_base = shard->queue_wait->raw()->TakeSnapshot();
    shard->gens.push_back(
        MakeBatcher(model, shard.get(), options_.batcher.max_delay_ms));
    shard->adapt_base = shard->queue_wait->raw()->TakeSnapshot();
    shards_.push_back(std::move(shard));
  }
  const double now = NowMs();
  for (auto& shard : shards_) shard->last_adapt_ms = now;
  if (options_.pump) {
    for (auto& shard : shards_) {
      shard->pump = std::thread([this, s = shard.get()] { PumpLoop(s); });
    }
  }
}

StreamingService::~StreamingService() { Shutdown(); }

double StreamingService::NowMs() const {
  if (options_.batcher.now_ms) return options_.batcher.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<StreamingBatcher> StreamingService::MakeBatcher(
    const core::CausalTad* model, Shard* shard, double max_delay_ms) const {
  StreamingOptions batcher_options = options_.batcher;
  batcher_options.queue_wait = shard->queue_wait->raw();
  batcher_options.max_delay_ms = max_delay_ms;
  batcher_options.tracer = options_.tracer;
  batcher_options.trace_where = "shard=" + std::to_string(shard->index);
  const double lambda = lambda_from_model_ ? model->lambda() : lambda_;
  return std::make_unique<StreamingBatcher>(model, variant_, lambda,
                                            batcher_options);
}

void StreamingService::PumpLoop(Shard* shard) {
  std::vector<StreamingBatcher*> gens;
  while (!stop_.load(std::memory_order_acquire)) {
    gens.clear();
    {
      std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
      for (const auto& g : shard->gens) gens.push_back(g.get());
    }
    int64_t scored = 0;
    for (StreamingBatcher* g : gens) scored += g->StepIfReady();
    if (options_.target_queue_wait_p95_ms > 0.0) AdaptShard(shard);
    if (gens.size() > 1) MaybeRetire(shard);
    if (scored > 0) continue;  // hot: step again
    // Idle poll period: a fraction of the admission deadline, so a partial
    // batch is picked up well within max_delay_ms of becoming due. Reads
    // the live (possibly adapted) deadline each pass.
    const double delay_ms =
        std::max(gens.empty() ? options_.batcher.max_delay_ms
                              : gens.back()->max_delay_ms(),
                 0.1);
    const auto idle_wait = std::chrono::microseconds(
        std::max<int64_t>(50, static_cast<int64_t>(delay_ms * 1000.0 / 4.0)));
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv.wait_for(lock, idle_wait, [this] {
      return stop_.load(std::memory_order_acquire);
    });
  }
}

StreamingService::Shard* StreamingService::ShardOf(SessionId id,
                                                   SessionId* inner) {
  CAUSALTAD_CHECK_GE(id, 0);
  const int64_t n = static_cast<int64_t>(shards_.size());
  *inner = id / n;
  return shards_[id % n].get();
}

SessionId StreamingService::BeginSession(roadnet::SegmentId source,
                                         roadnet::SegmentId destination,
                                         int time_slot) {
  return BeginSessionAt(source, destination, time_slot, /*emit_skip=*/0);
}

SessionId StreamingService::BeginSessionAt(roadnet::SegmentId source,
                                           roadnet::SegmentId destination,
                                           int time_slot, int64_t emit_skip) {
  const uint64_t seq = next_session_.fetch_add(1, std::memory_order_relaxed);
  const int64_t n = static_cast<int64_t>(shards_.size());
  const int64_t shard_index = static_cast<int64_t>(Mix(seq) % shards_.size());
  Shard* shard = shards_[shard_index].get();
  SessionId inner = -1;
  {
    // Exclusive: binds the session to the CURRENT generation and claims a
    // shard-unique inner id. A SwapModel cannot interleave, so a session
    // never splits across models.
    std::unique_lock<std::shared_mutex> lock(shard->gens_mu);
    StreamingBatcher* batcher = shard->gens.back().get();
    const SessionId batcher_id =
        batcher->BeginSessionAt(source, destination, time_slot, emit_skip);
    inner = shard->next_inner++;
    shard->route.emplace(inner, Route{batcher, batcher_id});
  }
  sessions_begun_.Inc();
  // Bijective (inner, shard) -> service id; decoding needs no lock or map.
  return inner * n + shard_index;
}

SessionId StreamingService::Begin(const traj::Trip& trip) {
  CAUSALTAD_CHECK(!trip.route.empty());
  return BeginSession(trip.route.segments.front(),
                      trip.route.segments.back(), trip.time_slot);
}

PushStatus StreamingService::Push(SessionId id, roadnet::SegmentId segment) {
  return Push(id, segment, /*trace_id=*/0);
}

PushStatus StreamingService::Push(SessionId id, roadnet::SegmentId segment,
                                  uint64_t trace_id) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  // The shared lock pins the pre-shutdown world: Shutdown() cannot proceed
  // to join-and-flush until this enqueue has landed (so it gets scored), and
  // once Shutdown() holds the lock exclusively every later Push sees
  // accepting_ == false.
  std::shared_lock<std::shared_mutex> accepting_lock(accepting_mu_);
  if (!accepting_) return PushStatus::kShutdown;
  PushStatus status = PushStatus::kShutdown;
  {
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    auto it = shard->route.find(inner);
    CAUSALTAD_CHECK(it != shard->route.end()) << "unknown session " << id;
    status = it->second.batcher->TryPush(it->second.id, segment,
                                         options_.max_session_pending,
                                         options_.max_shard_queued, trace_id);
  }
  switch (status) {
    case PushStatus::kAccepted:
      points_accepted_.Inc();
      break;
    case PushStatus::kSessionFull:
      rejected_session_full_.Inc();
      break;
    case PushStatus::kShardFull:
      rejected_shard_full_.Inc();
      break;
    case PushStatus::kShutdown:
      break;  // unreachable: the batcher has no lifecycle
  }
  return status;
}

void StreamingService::End(SessionId id) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
  auto it = shard->route.find(inner);
  // Ending an already-forgotten session is a no-op (mirrors Poll).
  if (it == shard->route.end()) return;
  it->second.batcher->End(it->second.id);
}

std::vector<double> StreamingService::Poll(SessionId id) {
  SessionId inner = 0;
  Shard* shard = ShardOf(id, &inner);
  bool forgotten = false;
  std::vector<double> scores;
  StreamingBatcher* batcher = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    auto it = shard->route.find(inner);
    if (it == shard->route.end()) return {};
    batcher = it->second.batcher;
    scores = batcher->Poll(it->second.id, &forgotten);
  }
  if (forgotten) {
    // The batcher no longer tracks the session; drop our route entry so a
    // drained old generation can retire. Inner ids are never reused, so
    // re-finding after the lock drop cannot alias a different session.
    std::unique_lock<std::shared_mutex> lock(shard->gens_mu);
    auto it = shard->route.find(inner);
    if (it != shard->route.end() && it->second.batcher == batcher) {
      shard->route.erase(it);
    }
  }
  return scores;
}

int64_t StreamingService::StepAll() {
  int64_t points = 0;
  for (auto& shard : shards_) {
    std::vector<StreamingBatcher*> gens;
    {
      std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
      for (const auto& g : shard->gens) gens.push_back(g.get());
    }
    for (StreamingBatcher* g : gens) points += g->StepIfReady();
    if (options_.target_queue_wait_p95_ms > 0.0) AdaptShard(shard.get());
    if (gens.size() > 1) MaybeRetire(shard.get());
  }
  return points;
}

void StreamingService::Flush() {
  for (auto& shard : shards_) {
    std::vector<StreamingBatcher*> gens;
    {
      std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
      for (const auto& g : shard->gens) gens.push_back(g.get());
    }
    for (StreamingBatcher* g : gens) g->Flush();
  }
}

bool StreamingService::SwapModel(const core::CausalTad* model) {
  CAUSALTAD_CHECK(model != nullptr);
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return false;
  }
  for (auto& shard : shards_) {
    // Carry the shard's live (possibly adapted) deadline into the new
    // generation so a swap does not reset the controller's work.
    double delay = options_.batcher.max_delay_ms;
    {
      std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
      if (!shard->gens.empty()) delay = shard->gens.back()->max_delay_ms();
    }
    auto batcher = MakeBatcher(model, shard.get(), delay);
    std::unique_lock<std::shared_mutex> lock(shard->gens_mu);
    shard->gens.push_back(std::move(batcher));
  }
  model_.store(model, std::memory_order_release);
  model_swaps_.Inc();
  return true;
}

const core::CausalTad* StreamingService::current_model() const {
  return model_.load(std::memory_order_acquire);
}

void StreamingService::AdaptDeadlines() {
  if (options_.target_queue_wait_p95_ms <= 0.0) return;
  for (auto& shard : shards_) AdaptShard(shard.get());
}

void StreamingService::AdaptShard(Shard* shard) {
  std::lock_guard<std::mutex> adapt_lock(shard->adapt_mu);
  const double now = NowMs();
  if (now - shard->last_adapt_ms < options_.adapt_interval_ms) return;
  const util::LatencyHistogram* qw = shard->queue_wait->raw();
  const int64_t samples = qw->CountSince(shard->adapt_base);
  if (samples < options_.adapt_min_samples) return;  // window keeps growing
  const double p95 = qw->PercentileSince(shard->adapt_base, 95.0);
  shard->adapt_base = qw->TakeSnapshot();
  shard->last_adapt_ms = now;
  std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
  if (shard->gens.empty()) return;
  const double current = shard->gens.back()->max_delay_ms();
  // Multiplicative controller, at most a 2x move per interval: queue waits
  // above target shrink the deadline (admit sooner), waits comfortably
  // below it grow the deadline (fuller batches, better occupancy).
  const double ratio = std::clamp(
      options_.target_queue_wait_p95_ms / std::max(p95, 1e-6), 0.5, 2.0);
  const double next = std::clamp(current * ratio, options_.min_delay_ms,
                                 options_.max_delay_ms_cap);
  for (const auto& g : shard->gens) g->set_max_delay_ms(next);
}

void StreamingService::MaybeRetire(Shard* shard) {
  // Cheap shared-lock probe first: retirement is rare (only after a swap),
  // Push/Poll traffic should not stall behind an exclusive lock each pass.
  bool candidate = false;
  {
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    for (size_t i = 0; i + 1 < shard->gens.size(); ++i) {
      if (shard->gens[i]->tracked_sessions() == 0 &&
          shard->gens[i]->queued_points() == 0) {
        candidate = true;
        break;
      }
    }
  }
  if (!candidate) return;
  std::unique_lock<std::shared_mutex> lock(shard->gens_mu);
  for (size_t i = 0; i + 1 < shard->gens.size();) {
    StreamingBatcher* g = shard->gens[i].get();
    if (g->tracked_sessions() != 0 || g->queued_points() != 0) {
      ++i;
      continue;
    }
    // Route entries can outlive the batcher's own bookkeeping (End with
    // everything already polled forgets server-side without a final Poll);
    // sweep them so the map does not hold dangling batcher pointers.
    for (auto it = shard->route.begin(); it != shard->route.end();) {
      it = it->second.batcher == g ? shard->route.erase(it) : std::next(it);
    }
    shard->gens.erase(shard->gens.begin() + static_cast<int64_t>(i));
    generations_retired_.Inc();
  }
}

void StreamingService::Shutdown() {
  // Held for the whole body: a concurrent Shutdown must BLOCK until the
  // first caller has joined the pumps and flushed, not return early into
  // a still-draining (or mid-destruction) service.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  {
    // Close admission FIRST, before the pumps are joined and the final
    // flush runs: any Push already past its accepting_ check finishes its
    // enqueue before this exclusive lock is granted (so the flush below
    // scores it), and every Push after it returns kShutdown. Without the
    // barrier, a push landing between the pump join and the flush — or
    // after the flush — would be accepted and never scored.
    std::unique_lock<std::shared_mutex> accepting_lock(accepting_mu_);
    accepting_ = false;
  }
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      // Under the shard mutex, or the notify can land in the window
      // between a pump's predicate check and its wait and be lost,
      // stalling the join for a full idle_wait timeout.
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->cv.notify_all();
    }
    if (shard->pump.joinable()) shard->pump.join();
  }
  // Every point accepted before Shutdown gets its score.
  Flush();
  stop_time_ = std::chrono::steady_clock::now();
}

double StreamingService::shard_delay_ms(int shard) const {
  CAUSALTAD_CHECK_GE(shard, 0);
  CAUSALTAD_CHECK_LT(shard, static_cast<int>(shards_.size()));
  const Shard* s = shards_[static_cast<size_t>(shard)].get();
  std::shared_lock<std::shared_mutex> lock(s->gens_mu);
  if (s->gens.empty()) return options_.batcher.max_delay_ms;
  return s->gens.back()->max_delay_ms();
}

ServiceStats StreamingService::stats() const {
  ServiceStats stats;
  stats.sessions_begun = sessions_begun_.value();
  stats.points_accepted = points_accepted_.value();
  stats.rejected_session_full =
      rejected_session_full_.value();
  stats.rejected_shard_full =
      rejected_shard_full_.value();
  stats.model_swaps = model_swaps_.value();
  stats.generations_retired =
      generations_retired_.value();
  std::vector<const util::LatencyHistogram*> hists;
  std::vector<util::LatencyHistogram::Snapshot> bases;
  hists.reserve(shards_.size());
  bases.reserve(shards_.size());
  for (const auto& shard : shards_) {
    hists.push_back(shard->queue_wait->raw());
    bases.push_back(shard->stats_base);
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    stats.generations_live += static_cast<int64_t>(shard->gens.size());
    for (const auto& g : shard->gens) {
      const StreamingBatcher::Counters counters = g->counters();
      stats.steps += counters.steps;
      stats.points_scored += counters.points;
    }
  }
  if (stats.steps > 0) {
    stats.step_occupancy =
        static_cast<double>(stats.points_scored) /
        static_cast<double>(stats.steps * options_.batcher.max_batch_rows);
  }
  auto end = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (stop_time_ != std::chrono::steady_clock::time_point{}) {
      end = stop_time_;
    }
  }
  const double seconds =
      std::chrono::duration<double>(end - start_).count();
  if (seconds > 0.0) stats.points_per_sec = stats.points_scored / seconds;
  const int n = static_cast<int>(hists.size());
  stats.queue_wait_p50_ms = util::LatencyHistogram::MergedPercentileSince(
      hists.data(), bases.data(), n, 50.0);
  stats.queue_wait_p95_ms = util::LatencyHistogram::MergedPercentileSince(
      hists.data(), bases.data(), n, 95.0);
  stats.queue_wait_p99_ms = util::LatencyHistogram::MergedPercentileSince(
      hists.data(), bases.data(), n, 99.0);
  return stats;
}

int64_t StreamingService::queued_points() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    for (const auto& g : shard->gens) total += g->queued_points();
  }
  return total;
}

int64_t StreamingService::tracked_sessions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->gens_mu);
    for (const auto& g : shard->gens) total += g->tracked_sessions();
  }
  return total;
}

}  // namespace serve
}  // namespace causaltad
