#include "models/iboat.h"

#include <algorithm>
#include <limits>

#include "geo/geo.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace causaltad {
namespace models {
namespace {

constexpr uint32_t kMagic = 0x1B0A7000;
constexpr uint32_t kVersion = 1;

// Does `route` contain `window` as a contiguous sub-sequence?
bool ContainsWindow(const std::vector<roadnet::SegmentId>& route,
                    const std::vector<roadnet::SegmentId>& window) {
  if (window.empty() || window.size() > route.size()) return window.empty();
  return std::search(route.begin(), route.end(), window.begin(),
                     window.end()) != route.end();
}

/// iBOAT's adaptive-window scan (used by both batch and online scoring).
class AdaptiveWindowScorer : public OnlineScorer {
 public:
  AdaptiveWindowScorer(
      const std::vector<std::vector<roadnet::SegmentId>>* references,
      double support_threshold)
      : references_(references), threshold_(support_threshold) {}

  double Update(roadnet::SegmentId segment) override {
    ++num_points_;
    if (references_ == nullptr || references_->empty()) {
      // No evidence at all: everything looks anomalous.
      anomalous_mass_ += 1.0;
      return CurrentScore();
    }
    window_.push_back(segment);
    double support = Support();
    if (support < threshold_) {
      // Isolate: shrink the window to the newest point and re-test, as in
      // the iBOAT adaptive working window.
      window_.assign(1, segment);
      support = Support();
      anomalous_mass_ += 1.0 - support;
    }
    return CurrentScore();
  }

  double CurrentScore() const {
    return num_points_ == 0 ? 0.0 : anomalous_mass_ / num_points_;
  }

 private:
  double Support() const {
    int hits = 0;
    for (const auto& ref : *references_) {
      if (ContainsWindow(ref, window_)) ++hits;
    }
    return static_cast<double>(hits) / references_->size();
  }

  const std::vector<std::vector<roadnet::SegmentId>>* references_;
  double threshold_;
  std::vector<roadnet::SegmentId> window_;
  int64_t num_points_ = 0;
  double anomalous_mass_ = 0.0;
};

}  // namespace

Iboat::Iboat(const roadnet::RoadNetwork* network, const IboatConfig& config)
    : network_(network), config_(config) {
  CAUSALTAD_CHECK(network != nullptr);
}

void Iboat::Fit(const std::vector<traj::Trip>& trips,
                const FitOptions& options) {
  (void)options;  // deterministic; nothing stochastic to seed
  references_.clear();
  for (const traj::Trip& trip : trips) {
    references_[{trip.source_node, trip.dest_node}].push_back(
        trip.route.segments);
  }
}

const std::vector<std::vector<roadnet::SegmentId>>* Iboat::ReferencesFor(
    const PairKey& key) const {
  auto it = references_.find(key);
  if (it != references_.end() &&
      static_cast<int>(it->second.size()) >= config_.min_references) {
    return &it->second;
  }
  // Nearest indexed pair by endpoint great-circle distance (the paper's OOD
  // protocol for metric methods).
  const std::vector<std::vector<roadnet::SegmentId>>* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& [pair, routes] : references_) {
    const double d =
        geo::HaversineMeters(network_->node(pair.first).pos,
                             network_->node(key.first).pos) +
        geo::HaversineMeters(network_->node(pair.second).pos,
                             network_->node(key.second).pos);
    if (d < best_dist) {
      best_dist = d;
      best = &routes;
    }
  }
  return best;
}

double Iboat::Score(const traj::Trip& trip, int64_t prefix_len) const {
  const int64_t n = trip.route.size();
  if (prefix_len <= 0 || prefix_len > n) prefix_len = n;
  AdaptiveWindowScorer scorer(
      ReferencesFor({trip.source_node, trip.dest_node}),
      config_.support_threshold);
  double score = 0.0;
  for (int64_t i = 0; i < prefix_len; ++i) {
    score = scorer.Update(trip.route.segments[i]);
  }
  return score;
}

std::unique_ptr<OnlineScorer> Iboat::BeginTrip(const traj::Trip& trip) const {
  if (OnlineRescoringForced()) return TrajectoryScorer::BeginTrip(trip);
  // The adaptive working window IS the carried state — Score() itself
  // replays this session, so the incremental path is exact by construction.
  return std::make_unique<AdaptiveWindowScorer>(
      ReferencesFor({trip.source_node, trip.dest_node}),
      config_.support_threshold);
}

util::Status Iboat::Save(const std::string& path) const {
  util::BinaryWriter writer(path, kMagic, kVersion);
  if (!writer.ok()) return util::Status::IoError("cannot open " + path);
  writer.WriteU64(references_.size());
  for (const auto& [pair, routes] : references_) {
    writer.WriteI64(pair.first);
    writer.WriteI64(pair.second);
    writer.WriteU64(routes.size());
    for (const auto& route : routes) {
      writer.WriteInts(std::vector<int32_t>(route.begin(), route.end()));
    }
  }
  return writer.Close();
}

util::Status Iboat::Load(const std::string& path) {
  util::BinaryReader reader(path, kMagic, kVersion);
  if (!reader.ok()) return reader.status();
  std::map<PairKey, std::vector<std::vector<roadnet::SegmentId>>> loaded;
  const uint64_t num_pairs = reader.ReadU64();
  for (uint64_t i = 0; i < num_pairs && reader.ok(); ++i) {
    PairKey key;
    key.first = static_cast<roadnet::NodeId>(reader.ReadI64());
    key.second = static_cast<roadnet::NodeId>(reader.ReadI64());
    const uint64_t num_routes = reader.ReadU64();
    auto& routes = loaded[key];
    for (uint64_t r = 0; r < num_routes && reader.ok(); ++r) {
      const std::vector<int32_t> ids = reader.ReadInts();
      routes.emplace_back(ids.begin(), ids.end());
    }
  }
  if (!reader.ok()) return reader.status();
  references_ = std::move(loaded);
  return util::Status::Ok();
}

}  // namespace models
}  // namespace causaltad
