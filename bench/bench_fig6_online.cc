// Reproduces Fig. 6: online detection quality as a function of the observed
// ratio (fraction of the trajectory seen so far), on (a) the ID & Switch
// datasets of Xi'an and (b) the OOD & Switch datasets of Chengdu.
//
// Paper reference (Fig. 6): all curves rise with the observed ratio, flat at
// the start and steepest mid-trip (anomalies are mid-trajectory); CausalTAD
// dominates at every ratio and reaches decent quality by ratio 0.6, while
// baselines need 0.8-1.0.
//
// The 10-ratio sweep goes through ScoreSetAtRatios / ScoreCheckpoints: one
// incremental roll per trip (CausalTAD reads every ratio off one set of
// running prefix sums) instead of 10 independent re-scores.
//
// A second section measures the online serving throughput (points/sec) of
// three paths and writes it to BENCH_fig6.json ("fig6_throughput"):
//   * rescoring   — the reference RescoringOnlineScorer, which replays
//                   Score() on every update (O(prefix) taped work per
//                   point; forced via SetOnlineRescoringForced),
//   * incremental — the models' own BeginTrip sessions (carried GRU state,
//                   fused no-grad kernels; O(1) per point for the
//                   road-constrained decoders),
//   * batcher     — serve::StreamingBatcher, all trips advancing through
//                   one shared [B, hidden] state matrix (CausalTAD +
//                   TG-VAE).
// Every row records the max-abs diff of the incremental score sequence
// against Score(trip, k) for every k — the streaming parity bound.
//
// A third section ("fig6_service") measures serve::StreamingService — the
// production front-end over the batcher — in a 1-vs-N-shard, pump-on/off
// grid: points/sec, step occupancy, queue-wait p50/p95/p99, and the
// backpressure counters, with the same per-point parity bound.
//
// Environment knobs:
//   CAUSALTAD_BENCH_SCALE=smoke|default|full   experiment scale
//   CAUSALTAD_FIG6_METHODS=a,b,c               quality-panel method filter
//   CAUSALTAD_FIG6_SKIP_PANELS=1               skip the quality panels
//   CAUSALTAD_FIG6_SERVICE_SHARDS=N            sharded service configs (4)
//   CAUSALTAD_FIG6_JSON=<path>                 output path (BENCH_fig6.json)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "models/scorer.h"
#include "serve/service.h"
#include "serve/streaming.h"
#include "util/stopwatch.h"

namespace {

using causaltad::core::CausalTad;
using causaltad::core::CausalTadVariant;
using causaltad::core::ScoreVariant;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSetAtRatios;
using causaltad::eval::Subsample;
using causaltad::eval::TablePrinter;
using causaltad::models::SetOnlineRescoringForced;
using causaltad::models::TrajectoryScorer;
using causaltad::traj::Trip;

const std::vector<double> kRatios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9, 1.0};

std::vector<std::string> PanelMethods() {
  std::vector<std::string> methods = {"SAE", "VSAE", "GM-VSAE", "DeepTEA",
                                      "CausalTAD"};
  const char* env = std::getenv("CAUSALTAD_FIG6_METHODS");
  if (env == nullptr) return methods;
  std::vector<std::string> filtered;
  std::string list(env), item;
  for (size_t pos = 0; pos <= list.size(); ++pos) {
    if (pos == list.size() || list[pos] == ',') {
      if (!item.empty()) filtered.push_back(item);
      item.clear();
    } else {
      item += list[pos];
    }
  }
  return filtered.empty() ? methods : filtered;
}

void RunPanel(const causaltad::eval::CityExperimentConfig& config,
              const ExperimentData& data, causaltad::eval::Scale scale,
              bool ood, const char* title) {
  const auto& normal_set = ood ? data.ood_test : data.id_test;
  const auto& anomaly_set = ood ? data.ood_switch : data.id_switch;
  // Subsample to keep the 10-ratio sweep tractable on one core.
  const auto normals = Subsample(normal_set, 400, 31);
  const auto anomalies = Subsample(anomaly_set, 400, 32);

  std::printf("\n== Fig. 6%s — %s ==\n", ood ? "(b)" : "(a)", title);
  for (const char* metric : {"ROC-AUC", "PR-AUC"}) {
    std::printf("\n%s:\n", metric);
    std::vector<std::string> cols = {"Method"};
    for (const double r : kRatios) {
      cols.push_back("r=" + TablePrinter::Fmt(r, 1));
    }
    TablePrinter table(cols);
    table.PrintHeader();
    for (const std::string& name : PanelMethods()) {
      const auto scorer =
          causaltad::eval::FitOrLoad(name, data, config.name, scale);
      // All 10 ratios from one checkpointed pass per set.
      const auto normal_scores = ScoreSetAtRatios(*scorer, normals, kRatios);
      const auto anomaly_scores =
          ScoreSetAtRatios(*scorer, anomalies, kRatios);
      std::vector<std::string> cells = {name};
      for (size_t r = 0; r < kRatios.size(); ++r) {
        const auto result =
            EvaluateScores(normal_scores[r], anomaly_scores[r]);
        cells.push_back(TablePrinter::Fmt(
            std::string(metric) == "ROC-AUC" ? result.roc_auc
                                             : result.pr_auc));
      }
      table.PrintRow(cells);
    }
  }
}

// ---------------------------------------------------------------------------
// Online serving throughput: rescoring vs incremental vs StreamingBatcher.
// ---------------------------------------------------------------------------

struct ThroughputRow {
  std::string city;
  std::string method;
  int64_t trips = 0;
  int64_t points = 0;
  double rescoring_pps = 0.0;    // reference path points/sec
  double incremental_pps = 0.0;  // per-trip incremental sessions
  double batcher_pps = 0.0;      // StreamingBatcher (0 = not applicable)
  double speedup = 0.0;          // incremental / rescoring
  double max_abs_diff = 0.0;     // incremental Update vs Score(trip, k)
  double batcher_max_abs_diff = 0.0;
};

template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    causaltad::util::Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

// Feeds every point of every trip through per-trip BeginTrip sessions.
void DriveSessions(const TrajectoryScorer* scorer,
                   const std::vector<Trip>& trips,
                   std::vector<std::vector<double>>* scores_out) {
  for (size_t i = 0; i < trips.size(); ++i) {
    auto session = scorer->BeginTrip(trips[i]);
    std::vector<double>* scores =
        scores_out != nullptr ? &(*scores_out)[i] : nullptr;
    if (scores != nullptr) scores->clear();
    double score = 0.0;
    for (const auto segment : trips[i].route.segments) {
      score = session->Update(segment);
      if (scores != nullptr) scores->push_back(score);
    }
    if (scores == nullptr) {
      volatile double sink = score;
      (void)sink;
    }
  }
}

ThroughputRow MeasureOnline(const std::string& city,
                            const std::string& method,
                            const TrajectoryScorer* scorer,
                            const CausalTad* causal, ScoreVariant variant,
                            const std::vector<Trip>& trips) {
  ThroughputRow row;
  row.city = city;
  row.method = method;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  // Reference scores Score(trip, k) for every k — the parity ground truth.
  std::vector<std::vector<double>> reference(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    for (int64_t k = 1; k <= trips[i].route.size(); ++k) {
      reference[i].push_back(scorer->Score(trips[i], k));
    }
  }

  // Same protocol for all three paths (best of 3 warm reps), so the
  // published speedups compare like with like.
  constexpr int kReps = 3;
  SetOnlineRescoringForced(true);
  const double rescoring_s =
      BestOf(kReps, [&] { DriveSessions(scorer, trips, nullptr); });
  SetOnlineRescoringForced(false);
  std::vector<std::vector<double>> incremental(trips.size());
  const double incremental_s =
      BestOf(kReps, [&] { DriveSessions(scorer, trips, &incremental); });
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size(); ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(incremental[i][k] - reference[i][k]));
    }
  }
  row.rescoring_pps = row.points / std::max(rescoring_s, 1e-12);
  row.incremental_pps = row.points / std::max(incremental_s, 1e-12);
  row.speedup = row.incremental_pps / std::max(row.rescoring_pps, 1e-12);

  if (causal != nullptr) {
    // StreamingBatcher: all trips live at once, one shared [B, hidden]
    // state; every Step advances one point of every active session.
    std::vector<std::vector<double>> streamed(trips.size());
    const double batcher_s = BestOf(kReps, [&] {
      causaltad::serve::StreamingBatcher batcher(causal, variant,
                                                 causal->lambda());
      std::vector<causaltad::serve::StreamingSession> sessions;
      sessions.reserve(trips.size());
      for (const Trip& trip : trips) sessions.push_back(batcher.Begin(trip));
      for (size_t i = 0; i < trips.size(); ++i) {
        for (const auto segment : trips[i].route.segments) {
          sessions[i].Push(segment);
        }
        sessions[i].End();
      }
      batcher.Flush();
      for (size_t i = 0; i < trips.size(); ++i) {
        streamed[i] = sessions[i].Poll();
      }
    });
    row.batcher_pps = row.points / std::max(batcher_s, 1e-12);
    for (size_t i = 0; i < trips.size(); ++i) {
      for (size_t k = 0; k < reference[i].size(); ++k) {
        row.batcher_max_abs_diff =
            std::max(row.batcher_max_abs_diff,
                     std::abs(streamed[i][k] - reference[i][k]));
      }
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// StreamingService: sharded + pumped serving front-end (1 vs N shards,
// pump on/off), with backpressure engaged by the feed loop.
// ---------------------------------------------------------------------------

struct ServiceRow {
  std::string city;
  int shards = 1;
  bool pump = false;
  int64_t trips = 0;
  int64_t points = 0;
  double pps = 0.0;
  double occupancy = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t rejected_session_full = 0;
  int64_t rejected_shard_full = 0;
  double max_abs_diff = 0.0;
};

ServiceRow MeasureService(const std::string& city, const CausalTad* causal,
                          const std::vector<Trip>& trips,
                          const std::vector<std::vector<double>>& reference,
                          int shards, bool pump) {
  ServiceRow row;
  row.city = city;
  row.shards = shards;
  row.pump = pump;
  row.trips = static_cast<int64_t>(trips.size());
  for (const Trip& trip : trips) row.points += trip.route.size();

  causaltad::serve::ServiceOptions options;
  options.num_shards = shards;
  options.pump = pump;
  options.max_session_pending = 8;  // tight enough that bursts backpressure
  options.max_shard_queued = 1 << 14;
  options.batcher.max_batch_rows = 64;
  options.batcher.max_delay_ms = 0.1;

  constexpr int kReps = 3;
  std::vector<std::vector<double>> streamed(trips.size());
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    causaltad::util::Stopwatch watch;
    causaltad::serve::StreamingService service(causal, options);
    std::vector<causaltad::serve::SessionId> ids;
    ids.reserve(trips.size());
    for (const Trip& trip : trips) ids.push_back(service.Begin(trip));
    // Round-robin feed, one point per session per sweep; a rejected push
    // retries next sweep while the pump (or the inline StepAll) drains.
    std::vector<size_t> fed(trips.size(), 0);
    bool done = false;
    while (!done) {
      done = true;
      int64_t accepted = 0;
      for (size_t i = 0; i < trips.size(); ++i) {
        const auto& segments = trips[i].route.segments;
        if (fed[i] >= segments.size()) continue;
        if (service.Push(ids[i], segments[fed[i]]) ==
            causaltad::serve::PushStatus::kAccepted) {
          ++accepted;
          if (++fed[i] == segments.size()) service.End(ids[i]);
        }
        done = false;
      }
      if (!pump) {
        service.StepAll();
      } else if (accepted == 0 && !done) {
        // Fully backpressured: give the pump threads the core.
        std::this_thread::yield();
      }
    }
    service.Shutdown();
    const double elapsed = watch.ElapsedSeconds();
    // Stats ride with the rep whose elapsed becomes the published best,
    // so every JSON row is internally consistent (pps, occupancy, queue
    // waits, and rejections all describe the same run).
    if (rep == 0 || elapsed < best) {
      best = elapsed;
      const causaltad::serve::ServiceStats stats = service.stats();
      row.occupancy = stats.step_occupancy;
      row.p50_ms = stats.queue_wait_p50_ms;
      row.p95_ms = stats.queue_wait_p95_ms;
      row.p99_ms = stats.queue_wait_p99_ms;
      row.rejected_session_full = stats.rejected_session_full;
      row.rejected_shard_full = stats.rejected_shard_full;
      for (size_t i = 0; i < trips.size(); ++i) {
        streamed[i] = service.Poll(ids[i]);
      }
    }
  }
  row.pps = row.points / std::max(best, 1e-12);
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t k = 0; k < reference[i].size(); ++k) {
      row.max_abs_diff = std::max(
          row.max_abs_diff, std::abs(streamed[i][k] - reference[i][k]));
    }
  }
  return row;
}

void WriteJson(const std::string& path, causaltad::eval::Scale scale,
               const std::vector<ThroughputRow>& rows,
               const std::vector<ServiceRow>& service_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figure\": \"fig6\",\n  \"scale\": \"%s\",\n",
               causaltad::eval::ScaleName(scale));
  std::fprintf(f, "  \"units\": \"points_per_sec\",\n");
  std::fprintf(f, "  \"fig6_throughput\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"method\": \"%s\", \"trips\": %lld, "
        "\"points\": %lld, \"rescoring_pps\": %.0f, "
        "\"incremental_pps\": %.0f, \"batcher_pps\": %.0f, "
        "\"speedup\": %.2f, \"max_abs_diff\": %.3g, "
        "\"batcher_max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.method.c_str(), static_cast<long long>(r.trips),
        static_cast<long long>(r.points), r.rescoring_pps, r.incremental_pps,
        r.batcher_pps, r.speedup, r.max_abs_diff, r.batcher_max_abs_diff,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fig6_service\": [\n");
  for (size_t i = 0; i < service_rows.size(); ++i) {
    const ServiceRow& r = service_rows[i];
    std::fprintf(
        f,
        "    {\"city\": \"%s\", \"shards\": %d, \"pump\": %s, "
        "\"trips\": %lld, \"points\": %lld, \"pps\": %.0f, "
        "\"occupancy\": %.3f, \"queue_wait_p50_ms\": %.4f, "
        "\"queue_wait_p95_ms\": %.4f, \"queue_wait_p99_ms\": %.4f, "
        "\"rejected_session_full\": %lld, \"rejected_shard_full\": %lld, "
        "\"max_abs_diff\": %.3g}%s\n",
        r.city.c_str(), r.shards, r.pump ? "true" : "false",
        static_cast<long long>(r.trips), static_cast<long long>(r.points),
        r.pps, r.occupancy, r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<long long>(r.rejected_session_full),
        static_cast<long long>(r.rejected_shard_full), r.max_abs_diff,
        i + 1 < service_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  struct Panel {
    causaltad::eval::CityExperimentConfig config;
    bool ood;
    const char* title;
  };
  const std::vector<Panel> panels = {
      {causaltad::eval::XianConfig(scale), false,
       "ID & Switch, Xi'an (observed-ratio sweep)"},
      {causaltad::eval::ChengduConfig(scale), true,
       "OOD & Switch, Chengdu (observed-ratio sweep)"}};

  std::vector<ThroughputRow> rows;
  std::vector<ServiceRow> service_rows;
  TablePrinter table({"City", "Method", "rescore p/s", "increm p/s",
                      "batcher p/s", "speedup", "max diff"});
  bool printed_header = false;
  int sharded = 4;
  if (const char* env = std::getenv("CAUSALTAD_FIG6_SERVICE_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) sharded = v;
  }
  for (const Panel& panel : panels) {
    const ExperimentData data =
        causaltad::eval::BuildExperiment(panel.config);
    if (!EnvFlag("CAUSALTAD_FIG6_SKIP_PANELS")) {
      RunPanel(panel.config, data, scale, panel.ood, panel.title);
    }

    // Online serving throughput, both cities. GM-VSAE stands in for the
    // RnnVae family (carried encoder, O(prefix) fused re-decode); TG-VAE /
    // RP-VAE / CausalTAD carry O(1)-per-point state.
    const auto causal_owner = causaltad::eval::FitOrLoad(
        causaltad::eval::kCausalTadName, data, panel.config.name, scale);
    const auto* causal = dynamic_cast<const CausalTad*>(causal_owner.get());
    const auto gmvsae = causaltad::eval::FitOrLoad(
        "GM-VSAE", data, panel.config.name, scale);
    const CausalTadVariant tg_only(causal, ScoreVariant::kLikelihoodOnly);
    const CausalTadVariant rp_only(causal, ScoreVariant::kScalingOnly);
    const auto online_trips = Subsample(data.id_test, 30, 42);

    if (!printed_header) {
      std::printf("\n== Fig. 6 — online serving throughput (points/sec; "
                  "rescoring vs incremental vs StreamingBatcher) ==\n\n");
      table.PrintHeader();
      printed_header = true;
    }
    struct Entry {
      std::string name;
      const TrajectoryScorer* scorer;
      const CausalTad* batched;
      ScoreVariant variant;
    };
    const std::vector<Entry> entries = {
        {"GM-VSAE", gmvsae.get(), nullptr, ScoreVariant::kFull},
        {"TG-VAE", &tg_only, causal, ScoreVariant::kLikelihoodOnly},
        {"RP-VAE", &rp_only, causal, ScoreVariant::kScalingOnly},
        {"CausalTAD", causal, causal, ScoreVariant::kFull}};
    for (const Entry& entry : entries) {
      rows.push_back(MeasureOnline(panel.config.name, entry.name,
                                   entry.scorer, entry.batched, entry.variant,
                                   online_trips));
      const ThroughputRow& r = rows.back();
      table.PrintRow({r.city, r.method, TablePrinter::Fmt(r.rescoring_pps, 0),
                      TablePrinter::Fmt(r.incremental_pps, 0),
                      r.batcher_pps > 0 ? TablePrinter::Fmt(r.batcher_pps, 0)
                                        : std::string("-"),
                      TablePrinter::Fmt(r.speedup, 1) + "x",
                      TablePrinter::Fmt(
                          std::max(r.max_abs_diff, r.batcher_max_abs_diff),
                          7)});
    }

    // StreamingService grid (CausalTAD full score): 1 vs N shards, pump
    // on/off, fed with backpressure engaged. Per-point reference scores
    // come from one checkpointed roll per trip.
    const auto service_trips = Subsample(data.id_test, 120, 43);
    std::vector<std::vector<int64_t>> checkpoints(service_trips.size());
    for (size_t i = 0; i < service_trips.size(); ++i) {
      for (int64_t k = 1; k <= service_trips[i].route.size(); ++k) {
        checkpoints[i].push_back(k);
      }
    }
    const auto service_reference =
        causal->ScoreCheckpoints(service_trips, checkpoints);
    std::vector<std::pair<int, bool>> grid = {{1, false}, {1, true}};
    if (sharded > 1) {
      grid.emplace_back(sharded, false);
      grid.emplace_back(sharded, true);
    }
    for (const auto& [shards, pump] : grid) {
      service_rows.push_back(MeasureService(panel.config.name, causal,
                                            service_trips, service_reference,
                                            shards, pump));
    }
  }
  std::printf("\n== Fig. 6 — StreamingService (sharded + pumped front-end) "
              "==\n\n");
  TablePrinter service_table({"City", "Shards", "Pump", "p/s", "occup",
                              "p50 ms", "p95 ms", "p99 ms", "max diff"});
  service_table.PrintHeader();
  for (const ServiceRow& r : service_rows) {
    service_table.PrintRow(
        {r.city, TablePrinter::Fmt(static_cast<double>(r.shards), 0),
         r.pump ? "on" : "off", TablePrinter::Fmt(r.pps, 0),
         TablePrinter::Fmt(r.occupancy, 2), TablePrinter::Fmt(r.p50_ms, 3),
         TablePrinter::Fmt(r.p95_ms, 3), TablePrinter::Fmt(r.p99_ms, 3),
         TablePrinter::Fmt(r.max_abs_diff, 7)});
  }
  std::printf("\n");
  const char* json_env = std::getenv("CAUSALTAD_FIG6_JSON");
  WriteJson(json_env != nullptr ? json_env : "BENCH_fig6.json", scale, rows,
            service_rows);
  return 0;
}
