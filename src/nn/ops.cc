#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/fastmath.h"
#include "util/logging.h"

namespace causaltad {
namespace nn {
namespace {

using internal::MakeOp;

// True when b should be broadcast across a's rows: b is [1, a.cols] (or a
// has rank 2 and b is a 1-element scalar).
enum class BroadcastMode { kNone, kRow, kScalar };

BroadcastMode BroadcastOf(const Tensor& a, const Tensor& b) {
  if (a.SameShape(b)) return BroadcastMode::kNone;
  if (b.numel() == 1) return BroadcastMode::kScalar;
  if (a.ndim() == 2 && b.ndim() == 2 && b.dim(0) == 1 &&
      b.dim(1) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  if (a.ndim() == 2 && b.ndim() == 1 && b.dim(0) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  CAUSALTAD_CHECK(false) << "incompatible shapes for broadcast op";
  return BroadcastMode::kNone;
}

// Accumulates `g` (shaped like the op output / lhs) into rhs grad under the
// given broadcast mode.
void AccumulateBroadcastGrad(const Tensor& g, BroadcastMode mode, float sign,
                             Tensor* db) {
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < g.numel(); ++i) (*db)[i] += sign * g[i];
  } else if (mode == BroadcastMode::kScalar) {
    float total = 0.0f;
    for (int64_t i = 0; i < g.numel(); ++i) total += g[i];
    (*db)[0] += sign * total;
  } else {
    const int64_t rows = g.dim(0), cols = g.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) (*db)[c] += sign * gr[c];
    }
  }
}

Var AddLike(const Var& a, const Var& b, float sign_b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  const BroadcastMode mode = BroadcastOf(ta, tb);
  Tensor out = ta;
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += sign_b * tb[i];
  } else if (mode == BroadcastMode::kScalar) {
    const float v = sign_b * tb[0];
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += v;
  } else {
    const int64_t rows = ta.dim(0), cols = ta.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      float* orow = out.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += sign_b * tb[c];
    }
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, mode, sign_b]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        AccumulateBroadcastGrad(self->grad, mode, sign_b, &nb->grad);
      }
    };
  }
  return result;
}

// out = f(a) elementwise with derivative expressed from (input, output).
template <typename Fwd, typename Bwd>
Var ElementwiseUnary(const Var& a, Fwd fwd, Bwd bwd_factor) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, bwd_factor]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] +=
            self->grad[i] * bwd_factor(na->value[i], self->value[i]);
      }
    };
  }
  return result;
}

void SoftmaxRow(const float* logits, int64_t n, float* out) {
  float max_v = logits[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, logits[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = fastmath::Exp(logits[i] - max_v);
    total += out[i];
  }
  const float inv = 1.0f / total;
  for (int64_t i = 0; i < n; ++i) out[i] *= inv;
}

}  // namespace

namespace internal {

void PackTranspose(const float* src, int64_t r, int64_t c, float* dst) {
  for (int64_t i = 0; i < r; ++i) {
    const float* row = src + i * c;
    for (int64_t j = 0; j < c; ++j) dst[j * r + i] = row[j];
  }
}

float DotUnrolled(const float* a, const float* b, int64_t k) {
  // Eight independent accumulator lanes: the fixed-width inner loop has no
  // cross-iteration dependence, so the compiler turns it into one SIMD FMA
  // per 8 floats (a plain `acc +=` reduction cannot be vectorized without
  // reassociation).
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t i = 0;
  for (; i + 8 <= k; i += 8) {
    for (int l = 0; l < 8; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  float acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < k; ++i) acc += a[i] * b[i];
  return acc;
}

void MatMulPacked(const float* a, const float* b, float* out, int64_t m,
                  int64_t k, int64_t n, bool accumulate) {
  // Packing B transposed costs one extra pass over B, which only pays for
  // itself when amortized over enough output rows. Small m (the per-step
  // training path works on single rows) streams B row-major instead.
  if (m < 4) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      if (!accumulate) std::fill(orow, orow + n, 0.0f);
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
    return;
  }
  ArenaScope scope;
  float* bt = ArenaAlloc(k * n);
  PackTranspose(b, k, n, bt);
  // 2x4 register-blocked kernel over the packed operands: each pass of the
  // 8-wide lane loop feeds eight accumulator tiles from two a-rows and four
  // bt-rows, so every load is shared by 2-4 FMAs. Larger tiles spill.
  const auto emit = [accumulate](float* slot, float dot) {
    *slot = accumulate ? *slot + dot : dot;
  };
  int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = bt + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float l00[8] = {0}, l01[8] = {0}, l02[8] = {0}, l03[8] = {0};
      float l10[8] = {0}, l11[8] = {0}, l12[8] = {0}, l13[8] = {0};
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        for (int l = 0; l < 8; ++l) {
          const float av0 = a0[p + l], av1 = a1[p + l];
          const float bv0 = b0[p + l], bv1 = b1[p + l];
          const float bv2 = b2[p + l], bv3 = b3[p + l];
          l00[l] += av0 * bv0;
          l01[l] += av0 * bv1;
          l02[l] += av0 * bv2;
          l03[l] += av0 * bv3;
          l10[l] += av1 * bv0;
          l11[l] += av1 * bv1;
          l12[l] += av1 * bv2;
          l13[l] += av1 * bv3;
        }
      }
      float s[2][4] = {};
      for (int l = 0; l < 8; ++l) {
        s[0][0] += l00[l];
        s[0][1] += l01[l];
        s[0][2] += l02[l];
        s[0][3] += l03[l];
        s[1][0] += l10[l];
        s[1][1] += l11[l];
        s[1][2] += l12[l];
        s[1][3] += l13[l];
      }
      for (; p < k; ++p) {
        s[0][0] += a0[p] * b0[p];
        s[0][1] += a0[p] * b1[p];
        s[0][2] += a0[p] * b2[p];
        s[0][3] += a0[p] * b3[p];
        s[1][0] += a1[p] * b0[p];
        s[1][1] += a1[p] * b1[p];
        s[1][2] += a1[p] * b2[p];
        s[1][3] += a1[p] * b3[p];
      }
      for (int bi = 0; bi < 2; ++bi) {
        for (int bj = 0; bj < 4; ++bj) {
          emit(out + (i + bi) * n + j + bj, s[bi][bj]);
        }
      }
    }
    for (; j < n; ++j) {
      emit(out + i * n + j, DotUnrolled(a0, bt + j * k, k));
      emit(out + (i + 1) * n + j, DotUnrolled(a1, bt + j * k, k));
    }
  }
  for (; i < m; ++i) {
    const float* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      emit(out + i * n + j, DotUnrolled(arow, bt + j * k, k));
    }
  }
}

float SoftmaxNllRow(const float* row, int64_t n, int64_t target) {
  float max_v = row[0];
  for (int64_t j = 1; j < n; ++j) max_v = std::max(max_v, row[j]);
  float total = 0.0f;
  for (int64_t j = 0; j < n; ++j) total += fastmath::Exp(row[j] - max_v);
  const float p = std::max(fastmath::Exp(row[target] - max_v) / total, 1e-12f);
  return -std::log(p);
}

float KlStandardNormalRow(const float* mu, const float* lv, int64_t n) {
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    total += mu[i] * mu[i] + fastmath::Exp(lv[i]) - 1.0f - lv[i];
  }
  return 0.5f * total;
}

}  // namespace internal

Var Constant(Tensor value) { return Var(std::move(value), false); }

Var Add(const Var& a, const Var& b) { return AddLike(a, b, 1.0f); }
Var Sub(const Var& a, const Var& b) { return AddLike(a, b, -1.0f); }

Var Mul(const Var& a, const Var& b) {
  CAUSALTAD_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= b.value()[i];

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i] * nb->value[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          nb->grad[i] += self->grad[i] * na->value[i];
        }
      }
    };
  }
  return result;
}

Var ScalarMul(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, scalar]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i] * scalar;
      }
    };
  }
  return result;
}

Var ScalarAdd(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i];
      }
    };
  }
  return result;
}

Var MatMul(const Var& a, const Var& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  CAUSALTAD_CHECK_EQ(ta.ndim(), 2);
  CAUSALTAD_CHECK_EQ(tb.ndim(), 2);
  CAUSALTAD_CHECK_EQ(ta.dim(1), tb.dim(0));
  const int64_t m = ta.dim(0), k = ta.dim(1), n = tb.dim(1);
  Tensor out({m, n});
  internal::MatMulPacked(ta.data(), tb.data(), out.data(), m, k, n);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, m, k, n]() {
      const Tensor& g = self->grad;
      if (na->requires_grad) {
        na->EnsureGrad();
        // dA += G · Bᵀ → dA[i,p] += Σ_j G[i,j]·B[p,j]; rows of B are
        // already contiguous, so the unrolled dot kernel applies directly.
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g.data() + i * n;
          float* darow = na->grad.data() + i * k;
          for (int64_t p = 0; p < k; ++p) {
            darow[p] +=
                internal::DotUnrolled(grow, nb->value.data() + p * n, n);
          }
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        // dB += Aᵀ · G → dB[p,j] += Σ_i A[i,p]·G[i,j]. Pack both operands
        // transposed so each output element is one contiguous dot over i.
        internal::ArenaScope scope;
        float* at = internal::ArenaAlloc(m * k);
        float* gt = internal::ArenaAlloc(m * n);
        internal::PackTranspose(na->value.data(), m, k, at);
        internal::PackTranspose(g.data(), m, n, gt);
        for (int64_t p = 0; p < k; ++p) {
          float* dbrow = nb->grad.data() + p * n;
          for (int64_t j = 0; j < n; ++j) {
            dbrow[j] += internal::DotUnrolled(at + p * m, gt + j * m, m);
          }
        }
      }
    };
  }
  return result;
}

Var Affine(const Var& x, const Var& w, const Var& b) {
  Var y = MatMul(x, w);
  if (!b.defined()) return y;
  return Add(y, b);
}

Var Tanh(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return fastmath::Tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return fastmath::Sigmoid(v); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Exp(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return fastmath::Exp(v); },
      [](float, float y) { return y; });
}

Var Neg(const Var& a) { return ScalarMul(a, -1.0f); }

Var Sum(const Var& a) {
  float total = 0.0f;
  for (int64_t i = 0; i < a.value().numel(); ++i) total += a.value()[i];
  Tensor out({1, 1});
  out[0] = total;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t i = 0; i < na->grad.numel(); ++i) na->grad[i] += g;
    };
  }
  return result;
}

Var Mean(const Var& a) {
  return ScalarMul(Sum(a), 1.0f / static_cast<float>(a.value().numel()));
}

Var ConcatRows(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t cols = parts[0].value().dim(1);
  int64_t rows = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(1), cols);
    rows += p.value().dim(0);
  }
  Tensor out({rows, cols});
  int64_t offset = 0;
  for (const Var& p : parts) {
    std::copy(p.value().data(), p.value().data() + p.value().numel(),
              out.data() + offset);
    offset += p.value().numel();
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes]() {
      int64_t offset = 0;
      for (Node* n : nodes) {
        const int64_t count = n->value.numel();
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t i = 0; i < count; ++i) {
            n->grad[i] += self->grad[offset + i];
          }
        }
        offset += count;
      }
    };
  }
  return result;
}

Var ConcatCols(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t rows = parts[0].value().dim(0);
  int64_t cols = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(0), rows);
    cols += p.value().dim(1);
  }
  Tensor out({rows, cols});
  int64_t col_offset = 0;
  for (const Var& p : parts) {
    const int64_t pc = p.value().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(p.value().data() + r * pc, p.value().data() + (r + 1) * pc,
                out.data() + r * cols + col_offset);
    }
    col_offset += pc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes, rows, cols]() {
      int64_t col_offset = 0;
      for (Node* n : nodes) {
        const int64_t pc = n->value.dim(1);
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t c = 0; c < pc; ++c) {
              n->grad[r * pc + c] += self->grad[r * cols + col_offset + c];
            }
          }
        }
        col_offset += pc;
      }
    };
  }
  return result;
}

Var GatherRows(const Var& table, std::span<const int32_t> ids) {
  const Tensor& t = table.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t d = t.dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    CAUSALTAD_DCHECK(ids[i] >= 0 && ids[i] < t.dim(0));
    std::copy(t.data() + ids[i] * d, t.data() + (ids[i] + 1) * d,
              out.data() + static_cast<int64_t>(i) * d);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {table}, &slot, &self);
  if (slot) {
    Node* nt = table.node().get();
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nt, ids_copy, d]() {
      nt->EnsureGrad();
      for (size_t i = 0; i < ids_copy.size(); ++i) {
        const float* g = self->grad.data() + static_cast<int64_t>(i) * d;
        float* dst = nt->grad.data() + ids_copy[i] * d;
        for (int64_t c = 0; c < d; ++c) dst[c] += g[c];
      }
    };
  }
  return result;
}

Var Softmax(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(t.data() + r * cols, cols, out.data() + r * cols);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, rows, cols]() {
      na->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self->value.data() + r * cols;
        const float* g = self->grad.data() + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += y[c] * g[c];
        float* da = na->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) da[c] += y[c] * (g[c] - dot);
      }
    };
  }
  return result;
}

Var SoftmaxCrossEntropy(const Var& logits, std::span<const int32_t> targets) {
  const Tensor& t = logits.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  CAUSALTAD_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));

  // Store probabilities for the backward pass.
  auto probs = std::make_shared<Tensor>(Tensor({rows, cols}));
  float loss = 0.0f;
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(t.data() + r * cols, cols, probs->data() + r * cols);
    const int32_t target = targets[r];
    CAUSALTAD_DCHECK(target >= 0 && target < cols);
    const float p = std::max((*probs)[r * cols + target], 1e-12f);
    loss -= std::log(p);
  }
  Tensor out({1, 1});
  out[0] = loss;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {logits}, &slot, &self);
  if (slot) {
    Node* nl = logits.node().get();
    std::vector<int32_t> tgt(targets.begin(), targets.end());
    *slot = [self, nl, probs, tgt, rows, cols]() {
      nl->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t r = 0; r < rows; ++r) {
        const float* p = probs->data() + r * cols;
        float* dl = nl->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) dl[c] += g * p[c];
        dl[tgt[r]] -= g;
      }
    };
  }
  return result;
}

Var GatherColsDot(const Var& h, const Var& w, const Var& b,
                  std::span<const int32_t> ids) {
  const Tensor& th = h.value();
  const Tensor& tw = w.value();
  CAUSALTAD_CHECK_EQ(th.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(0), 1);
  CAUSALTAD_CHECK_EQ(tw.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(1), tw.dim(0));
  const int64_t d = th.dim(1);
  const int64_t big_c = tw.dim(1);
  const int64_t k = static_cast<int64_t>(ids.size());
  Tensor out({1, k});
  for (int64_t j = 0; j < k; ++j) {
    const int32_t col = ids[j];
    CAUSALTAD_DCHECK(col >= 0 && col < big_c);
    float acc = b.defined() ? b.value()[col] : 0.0f;
    const float* hv = th.data();
    for (int64_t i = 0; i < d; ++i) acc += hv[i] * tw.data()[i * big_c + col];
    out[j] = acc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {h, w, b}, &slot, &self);
  if (slot) {
    Node* nh = h.node().get();
    Node* nw = w.node().get();
    Node* nb = b.defined() ? b.node().get() : nullptr;
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nh, nw, nb, ids_copy, d, big_c]() {
      const Tensor& g = self->grad;
      if (nh->requires_grad) {
        nh->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nh->grad[i] += gj * nw->value[i * big_c + col];
          }
        }
      }
      if (nw->requires_grad) {
        nw->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nw->grad[i * big_c + col] += gj * nh->value[i];
          }
        }
      }
      if (nb != nullptr && nb->requires_grad) {
        nb->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          nb->grad[ids_copy[j]] += g[static_cast<int64_t>(j)];
        }
      }
    };
  }
  return result;
}

Var KlStandardNormal(const Var& mu, const Var& logvar) {
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  float total = 0.0f;
  for (int64_t i = 0; i < tm.numel(); ++i) {
    total += tm[i] * tm[i] + fastmath::Exp(tv[i]) - 1.0f - tv[i];
  }
  Tensor out({1, 1});
  out[0] = 0.5f * total;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    *slot = [self, nm, nv]() {
      const float g = self->grad[0];
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < nm->grad.numel(); ++i) {
          nm->grad[i] += g * nm->value[i];
        }
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < nv->grad.numel(); ++i) {
          nv->grad[i] += g * 0.5f * (fastmath::Exp(nv->value[i]) - 1.0f);
        }
      }
    };
  }
  return result;
}

Var Reparameterize(const Var& mu, const Var& logvar, util::Rng* rng) {
  CAUSALTAD_CHECK(rng != nullptr);
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  auto eps = std::make_shared<Tensor>(tm.shape());
  Tensor out = tm;
  for (int64_t i = 0; i < out.numel(); ++i) {
    (*eps)[i] = static_cast<float>(rng->Gaussian());
    out[i] += std::exp(0.5f * tv[i]) * (*eps)[i];
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    *slot = [self, nm, nv, eps]() {
      const Tensor& g = self->grad;
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) nm->grad[i] += g[i];
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) {
          nv->grad[i] +=
              g[i] * 0.5f * std::exp(0.5f * nv->value[i]) * (*eps)[i];
        }
      }
    };
  }
  return result;
}

Var LogSumExpRow(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  CAUSALTAD_CHECK_EQ(t.dim(0), 1);
  const int64_t n = t.dim(1);
  float max_v = t[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, t[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) total += fastmath::Exp(t[i] - max_v);
  Tensor out({1, 1});
  out[0] = max_v + std::log(total);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, n]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      const float lse = self->value[0];
      for (int64_t i = 0; i < n; ++i) {
        na->grad[i] += g * fastmath::Exp(na->value[i] - lse);
      }
    };
  }
  return result;
}

}  // namespace nn
}  // namespace causaltad
