#include "models/scorer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

namespace causaltad {
namespace models {
namespace {

bool RescoringDefault() {
  const char* env = std::getenv("CAUSALTAD_ONLINE_RESCORE");
  return env != nullptr && std::string_view(env) == "1";
}

std::atomic<bool> force_rescoring{RescoringDefault()};

}  // namespace

bool OnlineRescoringForced() {
  return force_rescoring.load(std::memory_order_relaxed);
}

void SetOnlineRescoringForced(bool forced) {
  force_rescoring.store(forced, std::memory_order_relaxed);
}

std::vector<std::vector<int64_t>> LengthSortedBatches(
    const std::vector<traj::Trip>& trips, int64_t batch_size,
    util::Rng* rng) {
  const int64_t n = static_cast<int64_t>(trips.size());
  const int64_t bs = std::max<int64_t>(1, batch_size);
  std::vector<int64_t> order = rng->Permutation(n);
  std::stable_sort(order.begin(), order.end(),
                   [&trips](int64_t a, int64_t b) {
                     return trips[a].route.size() > trips[b].route.size();
                   });
  const int64_t num_batches = (n + bs - 1) / bs;
  std::vector<std::vector<int64_t>> batches;
  batches.reserve(num_batches);
  for (const int64_t b : rng->Permutation(num_batches)) {
    const int64_t begin = b * bs;
    const int64_t end = std::min(n, begin + bs);
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

namespace {

/// Fallback online scorer: replays the growing prefix through Score() —
/// O(prefix) work per update, the reference path the incremental sessions
/// are tested against. The trip (with its full planned route, whose
/// endpoints are the SD context models may read even for short prefixes)
/// is copied exactly once at BeginTrip; each update just bumps the scored
/// prefix length instead of rebuilding a Trip. A fed segment that deviates
/// from the planned route overwrites the route from that point on, so live
/// detours are scored as observed.
class RescoringOnlineScorer : public OnlineScorer {
 public:
  RescoringOnlineScorer(const TrajectoryScorer* scorer, traj::Trip trip)
      : scorer_(scorer), trip_(std::move(trip)) {}

  double Update(roadnet::SegmentId segment) override {
    const int64_t k = prefix_len_++;
    if (k < trip_.route.size()) {
      trip_.route.segments[k] = segment;
    } else {
      trip_.route.segments.push_back(segment);
    }
    return scorer_->Score(trip_, prefix_len_);
  }

 private:
  const TrajectoryScorer* scorer_;
  traj::Trip trip_;
  int64_t prefix_len_ = 0;
};

}  // namespace

std::unique_ptr<OnlineScorer> TrajectoryScorer::BeginTrip(
    const traj::Trip& trip) const {
  return std::make_unique<RescoringOnlineScorer>(this, trip);
}

std::vector<std::vector<double>> TrajectoryScorer::ScoreCheckpoints(
    std::span<const traj::Trip> trips,
    std::span<const std::vector<int64_t>> checkpoints) const {
  std::vector<std::vector<double>> out(trips.size());
  // Uniform checkpoint counts (a ratio sweep — the common case): one
  // ScoreBatch per checkpoint column over the original trip array, no Trip
  // copies at all.
  const size_t cols = checkpoints.empty() ? 0 : checkpoints[0].size();
  bool uniform = checkpoints.size() == trips.size();
  for (const auto& ks : checkpoints) uniform &= ks.size() == cols;
  if (uniform) {
    for (size_t i = 0; i < trips.size(); ++i) out[i].resize(cols);
    std::vector<int64_t> prefixes(trips.size());
    for (size_t j = 0; j < cols; ++j) {
      for (size_t i = 0; i < trips.size(); ++i) {
        prefixes[i] = checkpoints[i][j];
      }
      const std::vector<double> column = ScoreBatch(trips, prefixes);
      for (size_t i = 0; i < trips.size(); ++i) out[i][j] = column[i];
    }
    return out;
  }
  // Ragged checkpoint lists: flatten every (trip, checkpoint) pair into one
  // ScoreBatch call (costs one Trip copy per pair).
  std::vector<traj::Trip> flat_trips;
  std::vector<int64_t> flat_prefixes;
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto& ks = i < checkpoints.size() ? checkpoints[i]
                                            : std::vector<int64_t>{};
    for (const int64_t k : ks) {
      flat_trips.push_back(trips[i]);
      flat_prefixes.push_back(k);
    }
  }
  const std::vector<double> flat = ScoreBatch(flat_trips, flat_prefixes);
  size_t pos = 0;
  for (size_t i = 0; i < trips.size(); ++i) {
    const size_t count = i < checkpoints.size() ? checkpoints[i].size() : 0;
    out[i].assign(flat.begin() + pos, flat.begin() + pos + count);
    pos += count;
  }
  return out;
}

std::vector<double> TrajectoryScorer::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  std::vector<double> scores;
  scores.reserve(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    const int64_t prefix =
        i < prefix_lens.size() ? prefix_lens[i] : trips[i].route.size();
    scores.push_back(Score(trips[i], prefix));
  }
  return scores;
}

}  // namespace models
}  // namespace causaltad
