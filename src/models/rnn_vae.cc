#include "models/rnn_vae.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/fastmath.h"
#include "nn/init.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace models {
namespace {
constexpr float kLog2Pi = 1.8378770664093453f;
}

/// All trainable components. The TC discriminator is a submodule (so it is
/// checkpointed) but is optimized separately from the generative parameters.
struct RnnVae::Net : nn::Module {
  Net(const std::string& name, const RnnVaeConfig& cfg, util::Rng* rng)
      : nn::Module(name),
        emb("emb", cfg.vocab, cfg.emb_dim, rng),
        enc_gru("enc_gru",
                cfg.emb_dim + (cfg.time_conditioned ? cfg.slot_emb_dim : 0),
                cfg.hidden_dim, rng),
        dec_gru("dec_gru", cfg.emb_dim, cfg.hidden_dim, rng),
        out("out", cfg.hidden_dim, cfg.vocab, rng) {
    RegisterSubmodule(&emb);
    RegisterSubmodule(&enc_gru);
    RegisterSubmodule(&dec_gru);
    RegisterSubmodule(&out);
    bos = RegisterParameter("bos", nn::GaussianInit({1, cfg.emb_dim}, 0.1, rng));

    const int64_t z_dim = cfg.variational ? cfg.latent_dim : cfg.hidden_dim;
    const int64_t dec_in_dim =
        z_dim + (cfg.time_conditioned ? cfg.slot_emb_dim : 0);
    dec_in = std::make_unique<nn::Linear>("dec_in", dec_in_dim,
                                          cfg.hidden_dim, rng);
    RegisterSubmodule(dec_in.get());

    if (cfg.time_conditioned) {
      slot_emb = std::make_unique<nn::Embedding>(
          "slot_emb", cfg.num_time_slots, cfg.slot_emb_dim, rng);
      RegisterSubmodule(slot_emb.get());
    }
    if (cfg.variational) {
      mu_head = std::make_unique<nn::Linear>("mu_head", cfg.hidden_dim,
                                             cfg.latent_dim, rng);
      lv_head = std::make_unique<nn::Linear>("lv_head", cfg.hidden_dim,
                                             cfg.latent_dim, rng);
      RegisterSubmodule(mu_head.get());
      RegisterSubmodule(lv_head.get());
    }
    if (cfg.mixture_k > 0) {
      mix_means = RegisterParameter(
          "mix_means",
          nn::GaussianInit({cfg.mixture_k, cfg.latent_dim}, 0.5, rng));
    }
    if (cfg.factor_tc) {
      disc = std::make_unique<nn::Mlp>(
          "tc_disc", std::vector<int64_t>{cfg.latent_dim, 32, 2}, rng);
      RegisterSubmodule(disc.get());
    }
  }

  /// Generative parameters only (excludes the TC discriminator, which has
  /// its own optimizer and an adversarial objective).
  std::vector<nn::Var> GenerativeParameters() const {
    std::vector<nn::Var> all = Parameters();
    if (!disc) return all;
    std::unordered_set<const nn::Node*> disc_nodes;
    for (const nn::Var& d : disc->Parameters()) {
      disc_nodes.insert(d.node().get());
    }
    std::vector<nn::Var> keep;
    keep.reserve(all.size());
    for (const nn::Var& p : all) {
      if (!disc_nodes.contains(p.node().get())) keep.push_back(p);
    }
    return keep;
  }

  nn::Embedding emb;
  nn::GruCell enc_gru;
  nn::GruCell dec_gru;
  nn::Linear out;
  nn::Var bos;
  std::unique_ptr<nn::Linear> dec_in;
  std::unique_ptr<nn::Embedding> slot_emb;
  std::unique_ptr<nn::Linear> mu_head;
  std::unique_ptr<nn::Linear> lv_head;
  nn::Var mix_means;
  std::unique_ptr<nn::Mlp> disc;
};

RnnVae::RnnVae(std::string name, const RnnVaeConfig& config)
    : name_(std::move(name)), config_(config) {
  CAUSALTAD_CHECK_GT(config_.vocab, 0);
  util::Rng rng(0xBEEF ^ std::hash<std::string>{}(name_));
  net_ = std::make_unique<Net>(name_, config_, &rng);
}

RnnVae::~RnnVae() = default;

std::vector<nn::Var> RnnVae::GenerativeParameters() const {
  return net_->GenerativeParameters();
}

nn::Var RnnVae::EncodePrefix(const traj::Trip& trip,
                             int64_t prefix_len) const {
  std::vector<int32_t> ids(trip.route.segments.begin(),
                           trip.route.segments.begin() + prefix_len);
  const nn::Var inputs = net_->emb.Forward(ids);  // [n, emb]
  nn::Var slot_vec;
  if (config_.time_conditioned) {
    const std::vector<int32_t> slot_id = {
        static_cast<int32_t>(trip.time_slot)};
    slot_vec = net_->slot_emb->Forward(slot_id);  // [1, slot_emb]
  }
  nn::Var h = nn::Constant(nn::Tensor::Zeros({1, config_.hidden_dim}));
  for (int64_t j = 0; j < prefix_len; ++j) {
    std::vector<int32_t> row = {static_cast<int32_t>(j)};
    nn::Var x = nn::GatherRows(inputs, row);  // [1, emb]
    if (config_.time_conditioned) x = nn::ConcatCols({x, slot_vec});
    h = net_->enc_gru.Step(x, h);
  }
  return h;
}

nn::Var RnnVae::DecodeNll(const traj::Trip& trip, int64_t prefix_len,
                          const nn::Var& h0) const {
  // Teacher forcing: input j is the embedding of t_{j-1} (BOS for j=0),
  // the state after input j predicts t_j.
  std::vector<int32_t> targets(trip.route.segments.begin(),
                               trip.route.segments.begin() + prefix_len);
  std::vector<int32_t> prev_ids(targets.begin(), targets.end() - 1);
  nn::Var prev_emb;
  if (!prev_ids.empty()) prev_emb = net_->emb.Forward(prev_ids);

  nn::Var h = h0;
  std::vector<nn::Var> states;
  states.reserve(prefix_len);
  for (int64_t j = 0; j < prefix_len; ++j) {
    nn::Var x;
    if (j == 0) {
      x = net_->bos;
    } else {
      std::vector<int32_t> row = {static_cast<int32_t>(j - 1)};
      x = nn::GatherRows(prev_emb, row);
    }
    h = net_->dec_gru.Step(x, h);
    states.push_back(h);
  }
  const nn::Var all_states = nn::ConcatRows(states);        // [n, hidden]
  const nn::Var logits = net_->out.Forward(all_states);     // [n, vocab]
  return nn::SoftmaxCrossEntropy(logits, targets);
}

nn::Var RnnVae::GaussianLogPdf(const nn::Var& z, const nn::Var& mu,
                               const nn::Var& logvar) const {
  const nn::Var diff = nn::Sub(z, mu);
  const nn::Var quad = nn::Mul(nn::Mul(diff, diff), nn::Exp(nn::Neg(logvar)));
  const nn::Var inner = nn::Add(quad, logvar);
  return nn::ScalarMul(
      nn::ScalarAdd(nn::Sum(inner),
                    kLog2Pi * static_cast<float>(config_.latent_dim)),
      -0.5f);
}

nn::Var RnnVae::MixturePriorLogPdf(const nn::Var& z) const {
  const int k = config_.mixture_k;
  std::vector<nn::Var> comp_logits;
  comp_logits.reserve(k);
  for (int c = 0; c < k; ++c) {
    std::vector<int32_t> row = {c};
    const nn::Var mean = nn::GatherRows(net_->mix_means, row);  // [1, latent]
    const nn::Var diff = nn::Sub(z, mean);
    const nn::Var logit = nn::ScalarAdd(
        nn::ScalarMul(
            nn::ScalarAdd(nn::Sum(nn::Mul(diff, diff)),
                          kLog2Pi * static_cast<float>(config_.latent_dim)),
            -0.5f),
        -std::log(static_cast<float>(k)));
    comp_logits.push_back(logit);
  }
  return nn::LogSumExpRow(nn::ConcatCols(comp_logits));
}

nn::Var RnnVae::Loss(const traj::Trip& trip, int64_t prefix_len,
                     util::Rng* rng) const {
  const int64_t n = trip.route.size();
  if (prefix_len <= 0 || prefix_len > n) prefix_len = n;
  CAUSALTAD_CHECK_GT(prefix_len, 0);

  const nn::Var enc_h = EncodePrefix(trip, prefix_len);

  nn::Var h0_input;
  nn::Var kl;
  if (config_.variational) {
    const nn::Var mu = net_->mu_head->Forward(enc_h);
    const nn::Var logvar = net_->lv_head->Forward(enc_h);
    const nn::Var z =
        rng != nullptr ? nn::Reparameterize(mu, logvar, rng) : mu;
    if (config_.mixture_k > 0) {
      // MC estimate of KL(q || p_mix): log q(z|x) - log p_mix(z).
      kl = nn::Sub(GaussianLogPdf(z, mu, logvar), MixturePriorLogPdf(z));
    } else {
      kl = nn::KlStandardNormal(mu, logvar);
    }
    h0_input = z;
  } else {
    h0_input = enc_h;
  }
  if (config_.time_conditioned) {
    const std::vector<int32_t> slot_id = {
        static_cast<int32_t>(trip.time_slot)};
    h0_input = nn::ConcatCols({h0_input, net_->slot_emb->Forward(slot_id)});
  }
  const nn::Var h0 = nn::Tanh(net_->dec_in->Forward(h0_input));
  const nn::Var recon = DecodeNll(trip, prefix_len, h0);

  if (!kl.defined()) return recon;
  return nn::Add(recon, nn::ScalarMul(kl, config_.beta));
}

nn::Var RnnVae::LossBatch(std::span<const traj::Trip* const> trips,
                          util::Rng* rng, nn::Var* mu_out) const {
  const int64_t batch = static_cast<int64_t>(trips.size());
  CAUSALTAD_CHECK_GT(batch, 0);
  std::vector<int64_t> lens(batch);
  int64_t max_len = 0;
  for (int64_t i = 0; i < batch; ++i) {
    lens[i] = trips[i]->route.size();
    CAUSALTAD_CHECK_GT(lens[i], 0);
    max_len = std::max(max_len, lens[i]);
  }

  nn::Var slot_vecs;  // [B, slot_emb] (time-conditioned models only)
  if (config_.time_conditioned) {
    std::vector<int32_t> slot_ids(batch);
    for (int64_t i = 0; i < batch; ++i) {
      slot_ids[i] = static_cast<int32_t>(trips[i]->time_slot);
    }
    slot_vecs = net_->slot_emb->Forward(slot_ids);
  }

  // Encoder: one masked [B, hidden] roll. A row's state freezes the step
  // its own route ends (finished-row masking), so after max_len steps each
  // row holds exactly EncodePrefix(trip, len) for its trip. Finished rows
  // feed a placeholder id whose gathered embedding receives zero gradient.
  std::vector<int32_t> step_ids(batch);
  std::vector<uint8_t> finished(batch);
  nn::Var h = nn::Constant(nn::Tensor::Zeros({batch, config_.hidden_dim}));
  for (int64_t j = 0; j < max_len; ++j) {
    for (int64_t i = 0; i < batch; ++i) {
      const bool live = j < lens[i];
      finished[i] = live ? 0 : 1;
      step_ids[i] =
          live ? static_cast<int32_t>(trips[i]->route.segments[j]) : 0;
    }
    nn::Var x = net_->emb.Forward(step_ids);  // [B, emb]
    if (config_.time_conditioned) x = nn::ConcatCols({x, slot_vecs});
    h = net_->enc_gru.StepBatched(x, h, finished);
  }

  // Latent bottleneck and batched KL (every row is a real trip, so the KL
  // reductions sum over the full batch; only decode steps need masks).
  nn::Var h0_input;
  nn::Var kl;
  if (config_.variational) {
    const nn::Var mu = net_->mu_head->Forward(h);      // [B, latent]
    const nn::Var logvar = net_->lv_head->Forward(h);  // [B, latent]
    const nn::Var z =
        rng != nullptr ? nn::Reparameterize(mu, logvar, rng) : mu;
    if (config_.mixture_k > 0) {
      // Per-row MC estimate of KL(q || p_mix): log q(z|x) - log p_mix(z),
      // reduced with row-wise sums/logsumexp instead of B separate graphs.
      const float dim_const =
          kLog2Pi * static_cast<float>(config_.latent_dim);
      const nn::Var diff = nn::Sub(z, mu);
      const nn::Var quad =
          nn::Mul(nn::Mul(diff, diff), nn::Exp(nn::Neg(logvar)));
      const nn::Var log_q = nn::ScalarMul(
          nn::ScalarAdd(nn::SumRows(nn::Add(quad, logvar)), dim_const),
          -0.5f);  // [B,1]
      std::vector<nn::Var> comp_logits;
      comp_logits.reserve(config_.mixture_k);
      for (int c = 0; c < config_.mixture_k; ++c) {
        const std::vector<int32_t> row = {c};
        const nn::Var mean = nn::GatherRows(net_->mix_means, row);
        const nn::Var dc = nn::Sub(z, mean);  // [1,latent] broadcast
        comp_logits.push_back(nn::ScalarAdd(
            nn::ScalarMul(
                nn::ScalarAdd(nn::SumRows(nn::Mul(dc, dc)), dim_const),
                -0.5f),
            -std::log(static_cast<float>(config_.mixture_k))));  // [B,1]
      }
      const nn::Var log_p = nn::LogSumExpRows(nn::ConcatCols(comp_logits));
      kl = nn::Sum(nn::Sub(log_q, log_p));
    } else {
      kl = nn::KlStandardNormal(mu, logvar);
    }
    h0_input = z;
    if (mu_out != nullptr) *mu_out = mu;
  } else {
    h0_input = h;
    if (mu_out != nullptr) *mu_out = h;
  }
  if (config_.time_conditioned) {
    h0_input = nn::ConcatCols({h0_input, slot_vecs});
  }

  // Decoder: teacher-forced masked roll. Each step gathers the rows still
  // inside their route into a list; one softmax-CE over the concatenation
  // replaces B·L tiny per-step losses with a single [Σlive, vocab] matmul.
  nn::Var dh = nn::Tanh(net_->dec_in->Forward(h0_input));
  std::vector<nn::Var> live_states;
  live_states.reserve(max_len);
  std::vector<int32_t> targets;
  std::vector<int32_t> live_rows;
  int64_t total_steps = 0;
  for (int64_t i = 0; i < batch; ++i) total_steps += lens[i];
  targets.reserve(total_steps);
  for (int64_t j = 0; j < max_len; ++j) {
    for (int64_t i = 0; i < batch; ++i) {
      const bool live = j < lens[i];
      finished[i] = live ? 0 : 1;
      step_ids[i] =
          live && j > 0 ? static_cast<int32_t>(trips[i]->route.segments[j - 1])
                        : 0;
    }
    nn::Var x;
    if (j == 0) {
      // BOS broadcast: gathering row 0 of the [1, emb] parameter B times
      // scatter-adds the per-row gradients back into it.
      x = nn::GatherRows(net_->bos, std::vector<int32_t>(batch, 0));
    } else {
      x = net_->emb.Forward(step_ids);
    }
    dh = net_->dec_gru.StepBatched(x, dh, finished);
    live_rows.clear();
    for (int64_t i = 0; i < batch; ++i) {
      if (j < lens[i]) {
        live_rows.push_back(static_cast<int32_t>(i));
        targets.push_back(static_cast<int32_t>(trips[i]->route.segments[j]));
      }
    }
    if (static_cast<int64_t>(live_rows.size()) == batch) {
      live_states.push_back(dh);
    } else {
      live_states.push_back(nn::GatherRows(dh, live_rows));
    }
  }
  const nn::Var all_states = live_states.size() == 1
                                 ? live_states[0]
                                 : nn::ConcatRows(live_states);
  const nn::Var logits = net_->out.Forward(all_states);  // [Σlive, vocab]
  const nn::Var recon = nn::SoftmaxCrossEntropy(logits, targets);

  if (!kl.defined()) return recon;
  return nn::Add(recon, nn::ScalarMul(kl, config_.beta));
}

void RnnVae::TrainDiscriminatorStep(const std::vector<float>& z_value,
                                    nn::Adam* disc_opt, util::Rng* rng) {
  if (z_buffer_.size() < 8) return;
  // Permuted sample: each dimension drawn from an independent past latent.
  std::vector<float> permuted(z_value.size());
  for (size_t d = 0; d < permuted.size(); ++d) {
    const auto& donor =
        z_buffer_[rng->UniformInt(static_cast<int64_t>(z_buffer_.size()))];
    permuted[d] = donor[d];
  }
  disc_opt->ZeroGrad();
  const int64_t latent = static_cast<int64_t>(z_value.size());
  const nn::Var real =
      nn::Constant(nn::Tensor::FromVector({1, latent}, z_value));
  const nn::Var fake =
      nn::Constant(nn::Tensor::FromVector({1, latent}, std::move(permuted)));
  const std::vector<int32_t> label_real = {0};
  const std::vector<int32_t> label_fake = {1};
  const nn::Var loss =
      nn::Add(nn::SoftmaxCrossEntropy(net_->disc->Forward(real), label_real),
              nn::SoftmaxCrossEntropy(net_->disc->Forward(fake), label_fake));
  nn::Backward(loss);
  disc_opt->Step();
}

void RnnVae::TrainDiscriminatorBatch(const nn::Tensor& mu,
                                     nn::Adam* disc_opt, util::Rng* rng) {
  const int64_t rows = mu.rows();
  const int64_t latent = mu.cols();
  for (int64_t i = 0; i < rows; ++i) {
    z_buffer_.emplace_back(mu.data() + i * latent,
                           mu.data() + (i + 1) * latent);
    if (z_buffer_.size() > 256) z_buffer_.pop_front();
  }
  if (z_buffer_.size() < 8) return;
  // Real rows vs dimension-wise permuted rows (each dimension drawn from an
  // independent past latent), one adversarial step per minibatch.
  std::vector<float> fake(rows * latent);
  for (int64_t i = 0; i < rows * latent; ++i) {
    const auto& donor =
        z_buffer_[rng->UniformInt(static_cast<int64_t>(z_buffer_.size()))];
    fake[i] = donor[i % latent];
  }
  disc_opt->ZeroGrad();
  const nn::Var real = nn::Constant(mu);
  const nn::Var perm =
      nn::Constant(nn::Tensor::FromVector({rows, latent}, std::move(fake)));
  const std::vector<int32_t> label_real(rows, 0);
  const std::vector<int32_t> label_fake(rows, 1);
  const nn::Var loss =
      nn::Add(nn::SoftmaxCrossEntropy(net_->disc->Forward(real), label_real),
              nn::SoftmaxCrossEntropy(net_->disc->Forward(perm), label_fake));
  nn::Backward(loss);
  disc_opt->Step();
}

void RnnVae::Fit(const std::vector<traj::Trip>& trips,
                 const FitOptions& options) {
  CAUSALTAD_CHECK(!trips.empty());
  if (options.per_trip_tape) {
    FitPerTrip(trips, options);
    return;
  }
  util::Rng rng(options.seed);
  std::vector<nn::Var> params = net_->GenerativeParameters();
  nn::Adam opt(params, {.lr = options.lr});
  std::unique_ptr<nn::Adam> disc_opt;
  if (config_.factor_tc) {
    disc_opt = std::make_unique<nn::Adam>(net_->disc->Parameters(),
                                          nn::AdamConfig{.lr = options.lr});
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    util::Stopwatch watch;
    double epoch_loss = 0.0;
    for (const std::vector<int64_t>& indices :
         LengthSortedBatches(trips, options.batch_size, &rng)) {
      std::vector<const traj::Trip*> batch;
      batch.reserve(indices.size());
      for (const int64_t i : indices) batch.push_back(&trips[i]);

      opt.ZeroGrad();
      nn::Var mu;
      nn::Var loss =
          LossBatch(batch, &rng, config_.factor_tc ? &mu : nullptr);
      if (config_.factor_tc) {
        // TC estimate over the whole minibatch: Σ_rows logit(real) -
        // logit(permuted), encouraged downward. Reusing the in-loss mu is
        // gradient-identical to the per-trip path's second encoder pass.
        const nn::Var logits = net_->disc->Forward(mu);  // [B,2]
        std::vector<float> signs(logits.value().numel());
        for (size_t i = 0; i < signs.size(); ++i) {
          signs[i] = i % 2 == 0 ? 1.0f : -1.0f;
        }
        const nn::Var tc = nn::Sum(nn::Mul(
            logits, nn::Constant(nn::Tensor::FromVector(
                        {logits.value().dim(0), 2}, std::move(signs)))));
        loss = nn::Add(loss, nn::ScalarMul(tc, config_.tc_gamma));
      }
      epoch_loss += loss.value().Item();
      nn::Backward(loss);
      nn::ClipGradNorm(params, options.grad_clip);
      opt.Step();
      if (config_.factor_tc) {
        TrainDiscriminatorBatch(mu.value(), disc_opt.get(), &rng);
      }
    }
    if (options.verbose) {
      const double secs = watch.ElapsedSeconds();
      std::fprintf(stderr,
                   "[%s] epoch %d loss %.3f (%.2fs, %.0f trips/s)\n",
                   name_.c_str(), epoch, epoch_loss / trips.size(), secs,
                   trips.size() / std::max(secs, 1e-9));
    }
  }
}

void RnnVae::FitPerTrip(const std::vector<traj::Trip>& trips,
                        const FitOptions& options) {
  util::Rng rng(options.seed);
  std::vector<nn::Var> params = net_->GenerativeParameters();
  nn::Adam opt(params, {.lr = options.lr});
  std::unique_ptr<nn::Adam> disc_opt;
  if (config_.factor_tc) {
    disc_opt = std::make_unique<nn::Adam>(net_->disc->Parameters(),
                                          nn::AdamConfig{.lr = options.lr});
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    util::Stopwatch watch;
    const std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(trips.size()));
    double epoch_loss = 0.0;
    int in_batch = 0;
    opt.ZeroGrad();
    for (const int64_t idx : order) {
      const traj::Trip& trip = trips[idx];
      nn::Var loss = Loss(trip, trip.route.size(), &rng);

      if (config_.factor_tc) {
        // Re-derive z deterministically for the TC term and buffer.
        const nn::Var enc_h = EncodePrefix(trip, trip.route.size());
        const nn::Var mu = net_->mu_head->Forward(enc_h);
        const nn::Var logits = net_->disc->Forward(mu);  // [1,2]
        // TC estimate: logit(real) - logit(permuted), encouraged downward.
        const nn::Var tc = nn::Sum(nn::Mul(
            logits,
            nn::Constant(nn::Tensor::FromVector({1, 2}, {1.0f, -1.0f}))));
        loss = nn::Add(loss, nn::ScalarMul(tc, config_.tc_gamma));
        const auto& zv = mu.value().vec();
        z_buffer_.push_back(zv);
        if (z_buffer_.size() > 256) z_buffer_.pop_front();
        TrainDiscriminatorStep(zv, disc_opt.get(), &rng);
      }

      epoch_loss += loss.value().Item();
      nn::Backward(loss);
      if (++in_batch == options.batch_size) {
        nn::ClipGradNorm(params, options.grad_clip);
        opt.Step();
        opt.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      nn::ClipGradNorm(params, options.grad_clip);
      opt.Step();
      opt.ZeroGrad();
    }
    if (options.verbose) {
      const double secs = watch.ElapsedSeconds();
      std::fprintf(stderr,
                   "[%s] epoch %d loss %.3f (%.2fs, %.0f trips/s, "
                   "per-trip tape)\n",
                   name_.c_str(), epoch, epoch_loss / trips.size(), secs,
                   trips.size() / std::max(secs, 1e-9));
    }
  }
}

double RnnVae::Score(const traj::Trip& trip, int64_t prefix_len) const {
  return Loss(trip, prefix_len, /*rng=*/nullptr).value().Item();
}

double RnnVae::PosteriorKlRow(const float* mu_row, const float* lv_row) const {
  const int64_t latent = config_.latent_dim;
  if (config_.mixture_k > 0) {
    // MC estimate with z = mu: log q(z|x) - log p_mix(z). The quadratic
    // term of log q vanishes because z is exactly the posterior mean.
    float sum_lv = 0.0f;
    for (int64_t d = 0; d < latent; ++d) sum_lv += lv_row[d];
    const float log_q =
        -0.5f * (sum_lv + kLog2Pi * static_cast<float>(latent));
    nn::internal::ArenaScope scope;
    float* comp = nn::internal::ArenaAlloc(config_.mixture_k);
    for (int c = 0; c < config_.mixture_k; ++c) {
      const float* mean = net_->mix_means.value().data() + c * latent;
      float ss = 0.0f;
      for (int64_t d = 0; d < latent; ++d) {
        const float diff = mu_row[d] - mean[d];
        ss += diff * diff;
      }
      comp[c] = -0.5f * (ss + kLog2Pi * static_cast<float>(latent)) -
                std::log(static_cast<float>(config_.mixture_k));
    }
    float max_v = comp[0];
    for (int c = 1; c < config_.mixture_k; ++c) {
      max_v = std::max(max_v, comp[c]);
    }
    float total = 0.0f;
    for (int c = 0; c < config_.mixture_k; ++c) {
      total += nn::fastmath::Exp(comp[c] - max_v);
    }
    return log_q - (max_v + std::log(total));
  }
  return nn::kernels::Active().kl_standard_normal_row(mu_row, lv_row, latent);
}

/// Carried state of one incremental session: the encoder's [1, hidden] GRU
/// row, the observed prefix, and the cached decoder input projections
/// (each observed segment's [3*hidden] gate projection is computed once, on
/// arrival, and reused by every subsequent re-roll).
struct RnnVae::OnlineState {
  nn::Tensor enc_h;
  nn::Tensor slot_vec;  // [1, slot_emb]; time-conditioned models only
  std::vector<int32_t> segments;
  std::vector<float> bos_xw;
  std::vector<float> dec_xw;
};

std::unique_ptr<RnnVae::OnlineState> RnnVae::BeginOnline(
    const traj::Trip& trip) const {
  const nn::InferenceGuard no_grad;
  auto state = std::make_unique<OnlineState>();
  state->enc_h = nn::Tensor::Zeros({1, config_.hidden_dim});
  if (config_.time_conditioned) {
    const std::vector<int32_t> slot_id = {
        static_cast<int32_t>(trip.time_slot)};
    state->slot_vec = net_->slot_emb->Forward(slot_id).value();
  }
  const nn::Tensor bos_xw = net_->dec_gru.ProjectInputs(net_->bos.value());
  state->bos_xw.assign(bos_xw.data(), bos_xw.data() + bos_xw.numel());
  state->segments.reserve(trip.route.segments.size());
  state->dec_xw.reserve(trip.route.segments.size() * 3 * config_.hidden_dim);
  return state;
}

double RnnVae::OnlineUpdate(OnlineState* state,
                            roadnet::SegmentId segment) const {
  const nn::InferenceGuard no_grad;
  const int64_t hd = config_.hidden_dim;
  const std::vector<int32_t> id = {static_cast<int32_t>(segment)};

  // One fused encoder step carries the [1, hidden] state forward — the
  // O(1) half of the update.
  {
    nn::Var x = net_->emb.Forward(id);
    if (config_.time_conditioned) {
      x = nn::ConcatCols({x, nn::Constant(state->slot_vec)});
    }
    state->enc_h =
        net_->enc_gru.StepFused(x, nn::Constant(state->enc_h)).value();
  }
  // Cache the new segment's decoder input projection (it is the
  // teacher-forcing input of every future re-roll; BOS covers step 0).
  const nn::Tensor xw = net_->dec_gru.ProjectInputs(
      nn::GatherRows(net_->emb.table(), id).value());
  state->dec_xw.insert(state->dec_xw.end(), xw.data(), xw.data() + 3 * hd);
  state->segments.push_back(static_cast<int32_t>(segment));

  // Posterior mean, KL, and the decoder's initial state for the new prefix.
  const nn::Var enc = nn::Constant(state->enc_h);
  nn::Var h0_input;
  float kl = 0.0f;
  if (config_.variational) {
    const nn::Var mu = net_->mu_head->Forward(enc);
    const nn::Var logvar = net_->lv_head->Forward(enc);
    kl = static_cast<float>(
        PosteriorKlRow(mu.value().data(), logvar.value().data()));
    h0_input = mu;
  } else {
    h0_input = enc;
  }
  if (config_.time_conditioned) {
    h0_input = nn::ConcatCols({h0_input, nn::Constant(state->slot_vec)});
  }
  nn::Var dh = nn::Tanh(net_->dec_in->Forward(h0_input));

  // Teacher-forced decoder re-roll over the observed prefix (the ELBO's
  // decode conditions on the posterior of the whole prefix, so it cannot be
  // carried): fused steps over the cached projections, full-vocabulary
  // softmax per step. No tape, no per-step heap traffic beyond the logits.
  float recon = 0.0f;
  const int64_t k = static_cast<int64_t>(state->segments.size());
  for (int64_t j = 0; j < k; ++j) {
    const float* step_xw = j == 0
                               ? state->bos_xw.data()
                               : state->dec_xw.data() + (j - 1) * 3 * hd;
    dh = net_->dec_gru.StepFusedProjected(step_xw, 1, dh);
    const nn::Var logits = net_->out.Forward(dh);  // [1, vocab]
    recon += nn::kernels::Active().softmax_nll_row(logits.value().data(),
                                                   config_.vocab,
                                                   state->segments[j]);
  }
  return config_.variational ? static_cast<double>(recon + config_.beta * kl)
                             : static_cast<double>(recon);
}

/// OnlineScorer adapter over BeginOnline/OnlineUpdate.
class RnnVae::OnlineSession : public OnlineScorer {
 public:
  OnlineSession(const RnnVae* model, std::unique_ptr<OnlineState> state)
      : model_(model), state_(std::move(state)) {}

  double Update(roadnet::SegmentId segment) override {
    return model_->OnlineUpdate(state_.get(), segment);
  }

 private:
  const RnnVae* model_;
  std::unique_ptr<OnlineState> state_;
};

std::unique_ptr<OnlineScorer> RnnVae::BeginTrip(const traj::Trip& trip) const {
  if (OnlineRescoringForced()) return TrajectoryScorer::BeginTrip(trip);
  return std::make_unique<OnlineSession>(this, BeginOnline(trip));
}

std::vector<double> RnnVae::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  // Shard rows across the worker pool: scores are per-row independent, and
  // the no-grad guard plus scratch arena are thread-local, so each chunk
  // runs the single-threaded batch roll unchanged on its own thread.
  // Shards are length-bucketed by (clamped) prefix length, so each worker's
  // [B, hidden] roll sees near-uniform lengths and near-equal total work.
  const int64_t n = static_cast<int64_t>(trips.size());
  std::vector<double> scores(n, 0.0);
  if (n == 0) return scores;
  std::vector<int64_t> prefixes(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t len = trips[i].route.size();
    int64_t p =
        i < static_cast<int64_t>(prefix_lens.size()) ? prefix_lens[i] : len;
    if (p <= 0 || p > len) p = len;
    CAUSALTAD_CHECK_GT(p, 0);
    prefixes[i] = p;
  }
  const std::vector<std::vector<int64_t>> shards =
      util::RowShards(prefixes, 8);
  util::ParallelFor(
      static_cast<int64_t>(shards.size()), static_cast<int>(shards.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          ScoreBatchChunk(trips, prefixes, shards[s], scores.data());
        }
      });
  return scores;
}

void RnnVae::ScoreBatchChunk(std::span<const traj::Trip> all_trips,
                             std::span<const int64_t> all_prefixes,
                             std::span<const int64_t> rows,
                             double* out) const {
  const int64_t batch = static_cast<int64_t>(rows.size());
  if (batch == 0) return;
  const nn::InferenceGuard no_grad;

  // Local views of this shard's rows, so the roll below reads like the
  // contiguous-chunk original.
  std::vector<const traj::Trip*> trips(batch);
  std::vector<int64_t> prefixes(batch);
  int64_t max_prefix = 0;
  for (int64_t a = 0; a < batch; ++a) {
    trips[a] = &all_trips[rows[a]];
    prefixes[a] = all_prefixes[rows[a]];
    max_prefix = std::max(max_prefix, prefixes[a]);
  }

  const int64_t hd = config_.hidden_dim;
  nn::Var slot_vecs;  // [B, slot_emb] (time-conditioned models only)
  if (config_.time_conditioned) {
    std::vector<int32_t> slot_ids(batch);
    for (int64_t i = 0; i < batch; ++i) {
      slot_ids[i] = static_cast<int32_t>(trips[i]->time_slot);
    }
    slot_vecs = net_->slot_emb->Forward(slot_ids);
  }

  // Compacts `h` down to the rows of `active` whose prefix outlives step j,
  // shrinking `active` in place. Shared by the encoder and decoder rolls so
  // mixed-length batches stop paying max-length gate flops for dead rows.
  std::vector<int64_t> active(batch);
  const auto compact_to_live_rows = [&](nn::Var* h, int64_t j) {
    size_t keep = 0;
    for (size_t a = 0; a < active.size(); ++a) {
      if (prefixes[active[a]] > j) ++keep;
    }
    if (keep == active.size()) return;
    nn::Tensor compact({static_cast<int64_t>(keep), hd});
    size_t pos = 0, write = 0;
    for (size_t a = 0; a < active.size(); ++a) {
      if (prefixes[active[a]] > j) {
        std::copy(h->value().data() + a * hd,
                  h->value().data() + (a + 1) * hd,
                  compact.data() + pos * hd);
        ++pos;
        active[write++] = active[a];
      }
    }
    active.resize(keep);
    *h = nn::Constant(std::move(compact));
  };
  const auto gather_slot_vecs = [&]() {
    std::vector<int32_t> slot_ids(active.size());
    for (size_t a = 0; a < active.size(); ++a) {
      slot_ids[a] = static_cast<int32_t>(trips[active[a]]->time_slot);
    }
    return net_->slot_emb->Forward(slot_ids);
  };

  // Project every unique input segment through each GRU's gate input
  // weights once; the rolls below gather [3*hidden] rows per step instead
  // of re-running the input matmuls. (The time-conditioned encoder
  // concatenates a slot embedding onto its input, so it keeps the general
  // fused step; the decoder input is always a bare embedding row.)
  std::vector<int32_t> dense_of(config_.vocab, -1);
  std::vector<int32_t> unique_segs;
  for (int64_t i = 0; i < batch; ++i) {
    const auto& segs = trips[i]->route.segments;
    for (int64_t j = 0; j < prefixes[i]; ++j) {
      if (dense_of[segs[j]] < 0) {
        dense_of[segs[j]] = static_cast<int32_t>(unique_segs.size());
        unique_segs.push_back(segs[j]);
      }
    }
  }
  const nn::Var emb_rows = nn::GatherRows(net_->emb.table(), unique_segs);
  nn::Tensor enc_xw_table;
  if (!config_.time_conditioned) {
    enc_xw_table = net_->enc_gru.ProjectInputs(emb_rows.value());
  }
  const nn::Tensor dec_xw_table =
      net_->dec_gru.ProjectInputs(emb_rows.value());
  const nn::Tensor bos_xw = net_->dec_gru.ProjectInputs(net_->bos.value());

  // Gathers the pre-projected input rows for the current active set into
  // arena scratch (valid until the enclosing scope ends).
  const auto gather_xw = [&](const nn::Tensor& table, int64_t j) {
    const int64_t width = table.cols();
    float* xw = nn::internal::ArenaAlloc(
        static_cast<int64_t>(active.size()) * width);
    for (size_t a = 0; a < active.size(); ++a) {
      const int32_t dense = dense_of[trips[active[a]]->route.segments[j]];
      std::copy(table.data() + dense * width,
                table.data() + (dense + 1) * width, xw + a * width);
    }
    return xw;
  };

  // Encoder: roll every trip through one [B, hidden] state, freezing each
  // row's result the step its own prefix ends.
  std::vector<int32_t> step_ids;
  nn::Tensor enc_h_rows({batch * hd});  // flat row-capture buffer
  nn::Var h = nn::Constant(nn::Tensor::Zeros({batch, hd}));
  active.resize(batch);
  for (int64_t i = 0; i < batch; ++i) active[i] = i;
  for (int64_t j = 0; j < max_prefix; ++j) {
    compact_to_live_rows(&h, j);
    if (config_.time_conditioned) {
      step_ids.resize(active.size());
      for (size_t a = 0; a < active.size(); ++a) {
        step_ids[a] = trips[active[a]]->route.segments[j];
      }
      nn::Var x =
          nn::ConcatCols({net_->emb.Forward(step_ids), gather_slot_vecs()});
      h = net_->enc_gru.StepFused(x, h);
    } else {
      nn::internal::ArenaScope step_scope;
      h = net_->enc_gru.StepFusedProjected(
          gather_xw(enc_xw_table, j), static_cast<int64_t>(active.size()), h);
    }
    for (size_t a = 0; a < active.size(); ++a) {
      const int64_t i = active[a];
      if (prefixes[i] == j + 1) {
        std::copy(h.value().data() + a * hd, h.value().data() + (a + 1) * hd,
                  enc_h_rows.data() + i * hd);
      }
    }
  }
  const nn::Var enc_h =
      nn::Constant(std::move(enc_h_rows.Reshape({batch, hd})));

  // Latent bottleneck (posterior mean at inference) and per-row KL.
  const int64_t latent = config_.latent_dim;
  nn::Var h0_input;
  std::vector<float> kl(batch, 0.0f);
  if (config_.variational) {
    const nn::Var mu = net_->mu_head->Forward(enc_h);
    const nn::Var logvar = net_->lv_head->Forward(enc_h);
    for (int64_t i = 0; i < batch; ++i) {
      kl[i] = static_cast<float>(
          PosteriorKlRow(mu.value().data() + i * latent,
                         logvar.value().data() + i * latent));
    }
    h0_input = mu;
  } else {
    h0_input = enc_h;
  }
  if (config_.time_conditioned) {
    h0_input = nn::ConcatCols({h0_input, slot_vecs});
  }

  // Decoder: teacher-forced batch roll with a full-vocabulary softmax per
  // step, accumulating each row's NLL while its prefix is live and
  // compacting finished rows out of the batch.
  nn::Var dh = nn::Tanh(net_->dec_in->Forward(h0_input));
  std::vector<float> recon(batch, 0.0f);
  active.resize(batch);
  for (int64_t i = 0; i < batch; ++i) active[i] = i;
  for (int64_t j = 0; j < max_prefix; ++j) {
    compact_to_live_rows(&dh, j);
    nn::internal::ArenaScope step_scope;
    float* xw;
    if (j == 0) {
      const int64_t width = 3 * hd;
      xw = nn::internal::ArenaAlloc(
          static_cast<int64_t>(active.size()) * width);
      for (size_t a = 0; a < active.size(); ++a) {
        std::copy(bos_xw.data(), bos_xw.data() + width, xw + a * width);
      }
    } else {
      xw = gather_xw(dec_xw_table, j - 1);
    }
    dh = net_->dec_gru.StepFusedProjected(
        xw, static_cast<int64_t>(active.size()), dh);
    const nn::Var logits = net_->out.Forward(dh);  // [A, vocab]
    for (size_t a = 0; a < active.size(); ++a) {
      const int64_t i = active[a];
      recon[i] += nn::kernels::Active().softmax_nll_row(
          logits.value().data() + a * config_.vocab, config_.vocab,
          trips[i]->route.segments[j]);
    }
  }

  for (int64_t i = 0; i < batch; ++i) {
    out[rows[i]] = config_.variational
                       ? static_cast<double>(recon[i] + config_.beta * kl[i])
                       : static_cast<double>(recon[i]);
  }
}

util::Status RnnVae::Save(const std::string& path) const {
  return nn::SaveCheckpoint(path, *net_);
}

util::Status RnnVae::Load(const std::string& path) {
  return nn::LoadCheckpoint(path, net_.get());
}

namespace {
std::unique_ptr<TrajectoryScorer> Make(std::string name, RnnVaeConfig cfg) {
  return std::make_unique<RnnVae>(std::move(name), cfg);
}
}  // namespace

std::unique_ptr<TrajectoryScorer> MakeSae(RnnVaeConfig base) {
  base.variational = false;
  base.mixture_k = 0;
  base.time_conditioned = false;
  base.factor_tc = false;
  return Make("SAE", base);
}

std::unique_ptr<TrajectoryScorer> MakeVsae(RnnVaeConfig base) {
  base.variational = true;
  base.beta = 1.0f;
  base.mixture_k = 0;
  base.time_conditioned = false;
  base.factor_tc = false;
  return Make("VSAE", base);
}

std::unique_ptr<TrajectoryScorer> MakeBetaVae(RnnVaeConfig base) {
  base.variational = true;
  base.beta = 4.0f;
  base.mixture_k = 0;
  base.time_conditioned = false;
  base.factor_tc = false;
  return Make("BetaVAE", base);
}

std::unique_ptr<TrajectoryScorer> MakeFactorVae(RnnVaeConfig base) {
  base.variational = true;
  base.beta = 1.0f;
  base.factor_tc = true;
  base.mixture_k = 0;
  base.time_conditioned = false;
  return Make("FactorVAE", base);
}

std::unique_ptr<TrajectoryScorer> MakeGmVsae(RnnVaeConfig base) {
  base.variational = true;
  base.beta = 1.0f;
  base.mixture_k = 5;
  base.time_conditioned = false;
  base.factor_tc = false;
  return Make("GM-VSAE", base);
}

std::unique_ptr<TrajectoryScorer> MakeDeepTea(RnnVaeConfig base) {
  base.variational = true;
  base.beta = 1.0f;
  base.time_conditioned = true;
  base.mixture_k = 0;
  base.factor_tc = false;
  return Make("DeepTEA", base);
}

}  // namespace models
}  // namespace causaltad
