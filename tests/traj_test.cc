#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "roadnet/grid_city.h"
#include "traj/anomaly.h"
#include "traj/gps_sim.h"
#include "traj/map_matching.h"
#include "traj/router.h"
#include "traj/trajectory.h"
#include "traj/trip_generator.h"

namespace causaltad {
namespace traj {
namespace {

roadnet::City TestCity(uint64_t seed = 17) {
  roadnet::GridCityConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = seed;
  cfg.drop_local_street_prob = 0.05;
  return roadnet::BuildGridCity(cfg);
}

TEST(RouteTest, ValidityChecksAdjacency) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  util::Rng rng(1);
  Route r = router.Sample(0, static_cast<roadnet::NodeId>(
                                 city.network.num_nodes() - 1),
                          0, &rng);
  ASSERT_FALSE(r.empty());
  EXPECT_TRUE(r.IsValid(city.network));
  // Corrupting the route breaks validity.
  if (r.size() >= 3) {
    std::swap(r.segments[0], r.segments[r.size() - 1]);
    EXPECT_FALSE(r.IsValid(city.network));
  }
  EXPECT_FALSE(Route{}.IsValid(city.network));
}

TEST(RouteTest, JaccardBounds) {
  Route a{{1, 2, 3}};
  Route b{{3, 4, 5}};
  EXPECT_DOUBLE_EQ(RouteJaccard(a, a), 1.0);
  EXPECT_NEAR(RouteJaccard(a, b), 1.0 / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(RouteJaccard(Route{}, Route{}), 1.0);
}

TEST(RouterTest, ConnectsSourceToDestination) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<roadnet::NodeId>(
        rng.UniformInt(city.network.num_nodes()));
    const auto d = static_cast<roadnet::NodeId>(
        rng.UniformInt(city.network.num_nodes()));
    if (s == d) continue;
    Route r = router.Sample(s, d, 0, &rng);
    ASSERT_FALSE(r.empty());
    EXPECT_TRUE(r.IsValid(city.network));
    EXPECT_EQ(city.network.segment(r.segments.front()).from, s);
    EXPECT_EQ(city.network.segment(r.segments.back()).to, d);
  }
}

TEST(RouterTest, PrefersArterialsOnAverage) {
  roadnet::City city = TestCity();
  RouterConfig rcfg;
  rcfg.preference_gamma = 1.2;
  PreferenceRouter router(&city, rcfg);
  util::Rng rng(3);
  int64_t arterial = 0, local = 0;
  // Long diagonal trips, many samples.
  for (int trial = 0; trial < 60; ++trial) {
    Route r = router.Sample(0, static_cast<roadnet::NodeId>(
                                   city.network.num_nodes() - 1),
                            0, &rng);
    for (roadnet::SegmentId s : r.segments) {
      const auto rc = city.network.segment(s).road_class;
      arterial += (rc == roadnet::RoadClass::kArterial);
      local += (rc == roadnet::RoadClass::kLocal);
    }
  }
  // With preference weighting, arterials should dominate local streets even
  // though local streets are ~2x more numerous.
  EXPECT_GT(arterial, local);
}

TEST(RouterTest, NoiseCreatesRouteDiversity) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  util::Rng rng(4);
  std::map<std::vector<roadnet::SegmentId>, int> distinct;
  for (int trial = 0; trial < 30; ++trial) {
    Route r = router.Sample(2, static_cast<roadnet::NodeId>(
                                   city.network.num_nodes() - 3),
                            0, &rng);
    distinct[r.segments]++;
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(RouterTest, BestRouteIsDeterministic) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  Route a = router.Best(0, 37, 0);
  Route b = router.Best(0, 37, 0);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(TripGeneratorTest, CandidatePairsRespectConstraints) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 20;
  cfg.min_hops = 6;
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  ASSERT_EQ(pairs.size(), 20u);
  roadnet::ShortestPathEngine engine(&city.network);
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> seen;
  for (const SdPair& p : pairs) {
    EXPECT_NE(p.source, p.dest);
    EXPECT_GE(engine.HopDistance(p.source, p.dest), 6);
    EXPECT_TRUE(seen.insert({p.source, p.dest}).second) << "duplicate pair";
    EXPECT_GT(p.weight, 0.0);
  }
}

TEST(TripGeneratorTest, TripsMatchTheirPair) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 10;
  cfg.min_hops = 6;
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  for (int32_t id = 0; id < 10; ++id) {
    Trip t = gen.GenerateTrip(pairs, id);
    EXPECT_EQ(t.sd_pair_id, id);
    EXPECT_EQ(t.source_node, pairs[id].source);
    EXPECT_EQ(t.dest_node, pairs[id].dest);
    EXPECT_TRUE(t.route.IsValid(city.network));
    EXPECT_EQ(city.network.segment(t.route.segments.front()).from,
              t.source_node);
    EXPECT_EQ(city.network.segment(t.route.segments.back()).to, t.dest_node);
    EXPECT_FALSE(t.is_anomaly());
  }
}

TEST(TripGeneratorTest, OodTripsAvoidCandidatePairs) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 15;
  cfg.min_hops = 6;
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> candidate_set;
  for (const SdPair& p : pairs) candidate_set.insert({p.source, p.dest});
  for (int i = 0; i < 25; ++i) {
    Trip t = gen.GenerateOodTrip(pairs);
    EXPECT_EQ(t.sd_pair_id, -1);
    EXPECT_EQ(candidate_set.count({t.source_node, t.dest_node}), 0u);
    EXPECT_TRUE(t.route.IsValid(city.network));
  }
}

TEST(TripGeneratorTest, PopularPairsGetMoreDemandWeight) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 30;
  cfg.pair_zipf_s = 1.0;
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  double max_w = 0, min_w = 1e9;
  for (const SdPair& p : pairs) {
    max_w = std::max(max_w, p.weight);
    min_w = std::min(min_w, p.weight);
  }
  EXPECT_GT(max_w / min_w, 5.0);  // 1/1 vs 1/30 under s=1
}

class AnomalyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnomalyPropertyTest, DetourIsValidLongerAndSharesEndpoints) {
  roadnet::City city = TestCity(GetParam());
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 10;
  cfg.min_hops = 10;
  cfg.seed = GetParam();
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  AnomalyGenerator anomaly(&city.network, GetParam());
  int made = 0;
  for (int i = 0; i < 20; ++i) {
    Trip base = gen.GenerateTrip(pairs, static_cast<int32_t>(i % 10));
    auto detour = anomaly.MakeDetour(base, DetourConfig{});
    if (!detour.has_value()) continue;
    ++made;
    EXPECT_EQ(detour->anomaly, AnomalyKind::kDetour);
    EXPECT_TRUE(detour->route.IsValid(city.network));
    EXPECT_EQ(detour->route.segments.front(), base.route.segments.front());
    EXPECT_EQ(detour->route.segments.back(), base.route.segments.back());
    const double extra = detour->route.LengthMeters(city.network) /
                             base.route.LengthMeters(city.network) -
                         1.0;
    EXPECT_GE(extra, DetourConfig{}.min_extra_ratio - 1e-9);
    EXPECT_LE(extra, DetourConfig{}.max_extra_ratio + 1e-9);
    EXPECT_NE(detour->route.segments, base.route.segments);
  }
  EXPECT_GT(made, 10);
}

TEST_P(AnomalyPropertyTest, SwitchIsValidAndEndsAtDestination) {
  roadnet::City city = TestCity(GetParam());
  PreferenceRouter router(&city, {});
  TripGeneratorConfig cfg;
  cfg.num_candidate_pairs = 6;
  cfg.min_hops = 10;
  cfg.seed = GetParam();
  TripGenerator gen(&city, &router, cfg);
  auto pairs = gen.SampleCandidatePairs();
  AnomalyGenerator anomaly(&city.network, GetParam() + 1);

  // Build a pool of routes per pair.
  std::vector<std::vector<Route>> pools(pairs.size());
  std::vector<std::vector<Trip>> trips(pairs.size());
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    for (int i = 0; i < 8; ++i) {
      Trip t = gen.GenerateTrip(pairs, static_cast<int32_t>(pid));
      pools[pid].push_back(t.route);
      trips[pid].push_back(std::move(t));
    }
  }
  int made = 0;
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    for (const Trip& base : trips[pid]) {
      auto switched = anomaly.MakeSwitch(base, pools[pid], SwitchConfig{});
      if (!switched.has_value()) continue;
      ++made;
      EXPECT_EQ(switched->anomaly, AnomalyKind::kSwitch);
      EXPECT_TRUE(switched->route.IsValid(city.network));
      EXPECT_EQ(switched->route.segments.front(),
                base.route.segments.front());
      EXPECT_EQ(city.network.segment(switched->route.segments.back()).to,
                base.dest_node);
      EXPECT_NE(switched->route.segments, base.route.segments);
    }
  }
  EXPECT_GT(made, 12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnomalyPropertyTest,
                         ::testing::Values(5, 23, 99));

TEST(GpsSimTest, EmitsOrderedFixesAlongRoute) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  util::Rng rng(9);
  Route route = router.Sample(0, 87, 0, &rng);
  GpsSimConfig cfg;
  cfg.noise_sigma_m = 0.0;
  GpsTrace trace = SimulateGps(city.network, route, cfg, &rng);
  ASSERT_GT(trace.points.size(), 3u);
  for (size_t i = 1; i < trace.points.size(); ++i) {
    EXPECT_GT(trace.points[i].time_s, trace.points[i - 1].time_s - 1e-9);
  }
  // Noise-free fixes lie on the route polyline (distance ~ 0 to some seg).
  for (const GpsPoint& pt : trace.points) {
    double best = 1e18;
    const geo::LocalProjection proj(city.network.node(0).pos);
    for (roadnet::SegmentId s : route.segments) {
      const auto& seg = city.network.segment(s);
      best = std::min(
          best, geo::PointSegmentDistance(
                    proj.Project(pt.pos),
                    proj.Project(city.network.node(seg.from).pos),
                    proj.Project(city.network.node(seg.to).pos)));
    }
    EXPECT_LT(best, 25.0);  // node jitter makes straight-line approx inexact
  }
}

TEST(MapMatchingTest, RecoversRouteFromNoisyGps) {
  roadnet::City city = TestCity();
  PreferenceRouter router(&city, {});
  util::Rng rng(10);
  MapMatcherConfig mcfg;
  HmmMapMatcher matcher(&city.network, mcfg);
  GpsSimConfig gcfg;
  gcfg.interval_s = 4.0;
  gcfg.noise_sigma_m = 10.0;

  int total = 0, good = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<roadnet::NodeId>(
        rng.UniformInt(city.network.num_nodes()));
    const auto d = static_cast<roadnet::NodeId>(
        rng.UniformInt(city.network.num_nodes()));
    if (s == d) continue;
    Route truth = router.Sample(s, d, 0, &rng);
    if (truth.size() < 5) continue;
    GpsTrace trace = SimulateGps(city.network, truth, gcfg, &rng);
    auto matched = matcher.Match(trace);
    ASSERT_TRUE(matched.ok()) << matched.status().ToString();
    EXPECT_TRUE(matched->IsValid(city.network));
    ++total;
    if (RouteJaccard(truth, *matched) > 0.75) ++good;
  }
  ASSERT_GT(total, 4);
  EXPECT_GE(static_cast<double>(good) / total, 0.8);
}

TEST(MapMatchingTest, EmptyTraceFails) {
  roadnet::City city = TestCity();
  HmmMapMatcher matcher(&city.network, {});
  EXPECT_FALSE(matcher.Match(GpsTrace{}).ok());
}

TEST(MapMatchingTest, CandidatesAreWithinRadius) {
  roadnet::City city = TestCity();
  MapMatcherConfig mcfg;
  mcfg.candidate_radius_m = 60.0;
  HmmMapMatcher matcher(&city.network, mcfg);
  const geo::LatLon probe = city.network.SegmentMidpoint(0);
  auto cands = matcher.Candidates(probe);
  ASSERT_FALSE(cands.empty());
  // Segment 0 itself must be among the candidates.
  EXPECT_NE(std::find(cands.begin(), cands.end(), 0), cands.end());
}

}  // namespace
}  // namespace traj
}  // namespace causaltad
