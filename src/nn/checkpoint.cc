#include "nn/checkpoint.h"

#include <map>

#include "util/binary_io.h"

namespace causaltad {
namespace nn {
namespace {
constexpr uint32_t kMagic = 0xCA057AD0;
constexpr uint32_t kVersion = 1;
}  // namespace

util::Status SaveCheckpoint(const std::string& path, const Module& module) {
  util::BinaryWriter writer(path, kMagic, kVersion);
  if (!writer.ok()) return util::Status::IoError("cannot open " + path);
  const auto params = module.NamedParameters();
  writer.WriteU64(params.size());
  for (const NamedParam& p : params) {
    writer.WriteString(p.name);
    const auto& shape = p.var.value().shape();
    writer.WriteU64(shape.size());
    for (int64_t d : shape) writer.WriteI64(d);
    writer.WriteFloats(p.var.value().vec());
  }
  return writer.Close();
}

util::Status LoadCheckpoint(const std::string& path, Module* module) {
  util::BinaryReader reader(path, kMagic, kVersion);
  if (!reader.ok()) return reader.status();

  std::map<std::string, std::pair<std::vector<int64_t>, std::vector<float>>>
      records;
  const uint64_t count = reader.ReadU64();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    const std::string name = reader.ReadString();
    const uint64_t ndim = reader.ReadU64();
    std::vector<int64_t> shape(ndim);
    for (uint64_t d = 0; d < ndim; ++d) shape[d] = reader.ReadI64();
    records[name] = {std::move(shape), reader.ReadFloats()};
  }
  if (!reader.ok()) return reader.status();

  auto params = module->NamedParameters();
  if (params.size() != records.size()) {
    return util::Status::InvalidArgument(
        "checkpoint/module parameter count mismatch for " + path);
  }
  // Validate everything before mutating anything.
  for (const NamedParam& p : params) {
    auto it = records.find(p.name);
    if (it == records.end()) {
      return util::Status::InvalidArgument("missing parameter " + p.name);
    }
    if (it->second.first != p.var.value().shape()) {
      return util::Status::InvalidArgument("shape mismatch for " + p.name);
    }
  }
  for (NamedParam& p : params) {
    p.var.mutable_value().vec() = records[p.name].second;
  }
  return util::Status::Ok();
}

}  // namespace nn
}  // namespace causaltad
