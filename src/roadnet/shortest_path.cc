#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace causaltad {
namespace roadnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  int32_t id;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>;

double SegmentCost(const RoadNetwork& net, std::span<const double> costs,
                   SegmentId s) {
  if (costs.empty()) return net.segment(s).length_m;
  return costs[s];
}

bool IsBlocked(const std::vector<uint8_t>* blocked, SegmentId s) {
  return blocked != nullptr && (*blocked)[s] != 0;
}

}  // namespace

ShortestPathEngine::ShortestPathEngine(const RoadNetwork* network)
    : network_(network) {
  CAUSALTAD_CHECK(network != nullptr);
}

RouteResult ShortestPathEngine::NodeToNode(
    NodeId src, NodeId dst, std::span<const double> costs,
    const std::vector<uint8_t>* blocked) const {
  const RoadNetwork& net = *network_;
  CAUSALTAD_CHECK(costs.empty() ||
                  static_cast<int64_t>(costs.size()) == net.num_segments());
  RouteResult result;
  if (src == dst) {
    result.found = true;
    return result;
  }

  std::vector<double> dist(net.num_nodes(), kInf);
  std::vector<SegmentId> via(net.num_nodes(), kInvalidSegment);
  MinQueue queue;
  dist[src] = 0.0;
  queue.push({0.0, src});

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (SegmentId s : net.OutSegments(u)) {
      if (IsBlocked(blocked, s)) continue;
      const double w = SegmentCost(net, costs, s);
      const NodeId v = net.segment(s).to;
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        via[v] = s;
        queue.push({dist[v], v});
      }
    }
  }

  if (dist[dst] == kInf) return result;
  result.found = true;
  result.cost = dist[dst];
  for (NodeId u = dst; u != src;) {
    const SegmentId s = via[u];
    result.segments.push_back(s);
    u = net.segment(s).from;
  }
  std::reverse(result.segments.begin(), result.segments.end());
  return result;
}

RouteResult ShortestPathEngine::SegmentToSegment(
    SegmentId src_seg, SegmentId dst_seg, std::span<const double> costs,
    const std::vector<uint8_t>* blocked) const {
  const RoadNetwork& net = *network_;
  CAUSALTAD_CHECK(costs.empty() ||
                  static_cast<int64_t>(costs.size()) == net.num_segments());
  RouteResult result;
  if (IsBlocked(blocked, src_seg) || IsBlocked(blocked, dst_seg)) {
    return result;
  }
  if (src_seg == dst_seg) {
    result.found = true;
    result.segments = {src_seg};
    return result;
  }

  std::vector<double> dist(net.num_segments(), kInf);
  std::vector<SegmentId> prev(net.num_segments(), kInvalidSegment);
  MinQueue queue;
  dist[src_seg] = 0.0;
  queue.push({0.0, src_seg});

  while (!queue.empty()) {
    const auto [d, s] = queue.top();
    queue.pop();
    if (d > dist[s]) continue;
    if (s == dst_seg) break;
    for (SegmentId nxt : net.Successors(s)) {
      if (IsBlocked(blocked, nxt)) continue;
      const double w = SegmentCost(net, costs, nxt);
      if (dist[s] + w < dist[nxt]) {
        dist[nxt] = dist[s] + w;
        prev[nxt] = s;
        queue.push({dist[nxt], nxt});
      }
    }
  }

  if (dist[dst_seg] == kInf) return result;
  result.found = true;
  result.cost = dist[dst_seg];
  for (SegmentId s = dst_seg; s != kInvalidSegment; s = prev[s]) {
    result.segments.push_back(s);
  }
  std::reverse(result.segments.begin(), result.segments.end());
  return result;
}

ShortestPathEngine::SegmentSearchTree ShortestPathEngine::SegmentSearch(
    SegmentId src_seg, std::span<const double> costs,
    const std::vector<uint8_t>* blocked, double max_cost) const {
  const RoadNetwork& net = *network_;
  CAUSALTAD_CHECK(costs.empty() ||
                  static_cast<int64_t>(costs.size()) == net.num_segments());
  SegmentSearchTree tree;
  tree.source = src_seg;
  tree.dist.assign(net.num_segments(), kInf);
  tree.prev.assign(net.num_segments(), kInvalidSegment);
  if (IsBlocked(blocked, src_seg)) return tree;

  MinQueue queue;
  tree.dist[src_seg] = 0.0;
  queue.push({0.0, src_seg});
  while (!queue.empty()) {
    const auto [d, s] = queue.top();
    queue.pop();
    if (d > tree.dist[s]) continue;
    if (max_cost > 0.0 && d > max_cost) continue;
    for (SegmentId nxt : net.Successors(s)) {
      if (IsBlocked(blocked, nxt)) continue;
      const double w = SegmentCost(net, costs, nxt);
      if (tree.dist[s] + w < tree.dist[nxt]) {
        tree.dist[nxt] = tree.dist[s] + w;
        tree.prev[nxt] = s;
        queue.push({tree.dist[nxt], nxt});
      }
    }
  }
  return tree;
}

std::vector<SegmentId> ShortestPathEngine::ReconstructPath(
    const SegmentSearchTree& tree, SegmentId dst) {
  std::vector<SegmentId> path;
  if (dst < 0 || dst >= static_cast<SegmentId>(tree.dist.size()) ||
      tree.dist[dst] == kInf) {
    return path;
  }
  for (SegmentId s = dst; s != kInvalidSegment; s = tree.prev[s]) {
    path.push_back(s);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int64_t ShortestPathEngine::HopDistance(NodeId src, NodeId dst) const {
  const RouteResult r = NodeToNode(src, dst);
  if (!r.found) return -1;
  return static_cast<int64_t>(r.segments.size());
}

}  // namespace roadnet
}  // namespace causaltad
