// End-to-end integration: every method of the paper's evaluation trained on
// one shared smoke-scale corpus, with cross-cutting invariants that the
// bench harness relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace causaltad {
namespace {

using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(eval::ChengduConfig(Scale::kSmoke)));
  return *data;
}

class AllModelsTest : public ::testing::TestWithParam<const char*> {
 protected:
  static models::TrajectoryScorer& Fitted(const std::string& name) {
    static std::map<std::string, std::unique_ptr<models::TrajectoryScorer>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      auto scorer = eval::MakeScorer(name, Data(), Scale::kSmoke);
      scorer->Fit(Data().train, eval::FitOptionsFor(Scale::kSmoke));
      it = cache.emplace(name, std::move(scorer)).first;
    }
    return *it->second;
  }
};

TEST_P(AllModelsTest, FiniteScoresOnEverySplit) {
  auto& scorer = Fitted(GetParam());
  for (const auto* split :
       {&Data().train, &Data().id_test, &Data().ood_test, &Data().id_detour,
        &Data().id_switch, &Data().ood_detour, &Data().ood_switch}) {
    for (size_t i = 0; i < std::min<size_t>(split->size(), 10); ++i) {
      EXPECT_TRUE(std::isfinite(scorer.ScoreFull((*split)[i])));
    }
  }
}

TEST_P(AllModelsTest, OnlineSessionFinalScoreMatchesBatch) {
  auto& scorer = Fitted(GetParam());
  for (int idx : {0, 5}) {
    const traj::Trip& trip = Data().id_detour[idx];
    auto session = scorer.BeginTrip(trip);
    double final_score = 0.0;
    for (const auto seg : trip.route.segments) {
      final_score = session->Update(seg);
    }
    EXPECT_NEAR(final_score, scorer.ScoreFull(trip), 1e-4)
        << GetParam() << " trip " << idx;
  }
}

TEST_P(AllModelsTest, PrefixScoresAreDeterministic) {
  auto& scorer = Fitted(GetParam());
  const traj::Trip& trip = Data().ood_test[2];
  for (int64_t k : {int64_t{1}, trip.route.size() / 2, trip.route.size()}) {
    EXPECT_DOUBLE_EQ(scorer.Score(trip, k), scorer.Score(trip, k));
  }
}

TEST_P(AllModelsTest, BetterThanRandomOnIdDetours) {
  auto& scorer = Fitted(GetParam());
  const auto result =
      eval::EvaluateCombo(scorer, Data().id_test, Data().id_detour, 1.0);
  EXPECT_GT(result.roc_auc, 0.55) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Methods, AllModelsTest,
                         ::testing::Values("iBOAT", "SAE", "VSAE", "BetaVAE",
                                           "FactorVAE", "GM-VSAE", "DeepTEA",
                                           "CausalTAD"));

TEST(RefitDeterminismTest, SameSeedSameModel) {
  auto a = eval::MakeScorer("VSAE", Data(), Scale::kSmoke);
  auto b = eval::MakeScorer("VSAE", Data(), Scale::kSmoke);
  const auto options = eval::FitOptionsFor(Scale::kSmoke);
  a->Fit(Data().train, options);
  b->Fit(Data().train, options);
  for (int i = 0; i < 5; ++i) {
    const traj::Trip& t = Data().id_test[i];
    EXPECT_DOUBLE_EQ(a->ScoreFull(t), b->ScoreFull(t));
  }
}

}  // namespace
}  // namespace causaltad
