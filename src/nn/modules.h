#ifndef CAUSALTAD_NN_MODULES_H_
#define CAUSALTAD_NN_MODULES_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "util/random.h"

namespace causaltad {
namespace nn {

/// A parameter with its hierarchical name ("encoder.fc1.w").
struct NamedParam {
  std::string name;
  Var var;
};

/// Base class for parameterized components. Subclasses register parameters
/// and submodules in their constructors; Parameters()/NamedParameters()
/// traverse the tree. Names are stable across runs, which is what the
/// checkpoint format keys on.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// All parameters of this module and its submodules.
  std::vector<Var> Parameters() const;

  /// All parameters with hierarchical dotted names.
  std::vector<NamedParam> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t NumParams() const;

 protected:
  /// Creates a trainable leaf and registers it under `name`.
  Var RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child (not owned; typically a member of the subclass).
  void RegisterSubmodule(Module* module);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<NamedParam>* out) const;

  std::string name_;
  std::vector<NamedParam> params_;
  std::vector<Module*> submodules_;
};

/// Fully-connected layer y = x @ w + b, Xavier-initialized.
class Linear : public Module {
 public:
  Linear(std::string name, int64_t in_dim, int64_t out_dim, util::Rng* rng);

  Var Forward(const Var& x) const { return Affine(x, w_, b_); }

  const Var& w() const { return w_; }
  const Var& b() const { return b_; }

 private:
  Var w_, b_;
};

/// Token embedding table [vocab, dim].
class Embedding : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, util::Rng* rng);

  /// Looks up rows -> [ids.size(), dim].
  Var Forward(std::span<const int32_t> ids) const {
    return GatherRows(table_, ids);
  }

  const Var& table() const { return table_; }
  int64_t vocab() const { return table_.value().dim(0); }
  int64_t dim() const { return table_.value().dim(1); }

 private:
  Var table_;
};

/// Gated recurrent unit cell (Cho et al. 2014).
class GruCell : public Module {
 public:
  GruCell(std::string name, int64_t in_dim, int64_t hidden_dim,
          util::Rng* rng);

  /// One step: x [1,in], h [1,hidden] -> h' [1,hidden]. Composed from
  /// differentiable ops; this is the training path and the reference
  /// implementation for StepFused.
  Var Step(const Var& x, const Var& h) const;

  /// Inference fast path: computes all three gates in one pass over
  /// thread-local arena scratch using the packed MatMul kernel, with no
  /// intermediate Vars. Accepts batches — x [B,in], h [B,hidden] ->
  /// h' [B,hidden]. Numerically equivalent to Step. Falls back to the
  /// op-composed Step whenever a tape is being recorded and some input
  /// requires gradients, so it is always safe to call.
  Var StepFused(const Var& x, const Var& h) const;

  /// Projects input rows through all three gate input weights at once:
  /// row i of the result is [x_i·Wz | x_i·Wr | x_i·Wh] ([n, 3*hidden]).
  /// Batched rolls feed embedding-table rows as inputs, so projecting each
  /// unique row once and gathering per step removes the input half of the
  /// gate matmuls from the recurrent loop.
  Tensor ProjectInputs(const Tensor& xs) const;

  /// StepFused with pre-projected inputs: `xw` points at `batch` rows of
  /// [3*hidden] floats gathered from a ProjectInputs result. Inference
  /// only — requires an active InferenceGuard.
  Var StepFusedProjected(const float* xw, int64_t batch, const Var& h) const;

  /// Batched *training* step: x [B,in], h [B,hidden] -> h' [B,hidden] as a
  /// single tape node whose hand-written backward reuses the packed MatMul
  /// kernel and the fastmath transcendentals — the tape-aware twin of
  /// StepFused. `finished` (size B, may be empty) marks rows whose sequence
  /// ended before this step: a finished row's state passes through
  /// unchanged and contributes no gradient, which is what lets Fit() roll
  /// variable-length [B, hidden] minibatches through one tape.
  /// Numerically equivalent to Step (values and gradients).
  Var StepBatched(const Var& x, const Var& h,
                  std::span<const uint8_t> finished = {}) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  /// Shared fused-step tail: given gate buffers pre-filled with the input
  /// projections (z = xWz, r = xWr, c = xWh), adds the recurrent terms and
  /// applies the nonlinearities in one pass. Buffers are arena scratch.
  Var FusedGateTail(const Tensor& th, int64_t batch, float* z, float* r,
                    float* c) const;

  int64_t hidden_dim_;
  Var wz_, uz_, bz_;
  Var wr_, ur_, br_;
  Var wh_, uh_, bh_;
};

/// Multilayer perceptron with tanh activations between layers (none after
/// the last).
class Mlp : public Module {
 public:
  Mlp(std::string name, const std::vector<int64_t>& dims, util::Rng* rng);

  Var Forward(const Var& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_MODULES_H_
