#ifndef CAUSALTAD_NET_ROUTER_H_
#define CAUSALTAD_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "util/status.h"

namespace causaltad {
namespace net {

/// One upstream backend the router can place sessions on. Either a TCP
/// endpoint (host/port) or a dial hook (tests point it at a backend
/// Server's AddLoopbackConnection; returning a negative fd means the
/// backend is unreachable right now).
struct RouterBackend {
  std::string host = "127.0.0.1";
  int port = -1;
  std::function<int()> dialer;  // overrides host/port when set
};

/// Router knobs.
struct RouterOptions {
  /// TCP listener port for downstream clients (0 = ephemeral, query via
  /// port()); -1 disables the listener — loopback-only routers (tests)
  /// accept downstream connections via AddLoopbackConnection() instead.
  int listen_port = -1;
  std::string listen_host = "127.0.0.1";

  /// Downstream tenant -> auth token. Empty = open router (any Hello
  /// accepted). This is the router's OWN auth check; upstream legs
  /// authenticate separately with `upstream`'s tenant/token.
  std::unordered_map<std::string, std::string> tenant_tokens;

  /// Template for upstream data legs. `reconnect` is forced on (failover
  /// IS the reconnect machinery landing on a different backend), and
  /// `dialer`/`fault`/`client_id` are overwritten per leg.
  ClientOptions upstream;

  /// Tenant identity for admin control connections (RollSwap) and health
  /// probes that need auth. Empty = reuse `upstream.tenant`.
  std::string admin_tenant;
  std::string admin_token;

  /// Consistent-hash ring: virtual nodes per backend. More vnodes = more
  /// uniform session spread at the cost of a bigger (static) ring.
  int virtual_nodes = 64;

  /// Health checking: every interval the health thread dials each backend,
  /// Hellos, and exchanges one heartbeat. `health_failure_threshold`
  /// consecutive probe failures mark the backend dead (new sessions and
  /// failover dials skip it); one success marks it live again.
  /// interval <= 0 disables the thread (tests drive MarkDead directly).
  double health_interval_ms = 25.0;
  int health_failure_threshold = 3;
  double health_timeout_ms = 500.0;

  /// Handler housekeeping cadence: the downstream read loop wakes at least
  /// this often to notice drains (and to observe Stop()).
  double idle_tick_ms = 20.0;

  /// Optional keepalive on idle upstream legs: when > 0, a leg that has
  /// been quiet this long exchanges a heartbeat, which both defeats the
  /// backend's idle reaper and detects a dead backend while no pushes are
  /// flowing (triggering failover early). 0 = off.
  double upstream_heartbeat_ms = 0.0;

  /// Bound on DrainBackend's wait for legs to migrate off.
  double drain_timeout_ms = 10000.0;
  /// Bound on any single blocking downstream send.
  double downstream_timeout_ms = 5000.0;

  /// Deterministic fault injection on the UPSTREAM legs (the router's
  /// client sockets). nullptr = no faults. Must outlive the router.
  FaultInjector* upstream_fault = nullptr;

  // --- Observability (see src/obs/README.md) ---

  /// Metrics registry the router_* series register into.
  /// Null = obs::Registry::Default().
  obs::Registry* registry = nullptr;
  /// Span sink for forwarded traces: a downstream Push carrying a v4 trace
  /// id gets a router_leg span recorded around its upstream forward, and
  /// the id rides the upstream Push to the backend. Null = spans off (the
  /// trace id is still forwarded).
  obs::Tracer* tracer = nullptr;
  /// `where` tag on this router's spans (distinguishes tiers in a dump).
  std::string trace_where = "router";
  /// Bound on one backend's scrape during a fleet Stats aggregation.
  double scrape_timeout_ms = 2000.0;
};

/// Router counters (point-in-time snapshot via stats()).
struct RouterStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t sessions_opened = 0;   // downstream Begins placed upstream
  int64_t sessions_resumed = 0;  // downstream Resumes rebuilt upstream
  int64_t failovers = 0;         // upstream dials that landed off-home
  int64_t migrations = 0;        // drain-triggered Client::Migrate calls
  int64_t upstream_reconnects = 0;  // outages survived by retired legs
  int64_t dup_scores_dropped = 0;   // upstream redeliveries deduped
  int64_t scores_forwarded = 0;     // scores delivered downstream
  int64_t health_probes = 0;
  int64_t probe_failures = 0;
  int64_t backends_dead = 0;  // currently marked dead
  int64_t swaps_rolled = 0;   // backends stage+commit'ed by RollSwap
  int64_t auth_failures = 0;
};

/// Multi-backend router: speaks the src/net wire protocol downstream
/// (clients connect to it exactly as they would to a single Server) and
/// fans sessions out across N backend Servers over net::Client upstream
/// legs.
///
///  * Placement: sessions are consistent-hashed (vnode ring) onto a home
///    backend; each downstream connection lazily opens one upstream leg
///    per home backend it touches.
///  * Failover: a leg's dialer prefers its home backend and falls through
///    to the next live, non-draining backend — so when a backend dies
///    mid-stream, Client::Recover's journaled prefix replay rebuilds every
///    session on a peer and the downstream score stream continues with no
///    gaps and no duplicates (the router re-stamps deltas with its own
///    cumulative offsets).
///  * Drain: DrainBackend marks a backend ineligible and waits while
///    handler threads Migrate() their legs off it; UndrainBackend restores
///    eligibility. RollSwap composes admin stage/commit with drains for a
///    zero-downtime fleet-wide model swap.
///
/// Threading: one thread per downstream connection (each owning its
/// single-threaded upstream Clients), plus a health-probe thread.
class Router {
 public:
  Router(std::vector<RouterBackend> backends, RouterOptions options = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the listener (if configured) and starts the health thread.
  util::Status Start();
  /// Stops accepting, wakes every handler, and joins all threads. Live
  /// downstream connections are shut down; upstream sessions are left to
  /// the backends' detached-session linger.
  void Stop();

  /// Downstream attach without TCP: returns the client end of a connected
  /// socketpair whose server end is handled by a fresh handler thread.
  int AddLoopbackConnection();
  int port() const { return port_; }
  int num_backends() const { return static_cast<int>(backends_.size()); }

  /// Health/drain control plane.
  bool BackendAlive(int backend) const;
  bool BackendDraining(int backend) const;
  /// Manual health override (tests; the health thread will re-mark on its
  /// next probe unless disabled).
  void MarkDead(int backend, bool dead);
  /// Marks the backend ineligible for new placements and failover dials,
  /// then blocks until every leg has migrated off it (or drain_timeout_ms
  /// expires). Fails fast when no other live backend could absorb the
  /// sessions. The backend stays draining until UndrainBackend.
  util::Status DrainBackend(int backend);
  void UndrainBackend(int backend);

  /// Zero-downtime fleet-wide model swap: for each live backend, stage the
  /// tagged model over an admin connection (blocks until the background
  /// load finishes), drain the backend's sessions onto its peers, commit
  /// the flip, and undrain. Single-backend fleets skip the drain (the
  /// commit itself is safe under load: live sessions finish on the old
  /// model). `tag` is resolved by the backends' model_resolver.
  util::Status RollSwap(const std::string& tag);

  /// Fleet-wide metrics view: scrapes every reachable backend's exposition
  /// over a fresh admin connection, prefixes each of its series with a
  /// backend="<i>" label, and appends the router's own router_* series.
  /// This is what a downstream Stats frame is answered with, so one scrape
  /// of the router reads the whole fleet.
  std::string ScrapeFleet();

  RouterStats stats() const;

 private:
  // One upstream client leg: created per (downstream connection, home
  // backend), single-threaded with its owning handler.
  struct Leg {
    Router* router = nullptr;
    int home = -1;     // ring placement this leg was created for
    int current = -1;  // backend the last successful dial landed on
    double last_heartbeat_ms = 0.0;
    std::unique_ptr<Client> client;
    ~Leg();
  };
  // Downstream session state (router side of the translation).
  struct DsSession {
    Leg* leg = nullptr;
    uint64_t up_id = 0;        // session id on the upstream leg
    uint64_t expected_seq = 0;  // next downstream push seq
    int64_t delivered = 0;      // scores delivered downstream (offset base)
    int64_t drop_scores = 0;    // resume rebuild: upstream prefix to drop
    bool ended = false;
    std::vector<double> tail;  // scores drained by Finish, not yet polled
  };
  struct DsConn;

  void HandlerMain(int fd, uint64_t conn_id);
  bool DispatchFrame(DsConn* conn, const Frame& frame);  // false = close
  bool HandleBegin(DsConn* conn, const Frame& frame);
  bool HandlePush(DsConn* conn, const Frame& frame);
  bool HandlePoll(DsConn* conn, const Frame& frame);
  bool HandleEnd(DsConn* conn, const Frame& frame);
  bool HandleResume(DsConn* conn, const Frame& frame);
  void Housekeeping(DsConn* conn);
  bool SendDs(DsConn* conn, const Frame& frame);
  bool SendError(DsConn* conn, ErrorCode code, const std::string& message);
  bool SendScoreChunks(DsConn* conn, uint64_t session, uint64_t token,
                       int64_t base, const std::vector<double>& scores);
  void ForgetIfDone(DsConn* conn, uint64_t session);

  Leg* LegForBackend(DsConn* conn, int home, util::Status* error);
  /// The failover dialer: home backend if eligible, else the next live,
  /// non-draining backend; tries every candidate before giving up.
  int DialUpstream(Leg* leg);
  int DialBackendFd(int backend);
  bool Eligible(int backend) const;
  /// Ring owner of `hash` among eligible backends (-1 when none).
  int PickBackend(uint64_t hash) const;

  void HealthMain();
  void ProbeBackend(int backend);
  void AcceptMain();
  void SpawnHandler(int fd);
  void RetireLegStats(const Leg& leg);

  std::vector<RouterBackend> backends_;
  RouterOptions options_;
  std::vector<std::pair<uint64_t, int>> ring_;  // (point, backend), sorted

  // Shared health/drain view (handlers, health thread, control plane).
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::unique_ptr<std::atomic<bool>[]> draining_;
  std::unique_ptr<std::atomic<int64_t>[]> legs_on_;  // legs per backend
  std::vector<int> probe_failures_consecutive_;  // health thread only

  std::atomic<bool> stop_{false};
  bool started_ = false;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread health_thread_;
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> handler_threads_;
  std::unordered_set<int> live_ds_fds_;  // for Stop() to shutdown()
  std::mutex lifecycle_mu_;
  std::mutex swap_mu_;  // serializes RollSwap
  std::atomic<uint64_t> next_conn_id_{1};

  // Counters (see RouterStats): registry-backed router_* series; the
  // Scoped wrappers keep stats() per-instance when registries are shared.
  obs::Registry* registry_ = nullptr;
  obs::ScopedCounter connections_accepted_;
  obs::ScopedGauge connections_active_;
  obs::ScopedCounter sessions_opened_;
  obs::ScopedCounter sessions_resumed_;
  obs::ScopedCounter failovers_;
  obs::ScopedCounter migrations_;
  obs::ScopedCounter upstream_reconnects_;
  obs::ScopedCounter dup_scores_dropped_;
  obs::ScopedCounter scores_forwarded_;
  obs::ScopedCounter health_probes_;
  obs::ScopedCounter probe_failures_;
  obs::ScopedCounter swaps_rolled_;
  obs::ScopedCounter auth_failures_;
  obs::Gauge* backends_dead_gauge_ = nullptr;  // refreshed on probe/scrape
};

}  // namespace net
}  // namespace causaltad

#endif  // CAUSALTAD_NET_ROUTER_H_
