#ifndef CAUSALTAD_UTIL_STATUS_H_
#define CAUSALTAD_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace causaltad {
namespace util {

/// Error categories for recoverable failures crossing public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// The library never throws across public boundaries; fallible operations
/// (I/O, configuration validation, parsing) return Status or StatusOr<T>.
/// Programming errors are reported via CHECK macros instead (see logging.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : repr_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value) : repr_(std::move(value)) {}         // NOLINT: implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<Status, T> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadStatusAccess(std::get<Status>(repr_));
}

/// Propagates an error Status out of the current function.
#define CAUSALTAD_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::causaltad::util::Status _st = (expr);               \
    if (!_st.ok()) return _st;                            \
  } while (0)

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_STATUS_H_
