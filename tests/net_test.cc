// Wire subsystem tests: frame encode/decode property tests (randomized
// round trips, truncation, oversized and garbage input), end-to-end
// client -> server -> StreamingService score parity over loopback and TCP,
// backpressure/quota rejections observed at the client, tenant auth, and a
// multi-client soak (8 producer threads over one server).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/harness.h"
#include "models/scorer.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/service.h"
#include "serve/streaming.h"

namespace causaltad {
namespace {

using core::CausalTad;
using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;
using net::Client;
using net::ClientOptions;
using net::ErrorCode;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::PushOutcome;
using net::RejectReason;
using net::Server;
using net::ServerOptions;
using serve::ServiceOptions;
using serve::StreamingBatcher;
using serve::StreamingService;
using serve::StreamingSession;

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

Frame RandomFrame(std::mt19937* rng) {
  std::uniform_int_distribution<int> type_dist(1, 14);
  std::uniform_int_distribution<uint64_t> u64;
  std::uniform_int_distribution<int32_t> i32(-2, 1 << 20);
  std::uniform_int_distribution<int> len(0, 2048);
  std::uniform_real_distribution<double> f64(-1e6, 1e6);
  auto random_string = [&](int max_len) {
    std::string s(len(*rng) % (max_len + 1), '\0');
    for (char& c : s) c = static_cast<char>(u64(*rng) & 0xff);
    return s;
  };
  Frame frame;
  frame.type = static_cast<FrameType>(type_dist(*rng));
  switch (frame.type) {
    case FrameType::kHello:
      frame.tenant = random_string(512);
      frame.auth_token = random_string(512);
      break;
    case FrameType::kBegin:
      frame.session = u64(*rng);
      frame.source = i32(*rng);
      frame.destination = i32(*rng);
      frame.time_slot = i32(*rng);
      frame.resume_key = u64(*rng);
      break;
    case FrameType::kPush:
      frame.session = u64(*rng);
      frame.seq = u64(*rng);
      frame.wire_seq = u64(*rng);
      frame.segment = i32(*rng);
      // Half the pushes carry the optional v4 trace extension.
      if (u64(*rng) % 2 == 0) frame.trace_id = u64(*rng) | 1;
      break;
    case FrameType::kEnd:
      frame.session = u64(*rng);
      break;
    case FrameType::kPoll:
      frame.session = u64(*rng);
      frame.token = u64(*rng);
      frame.offset = u64(*rng);
      break;
    case FrameType::kScoreDelta: {
      frame.session = u64(*rng);
      frame.token = u64(*rng);
      frame.offset = u64(*rng);
      frame.scores.resize(len(*rng));
      for (double& s : frame.scores) s = f64(*rng);
      break;
    }
    case FrameType::kPushReject:
      frame.session = u64(*rng);
      frame.seq = u64(*rng);
      frame.wire_seq = u64(*rng);
      frame.reason = static_cast<RejectReason>(1 + (u64(*rng) % 5));
      break;
    case FrameType::kError:
      frame.code = static_cast<ErrorCode>(1 + (u64(*rng) % 7));
      frame.message = random_string(1024);
      break;
    case FrameType::kResume:
      frame.session = u64(*rng);
      frame.resume_key = u64(*rng);
      frame.source = i32(*rng);
      frame.destination = i32(*rng);
      frame.time_slot = i32(*rng);
      frame.offset = u64(*rng);
      break;
    case FrameType::kResumeAck:
      frame.session = u64(*rng);
      frame.offset = u64(*rng);
      break;
    case FrameType::kHeartbeat:
      frame.token = u64(*rng);
      frame.seq = u64(*rng) % 2;
      break;
    case FrameType::kAdmin:
      frame.token = u64(*rng);
      frame.message = random_string(1024);
      break;
    case FrameType::kAdminAck:
      frame.token = u64(*rng);
      frame.seq = u64(*rng) % 3;
      frame.message = random_string(1024);
      break;
    case FrameType::kStats:
      frame.token = u64(*rng);
      break;
  }
  return frame;
}

void ExpectFrameEq(const Frame& got, const Frame& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.session, want.session);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.wire_seq, want.wire_seq);
  EXPECT_EQ(got.token, want.token);
  EXPECT_EQ(got.offset, want.offset);
  EXPECT_EQ(got.resume_key, want.resume_key);
  EXPECT_EQ(got.trace_id, want.trace_id);
  EXPECT_EQ(got.segment, want.segment);
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.destination, want.destination);
  EXPECT_EQ(got.time_slot, want.time_slot);
  EXPECT_EQ(got.tenant, want.tenant);
  EXPECT_EQ(got.auth_token, want.auth_token);
  EXPECT_EQ(got.reason, want.reason);
  EXPECT_EQ(got.code, want.code);
  EXPECT_EQ(got.message, want.message);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (size_t i = 0; i < got.scores.size(); ++i) {
    EXPECT_EQ(got.scores[i], want.scores[i]) << "score " << i;
  }
}

TEST(FrameTest, RandomizedRoundTripInRandomChunks) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 50; ++round) {
    // A batch of random frames through one stream, fed in random chunks.
    std::vector<Frame> frames;
    std::vector<uint8_t> bytes;
    const int count = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < count; ++i) {
      frames.push_back(RandomFrame(&rng));
      EncodeFrame(frames.back(), &bytes);
    }
    FrameDecoder decoder;
    size_t fed = 0;
    std::vector<Frame> decoded;
    while (fed < bytes.size()) {
      const size_t chunk =
          std::min<size_t>(1 + rng() % 97, bytes.size() - fed);
      decoder.Feed(bytes.data() + fed, chunk);
      fed += chunk;
      Frame frame;
      while (decoder.Next(&frame)) decoded.push_back(frame);
      ASSERT_TRUE(decoder.status().ok()) << decoder.status().ToString();
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectFrameEq(decoded[i], frames[i]);
    }
  }
}

TEST(FrameTest, EveryTruncationWaitsCleanly) {
  std::mt19937 rng(77);
  for (int round = 0; round < 16; ++round) {
    std::vector<uint8_t> bytes;
    const Frame frame = RandomFrame(&rng);
    EncodeFrame(frame, &bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(bytes.data(), cut);
      Frame out;
      EXPECT_FALSE(decoder.Next(&out)) << "cut=" << cut;
      EXPECT_TRUE(decoder.status().ok()) << "cut=" << cut;  // just waiting
      // The remainder completes the frame.
      decoder.Feed(bytes.data() + cut, bytes.size() - cut);
      ASSERT_TRUE(decoder.Next(&out)) << "cut=" << cut;
      ExpectFrameEq(out, frame);
    }
  }
}

TEST(FrameTest, MaxLengthPayloadRoundTripsAndOversizedFails) {
  // Header: version u8 + type u8 + session u64 + token u64 + offset u64 +
  // count u32.
  const size_t max_scores = (net::kMaxFramePayload - 30) / sizeof(double);
  Frame frame;
  frame.type = FrameType::kScoreDelta;
  frame.session = 7;
  frame.token = 9;
  frame.scores.assign(max_scores, 0.5);
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_TRUE(decoder.Next(&out)) << decoder.status().ToString();
  EXPECT_EQ(out.scores.size(), max_scores);

  // One more score pushes the payload over the cap: the decoder must fail
  // fast on the length prefix, not buffer or allocate the oversized frame.
  frame.scores.push_back(0.5);
  bytes.clear();
  EncodeFrame(frame, &bytes);
  FrameDecoder oversized;
  oversized.Feed(bytes.data(), bytes.size());
  EXPECT_FALSE(oversized.Next(&out));
  EXPECT_FALSE(oversized.status().ok());
}

TEST(FrameTest, MalformedFramesFailCleanly) {
  {
    // Unknown version.
    std::vector<uint8_t> bytes = {3, 0, 0, 0, 99, 4, 0};
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.status().ok());
  }
  {
    // Unknown type.
    std::vector<uint8_t> bytes = {2, 0, 0, 0, net::kWireVersion, 42};
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.status().ok());
  }
  {
    // Truncated payload: an End frame whose session field is cut short.
    std::vector<uint8_t> bytes = {5, 0, 0, 0, net::kWireVersion,
                                  static_cast<uint8_t>(FrameType::kEnd), 1,
                                  2, 3};
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.status().ok());
  }
  {
    // Trailing garbage after a valid End payload.
    std::vector<uint8_t> bytes = {11, 0, 0, 0, net::kWireVersion,
                                  static_cast<uint8_t>(FrameType::kEnd),
                                  1, 0, 0, 0, 0, 0, 0, 0, 0xee};
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.status().ok());
  }
  {
    // A string length that overruns the payload (Hello with a lying tenant
    // length) must not over-read.
    std::vector<uint8_t> bytes = {8, 0, 0, 0, net::kWireVersion,
                                  static_cast<uint8_t>(FrameType::kHello),
                                  0xff, 0xff, 0xff, 0x7f, 'h', 'i'};
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame out;
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_FALSE(decoder.status().ok());
  }
  {
    // Random garbage with a bounded length prefix: never crashes, either
    // waits for more bytes or reports a clean error.
    std::mt19937 rng(5);
    for (int round = 0; round < 200; ++round) {
      std::vector<uint8_t> bytes(4 + rng() % 128);
      for (auto& b : bytes) b = static_cast<uint8_t>(rng());
      const uint32_t small_len = rng() % 64;
      std::memcpy(bytes.data(), &small_len, sizeof(small_len));
      FrameDecoder decoder;
      decoder.Feed(bytes.data(), bytes.size());
      Frame out;
      while (decoder.Next(&out)) {
      }
      // Reaching here without asan/ubsan complaints is the assertion.
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: client -> server -> StreamingService.
// ---------------------------------------------------------------------------

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

const CausalTad* FittedCausal() {
  static const models::TrajectoryScorer* scorer = [] {
    auto owned = eval::MakeScorer("CausalTAD", Data(), Scale::kSmoke);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 17;
    owned->Fit(Data().train, options);
    return owned.release();
  }();
  return dynamic_cast<const CausalTad*>(scorer);
}

double Tol(double reference, double rel = 1e-6) {
  return rel * std::max(1.0, std::abs(reference));
}

std::vector<traj::Trip> ParityTrips() {
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 6, 7);
  const auto detours = eval::Subsample(Data().id_detour, 2, 8);
  trips.insert(trips.end(), detours.begin(), detours.end());
  return trips;
}

/// Reference scores from one single-consumer StreamingBatcher (the same
/// arithmetic the service and the wire path must reproduce).
std::vector<std::vector<double>> BatcherReference(
    const CausalTad* causal, const std::vector<traj::Trip>& trips) {
  StreamingBatcher batcher(causal);
  std::vector<StreamingSession> sessions;
  for (const auto& trip : trips) sessions.push_back(batcher.Begin(trip));
  for (size_t i = 0; i < trips.size(); ++i) {
    for (const auto segment : trips[i].route.segments) {
      sessions[i].Push(segment);
    }
    sessions[i].End();
  }
  batcher.Flush();
  std::vector<std::vector<double>> scores(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) scores[i] = sessions[i].Poll();
  return scores;
}

ServiceOptions PumpedServiceOptions() {
  ServiceOptions options;
  options.num_shards = 2;
  options.pump = true;
  options.max_session_pending = 8;
  options.batcher.max_batch_rows = 16;
  options.batcher.max_delay_ms = 0.25;
  return options;
}

TEST(NetTest, WireParityWithDirectServiceOverLoopback) {
  const CausalTad* causal = FittedCausal();
  ASSERT_NE(causal, nullptr);
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions client_options;
  client_options.max_inflight = 24;  // small window: drains interleave
  auto client = Client::FromFd(server.AddLoopbackConnection(),
                               client_options);
  ASSERT_TRUE(client->Hello().ok()) << client->status().ToString();

  // All trips stream concurrently through one connection, one point per
  // session per sweep — the service's backpressure engages against the
  // small service bounds and the client retries transparently.
  std::vector<uint64_t> ids;
  for (const auto& trip : trips) {
    ids.push_back(client->Begin(trip.route.segments.front(),
                                trip.route.segments.back(), trip.time_slot));
  }
  size_t remaining = trips.size();
  std::vector<size_t> fed(trips.size(), 0);
  while (remaining > 0) {
    remaining = 0;
    for (size_t i = 0; i < trips.size(); ++i) {
      const auto& segments = trips[i].route.segments;
      if (fed[i] >= segments.size()) continue;
      ASSERT_TRUE(client->Push(ids[i], segments[fed[i]]).ok())
          << client->status().ToString();
      if (++fed[i] < segments.size()) ++remaining;
    }
  }
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto scores = client->Finish(ids[i]);
    ASSERT_TRUE(scores.ok()) << scores.status().ToString();
    ASSERT_EQ(scores->size(), reference[i].size()) << "trip " << i;
    for (size_t k = 0; k < reference[i].size(); ++k) {
      EXPECT_NEAR((*scores)[k], reference[i][k], Tol(reference[i][k]))
          << "trip=" << i << " k=" << k + 1;
    }
  }

  const net::ServerStats stats = server.stats();
  int64_t points = 0;
  for (const auto& trip : trips) points += trip.route.size();
  EXPECT_EQ(stats.pushes_accepted, points);
  EXPECT_GT(stats.frames_received, points);  // + polls/begins/ends
  EXPECT_EQ(stats.auth_failures, 0);
  EXPECT_EQ(stats.protocol_errors, 0);
  server.Stop();
  service.Shutdown();
}

TEST(NetTest, BackpressureObservableAtClient) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 4);

  ServiceOptions options;
  options.num_shards = 1;
  options.pump = false;  // nothing drains: rejections are deterministic
  options.max_session_pending = 2;
  StreamingService service(causal, options);
  Server server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::FromFd(server.AddLoopbackConnection());
  ASSERT_TRUE(client->Hello().ok());

  const uint64_t id = client->Begin(trip.route.segments.front(),
                                    trip.route.segments.back(),
                                    trip.time_slot);
  const auto& segments = trip.route.segments;
  auto outcome = client->TryPush(id, segments[0]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kAccepted);
  outcome = client->TryPush(id, segments[1]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kAccepted);
  // The session is at the service's per-session bound.
  outcome = client->TryPush(id, segments[2]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kSessionFull);

  // Draining the shard reopens admission, and the once-rejected point can
  // be pushed again (TryPush released its seq).
  service.Flush();
  auto drained = client->Poll(id);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 2u);
  outcome = client->TryPush(id, segments[2]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kAccepted);
  service.Flush();
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 1u);  // Finish returns what Poll had not taken

  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_session_full, 1);
}

TEST(NetTest, TenantQuotaEnforcedBeforeShard) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  ASSERT_GE(trip.route.size(), 5);

  ServiceOptions options;
  options.num_shards = 1;
  options.pump = false;  // scores only exist once we Flush
  StreamingService service(causal, options);
  ServerOptions server_options;
  server_options.tenant_max_pending = 3;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::FromFd(server.AddLoopbackConnection());
  ASSERT_TRUE(client->Hello().ok());

  const uint64_t id = client->Begin(trip.route.segments.front(),
                                    trip.route.segments.back(),
                                    trip.time_slot);
  for (int k = 0; k < 3; ++k) {
    const auto outcome = client->TryPush(id, trip.route.segments[k]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(*outcome, PushOutcome::kAccepted) << "k=" << k;
  }
  // The tenant has 3 undelivered points: the quota rejects before the
  // service ever sees the push.
  auto outcome = client->TryPush(id, trip.route.segments[3]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kQuota);
  EXPECT_EQ(server.stats().rejected_quota, 1);
  EXPECT_EQ(server.stats().pushes_accepted, 3);

  // Delivering the scores returns quota headroom.
  service.Flush();
  const auto drained = client->Poll(id);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 3u);
  outcome = client->TryPush(id, trip.route.segments[3]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, PushOutcome::kAccepted);
}

TEST(NetTest, AuthTokenRequiredWhenConfigured) {
  const CausalTad* causal = FittedCausal();
  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.tenant_tokens = {{"acme", "sesame"}};
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  {
    ClientOptions bad;
    bad.tenant = "acme";
    bad.auth_token = "wrong";
    auto client = Client::FromFd(server.AddLoopbackConnection(), bad);
    const util::Status status = client->Hello();
    EXPECT_FALSE(status.ok());
  }
  {
    ClientOptions unknown;
    unknown.tenant = "evil-corp";
    unknown.auth_token = "sesame";
    auto client = Client::FromFd(server.AddLoopbackConnection(), unknown);
    EXPECT_FALSE(client->Hello().ok());
  }
  {
    // Skipping Hello entirely: the first Poll is answered with an Error.
    auto client = Client::FromFd(server.AddLoopbackConnection());
    client->Begin(0, 1, 0);
    const auto polled = client->Poll(0);
    EXPECT_FALSE(polled.ok());
  }
  {
    ClientOptions good;
    good.tenant = "acme";
    good.auth_token = "sesame";
    auto client = Client::FromFd(server.AddLoopbackConnection(), good);
    EXPECT_TRUE(client->Hello().ok());
  }
  EXPECT_GE(server.stats().auth_failures, 3);
}

TEST(NetTest, InvalidTransitionGetsErrorNotCrash) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const traj::Trip& trip = trips[0];
  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::FromFd(server.AddLoopbackConnection());
  ASSERT_TRUE(client->Hello().ok());

  const uint64_t id = client->Begin(trip.route.segments.front(),
                                    trip.route.segments.back(),
                                    trip.time_slot);
  auto outcome = client->TryPush(id, trip.route.segments[0]);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(*outcome, PushOutcome::kAccepted);
  // Feed a segment that is NOT a successor of the previous one: the server
  // must answer with an Error frame (and survive) instead of CHECK-crashing
  // in the fused decode.
  const roadnet::SegmentId bogus = trip.route.segments[0];  // self-loop
  outcome = client->TryPush(id, bogus);
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(client->status().ok());
  // The server is still alive for new connections.
  auto fresh = Client::FromFd(server.AddLoopbackConnection());
  EXPECT_TRUE(fresh->Hello().ok());
}

TEST(NetTest, TcpParitySmoke) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);
  StreamingService service(causal, PumpedServiceOptions());
  ServerOptions server_options;
  server_options.listen_port = 0;  // ephemeral
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto connected = Client::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> client = std::move(connected).value();
  ASSERT_TRUE(client->Hello().ok());
  const traj::Trip& trip = trips[0];
  const uint64_t id = client->Begin(trip.route.segments.front(),
                                    trip.route.segments.back(),
                                    trip.time_slot);
  for (const auto segment : trip.route.segments) {
    ASSERT_TRUE(client->Push(id, segment).ok());
  }
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(scores->size(), reference[0].size());
  for (size_t k = 0; k < reference[0].size(); ++k) {
    EXPECT_NEAR((*scores)[k], reference[0][k], Tol(reference[0][k]));
  }
}

TEST(NetTest, LargeScoreBacklogStreamsInChunkedDeltas) {
  const CausalTad* causal = FittedCausal();
  const roadnet::RoadNetwork& network = Data().city.network;
  const auto trips = ParityTrips();

  // A long map-matched walk (always the first legal successor), so one
  // session can build a score backlog larger than a single ScoreDelta
  // frame may carry (kMaxFramePayload / 8 ≈ 131k scores is the hard wire
  // cap; the server chunks at 8192).
  constexpr size_t kPoints = 9000;
  std::vector<roadnet::SegmentId> walk;
  walk.push_back(trips[0].route.segments.front());
  while (walk.size() < kPoints) {
    const auto successors = network.Successors(walk.back());
    ASSERT_FALSE(successors.empty());
    walk.push_back(successors.front());
  }

  ServiceOptions options;
  options.num_shards = 1;
  options.pump = true;
  options.max_session_pending = 0;  // let the backlog build
  options.max_shard_queued = 0;
  StreamingService service(causal, options);
  ServerOptions server_options;
  server_options.network = &network;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions client_options;
  client_options.max_inflight = 1 << 20;  // never poll mid-feed
  auto client = Client::FromFd(server.AddLoopbackConnection(),
                               client_options);
  ASSERT_TRUE(client->Hello().ok());

  const uint64_t id = client->Begin(walk.front(), walk.back(), 0);
  for (const auto segment : walk) {
    ASSERT_TRUE(client->Push(id, segment).ok())
        << client->status().ToString();
  }
  // Wait for the pump to score everything, so the FIRST Poll must return
  // the whole backlog — which only a chunked delta stream can deliver.
  while (service.stats().points_scored <
         static_cast<int64_t>(kPoints)) {
    std::this_thread::yield();
  }
  const auto scores = client->Finish(id);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(), kPoints);  // nothing lost, decoder never poisoned
  EXPECT_TRUE(client->status().ok());
}

TEST(NetTest, EightClientSoakOverOneServer) {
  const CausalTad* causal = FittedCausal();
  const auto trips = ParityTrips();
  const auto reference = BatcherReference(causal, trips);

  ServiceOptions options = PumpedServiceOptions();
  options.max_session_pending = 4;  // keep backpressure engaged
  StreamingService service(causal, options);
  ServerOptions server_options;
  server_options.network = &Data().city.network;
  Server server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::vector<std::vector<std::vector<double>>> scores(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions client_options;
      client_options.max_inflight = 16;
      auto client = Client::FromFd(server.AddLoopbackConnection(),
                                   client_options);
      if (!client->Hello().ok()) {
        errors[c] = client->status().ToString();
        return;
      }
      scores[c].resize(trips.size());
      // Each client streams every parity trip end to end.
      for (size_t i = 0; i < trips.size(); ++i) {
        const auto& segments = trips[i].route.segments;
        const uint64_t id = client->Begin(segments.front(), segments.back(),
                                          trips[i].time_slot);
        for (const auto segment : segments) {
          const util::Status status = client->Push(id, segment);
          if (!status.ok()) {
            errors[c] = status.ToString();
            return;
          }
        }
        auto finished = client->Finish(id);
        if (!finished.ok()) {
          errors[c] = finished.status().ToString();
          return;
        }
        scores[c][i] = *std::move(finished);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(errors[c], "") << "client " << c;
    for (size_t i = 0; i < trips.size(); ++i) {
      ASSERT_EQ(scores[c][i].size(), reference[i].size())
          << "client=" << c << " trip=" << i;
      for (size_t k = 0; k < reference[i].size(); ++k) {
        EXPECT_NEAR(scores[c][i][k], reference[i][k], Tol(reference[i][k]))
            << "client=" << c << " trip=" << i << " k=" << k + 1;
      }
    }
  }
  // No lost or duplicated deltas anywhere: every accepted push produced
  // exactly one score, every client received exactly its own streams.
  int64_t points = 0;
  for (const auto& trip : trips) points += trip.route.size();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.pushes_accepted, kClients * points);
  EXPECT_EQ(stats.protocol_errors, 0);
  server.Stop();
  service.Shutdown();
  const serve::ServiceStats service_stats = service.stats();
  EXPECT_EQ(service_stats.points_scored, kClients * points);
}

}  // namespace
}  // namespace causaltad
