// Kernel-substrate tests: every SIMD backend the host supports must
// reproduce the baseline table within 1e-6 relative (FMA contraction and
// the AVX-512 16-lane reduction are the only permitted differences), the
// int8 quantization path must round-trip within its scale bound and score
// within 1e-3 of fp32 end to end, and quantized checkpoints must reload
// into the exact serving-path values (plus v1 fp32 compatibility).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "nn/autograd.h"
#include "nn/checkpoint.h"
#include "nn/kernels/kernels.h"
#include "nn/modules.h"
#include "util/binary_io.h"
#include "util/random.h"

namespace causaltad {
namespace {

using nn::kernels::Get;
using nn::kernels::Isa;
using nn::kernels::Kernels;
using nn::kernels::QuantizeRowsI8;
using nn::kernels::SetIsa;
using nn::kernels::Supported;

/// Pins a backend for one scope and restores the host's best table after.
class IsaScope {
 public:
  explicit IsaScope(Isa isa) { SetIsa(isa); }
  ~IsaScope() { SetIsa(Best()); }

  static Isa Best() {
    if (Supported(Isa::kAvx512)) return Isa::kAvx512;
    if (Supported(Isa::kAvx2)) return Isa::kAvx2;
    return Isa::kBaseline;
  }
};

/// Restores the int8-embeddings switch (and nothing else) on scope exit.
class Int8Scope {
 public:
  explicit Int8Scope(bool enabled) { nn::SetInt8Embeddings(enabled); }
  ~Int8Scope() { nn::SetInt8Embeddings(false); }
};

std::vector<float> RandomVec(int64_t n, uint64_t seed, float scale = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Gaussian()) * scale;
  return v;
}

void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 double rel, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    const double tol = rel * std::max(1.0, static_cast<double>(std::abs(want[i])));
    EXPECT_NEAR(got[i], want[i], tol) << what << " [" << i << "]";
  }
}

// ---------------------------------------------------------------------------
// Cross-ISA parity: every supported table vs baseline.
// ---------------------------------------------------------------------------

/// Runs every kernel in `kern` over fixed random inputs and returns the
/// concatenated outputs, so two tables can be compared wholesale. Sizes are
/// odd on purpose (not lane multiples) to exercise the scalar tails.
std::vector<float> KernelFingerprint(const Kernels& kern) {
  constexpr int64_t m = 5, k = 37, n = 23, batch = 3, hd = 19;
  const std::vector<float> a = RandomVec(m * k, 101);
  const std::vector<float> b = RandomVec(k * n, 102);
  const std::vector<float> bt = [&] {
    std::vector<float> t(n * k);
    for (int64_t i = 0; i < k; ++i) {
      for (int64_t j = 0; j < n; ++j) t[j * k + i] = b[i * n + j];
    }
    return t;
  }();
  std::vector<float> out;
  auto emit = [&out](const std::vector<float>& v) {
    out.insert(out.end(), v.begin(), v.end());
  };

  out.push_back(kern.dot(a.data(), a.data() + k, k));

  std::vector<float> packed(k * m);
  kern.pack_transpose(a.data(), m, k, packed.data());
  emit(packed);

  std::vector<float> mm(m * n, 0.5f);
  kern.matmul_packed(a.data(), b.data(), mm.data(), m, k, n,
                     /*accumulate=*/false, /*b_pretransposed=*/false);
  emit(mm);
  kern.matmul_packed(a.data(), bt.data(), mm.data(), m, k, n,
                     /*accumulate=*/true, /*b_pretransposed=*/true);
  emit(mm);

  std::vector<float> dw(k * n, 0.25f);
  const std::vector<float> g = RandomVec(m * n, 103);
  kern.add_matmul_transposed_a(a.data(), g.data(), dw.data(), m, k, n);
  emit(dw);

  const std::vector<float> x = RandomVec(257, 104, 2.0f);
  std::vector<float> t(x.size());
  kern.exp_vec(x.data(), t.data(), x.size());
  emit(t);
  kern.tanh_vec(x.data(), t.data(), x.size());
  emit(t);
  kern.sigmoid_vec(x.data(), t.data(), x.size());
  emit(t);

  std::vector<float> sm(k);
  kern.softmax_row(a.data(), k, sm.data());
  emit(sm);
  out.push_back(kern.softmax_nll_row(a.data(), k, 11));
  out.push_back(kern.kl_standard_normal_row(a.data(), a.data() + k, k));

  const std::vector<float> h = RandomVec(batch * hd, 105);
  const std::vector<float> bz = RandomVec(hd, 106);
  const std::vector<float> br = RandomVec(hd, 107);
  const std::vector<float> bh = RandomVec(hd, 108);
  std::vector<float> z = RandomVec(batch * hd, 109);
  std::vector<float> r = RandomVec(batch * hd, 110);
  std::vector<float> rh(batch * hd);
  kern.gru_gates_zr(h.data(), bz.data(), br.data(), z.data(), r.data(),
                    rh.data(), batch, hd);
  emit(z);
  emit(r);
  emit(rh);
  std::vector<float> c = RandomVec(batch * hd, 111);
  std::vector<float> blended(batch * hd);
  const std::vector<uint8_t> finished = {0, 1, 0};
  kern.gru_out_blend(h.data(), bh.data(), z.data(), c.data(), blended.data(),
                     finished.data(), batch, hd);
  emit(c);
  emit(blended);

  const std::vector<float> table = RandomVec(29 * 13, 112);
  const std::vector<int32_t> ids = {0, 7, 28, 7, 3};
  std::vector<float> rows(ids.size() * 13);
  kern.gather_rows_f32(table.data(), 13, ids.data(),
                       static_cast<int64_t>(ids.size()), rows.data());
  emit(rows);

  std::vector<int8_t> q(29 * 13);
  std::vector<float> scales(29);
  QuantizeRowsI8(table.data(), 29, 13, q.data(), scales.data());
  kern.dequant_rows_i8(q.data(), scales.data(), 13, ids.data(),
                       static_cast<int64_t>(ids.size()), rows.data());
  emit(rows);

  std::vector<int8_t> qa(m * k);
  std::vector<float> qs(m);
  QuantizeRowsI8(a.data(), m, k, qa.data(), qs.data());
  std::vector<float> qmm(m * n);
  kern.matmul_i8(qa.data(), qs.data(), b.data(), qmm.data(), m, k, n);
  emit(qmm);

  return out;
}

TEST(KernelIsaParityTest, SupportedTablesMatchBaseline) {
  const std::vector<float> reference = KernelFingerprint(Get(Isa::kBaseline));
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (!Supported(isa)) {
      GTEST_LOG_(INFO) << nn::kernels::IsaName(isa)
                       << " unsupported on this host; skipped";
      continue;
    }
    // 1e-5, not 1e-6: FMA contraction error is relative to the partial
    // products, so a cancellation-heavy accumulation (sum 0.05 from O(1)
    // terms over k=37) can sit a few ULP-of-the-products away from the
    // baseline sum.
    ExpectClose(KernelFingerprint(Get(isa)), reference, 1e-5,
                nn::kernels::IsaName(isa));
  }
}

TEST(KernelIsaParityTest, FingerprintIsDeterministicWithinOneTable) {
  const Kernels& kern = nn::kernels::Active();
  const std::vector<float> a = KernelFingerprint(kern);
  const std::vector<float> b = KernelFingerprint(kern);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(KernelIsaTest, SetIsaPinsActiveTable) {
  {
    IsaScope pin(Isa::kBaseline);
    EXPECT_EQ(nn::kernels::ActiveIsa(), Isa::kBaseline);
    EXPECT_STREQ(nn::kernels::Active().name, "baseline");
  }
  EXPECT_EQ(nn::kernels::ActiveIsa(), IsaScope::Best());
  EXPECT_TRUE(Supported(Isa::kBaseline));  // always available
}

// ---------------------------------------------------------------------------
// int8 quantization.
// ---------------------------------------------------------------------------

TEST(QuantizeRowsI8Test, RoundTripWithinScaleBound) {
  constexpr int64_t rows = 17, d = 31;
  const std::vector<float> src = RandomVec(rows * d, 201, 0.8f);
  std::vector<int8_t> q(rows * d);
  std::vector<float> scales(rows);
  QuantizeRowsI8(src.data(), rows, d, q.data(), scales.data());
  for (int64_t r = 0; r < rows; ++r) {
    float absmax = 0.0f;
    for (int64_t c = 0; c < d; ++c) {
      absmax = std::max(absmax, std::abs(src[r * d + c]));
      EXPECT_NEAR(static_cast<float>(q[r * d + c]) * scales[r], src[r * d + c],
                  0.5f * scales[r] + 1e-7f)
          << r << "," << c;
    }
    EXPECT_FLOAT_EQ(scales[r], absmax / 127.0f);
  }
}

TEST(QuantizeRowsI8Test, AllZeroRowGetsUnitScale) {
  const std::vector<float> src(3 * 8, 0.0f);
  std::vector<int8_t> q(3 * 8, 99);
  std::vector<float> scales(3, -1.0f);
  QuantizeRowsI8(src.data(), 3, 8, q.data(), scales.data());
  for (float s : scales) EXPECT_FLOAT_EQ(s, 1.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeRowsI8Test, RequantizingDequantizedTableIsExact) {
  constexpr int64_t rows = 9, d = 16;
  const std::vector<float> src = RandomVec(rows * d, 202);
  std::vector<int8_t> q(rows * d);
  std::vector<float> scales(rows);
  QuantizeRowsI8(src.data(), rows, d, q.data(), scales.data());
  std::vector<float> deq(rows * d);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < d; ++c) {
      deq[r * d + c] = static_cast<float>(q[r * d + c]) * scales[r];
    }
  }
  std::vector<int8_t> q2(rows * d);
  std::vector<float> scales2(rows);
  QuantizeRowsI8(deq.data(), rows, d, q2.data(), scales2.data());
  EXPECT_EQ(q, q2);
  for (int64_t r = 0; r < rows; ++r) EXPECT_EQ(scales[r], scales2[r]) << r;
}

TEST(Int8MatmulTest, MatchesDequantizeThenMatmul) {
  constexpr int64_t m = 7, k = 24, n = 11;
  const Kernels& kern = nn::kernels::Active();
  const std::vector<float> a = RandomVec(m * k, 203);
  const std::vector<float> b = RandomVec(k * n, 204);
  std::vector<int8_t> qa(m * k);
  std::vector<float> qs(m);
  QuantizeRowsI8(a.data(), m, k, qa.data(), qs.data());

  std::vector<float> deq(m * k);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      deq[i * k + j] = static_cast<float>(qa[i * k + j]) * qs[i];
    }
  }
  std::vector<float> want(m * n);
  kern.matmul_packed(deq.data(), b.data(), want.data(), m, k, n,
                     /*accumulate=*/false, /*b_pretransposed=*/false);
  std::vector<float> got(m * n);
  kern.matmul_i8(qa.data(), qs.data(), b.data(), got.data(), m, k, n);
  // Same int8 operands; the only divergence is scale-after-accumulate vs
  // scale-per-element rounding.
  ExpectClose(got, want, 1e-5, "matmul_i8");
}

// ---------------------------------------------------------------------------
// int8 embedding serving reads.
// ---------------------------------------------------------------------------

TEST(Int8EmbeddingTest, NoGradReadsServeDequantizedRows) {
  util::Rng rng(31);
  nn::Embedding emb("emb", /*vocab=*/23, /*dim=*/12, &rng);
  Int8Scope int8(true);
  emb.RefreshQuantized();
  ASSERT_TRUE(emb.Int8Active());

  const std::vector<int32_t> ids = {0, 5, 22, 5};
  std::vector<float> want(ids.size() * 12);
  const Kernels& kern = nn::kernels::Active();
  kern.dequant_rows_i8(emb.quantized_rows(), emb.row_scales(), 12, ids.data(),
                       static_cast<int64_t>(ids.size()), want.data());

  nn::InferenceGuard guard;
  const nn::Var out = emb.Forward(ids);
  std::vector<float> raw(ids.size() * 12);
  emb.GatherRowValues(ids, raw.data());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(out.value()[static_cast<int64_t>(i)], want[i]) << i;
    EXPECT_EQ(raw[i], want[i]) << i;
  }
}

TEST(Int8EmbeddingTest, TapedReadsStayFp32) {
  util::Rng rng(32);
  nn::Embedding emb("emb", 17, 8, &rng);
  Int8Scope int8(true);
  emb.RefreshQuantized();
  const std::vector<int32_t> ids = {3, 9};
  const nn::Var out = emb.Forward(ids);  // taping: must read the fp32 master
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(out.value()[i * 8 + c], emb.table().value()[ids[i] * 8 + c]);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end int8 scoring parity on the fitted model.
// ---------------------------------------------------------------------------

const eval::ExperimentData& Data() {
  static const eval::ExperimentData* data = new eval::ExperimentData(
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke)));
  return *data;
}

core::CausalTad& FittedModel() {
  static core::CausalTad* model = [] {
    core::CausalTadConfig cfg;
    cfg.tg.emb_dim = 16;
    cfg.tg.hidden_dim = 24;
    cfg.tg.latent_dim = 12;
    cfg.rp.emb_dim = 12;
    cfg.rp.hidden_dim = 24;
    cfg.rp.latent_dim = 8;
    cfg.scaling_samples = 6;
    auto* m = new core::CausalTad(&Data().city.network, cfg);
    models::FitOptions options;
    options.epochs = 2;
    options.lr = 3e-3f;
    options.seed = 21;
    m->Fit(eval::Subsample(Data().train, 64, 5), options);
    return m;
  }();
  return *model;
}

TEST(Int8ScoringParityTest, QuantizedScoresWithinOnePermilOfFp32) {
  core::CausalTad& model = FittedModel();
  std::vector<traj::Trip> trips = eval::Subsample(Data().id_test, 6, 3);
  const auto detours = eval::Subsample(Data().id_detour, 3, 4);
  trips.insert(trips.end(), detours.begin(), detours.end());
  std::vector<int64_t> prefixes;
  for (const traj::Trip& trip : trips) prefixes.push_back(trip.route.size());

  const std::vector<double> fp32 = model.ScoreBatch(trips, prefixes);

  Int8Scope int8(true);
  model.RebuildServingCache();  // refreshes the quantized tables
  const std::vector<double> quant = model.ScoreBatch(trips, prefixes);
  ASSERT_EQ(quant.size(), fp32.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(quant[i], fp32[i], 1e-3 * std::max(1.0, std::abs(fp32[i])))
        << "trip " << i;
  }
  // Per-trip Score goes through the same no-grad serving reads, so the
  // batched and one-at-a-time int8 paths must agree to float precision.
  for (size_t i = 0; i < trips.size(); ++i) {
    const double one = model.Score(trips[i], prefixes[i]);
    EXPECT_NEAR(quant[i], one, 1e-4 * std::max(1.0, std::abs(one)))
        << "trip " << i;
  }

  nn::SetInt8Embeddings(false);
  const std::vector<double> back = model.ScoreBatch(trips, prefixes);
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_EQ(back[i], fp32[i]) << "fp32 path must be untouched, trip " << i;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint v2: dtype-tagged records, quantized round-trip, v1 compat.
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CheckpointV2Test, QuantizedSaveRestoresServingValues) {
  const std::string path = TempPath("causaltad_ckpt_i8.bin");
  util::Rng rng(61);
  nn::Embedding a("emb", 19, 10, &rng);
  a.RefreshQuantized();
  nn::SaveOptions options;
  options.quantize_embeddings = true;
  ASSERT_TRUE(nn::SaveCheckpoint(path, a, options).ok());

  util::Rng rng2(999);
  nn::Embedding b("emb", 19, 10, &rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  // The loaded fp32 table is the dequantized rows: every value within the
  // quantization bound, and re-quantizing reproduces the saved bytes.
  std::vector<int8_t> q(19 * 10);
  std::vector<float> scales(19);
  QuantizeRowsI8(a.table().value().vec().data(), 19, 10, q.data(),
                 scales.data());
  for (int64_t r = 0; r < 19; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      EXPECT_EQ(b.table().value()[r * 10 + c],
                static_cast<float>(q[r * 10 + c]) * scales[r])
          << r << "," << c;
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointV2Test, QuantizedCheckpointRoundTripsBitIdentically) {
  const std::string p1 = TempPath("causaltad_ckpt_i8_rt1.bin");
  const std::string p2 = TempPath("causaltad_ckpt_i8_rt2.bin");
  util::Rng rng(62);
  nn::Embedding a("emb", 11, 6, &rng);
  a.RefreshQuantized();
  nn::SaveOptions options;
  options.quantize_embeddings = true;
  ASSERT_TRUE(nn::SaveCheckpoint(p1, a, options).ok());

  util::Rng rng2(63);
  nn::Embedding b("emb", 11, 6, &rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(p1, &b).ok());
  b.RefreshQuantized();
  ASSERT_TRUE(nn::SaveCheckpoint(p2, b, options).ok());

  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::string c1((std::istreambuf_iterator<char>(f1)),
                       std::istreambuf_iterator<char>());
  const std::string c2((std::istreambuf_iterator<char>(f2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(c1, c2);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(CheckpointV2Test, UnquantizedSaveIsExactAndDefault) {
  const std::string path = TempPath("causaltad_ckpt_f32.bin");
  util::Rng rng(64);
  nn::Embedding a("emb", 13, 7, &rng);
  a.RefreshQuantized();  // must NOT leak into a default (fp32) save
  ASSERT_TRUE(nn::SaveCheckpoint(path, a).ok());
  util::Rng rng2(65);
  nn::Embedding b("emb", 13, 7, &rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  for (int64_t i = 0; i < a.table().value().numel(); ++i) {
    EXPECT_EQ(b.table().value()[i], a.table().value()[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(CheckpointV2Test, ReadsVersion1Checkpoints) {
  const std::string path = TempPath("causaltad_ckpt_v1.bin");
  util::Rng rng(66);
  nn::Embedding a("emb", 9, 5, &rng);
  {
    // Hand-write the v1 format: untagged (name, shape, f32 data) records.
    util::BinaryWriter writer(path, /*magic=*/0xCA057AD0, /*version=*/1);
    const auto params = a.NamedParameters();
    writer.WriteU64(params.size());
    for (const nn::NamedParam& p : params) {
      writer.WriteString(p.name);
      const auto& shape = p.var.value().shape();
      writer.WriteU64(shape.size());
      for (int64_t d : shape) writer.WriteI64(d);
      writer.WriteFloats(p.var.value().vec());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  util::Rng rng2(67);
  nn::Embedding b("emb", 9, 5, &rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(path, &b).ok());
  for (int64_t i = 0; i < a.table().value().numel(); ++i) {
    EXPECT_EQ(b.table().value()[i], a.table().value()[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(CheckpointV2Test, RejectsUnknownVersions) {
  const std::string path = TempPath("causaltad_ckpt_v9.bin");
  {
    util::BinaryWriter writer(path, /*magic=*/0xCA057AD0, /*version=*/9);
    writer.WriteU64(0);
    ASSERT_TRUE(writer.Close().ok());
  }
  util::Rng rng(68);
  nn::Embedding b("emb", 3, 3, &rng);
  EXPECT_FALSE(nn::LoadCheckpoint(path, &b).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace causaltad
