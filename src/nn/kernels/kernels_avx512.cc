// AVX-512 backend: 16 accumulator lanes so each lane-loop pass is one
// 512-bit FMA. Compiled with -mavx512f/bw/vl/dq -mfma (set per-file in
// CMakeLists.txt); only referenced after a CPUID check.

#define CAUSALTAD_KERNELS_NS avx512
#define CAUSALTAD_KERNELS_NAME "avx512"
#define CAUSALTAD_KERNELS_ISA ::causaltad::nn::kernels::Isa::kAvx512
#define CAUSALTAD_KERNELS_LANES 16

#include "nn/kernels/kernel_impl.inc"
