#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "eval/datasets.h"
#include "eval/harness.h"

namespace causaltad {
namespace eval {
namespace {

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

TEST(MakeScorerTest, CoversAllPaperMethods) {
  std::vector<std::string> names = BaselineNames();
  names.push_back(kCausalTadName);
  ASSERT_EQ(names.size(), 8u);  // 7 baselines + CausalTAD, as in the tables
  for (const std::string& name : names) {
    auto scorer = MakeScorer(name, Data(), Scale::kSmoke);
    ASSERT_NE(scorer, nullptr) << name;
    EXPECT_EQ(scorer->Name(), name);
  }
}

TEST(FitOptionsTest, ScalesEpochs) {
  EXPECT_LT(FitOptionsFor(Scale::kSmoke).epochs,
            FitOptionsFor(Scale::kDefault).epochs);
  EXPECT_LT(FitOptionsFor(Scale::kDefault).epochs,
            FitOptionsFor(Scale::kFull).epochs);
}

TEST(FitOrLoadTest, SecondCallHitsTheCache) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "causaltad_cache_test")
          .string();
  std::filesystem::remove_all(cache);
  setenv("CAUSALTAD_CACHE_DIR", cache.c_str(), 1);
  unsetenv("CAUSALTAD_NO_CACHE");

  auto first = FitOrLoad("VSAE", Data(), "testcity", Scale::kSmoke);
  ASSERT_TRUE(std::filesystem::exists(cache + "/testcity_smoke_VSAE.bin"));
  auto second = FitOrLoad("VSAE", Data(), "testcity", Scale::kSmoke);
  // Cached reload must reproduce the fitted model's scores exactly.
  for (int i = 0; i < 5; ++i) {
    const traj::Trip& t = Data().id_test[i];
    EXPECT_NEAR(first->ScoreFull(t), second->ScoreFull(t), 1e-6);
  }
  unsetenv("CAUSALTAD_CACHE_DIR");
  std::filesystem::remove_all(cache);
}

TEST(FitOrLoadTest, NoCacheEnvSkipsDisk) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "causaltad_cache_test2")
          .string();
  std::filesystem::remove_all(cache);
  setenv("CAUSALTAD_CACHE_DIR", cache.c_str(), 1);
  setenv("CAUSALTAD_NO_CACHE", "1", 1);
  auto scorer = FitOrLoad("iBOAT", Data(), "testcity", Scale::kSmoke);
  EXPECT_FALSE(std::filesystem::exists(cache + "/testcity_smoke_iBOAT.bin"));
  unsetenv("CAUSALTAD_NO_CACHE");
  unsetenv("CAUSALTAD_CACHE_DIR");
  std::filesystem::remove_all(cache);
}

TEST(ScoreSetTest, ObservedRatioShortensPrefixes) {
  auto scorer = MakeScorer("iBOAT", Data(), Scale::kSmoke);
  scorer->Fit(Data().train, FitOptionsFor(Scale::kSmoke));
  // Detour anomalies are mid-trip, so a 10% prefix must score differently
  // from the full trajectory for most of them (normal trips may score 0 at
  // both prefixes under iBOAT, hence the anomaly set).
  const auto full = ScoreSet(*scorer, Data().id_detour, 1.0);
  const auto tiny = ScoreSet(*scorer, Data().id_detour, 0.1);
  ASSERT_EQ(full.size(), tiny.size());
  int64_t differing = 0;
  for (size_t i = 0; i < full.size(); ++i) {
    differing += (full[i] != tiny[i]);
  }
  EXPECT_GT(differing, static_cast<int64_t>(full.size()) / 2);
}

TEST(EvaluateComboTest, ProducesSaneMetrics) {
  auto scorer = MakeScorer("iBOAT", Data(), Scale::kSmoke);
  scorer->Fit(Data().train, FitOptionsFor(Scale::kSmoke));
  const EvalResult r =
      EvaluateCombo(*scorer, Data().id_test, Data().id_detour, 1.0);
  EXPECT_GT(r.roc_auc, 0.0);
  EXPECT_LE(r.roc_auc, 1.0);
  EXPECT_GT(r.pr_auc, 0.0);
  EXPECT_LE(r.pr_auc, 1.0);
  EXPECT_EQ(r.num_normal, static_cast<int64_t>(Data().id_test.size()));
  EXPECT_EQ(r.num_anomaly, static_cast<int64_t>(Data().id_detour.size()));
}

TEST(TablePrinterTest, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Fmt(0.93714, 4), "0.9371");
  EXPECT_EQ(TablePrinter::Fmt(0.5, 1), "0.5");
  EXPECT_EQ(TablePrinter::Fmt(12.3456, 2), "12.35");
}

TEST(ScaleTest, EnvParsing) {
  setenv("CAUSALTAD_BENCH_SCALE", "smoke", 1);
  EXPECT_EQ(ScaleFromEnv(), Scale::kSmoke);
  setenv("CAUSALTAD_BENCH_SCALE", "full", 1);
  EXPECT_EQ(ScaleFromEnv(), Scale::kFull);
  setenv("CAUSALTAD_BENCH_SCALE", "anything-else", 1);
  EXPECT_EQ(ScaleFromEnv(), Scale::kDefault);
  unsetenv("CAUSALTAD_BENCH_SCALE");
  EXPECT_EQ(ScaleFromEnv(), Scale::kDefault);
}

}  // namespace
}  // namespace eval
}  // namespace causaltad
