#ifndef CAUSALTAD_OBS_TRACE_H_
#define CAUSALTAD_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace causaltad {
namespace obs {

/// One recorded span of a traced point's journey. A trace id is minted at
/// the client on a sampled Push, carried in the protocol v4 Push extension
/// through router legs to the backend shard, and every tier appends its
/// span: client_push_rtt (root), router_leg, server_dispatch, queue_wait,
/// compute, emit. `where` is free-form placement detail ("backend=1",
/// "shard=0"); timestamps are process-steady-clock milliseconds.
struct Span {
  uint64_t trace_id = 0;
  std::string stage;
  std::string where;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

/// Steady-clock now in milliseconds — the shared span timebase.
double TraceNowMs();

/// Bounded ring buffer of spans plus a slow-request log. Record() is a
/// short critical section; traces are sampled, so the lock is off the
/// un-sampled hot path entirely (trace_id == 0 returns before it).
///
/// The slow log: when a ROOT span (the client's push→score round trip)
/// finishes over slow_threshold_ms, the full span chain for that trace is
/// copied out of the ring into a bounded side log — the flight recorder
/// for tail-latency forensics.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  /// The shared process-wide tracer (what every component defaults to, so
  /// one dump holds the whole in-process chain).
  static Tracer* Default();

  /// Records one span. No-op when trace_id is 0 or obs::Enabled() is off.
  /// `root = true` marks the trace's end-to-end span and triggers the slow
  /// log check.
  void Record(uint64_t trace_id, const std::string& stage,
              const std::string& where, double start_ms, double duration_ms,
              bool root = false);

  /// Root spans slower than this are captured into the slow log with their
  /// full chains; <= 0 disables (the default).
  void set_slow_threshold_ms(double ms);

  /// All spans recorded for `trace_id` still in the ring, in record order.
  std::vector<Span> SpansFor(uint64_t trace_id) const;

  /// Every span in the ring as a JSON array — the single dump a span chain
  /// is reconstructed from: [{"trace_id": ..., "stage": ..., "where": ...,
  /// "start_ms": ..., "duration_ms": ...}, ...].
  std::string DumpJson() const;

  /// The slow log as a JSON array of {root, spans[]} chains.
  std::string SlowLogJson() const;

  /// Spans recorded since construction (ring overwrites do not decrement).
  int64_t recorded() const;
  int64_t slow_chains() const;

  void Clear();

 private:
  static std::string SpanJson(const Span& span);

  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t capacity_;
  size_t next_ = 0;
  int64_t recorded_ = 0;
  double slow_threshold_ms_ = 0.0;
  struct SlowChain {
    Span root;
    std::vector<Span> spans;
  };
  std::vector<SlowChain> slow_;
};

}  // namespace obs
}  // namespace causaltad

#endif  // CAUSALTAD_OBS_TRACE_H_
