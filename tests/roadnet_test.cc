#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "roadnet/grid_city.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace causaltad {
namespace roadnet {
namespace {

// A 2x2 square of two-way streets:
//   2 --- 3
//   |     |
//   0 --- 1
RoadNetwork MakeSquare() {
  RoadNetworkBuilder b;
  const geo::LatLon base{30.0, 104.0};
  b.AddNode(base);
  b.AddNode({30.0, 104.003});
  b.AddNode({30.003, 104.0});
  b.AddNode({30.003, 104.003});
  b.AddTwoWaySegment(0, 1, RoadClass::kLocal, 8.0f, 1.0f);
  b.AddTwoWaySegment(0, 2, RoadClass::kLocal, 8.0f, 1.0f);
  b.AddTwoWaySegment(1, 3, RoadClass::kLocal, 8.0f, 1.0f);
  b.AddTwoWaySegment(2, 3, RoadClass::kLocal, 8.0f, 1.0f);
  return b.Build();
}

TEST(RoadNetworkTest, BasicCounts) {
  RoadNetwork net = MakeSquare();
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.num_segments(), 8);
}

TEST(RoadNetworkTest, TwoWaySegmentsAreReverseTwins) {
  RoadNetwork net = MakeSquare();
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    const Segment& seg = net.segment(s);
    ASSERT_NE(seg.reverse, kInvalidSegment);
    const Segment& twin = net.segment(seg.reverse);
    EXPECT_EQ(twin.from, seg.to);
    EXPECT_EQ(twin.to, seg.from);
    EXPECT_EQ(twin.reverse, s);
  }
}

TEST(RoadNetworkTest, OutSegmentsLeaveTheNode) {
  RoadNetwork net = MakeSquare();
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    for (SegmentId s : net.OutSegments(n)) {
      EXPECT_EQ(net.segment(s).from, n);
    }
  }
}

TEST(RoadNetworkTest, InSegmentsEnterTheNode) {
  RoadNetwork net = MakeSquare();
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    for (SegmentId s : net.InSegments(n)) {
      EXPECT_EQ(net.segment(s).to, n);
    }
  }
}

TEST(RoadNetworkTest, SuccessorsExcludeUTurn) {
  RoadNetwork net = MakeSquare();
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    for (SegmentId nxt : net.Successors(s)) {
      EXPECT_EQ(net.segment(nxt).from, net.segment(s).to);
      EXPECT_NE(nxt, net.segment(s).reverse);
    }
  }
}

TEST(RoadNetworkTest, IsSuccessorAgreesWithList) {
  RoadNetwork net = MakeSquare();
  for (SegmentId a = 0; a < net.num_segments(); ++a) {
    std::set<SegmentId> succ(net.Successors(a).begin(),
                             net.Successors(a).end());
    for (SegmentId b = 0; b < net.num_segments(); ++b) {
      EXPECT_EQ(net.IsSuccessor(a, b), succ.count(b) > 0);
    }
  }
}

TEST(RoadNetworkTest, FindSegment) {
  RoadNetwork net = MakeSquare();
  const SegmentId s = net.FindSegment(0, 1);
  ASSERT_NE(s, kInvalidSegment);
  EXPECT_EQ(net.segment(s).from, 0);
  EXPECT_EQ(net.segment(s).to, 1);
  EXPECT_EQ(net.FindSegment(0, 3), kInvalidSegment);
}

TEST(RoadNetworkTest, StronglyConnected) {
  EXPECT_TRUE(MakeSquare().IsStronglyConnected());
}

TEST(RoadNetworkTest, OneWayOnlyBreaksStrongConnectivity) {
  RoadNetworkBuilder b;
  b.AddNode({30.0, 104.0});
  b.AddNode({30.0, 104.003});
  b.AddSegment(0, 1, RoadClass::kLocal, 8.0f, 1.0f);
  EXPECT_FALSE(b.Build().IsStronglyConnected());
}

TEST(RoadNetworkTest, CsvRoundTrip) {
  RoadNetwork net = MakeSquare();
  const std::string base =
      (std::filesystem::temp_directory_path() / "causaltad_net_test").string();
  ASSERT_TRUE(net.SaveCsv(base).ok());
  auto loaded = RoadNetwork::LoadCsv(base);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), net.num_nodes());
  EXPECT_EQ(loaded->num_segments(), net.num_segments());
  for (SegmentId s = 0; s < net.num_segments(); ++s) {
    EXPECT_EQ(loaded->segment(s).from, net.segment(s).from);
    EXPECT_EQ(loaded->segment(s).to, net.segment(s).to);
    EXPECT_EQ(loaded->segment(s).reverse, net.segment(s).reverse);
    EXPECT_NEAR(loaded->segment(s).length_m, net.segment(s).length_m, 1e-2);
  }
  std::remove((base + ".nodes.csv").c_str());
  std::remove((base + ".segments.csv").c_str());
}

TEST(ShortestPathTest, DirectNeighbor) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  auto r = engine.NodeToNode(0, 1);
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.segments.size(), 1u);
  EXPECT_EQ(net.segment(r.segments[0]).from, 0);
  EXPECT_EQ(net.segment(r.segments[0]).to, 1);
}

TEST(ShortestPathTest, SameNodeIsEmptyRoute) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  auto r = engine.NodeToNode(2, 2);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.segments.empty());
  EXPECT_EQ(r.cost, 0.0);
}

TEST(ShortestPathTest, RespectsBlockedSegments) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  // Block 0->1 (and reverse); path to 1 must go around via 2,3.
  std::vector<uint8_t> blocked(net.num_segments(), 0);
  const SegmentId direct = net.FindSegment(0, 1);
  blocked[direct] = 1;
  blocked[net.segment(direct).reverse] = 1;
  auto r = engine.NodeToNode(0, 1, {}, &blocked);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.segments.size(), 3u);
}

TEST(ShortestPathTest, CustomCostsChangeTheRoute) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  std::vector<double> costs(net.num_segments(), 1.0);
  costs[net.FindSegment(0, 1)] = 100.0;  // make the direct hop expensive
  auto r = engine.NodeToNode(0, 1, costs);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.segments.size(), 3u);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

TEST(ShortestPathTest, SegmentToSegmentRespectsSuccessorRelation) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  const SegmentId a = net.FindSegment(0, 1);
  const SegmentId b = net.FindSegment(3, 2);
  auto r = engine.SegmentToSegment(a, b);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.segments.front(), a);
  EXPECT_EQ(r.segments.back(), b);
  for (size_t i = 1; i < r.segments.size(); ++i) {
    EXPECT_TRUE(net.IsSuccessor(r.segments[i - 1], r.segments[i]));
  }
}

TEST(ShortestPathTest, SegmentSearchTreeConsistentWithPointQuery) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  const SegmentId src = net.FindSegment(0, 1);
  const auto tree = engine.SegmentSearch(src);
  for (SegmentId dst = 0; dst < net.num_segments(); ++dst) {
    auto direct = engine.SegmentToSegment(src, dst);
    if (!direct.found) {
      EXPECT_TRUE(std::isinf(tree.dist[dst]));
      continue;
    }
    EXPECT_NEAR(tree.dist[dst], direct.cost, 1e-6);
    auto path = ShortestPathEngine::ReconstructPath(tree, dst);
    EXPECT_EQ(path.size(), direct.segments.size());
  }
}

TEST(ShortestPathTest, HopDistance) {
  RoadNetwork net = MakeSquare();
  ShortestPathEngine engine(&net);
  EXPECT_EQ(engine.HopDistance(0, 3), 2);
  EXPECT_EQ(engine.HopDistance(0, 0), 0);
}

// ---------------------------------------------------------------------------
// Grid city properties over several configurations.
// ---------------------------------------------------------------------------

class GridCityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridCityPropertyTest, ConnectedAndWellFormed) {
  GridCityConfig cfg;
  cfg.rows = 8;
  cfg.cols = 9;
  cfg.seed = GetParam();
  cfg.drop_local_street_prob = 0.10;
  City city = BuildGridCity(cfg);
  EXPECT_EQ(city.network.num_nodes(), 72);
  EXPECT_TRUE(city.network.IsStronglyConnected());
  // All preferences positive, node popularity positive.
  for (SegmentId s = 0; s < city.network.num_segments(); ++s) {
    EXPECT_GT(city.network.segment(s).preference, 0.0f);
    EXPECT_GT(city.network.segment(s).length_m, 0.0f);
  }
  for (double p : city.node_popularity) EXPECT_GT(p, 0.0);
  EXPECT_EQ(static_cast<int>(city.pois.size()), cfg.num_pois);
}

TEST_P(GridCityPropertyTest, ArterialsPreferredOverLocals) {
  GridCityConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = GetParam();
  City city = BuildGridCity(cfg);
  double arterial_sum = 0, local_sum = 0;
  int arterial_n = 0, local_n = 0;
  for (SegmentId s = 0; s < city.network.num_segments(); ++s) {
    const Segment& seg = city.network.segment(s);
    if (seg.road_class == RoadClass::kArterial) {
      arterial_sum += seg.preference;
      arterial_n++;
    } else if (seg.road_class == RoadClass::kLocal) {
      local_sum += seg.preference;
      local_n++;
    }
  }
  ASSERT_GT(arterial_n, 0);
  ASSERT_GT(local_n, 0);
  EXPECT_GT(arterial_sum / arterial_n, 1.5 * (local_sum / local_n));
}

TEST_P(GridCityPropertyTest, PopularityPeaksNearPois) {
  GridCityConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = GetParam();
  City city = BuildGridCity(cfg);
  double mean_pop = 0;
  for (double p : city.node_popularity) mean_pop += p;
  mean_pop /= city.node_popularity.size();
  for (const Poi& poi : city.pois) {
    EXPECT_GT(city.node_popularity[poi.node], mean_pop);
  }
}

TEST_P(GridCityPropertyTest, DeterministicGivenSeed) {
  GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.seed = GetParam();
  City a = BuildGridCity(cfg);
  City b = BuildGridCity(cfg);
  ASSERT_EQ(a.network.num_segments(), b.network.num_segments());
  for (SegmentId s = 0; s < a.network.num_segments(); ++s) {
    EXPECT_EQ(a.network.segment(s).from, b.network.segment(s).from);
    EXPECT_FLOAT_EQ(a.network.segment(s).preference,
                    b.network.segment(s).preference);
  }
  EXPECT_EQ(a.pois.size(), b.pois.size());
  for (size_t i = 0; i < a.pois.size(); ++i) {
    EXPECT_EQ(a.pois[i].node, b.pois[i].node);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridCityPropertyTest,
                         ::testing::Values(1, 2, 17, 42, 1234));

}  // namespace
}  // namespace roadnet
}  // namespace causaltad
