#ifndef CAUSALTAD_EVAL_METRICS_H_
#define CAUSALTAD_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace causaltad {
namespace eval {

/// ROC-AUC via the rank statistic (Mann-Whitney U), with ties receiving
/// average ranks — exact, not trapezoid-approximated. labels: 1 = anomaly
/// (positive), 0 = normal. Higher scores should indicate anomalies.
double RocAuc(std::span<const double> scores, std::span<const uint8_t> labels);

/// PR-AUC computed as average precision (step-wise integral of the
/// precision-recall curve, sklearn-style), with score ties processed as
/// atomic groups so the result is permutation-invariant.
double PrAuc(std::span<const double> scores, std::span<const uint8_t> labels);

/// Both metrics for a normal-vs-anomaly score split (the form every
/// experiment in the paper reports).
struct EvalResult {
  double roc_auc = 0.0;
  double pr_auc = 0.0;
  int64_t num_normal = 0;
  int64_t num_anomaly = 0;
};

EvalResult EvaluateScores(std::span<const double> normal_scores,
                          std::span<const double> anomaly_scores);

}  // namespace eval
}  // namespace causaltad

#endif  // CAUSALTAD_EVAL_METRICS_H_
