#include "net/router.h"

#include <errno.h>
#include <fcntl.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/socket_io.h"
#include "util/logging.h"

namespace causaltad {
namespace net {
namespace {

// splitmix64 finalizer — same mix the client/server use for resume keys and
// shard spread, reused here for the vnode ring so placement quality does
// not depend on the quality of the inputs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Mirrors the server's delta chunking: 64 KiB of scores per frame, far
// under the 1 MiB cap.
constexpr size_t kMaxScoresPerDelta = 8192;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int DialTcpFd(const std::string& host, int port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

}  // namespace

// Downstream connection state, owned by its handler thread.
struct Router::DsConn {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  bool hello_done = false;
  std::string tenant;
  // Home backend -> upstream leg. std::map keeps Leg addresses stable for
  // the dialer closures (unique_ptr would too; the map is tiny either way).
  std::map<int, std::unique_ptr<Leg>> legs;
  std::unordered_map<uint64_t, DsSession> sessions;
  double last_tick_ms = 0.0;
};

Router::Leg::~Leg() {
  if (router != nullptr && current >= 0) {
    router->legs_on_[current].fetch_sub(1, std::memory_order_acq_rel);
  }
}

Router::Router(std::vector<RouterBackend> backends, RouterOptions options)
    : backends_(std::move(backends)), options_(std::move(options)) {
  CAUSALTAD_CHECK(!backends_.empty());
  const int n = num_backends();
  dead_ = std::make_unique<std::atomic<bool>[]>(n);
  draining_ = std::make_unique<std::atomic<bool>[]>(n);
  legs_on_ = std::make_unique<std::atomic<int64_t>[]>(n);
  for (int i = 0; i < n; ++i) {
    dead_[i].store(false, std::memory_order_relaxed);
    draining_[i].store(false, std::memory_order_relaxed);
    legs_on_[i].store(0, std::memory_order_relaxed);
  }
  probe_failures_consecutive_.assign(n, 0);
  registry_ = options_.registry != nullptr ? options_.registry
                                           : obs::Registry::Default();
  connections_accepted_.Bind(registry_, "router_connections_accepted_total");
  connections_active_.Bind(registry_, "router_connections_active");
  sessions_opened_.Bind(registry_, "router_sessions_opened_total");
  sessions_resumed_.Bind(registry_, "router_sessions_resumed_total");
  failovers_.Bind(registry_, "router_failovers_total");
  migrations_.Bind(registry_, "router_migrations_total");
  upstream_reconnects_.Bind(registry_, "router_upstream_reconnects_total");
  dup_scores_dropped_.Bind(registry_, "router_dup_scores_dropped_total");
  scores_forwarded_.Bind(registry_, "router_scores_forwarded_total");
  health_probes_.Bind(registry_, "router_health_probes_total");
  probe_failures_.Bind(registry_, "router_probe_failures_total");
  swaps_rolled_.Bind(registry_, "router_swaps_rolled_total");
  auth_failures_.Bind(registry_, "router_auth_failures_total");
  backends_dead_gauge_ = registry_->GetGauge("router_backends_dead");
  const int vnodes = std::max(1, options_.virtual_nodes);
  ring_.reserve(static_cast<size_t>(n) * vnodes);
  for (int i = 0; i < n; ++i) {
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(
          Mix(Mix(static_cast<uint64_t>(i) + 1) ^
              (static_cast<uint64_t>(v) * 0x100000001b3ull)),
          i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

Router::~Router() { Stop(); }

util::Status Router::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return util::Status::FailedPrecondition("already started");
  if (options_.listen_port >= 0) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (listen_fd_ < 0) {
      return util::Status::IoError("socket failed: " +
                                   std::string(std::strerror(errno)));
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.listen_port));
    if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
        1) {
      return util::Status::InvalidArgument("bad listen_host " +
                                           options_.listen_host);
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::IoError("bind/listen failed: " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) accept_thread_ = std::thread([this] { AcceptMain(); });
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthMain(); });
  }
  return util::Status::Ok();
}

void Router::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
    started_ = false;
  }
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Kick every handler out of its downstream poll; handlers own the
    // close, Stop only shuts the transport down.
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (int fd : live_ds_fds_) shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(handler_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

int Router::AddLoopbackConnection() {
  int fds[2] = {-1, -1};
  if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return -1;
  }
  SpawnHandler(fds[0]);
  return fds[1];
}

void Router::SpawnHandler(int fd) {
  const uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  connections_accepted_.Inc();
  connections_active_.Add(1);
  std::lock_guard<std::mutex> lock(threads_mu_);
  live_ds_fds_.insert(fd);
  handler_threads_.emplace_back([this, fd, id] { HandlerMain(fd, id); });
}

void Router::AcceptMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = poll(&pfd, 1, 50);
    if (rc <= 0) continue;
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    SetNoDelay(fd);
    SpawnHandler(fd);
  }
}

// ---------------------------------------------------------------------------
// Health and placement

bool Router::Eligible(int backend) const {
  return !dead_[backend].load(std::memory_order_acquire) &&
         !draining_[backend].load(std::memory_order_acquire);
}

bool Router::BackendAlive(int backend) const {
  return !dead_[backend].load(std::memory_order_acquire);
}

bool Router::BackendDraining(int backend) const {
  return draining_[backend].load(std::memory_order_acquire);
}

void Router::MarkDead(int backend, bool dead) {
  dead_[backend].store(dead, std::memory_order_release);
  int64_t dead_count = 0;
  for (int i = 0; i < num_backends(); ++i) {
    if (dead_[i].load(std::memory_order_acquire)) ++dead_count;
  }
  backends_dead_gauge_->Set(dead_count);
}

int Router::PickBackend(uint64_t hash) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const std::pair<uint64_t, int>& e, uint64_t h) { return e.first < h; });
  for (size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (Eligible(it->second)) return it->second;
    ++it;
  }
  return -1;
}

int Router::DialBackendFd(int backend) {
  const RouterBackend& b = backends_[backend];
  if (b.dialer) return b.dialer();
  if (b.port < 0) return -1;
  return DialTcpFd(b.host, b.port);
}

int Router::DialUpstream(Leg* leg) {
  if (stop_.load(std::memory_order_acquire)) return -1;
  const int n = num_backends();
  for (int k = 0; k < n; ++k) {
    const int cand = (leg->home + k) % n;
    if (!Eligible(cand)) continue;
    const int fd = DialBackendFd(cand);
    if (fd < 0) continue;  // unreachable before health noticed: next peer
    if (leg->current != cand) {
      if (cand != leg->home) {
        failovers_.Inc();
      }
      if (leg->current >= 0) {
        legs_on_[leg->current].fetch_sub(1, std::memory_order_acq_rel);
      }
      legs_on_[cand].fetch_add(1, std::memory_order_acq_rel);
      leg->current = cand;
    }
    return fd;
  }
  return -1;
}

Router::Leg* Router::LegForBackend(DsConn* conn, int home,
                                   util::Status* error) {
  auto it = conn->legs.find(home);
  if (it != conn->legs.end()) return it->second.get();
  auto leg = std::make_unique<Leg>();
  Leg* raw = leg.get();
  raw->router = this;
  raw->home = home;
  raw->last_heartbeat_ms = NowMs();
  const int fd = DialUpstream(raw);
  if (fd < 0) {
    *error = util::Status::IoError("no live backend for session");
    return nullptr;
  }
  ClientOptions copts = options_.upstream;
  copts.reconnect = true;
  copts.fault = options_.upstream_fault;
  copts.dialer = [this, raw] { return DialUpstream(raw); };
  copts.client_id = Mix(conn->id * 1000003ull + static_cast<uint64_t>(home) + 1);
  if (copts.client_id == 0) copts.client_id = 1;
  raw->client = Client::FromFd(fd, std::move(copts));
  const util::Status hello = raw->client->Hello();
  if (!hello.ok()) {
    *error = hello;
    return nullptr;  // leg destructor releases the legs_on_ count
  }
  conn->legs.emplace(home, std::move(leg));
  return raw;
}

void Router::HealthMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    for (int i = 0; i < num_backends(); ++i) {
      if (stop_.load(std::memory_order_acquire)) return;
      ProbeBackend(i);
    }
    // Sleep in small slices so Stop() is prompt.
    double left = options_.health_interval_ms;
    while (left > 0 && !stop_.load(std::memory_order_acquire)) {
      const double slice = std::min(left, 10.0);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(slice));
      left -= slice;
    }
  }
}

void Router::ProbeBackend(int backend) {
  health_probes_.Inc();
  bool ok = false;
  const int fd = DialBackendFd(backend);
  if (fd >= 0) {
    ClientOptions popts;
    popts.tenant = options_.admin_tenant.empty() ? options_.upstream.tenant
                                                 : options_.admin_tenant;
    popts.auth_token = options_.admin_tenant.empty()
                           ? options_.upstream.auth_token
                           : options_.admin_token;
    popts.reconnect = false;
    popts.timeout_ms = options_.health_timeout_ms;
    auto probe = Client::FromFd(fd, std::move(popts));
    ok = probe->Hello().ok() && probe->Heartbeat().ok();
  }
  if (ok) {
    probe_failures_consecutive_[backend] = 0;
    MarkDead(backend, false);
  } else {
    probe_failures_.Inc();
    if (++probe_failures_consecutive_[backend] >=
        options_.health_failure_threshold) {
      MarkDead(backend, true);
    }
  }
}

// ---------------------------------------------------------------------------
// Drain and fleet-wide swap

util::Status Router::DrainBackend(int backend) {
  if (backend < 0 || backend >= num_backends()) {
    return util::Status::InvalidArgument("no such backend");
  }
  // Refuse a drain nothing could absorb: need one other eligible backend.
  bool have_peer = false;
  for (int i = 0; i < num_backends(); ++i) {
    if (i != backend && Eligible(i)) have_peer = true;
  }
  if (!have_peer) {
    return util::Status::FailedPrecondition(
        "no live peer to drain backend " + std::to_string(backend) + " onto");
  }
  draining_[backend].store(true, std::memory_order_release);
  const double deadline = NowMs() + options_.drain_timeout_ms;
  while (legs_on_[backend].load(std::memory_order_acquire) > 0) {
    if (NowMs() > deadline) {
      return util::Status::IoError(
          "drain of backend " + std::to_string(backend) + " timed out with " +
          std::to_string(legs_on_[backend].load()) + " legs attached");
    }
    if (stop_.load(std::memory_order_acquire)) {
      return util::Status::FailedPrecondition("router stopping");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return util::Status::Ok();
}

void Router::UndrainBackend(int backend) {
  if (backend < 0 || backend >= num_backends()) return;
  draining_[backend].store(false, std::memory_order_release);
}

util::Status Router::RollSwap(const std::string& tag) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  for (int i = 0; i < num_backends(); ++i) {
    if (dead_[i].load(std::memory_order_acquire)) continue;
    const int fd = DialBackendFd(i);
    if (fd < 0) {
      return util::Status::IoError("cannot reach backend " +
                                       std::to_string(i) + " for swap");
    }
    ClientOptions aopts;
    aopts.tenant = options_.admin_tenant.empty() ? options_.upstream.tenant
                                                 : options_.admin_tenant;
    aopts.auth_token = options_.admin_tenant.empty()
                           ? options_.upstream.auth_token
                           : options_.admin_token;
    aopts.reconnect = false;
    aopts.timeout_ms = options_.upstream.timeout_ms;
    auto admin = Client::FromFd(fd, std::move(aopts));
    CAUSALTAD_RETURN_IF_ERROR(admin->Hello());

    uint64_t result = 0;
    std::string message;
    // Stage blocks until the background load settles (deferred ack).
    CAUSALTAD_RETURN_IF_ERROR(admin->Admin("stage:" + tag, &result, &message));
    if (result != static_cast<uint64_t>(AdminStatus::kOk)) {
      return util::Status::Internal("stage failed on backend " +
                                    std::to_string(i) + ": " + message);
    }

    // Drain sessions onto peers before the flip; a single-backend fleet
    // commits live (sessions on the old generation finish on it anyway).
    bool drained = false;
    util::Status drain = DrainBackend(i);
    if (drain.ok()) {
      drained = true;
    } else if (drain.code() != util::StatusCode::kFailedPrecondition) {
      UndrainBackend(i);
      return drain;
    }

    util::Status commit = admin->Admin("commit", &result, &message);
    if (commit.ok() &&
        result == static_cast<uint64_t>(AdminStatus::kBusy)) {
      // The stage ack already reported ready, but tolerate a busy verdict
      // from an interleaved operator stage: one bounded retry.
      commit = admin->Admin("commit", &result, &message);
    }
    if (drained) UndrainBackend(i);
    CAUSALTAD_RETURN_IF_ERROR(commit);
    if (result != static_cast<uint64_t>(AdminStatus::kOk)) {
      return util::Status::Internal("commit failed on backend " +
                                    std::to_string(i) + ": " + message);
    }
    swaps_rolled_.Inc();
  }
  return util::Status::Ok();
}

namespace {

// Re-labels one backend's exposition for the fleet view: every series line
// gains backend="<i>" as its first label; the backend's own header comment
// is dropped (the fleet view carries one).
std::string InjectBackendLabel(const std::string& text, int backend) {
  const std::string label = "backend=\"" + std::to_string(backend) + "\"";
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (brace != std::string::npos &&
        (space == std::string::npos || brace < space)) {
      out += line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
    } else if (space != std::string::npos) {
      out += line.substr(0, space) + "{" + label + "}" + line.substr(space);
    } else {
      out += line;  // unrecognized line shape: pass through untouched
    }
    out += '\n';
  }
  return out;
}

}  // namespace

std::string Router::ScrapeFleet() {
  std::string out = "# causaltad_metrics v1\n";
  for (int i = 0; i < num_backends(); ++i) {
    const int fd = DialBackendFd(i);
    if (fd < 0) {
      out += "# backend " + std::to_string(i) + ": unreachable\n";
      continue;
    }
    ClientOptions sopts;
    sopts.tenant = options_.admin_tenant.empty() ? options_.upstream.tenant
                                                 : options_.admin_tenant;
    sopts.auth_token = options_.admin_tenant.empty()
                           ? options_.upstream.auth_token
                           : options_.admin_token;
    sopts.reconnect = false;
    sopts.timeout_ms = options_.scrape_timeout_ms;
    auto scraper = Client::FromFd(fd, std::move(sopts));
    std::string text;
    util::Status st = scraper->Hello();
    if (st.ok()) st = scraper->ScrapeStats(&text);
    if (!st.ok()) {
      out += "# backend " + std::to_string(i) +
             ": scrape failed: " + st.message() + "\n";
      continue;
    }
    out += InjectBackendLabel(text, i);
  }
  // The router's own series, unlabeled — router_* names are disjoint from
  // the backends' server_*/service_* names, so the fleet view stays flat.
  const std::string own = registry_->ExpositionText();
  const size_t first_nl = own.find('\n');
  out += first_nl == std::string::npos ? own : own.substr(first_nl + 1);
  return out;
}

// ---------------------------------------------------------------------------
// Downstream handler

void Router::HandlerMain(int fd, uint64_t conn_id) {
  DsConn conn;
  conn.fd = fd;
  conn.id = conn_id;
  conn.last_tick_ms = NowMs();
  std::vector<uint8_t> buf(64 * 1024);
  bool open = true;
  while (open && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{conn.fd, POLLIN, 0};
    const int timeout =
        std::max(1, static_cast<int>(options_.idle_tick_ms));
    const int rc = poll(&pfd, 1, timeout);
    if (rc > 0) {
      const IoResult io =
          RecvSome(conn.fd, buf.data(), buf.size(), nullptr);
      if (io.error || io.peer_closed) break;
      if (io.n > 0) {
        conn.decoder.Feed(buf.data(), static_cast<size_t>(io.n));
        Frame frame;
        while (open && conn.decoder.Next(&frame)) {
          open = DispatchFrame(&conn, frame);
        }
        if (open && !conn.decoder.status().ok()) {
          SendError(&conn, ErrorCode::kProtocol,
                    conn.decoder.status().message());
          open = false;
        }
      }
    }
    if (open) Housekeeping(&conn);
  }
  // Upstream legs close with the handler; the backends park resumable
  // sessions in their detached tables until the linger expires.
  for (auto& entry : conn.legs) RetireLegStats(*entry.second);
  conn.legs.clear();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    live_ds_fds_.erase(fd);
  }
  close(fd);
  connections_active_.Add(-1);
}

void Router::RetireLegStats(const Leg& leg) {
  if (!leg.client) return;
  const ClientStats& s = leg.client->stats();
  upstream_reconnects_.Inc(s.reconnects);
  dup_scores_dropped_.Inc(s.dup_scores);
}

void Router::Housekeeping(DsConn* conn) {
  const double now = NowMs();
  if (now - conn->last_tick_ms < options_.idle_tick_ms) return;
  conn->last_tick_ms = now;
  for (auto& entry : conn->legs) {
    Leg* leg = entry.second.get();
    if (!leg->client->status().ok()) continue;
    if (leg->current >= 0 &&
        draining_[leg->current].load(std::memory_order_acquire)) {
      // Administrative migration: the dialer avoids draining backends, so
      // Migrate carries every session of this leg onto a live peer.
      migrations_.Inc();
      (void)leg->client->Migrate();  // failure latches into the leg status
      leg->last_heartbeat_ms = now;
      continue;
    }
    if (options_.upstream_heartbeat_ms > 0 &&
        now - leg->last_heartbeat_ms >= options_.upstream_heartbeat_ms) {
      leg->last_heartbeat_ms = now;
      (void)leg->client->Heartbeat();  // reconnects (or latches) on failure
    }
  }
}

bool Router::SendDs(DsConn* conn, const Frame& frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  const util::Status st = SendAll(conn->fd, bytes.data(), bytes.size(),
                                  options_.downstream_timeout_ms, nullptr);
  return st.ok();
}

bool Router::SendError(DsConn* conn, ErrorCode code,
                       const std::string& message) {
  Frame err;
  err.type = FrameType::kError;
  err.code = code;
  err.message = message;
  SendDs(conn, err);
  return false;  // callers `return SendError(...)` to close the connection
}

bool Router::SendScoreChunks(DsConn* conn, uint64_t session, uint64_t token,
                             int64_t base, const std::vector<double>& scores) {
  size_t sent = 0;
  do {
    const size_t chunk =
        std::min(scores.size() - sent, kMaxScoresPerDelta);
    Frame delta;
    delta.type = FrameType::kScoreDelta;
    delta.session = session;
    delta.token = token;
    delta.offset = static_cast<uint64_t>(base) + sent;
    delta.scores.assign(scores.begin() + sent, scores.begin() + sent + chunk);
    if (!SendDs(conn, delta)) return false;
    sent += chunk;
  } while (sent < scores.size());
  return true;
}

bool Router::DispatchFrame(DsConn* conn, const Frame& frame) {
  if (!conn->hello_done) {
    if (frame.type != FrameType::kHello) {
      return SendError(conn, ErrorCode::kAuthRequired,
                       "first frame must be Hello");
    }
    if (!options_.tenant_tokens.empty()) {
      const auto it = options_.tenant_tokens.find(frame.tenant);
      if (it == options_.tenant_tokens.end() ||
          it->second != frame.auth_token) {
        auth_failures_.Inc();
        return SendError(conn, ErrorCode::kAuthFailed,
                         "unknown tenant or bad token");
      }
    }
    conn->tenant = frame.tenant;
    conn->hello_done = true;
    return true;
  }
  switch (frame.type) {
    case FrameType::kHello:
      return true;  // idempotent re-Hello (client resume handshakes)
    case FrameType::kBegin:
      return HandleBegin(conn, frame);
    case FrameType::kPush:
      return HandlePush(conn, frame);
    case FrameType::kEnd:
      return HandleEnd(conn, frame);
    case FrameType::kPoll:
      return HandlePoll(conn, frame);
    case FrameType::kResume:
      return HandleResume(conn, frame);
    case FrameType::kHeartbeat: {
      if (frame.seq != 1) return true;  // stray pong: ignore
      Frame pong;
      pong.type = FrameType::kHeartbeat;
      pong.token = frame.token;
      pong.seq = 0;
      return SendDs(conn, pong);
    }
    case FrameType::kAdmin: {
      // Model administration is a backend concern; the router's own control
      // plane (drain, roll-swap) is API-driven, not wire-driven.
      Frame ack;
      ack.type = FrameType::kAdminAck;
      ack.token = frame.token;
      ack.seq = static_cast<uint64_t>(AdminStatus::kError);
      ack.message = "admin commands are not routed; use the router API";
      return SendDs(conn, ack);
    }
    case FrameType::kStats: {
      // Fleet scrape: one downstream Stats frame reads every backend plus
      // the router itself. Authorization is the downstream Hello (the
      // router's tenant_tokens); backend scrapes use the admin credentials.
      Frame ack;
      ack.type = FrameType::kAdminAck;
      ack.token = frame.token;
      ack.seq = static_cast<uint64_t>(AdminStatus::kOk);
      ack.message = ScrapeFleet();
      return SendDs(conn, ack);
    }
    case FrameType::kScoreDelta:
    case FrameType::kPushReject:
    case FrameType::kError:
    case FrameType::kResumeAck:
    case FrameType::kAdminAck:
      return SendError(conn, ErrorCode::kProtocol,
                       "server-only frame from client");
  }
  return SendError(conn, ErrorCode::kProtocol, "unknown frame type");
}

bool Router::HandleBegin(DsConn* conn, const Frame& frame) {
  if (conn->sessions.count(frame.session) != 0) {
    return SendError(conn, ErrorCode::kDuplicateSession,
                     "session id already live");
  }
  const uint64_t hash =
      frame.resume_key != 0
          ? Mix(frame.resume_key)
          : Mix(Mix(conn->id) ^ Mix(frame.session + 0xa5a5ull));
  const int home = PickBackend(hash);
  if (home < 0) {
    return SendError(conn, ErrorCode::kShuttingDown, "no live backends");
  }
  util::Status err = util::Status::Ok();
  Leg* leg = LegForBackend(conn, home, &err);
  if (leg == nullptr) {
    return SendError(conn, ErrorCode::kShuttingDown, err.message());
  }
  DsSession s;
  s.leg = leg;
  s.up_id = leg->client->Begin(frame.source, frame.destination,
                               frame.time_slot);
  conn->sessions.emplace(frame.session, std::move(s));
  sessions_opened_.Inc();
  return true;
}

bool Router::HandlePush(DsConn* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    return SendError(conn, ErrorCode::kUnknownSession,
                     "push for unknown session");
  }
  DsSession& s = it->second;
  if (s.ended) {
    return SendError(conn, ErrorCode::kProtocol, "push after end");
  }
  if (frame.seq < s.expected_seq) return true;  // duplicate: drop
  if (frame.seq > s.expected_seq) {
    Frame reject;
    reject.type = FrameType::kPushReject;
    reject.session = frame.session;
    reject.seq = frame.seq;
    reject.wire_seq = frame.wire_seq;
    reject.reason = RejectReason::kOutOfOrder;
    return SendDs(conn, reject);
  }
  // Blocking upstream push: window flow control and go-back-N live in the
  // leg client, so retryable rejects never surface downstream — they show
  // up as this call (and therefore this connection) applying backpressure.
  // A v4 trace id rides along to the backend; the router's leg span wraps
  // the forward (including any backpressure drain it absorbed).
  const bool traced = frame.trace_id != 0 && options_.tracer != nullptr;
  const double trace_t0 = traced ? obs::TraceNowMs() : 0.0;
  const util::Status st =
      s.leg->client->Push(s.up_id, frame.segment, frame.trace_id);
  if (traced && st.ok()) {
    options_.tracer->Record(frame.trace_id, "router_leg", options_.trace_where,
                            trace_t0, obs::TraceNowMs() - trace_t0);
  }
  if (!st.ok()) {
    if (st.code() == util::StatusCode::kFailedPrecondition) {
      // The backend's service shut the session down (terminal reject).
      Frame reject;
      reject.type = FrameType::kPushReject;
      reject.session = frame.session;
      reject.seq = frame.seq;
      reject.wire_seq = frame.wire_seq;
      reject.reason = RejectReason::kShutdown;
      return SendDs(conn, reject);
    }
    return SendError(conn, ErrorCode::kProtocol,
                     "upstream push failed: " + st.message());
  }
  ++s.expected_seq;
  return true;
}

bool Router::HandlePoll(DsConn* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) {
    // A Poll is ALWAYS answered (ordering barrier), mirroring the server.
    return SendScoreChunks(conn, frame.session, frame.token, 0, {});
  }
  DsSession& s = it->second;
  std::vector<double> scores;
  if (s.ended) {
    scores.swap(s.tail);
  } else {
    auto polled = s.leg->client->Poll(s.up_id);
    if (!polled.ok()) {
      return SendError(conn, ErrorCode::kProtocol,
                       "upstream poll failed: " + polled.status().message());
    }
    scores = std::move(*polled);
  }
  if (s.drop_scores > 0 && !scores.empty()) {
    // Resume rebuild: the upstream session replays from seq 0 but the
    // downstream already holds this prefix — drop it so the re-stamped
    // stream continues exactly at the client's high-water mark.
    const int64_t k =
        std::min<int64_t>(s.drop_scores, static_cast<int64_t>(scores.size()));
    scores.erase(scores.begin(), scores.begin() + k);
    s.drop_scores -= k;
  }
  const int64_t base = s.delivered;
  s.delivered += static_cast<int64_t>(scores.size());
  scores_forwarded_.Inc(static_cast<int64_t>(scores.size()));
  if (!SendScoreChunks(conn, frame.session, frame.token, base, scores)) {
    return false;
  }
  ForgetIfDone(conn, frame.session);
  return true;
}

bool Router::HandleEnd(DsConn* conn, const Frame& frame) {
  const auto it = conn->sessions.find(frame.session);
  if (it == conn->sessions.end()) return true;  // idempotent
  DsSession& s = it->second;
  if (s.ended) return true;
  // Finish drains every in-flight point upstream and returns whatever tail
  // was not yet polled; downstream clients drain before sending End, so
  // the tail is normally empty, but a resume rebuild can leave one.
  auto tail = s.leg->client->Finish(s.up_id);
  if (!tail.ok()) {
    return SendError(conn, ErrorCode::kProtocol,
                     "upstream end failed: " + tail.status().message());
  }
  s.tail = std::move(*tail);
  s.ended = true;
  ForgetIfDone(conn, frame.session);
  return true;
}

void Router::ForgetIfDone(DsConn* conn, uint64_t session) {
  const auto it = conn->sessions.find(session);
  if (it == conn->sessions.end()) return;
  const DsSession& s = it->second;
  if (s.ended && s.tail.empty()) conn->sessions.erase(it);
}

bool Router::HandleResume(DsConn* conn, const Frame& frame) {
  if (frame.resume_key == 0) {
    return SendError(conn, ErrorCode::kProtocol, "resume without key");
  }
  // The router keeps no cross-connection session state: every downstream
  // resume is a fresh rebuild. A new upstream session is opened on the
  // key's ring owner, the ResumeAck asks the client for a full prefix
  // replay (offset 0), and drop_scores discards the prefix the client
  // already delivered — no gaps, no duplicates, wherever the old backend
  // session ended up (its parked state expires via the backend linger).
  conn->sessions.erase(frame.session);
  const int home = PickBackend(Mix(frame.resume_key));
  if (home < 0) {
    return SendError(conn, ErrorCode::kShuttingDown, "no live backends");
  }
  util::Status err = util::Status::Ok();
  Leg* leg = LegForBackend(conn, home, &err);
  if (leg == nullptr) {
    return SendError(conn, ErrorCode::kShuttingDown, err.message());
  }
  DsSession s;
  s.leg = leg;
  s.up_id = leg->client->Begin(frame.source, frame.destination,
                               frame.time_slot);
  s.delivered = static_cast<int64_t>(frame.offset);
  s.drop_scores = static_cast<int64_t>(frame.offset);
  conn->sessions.emplace(frame.session, std::move(s));
  sessions_resumed_.Inc();
  Frame ack;
  ack.type = FrameType::kResumeAck;
  ack.session = frame.session;
  ack.offset = 0;  // replay the full prefix
  return SendDs(conn, ack);
}

RouterStats Router::stats() const {
  RouterStats s;
  s.connections_accepted = connections_accepted_.value();
  s.connections_active = connections_active_.value();
  s.sessions_opened = sessions_opened_.value();
  s.sessions_resumed = sessions_resumed_.value();
  s.failovers = failovers_.value();
  s.migrations = migrations_.value();
  s.upstream_reconnects = upstream_reconnects_.value();
  s.dup_scores_dropped = dup_scores_dropped_.value();
  s.scores_forwarded = scores_forwarded_.value();
  s.health_probes = health_probes_.value();
  s.probe_failures = probe_failures_.value();
  s.swaps_rolled = swaps_rolled_.value();
  s.auth_failures = auth_failures_.value();
  for (int i = 0; i < num_backends(); ++i) {
    if (dead_[i].load(std::memory_order_acquire)) ++s.backends_dead;
  }
  return s;
}

}  // namespace net
}  // namespace causaltad
