#include "models/scorer.h"

#include <algorithm>

namespace causaltad {
namespace models {

std::vector<std::vector<int64_t>> LengthSortedBatches(
    const std::vector<traj::Trip>& trips, int64_t batch_size,
    util::Rng* rng) {
  const int64_t n = static_cast<int64_t>(trips.size());
  const int64_t bs = std::max<int64_t>(1, batch_size);
  std::vector<int64_t> order = rng->Permutation(n);
  std::stable_sort(order.begin(), order.end(),
                   [&trips](int64_t a, int64_t b) {
                     return trips[a].route.size() > trips[b].route.size();
                   });
  const int64_t num_batches = (n + bs - 1) / bs;
  std::vector<std::vector<int64_t>> batches;
  batches.reserve(num_batches);
  for (const int64_t b : rng->Permutation(num_batches)) {
    const int64_t begin = b * bs;
    const int64_t end = std::min(n, begin + bs);
    batches.emplace_back(order.begin() + begin, order.begin() + end);
  }
  return batches;
}

namespace {

/// Fallback online scorer: replays the growing prefix through Score().
class RescoringOnlineScorer : public OnlineScorer {
 public:
  RescoringOnlineScorer(const TrajectoryScorer* scorer, traj::Trip trip)
      : scorer_(scorer), trip_(std::move(trip)) {
    trip_.route.segments.clear();
  }

  double Update(roadnet::SegmentId segment) override {
    trip_.route.segments.push_back(segment);
    return scorer_->Score(trip_, trip_.route.size());
  }

 private:
  const TrajectoryScorer* scorer_;
  traj::Trip trip_;
};

}  // namespace

std::unique_ptr<OnlineScorer> TrajectoryScorer::BeginTrip(
    const traj::Trip& trip) const {
  return std::make_unique<RescoringOnlineScorer>(this, trip);
}

std::vector<double> TrajectoryScorer::ScoreBatch(
    std::span<const traj::Trip> trips,
    std::span<const int64_t> prefix_lens) const {
  std::vector<double> scores;
  scores.reserve(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    const int64_t prefix =
        i < prefix_lens.size() ? prefix_lens[i] : trips[i].route.size();
    scores.push_back(Score(trips[i], prefix));
  }
  return scores;
}

}  // namespace models
}  // namespace causaltad
