// Quickstart: build a synthetic city, generate ride-hailing trips, train
// CausalTAD, and score a normal trajectory against an injected detour.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "traj/anomaly.h"

int main() {
  using namespace causaltad;

  // 1. A small synthetic city with POI hot-spots and a confounded trip
  //    generator (see DESIGN.md for how this stands in for the DiDi data).
  eval::CityExperimentConfig config = eval::XianConfig(eval::Scale::kSmoke);
  std::printf("Building city and trip corpus...\n");
  const eval::ExperimentData data = eval::BuildExperiment(config);
  std::printf("  %lld road segments, %zu training trips, %zu candidate SD "
              "pairs\n",
              static_cast<long long>(data.vocab()), data.train.size(),
              data.pairs.size());

  // 2. Train CausalTAD (TG-VAE + RP-VAE jointly, Eq. 9 of the paper).
  core::CausalTadConfig model_config;
  model_config.tg.emb_dim = 24;
  model_config.tg.hidden_dim = 32;
  model_config.tg.latent_dim = 16;
  model_config.rp.emb_dim = 16;
  model_config.rp.hidden_dim = 32;
  model_config.rp.latent_dim = 8;
  core::CausalTad model(&data.city.network, model_config);

  models::FitOptions options;
  options.epochs = 5;
  options.lr = 3e-3f;
  options.verbose = true;
  std::printf("Training CausalTAD (%d epochs)...\n", options.epochs);
  model.Fit(data.train, options);

  // 3. Score a held-out normal trip and a synthetic detour of it.
  const traj::Trip& normal = data.id_test.front();
  traj::AnomalyGenerator anomaly(&data.city.network, /*seed=*/7);
  const auto detour = anomaly.MakeDetour(normal, traj::DetourConfig{});

  std::printf("\nNormal trip   (%2lld segments): score = %.3f\n",
              static_cast<long long>(normal.route.size()),
              model.ScoreFull(normal));
  if (detour.has_value()) {
    std::printf("Detoured trip (%2lld segments): score = %.3f\n",
                static_cast<long long>(detour->route.size()),
                model.ScoreFull(*detour));
    std::printf("\nHigher score = more anomalous; the detour should score "
                "clearly above the normal trip.\n");
  }

  // 4. Persist the model for later use.
  const util::Status saved = model.Save("/tmp/causaltad_quickstart.bin");
  std::printf("Checkpoint saved: %s\n", saved.ToString().c_str());
  return 0;
}
