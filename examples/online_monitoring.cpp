// Online monitoring on the production serving path: stream ongoing trips
// through serve::StreamingService — the sharded, pumped front-end a
// ride-hailing platform would run — and flag a detour while the trip is
// still in progress.
//
// The example trains CausalTAD, calibrates an alarm threshold from
// held-out normal trips, then feeds a normal trip and a detoured variant
// of the same trip concurrently into a 2-shard service with background
// pump threads. Scores are polled as the pumps emit them; pushes respect
// the service's backpressure statuses. The final stats dump shows the ops
// counters a deployment would export: points/sec, step occupancy, and the
// queue-wait percentiles.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/causal_tad.h"
#include "eval/datasets.h"
#include "eval/threshold.h"
#include "serve/service.h"
#include "traj/anomaly.h"

int main() {
  using namespace causaltad;

  const eval::ExperimentData data =
      eval::BuildExperiment(eval::XianConfig(eval::Scale::kSmoke));

  core::CausalTadConfig model_config;
  model_config.tg.emb_dim = 24;
  model_config.tg.hidden_dim = 32;
  model_config.tg.latent_dim = 16;
  model_config.rp.emb_dim = 16;
  model_config.rp.hidden_dim = 32;
  model_config.rp.latent_dim = 8;
  core::CausalTad model(&data.city.network, model_config);
  models::FitOptions options;
  options.epochs = 5;
  options.lr = 3e-3f;
  std::printf("Training...\n");
  model.Fit(data.train, options);

  // Alarm threshold calibrated for a 5% false-positive rate on held-out
  // normal trips.
  std::vector<double> normal_scores;
  for (const auto& t : data.id_test) {
    normal_scores.push_back(model.ScoreFull(t));
  }
  const double threshold = causaltad::eval::ThresholdAtFpr(normal_scores,
                                                           /*target_fpr=*/0.05);
  std::printf("Alarm threshold (5%% FPR on held-out normals): %.3f\n\n",
              threshold);

  // Pick a test trip and fabricate a detour mid-way.
  const traj::Trip& normal = data.id_test[3];
  traj::AnomalyGenerator anomaly_gen(&data.city.network, /*seed=*/99);
  const auto detour = anomaly_gen.MakeDetour(normal, traj::DetourConfig{});
  if (!detour.has_value()) {
    std::printf("could not fabricate a detour for the demo trip\n");
    return 1;
  }

  // The production path: sessions hash across 2 StreamingBatcher shards,
  // one background pump thread each runs deadline-bounded admission, and
  // Push applies backpressure instead of queueing without bound.
  serve::ServiceOptions service_options;
  service_options.num_shards = 2;
  service_options.pump = true;
  service_options.max_session_pending = 8;
  service_options.batcher.max_batch_rows = 32;
  service_options.batcher.max_delay_ms = 1.0;
  serve::StreamingService service(&model, service_options);

  struct Feed {
    const traj::Trip* trip;
    const char* label;
    serve::SessionId id = -1;
    size_t fed = 0;
    size_t scored = 0;
    bool alarmed = false;
  };
  std::vector<Feed> feeds = {{&normal, "NORMAL  "}, {&*detour, "DETOURED"}};
  for (Feed& feed : feeds) {
    feed.id = service.Begin(*feed.trip);
    std::printf("Streaming %s trip (%lld segments)\n", feed.label,
                static_cast<long long>(feed.trip->route.size()));
  }
  std::printf("\n");

  // Both trips stream concurrently: push the next observed point of each
  // (honouring backpressure), then drain whatever the pumps have scored.
  bool streaming = true;
  while (streaming) {
    streaming = false;
    for (Feed& feed : feeds) {
      const auto& segments = feed.trip->route.segments;
      if (feed.fed < segments.size()) {
        switch (service.Push(feed.id, segments[feed.fed])) {
          case serve::PushStatus::kAccepted:
            if (++feed.fed == segments.size()) service.End(feed.id);
            break;
          case serve::PushStatus::kSessionFull:  // producer outran the pump
          case serve::PushStatus::kShardFull:
            std::this_thread::yield();  // retry this point next sweep
            break;
        }
      }
      for (const double score : service.Poll(feed.id)) {
        const bool alarm = score > threshold;
        if (feed.scored % 3 == 0 || (alarm && !feed.alarmed)) {
          std::printf("  %s seg %2lld  score %7.3f %s\n", feed.label,
                      static_cast<long long>(feed.scored), score,
                      alarm && !feed.alarmed ? "  << ALARM" : "");
        }
        if (alarm) feed.alarmed = true;
        ++feed.scored;
      }
      if (feed.fed < segments.size() ||
          feed.scored < segments.size()) {
        streaming = true;
      }
    }
  }
  for (const Feed& feed : feeds) {
    if (!feed.alarmed) {
      std::printf("  %s (no alarm raised)\n", feed.label);
    }
  }

  service.Shutdown();
  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\nService ops counters (%d shards, pump on):\n"
      "  points accepted/scored   %lld / %lld\n"
      "  backpressure rejections  %lld session-full, %lld shed\n"
      "  batches fired            %lld (occupancy %.2f)\n"
      "  queue wait p50/p95/p99   %.3f / %.3f / %.3f ms\n",
      service.num_shards(), static_cast<long long>(stats.points_accepted),
      static_cast<long long>(stats.points_scored),
      static_cast<long long>(stats.rejected_session_full),
      static_cast<long long>(stats.rejected_shard_full),
      static_cast<long long>(stats.steps), stats.step_occupancy,
      stats.queue_wait_p50_ms, stats.queue_wait_p95_ms,
      stats.queue_wait_p99_ms);
  std::printf("Each point still costs O(1); the service adds sharding, "
              "deadline-bounded batching, and bounded queues on top.\n");
  return 0;
}
