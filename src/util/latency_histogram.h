#ifndef CAUSALTAD_UTIL_LATENCY_HISTOGRAM_H_
#define CAUSALTAD_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace causaltad {
namespace util {

/// Fixed-footprint latency histogram with geometric (quarter-octave)
/// buckets from 1µs to ~30min, built for serving hot paths: Add() is one
/// relaxed atomic increment, safe from any number of threads with no lock
/// (the serving pump threads share one instance). Percentile() walks a
/// racy snapshot of the buckets — fine for ops counters, where the answer
/// is a ~±19% bucket-resolution estimate anyway.
class LatencyHistogram {
 public:
  /// 4 buckets per factor of 2, spanning 2^30 µs above the 1µs floor.
  static constexpr int kNumBuckets = 4 * 30 + 2;  // under/overflow ends

  /// Records one latency in milliseconds (negative values clamp to 0).
  void Add(double ms);

  /// Total samples recorded.
  int64_t TotalCount() const;

  /// Exact mean of the recorded latencies in ms (µs resolution per sample,
  /// unlike the bucketed percentiles). 0 when empty. The wire server reports
  /// it next to the percentiles for per-frame dispatch accounting.
  double MeanMs() const;

  /// Approximate value (ms) at percentile p in [0, 100]: the geometric
  /// midpoint of the bucket holding the p-th sample. 0 when empty.
  double Percentile(double p) const;

  void Reset();

  /// A point-in-time copy of the bucket counts. Used as the baseline for
  /// windowed percentiles: take one at the start of a control interval and
  /// PercentileSince() sees only samples added after it. Copyable value
  /// type (unlike the histogram itself, whose atomics pin it in place).
  struct Snapshot {
    std::array<int64_t, kNumBuckets> counts{};
  };

  Snapshot TakeSnapshot() const;

  /// Samples recorded after `base` was taken.
  int64_t CountSince(const Snapshot& base) const;

  /// Percentile over only the samples recorded after `base` was taken.
  /// 0 when no new samples. Same bucket-midpoint resolution as
  /// Percentile(); counts that raced below the baseline clamp to 0.
  double PercentileSince(const Snapshot& base, double p) const;

  /// Percentile over the union of `n` histograms' samples, as if they were
  /// one population — the service-level view over per-shard histograms.
  /// 0 when all are empty.
  static double MergedPercentile(const LatencyHistogram* const* hists, int n,
                                 double p);

  /// MergedPercentile restricted to samples each histogram recorded after
  /// its paired baseline in `bases` (bases[i] belongs to hists[i]) — the
  /// per-instance window when the histograms are registry-owned and outlive
  /// any one owner. Counts that raced below a baseline clamp to 0.
  static double MergedPercentileSince(const LatencyHistogram* const* hists,
                                      const Snapshot* bases, int n, double p);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> sum_us_{0};
};

}  // namespace util
}  // namespace causaltad

#endif  // CAUSALTAD_UTIL_LATENCY_HISTOGRAM_H_
