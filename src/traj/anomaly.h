#ifndef CAUSALTAD_TRAJ_ANOMALY_H_
#define CAUSALTAD_TRAJ_ANOMALY_H_

#include <optional>
#include <span>

#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace causaltad {
namespace traj {

/// Parameters of the Detour anomaly generator (paper §VI-A2).
struct DetourConfig {
  /// Accept a detour only if it lengthens the whole route by a ratio within
  /// this window (relative to the original route length). The window is kept
  /// modest so detours are not trivially detectable by length alone.
  double min_extra_ratio = 0.10;
  double max_extra_ratio = 0.45;
  /// Exponent on segment preference in the reroute cost
  /// (length / preference^gamma). The paper reroutes with Dijkstra on the
  /// real network, where shortest paths are still plausible streets; on the
  /// synthetic grid a pure-length reroute would single out never-driven
  /// alleys and make detours trivially detectable by token rarity, so the
  /// reroute mimics a real driver's generalized cost instead.
  double preference_gamma = 1.0;
  /// The anchor indexes i < k < j are sampled from these fractional ranges,
  /// placing detours mid-trip (matching the paper's online evaluation, where
  /// anomalies mostly occur in the middle of trajectories).
  double i_lo = 0.15;
  double i_hi = 0.45;
  double j_lo = 0.55;
  double j_hi = 0.90;
  int max_tries = 60;
};

/// Parameters of the Switch anomaly generator (paper §VI-A2).
struct SwitchConfig {
  /// Prefer alternatives whose Jaccard similarity with the base route is at
  /// most this; if none qualifies the least-similar candidate is used.
  double max_similarity = 0.5;
  /// Fractional position on the base route where the driver switches.
  double switch_lo = 0.30;
  double switch_hi = 0.60;
  /// Reject results longer than this multiple of the base route (keeps the
  /// synthetic anomaly a plausible trajectory rather than a tour).
  double max_length_ratio = 2.5;
  /// Reroute-cost preference exponent for the connector path (see
  /// DetourConfig::preference_gamma).
  double preference_gamma = 1.0;
  int max_tries = 30;
};

/// Implements the paper's two anomaly-generation strategies on road-network
/// trajectories:
///
///  * Detour — pick 1 <= i < k < j <= n, temporarily delete segment t_k from
///    the network, replace <t_i..t_j> with the Dijkstra shortest path from
///    t_i to t_j, retry (i, k, j) until the added distance is "appropriate".
///  * Switch — pick an alternative route t' of the same SD pair with low
///    Jaccard similarity, follow the base route up to a switch point, then
///    connect to t' with a shortest path and follow t' to the destination.
class AnomalyGenerator {
 public:
  AnomalyGenerator(const roadnet::RoadNetwork* network, uint64_t seed);

  /// Builds a detour variant of `base`; nullopt if no acceptable detour was
  /// found within max_tries (short routes, or nothing to reroute around).
  std::optional<Trip> MakeDetour(const Trip& base, const DetourConfig& config);

  /// Builds a switch variant of `base` given a pool of routes with the same
  /// SD pair; nullopt if the pool is empty or no valid switch was found.
  std::optional<Trip> MakeSwitch(const Trip& base,
                                 std::span<const Route> same_sd_pool,
                                 const SwitchConfig& config);

 private:
  const roadnet::RoadNetwork* network_;
  roadnet::ShortestPathEngine engine_;
  util::Rng rng_;
};

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_ANOMALY_H_
