#include "nn/kernels/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define CAUSALTAD_KERNELS_X86 1
#else
#define CAUSALTAD_KERNELS_X86 0
#endif

namespace causaltad {
namespace nn {
namespace kernels {

// Each backend TU (kernel_impl.inc under its per-file flags) exports its
// table through one of these. The AVX TUs exist only on x86 builds — CMake
// compiles them only for x86 processors, matching this guard.
namespace baseline {
const Kernels& Table();
}
#if CAUSALTAD_KERNELS_X86
namespace avx2 {
const Kernels& Table();
}
namespace avx512 {
const Kernels& Table();
}
#endif

namespace {

bool HostSupports(Isa isa) {
  switch (isa) {
    case Isa::kBaseline:
      return true;
    case Isa::kAvx2:
#if CAUSALTAD_KERNELS_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if CAUSALTAD_KERNELS_X86
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

const Kernels& TableFor(Isa isa) {
  CAUSALTAD_CHECK(HostSupports(isa))
      << "ISA " << IsaName(isa) << " not supported on this host";
  switch (isa) {
    case Isa::kBaseline:
      return baseline::Table();
#if CAUSALTAD_KERNELS_X86
    case Isa::kAvx2:
      return avx2::Table();
    case Isa::kAvx512:
      return avx512::Table();
#endif
    default:
      return baseline::Table();
  }
}

// Best ISA the host executes, downgraded by the CAUSALTAD_ISA override when
// set. An override naming an unsupported ISA falls back to the best
// supported one (with a warning) so a pinned CI job degrades instead of
// crashing; an unrecognized value is a hard error.
Isa DetectIsa() {
  Isa best = Isa::kBaseline;
  if (HostSupports(Isa::kAvx2)) best = Isa::kAvx2;
  if (HostSupports(Isa::kAvx512)) best = Isa::kAvx512;
  const char* env = std::getenv("CAUSALTAD_ISA");
  if (env == nullptr || env[0] == '\0') return best;
  Isa wanted = best;
  if (std::strcmp(env, "baseline") == 0) {
    wanted = Isa::kBaseline;
  } else if (std::strcmp(env, "avx2") == 0) {
    wanted = Isa::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    wanted = Isa::kAvx512;
  } else {
    CAUSALTAD_CHECK(false) << "CAUSALTAD_ISA must be baseline|avx2|avx512, "
                           << "got '" << env << "'";
  }
  if (!HostSupports(wanted)) {
    std::fprintf(stderr,
                 "causaltad: CAUSALTAD_ISA=%s unsupported on this host, "
                 "using %s\n",
                 env, IsaName(best));
    return best;
  }
  return wanted;
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kBaseline:
      return "baseline";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "?";
}

bool Supported(Isa isa) { return HostSupports(isa); }

const Kernels& Get(Isa isa) { return TableFor(isa); }

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Kernels* detected = &TableFor(DetectIsa());
    // First caller wins; a concurrent first call detects the same table.
    g_active.store(detected, std::memory_order_release);
    k = detected;
  }
  return *k;
}

Isa ActiveIsa() { return Active().isa; }

void SetIsa(Isa isa) {
  g_active.store(&TableFor(isa), std::memory_order_release);
}

void QuantizeRowsI8(const float* src, int64_t rows, int64_t d, int8_t* q,
                    float* scales) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = src + i * d;
    float absmax = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      absmax = std::max(absmax, std::fabs(row[j]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* qrow = q + i * d;
    for (int64_t j = 0; j < d; ++j) {
      const float v = std::nearbyintf(row[j] * inv);
      qrow[j] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, v)));
    }
    scales[i] = scale;
  }
}

}  // namespace kernels
}  // namespace nn
}  // namespace causaltad
