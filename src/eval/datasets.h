#ifndef CAUSALTAD_EVAL_DATASETS_H_
#define CAUSALTAD_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "roadnet/grid_city.h"
#include "traj/anomaly.h"
#include "traj/router.h"
#include "traj/trip_generator.h"

namespace causaltad {
namespace eval {

/// Experiment size presets. kSmoke is for unit tests, kDefault sizes the
/// single-core bench suite, kFull approaches the paper's corpus sizes
/// (select via the CAUSALTAD_BENCH_SCALE environment variable).
enum class Scale {
  kSmoke,
  kDefault,
  kFull,
};

Scale ScaleFromEnv();
const char* ScaleName(Scale scale);

/// Everything needed to regenerate one city's evaluation data.
struct CityExperimentConfig {
  std::string name;  // "xian" or "chengdu"
  roadnet::GridCityConfig city;
  traj::RouterConfig router;
  traj::TripGeneratorConfig gen;
  /// Average trips per candidate pair; actual counts are Zipf-allocated
  /// with a floor so every pair keeps enough trips for a train/test split.
  int trips_per_pair = 40;
  int min_trips_per_pair = 8;
  /// OOD normal trips (unseen SD pairs).
  int num_ood = 500;
  /// Extra same-SD routes sampled per OOD trip to build Switch pools.
  int ood_pool_routes = 6;
  traj::DetourConfig detour;
  traj::SwitchConfig route_switch;
  uint64_t seed = 1;
};

/// The paper's two cities, rescaled per Scale. The "Chengdu" stand-in is
/// larger and denser than "Xi'an", mirroring the corpus-size relation of
/// the real datasets (~20k vs ~10k trips).
CityExperimentConfig XianConfig(Scale scale);
CityExperimentConfig ChengduConfig(Scale scale);

/// A fully materialized evaluation corpus: splits and anomaly sets for the
/// four dataset combinations of Tables I/II.
struct ExperimentData {
  roadnet::City city;
  std::vector<traj::SdPair> pairs;
  std::vector<traj::Trip> train;
  std::vector<traj::Trip> id_test;
  std::vector<traj::Trip> ood_test;
  std::vector<traj::Trip> id_detour;
  std::vector<traj::Trip> id_switch;
  std::vector<traj::Trip> ood_detour;
  std::vector<traj::Trip> ood_switch;

  int64_t vocab() const { return city.network.num_segments(); }
};

/// Deterministically builds the corpus from the config: samples candidate
/// pairs (E→C), generates Zipf-allocated trips per pair, splits half/half
/// into train and ID test (the paper's protocol), draws OOD trips from
/// uniform unseen pairs, and derives Detour/Switch anomaly sets from each
/// test split.
ExperimentData BuildExperiment(const CityExperimentConfig& config);

/// Mixes ID and OOD normal test sets at shift ratio alpha (Fig. 5):
/// (1-alpha) ID : alpha OOD, deterministic subsampling.
std::vector<traj::Trip> MixShift(const std::vector<traj::Trip>& id_set,
                                 const std::vector<traj::Trip>& ood_set,
                                 double alpha, uint64_t seed);

/// Deterministic subsample of at most `max_count` trips (keeps order).
std::vector<traj::Trip> Subsample(const std::vector<traj::Trip>& trips,
                                  int64_t max_count, uint64_t seed);

}  // namespace eval
}  // namespace causaltad

#endif  // CAUSALTAD_EVAL_DATASETS_H_
