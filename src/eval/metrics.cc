#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace causaltad {
namespace eval {

double RocAuc(std::span<const double> scores,
              std::span<const uint8_t> labels) {
  CAUSALTAD_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  int64_t num_pos = 0;
  for (uint8_t l : labels) num_pos += (l != 0);
  const int64_t num_neg = n - num_pos;
  CAUSALTAD_CHECK_GT(num_pos, 0);
  CAUSALTAD_CHECK_GT(num_neg, 0);

  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[a] < scores[b];
  });

  // Sum of positive ranks with average ranks for ties.
  double pos_rank_sum = 0.0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (int64_t k = i; k < j; ++k) {
      if (labels[order[k]] != 0) pos_rank_sum += avg_rank;
    }
    i = j;
  }
  const double u = pos_rank_sum -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double PrAuc(std::span<const double> scores,
             std::span<const uint8_t> labels) {
  CAUSALTAD_CHECK_EQ(scores.size(), labels.size());
  const int64_t n = static_cast<int64_t>(scores.size());
  int64_t num_pos = 0;
  for (uint8_t l : labels) num_pos += (l != 0);
  CAUSALTAD_CHECK_GT(num_pos, 0);

  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[a] > scores[b];  // descending: most anomalous first
  });

  // Average precision with tie groups handled atomically.
  double ap = 0.0;
  int64_t tp = 0, fp = 0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    int64_t group_tp = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      group_tp += (labels[order[j]] != 0);
      ++j;
    }
    const int64_t group_size = j - i;
    tp += group_tp;
    fp += group_size - group_tp;
    const double precision =
        static_cast<double>(tp) / static_cast<double>(tp + fp);
    ap += precision * static_cast<double>(group_tp);
    i = j;
  }
  return ap / static_cast<double>(num_pos);
}

EvalResult EvaluateScores(std::span<const double> normal_scores,
                          std::span<const double> anomaly_scores) {
  std::vector<double> scores;
  std::vector<uint8_t> labels;
  scores.reserve(normal_scores.size() + anomaly_scores.size());
  labels.reserve(scores.capacity());
  for (double s : normal_scores) {
    scores.push_back(s);
    labels.push_back(0);
  }
  for (double s : anomaly_scores) {
    scores.push_back(s);
    labels.push_back(1);
  }
  EvalResult result;
  result.num_normal = static_cast<int64_t>(normal_scores.size());
  result.num_anomaly = static_cast<int64_t>(anomaly_scores.size());
  result.roc_auc = RocAuc(scores, labels);
  result.pr_auc = PrAuc(scores, labels);
  return result;
}

}  // namespace eval
}  // namespace causaltad
