#ifndef CAUSALTAD_TRAJ_TRIP_GENERATOR_H_
#define CAUSALTAD_TRAJ_TRIP_GENERATOR_H_

#include <vector>

#include "roadnet/grid_city.h"
#include "traj/router.h"
#include "traj/trajectory.h"
#include "util/random.h"

namespace causaltad {
namespace traj {

/// An SD pair of nodes, the conditioning context C of the paper.
struct SdPair {
  roadnet::NodeId source = roadnet::kInvalidNode;
  roadnet::NodeId dest = roadnet::kInvalidNode;
  /// Relative demand weight across candidate pairs (Zipf-skewed).
  double weight = 1.0;
};

/// Configuration of the confounded trip generator. Mirrors the paper's data
/// prep: pick `num_candidate_pairs` popular SD pairs, generate many trips
/// per pair for training/ID testing, and sample fresh unseen pairs for the
/// OOD test set.
struct TripGeneratorConfig {
  int num_candidate_pairs = 60;
  /// Minimum hop distance (segments) between a pair's endpoints.
  int min_hops = 10;
  /// Zipf exponent over candidate pairs: demand concentrates on a few pairs,
  /// which is what makes the confounding bias bite.
  double pair_zipf_s = 1.0;
  int num_time_slots = 8;
  /// Probability a trip departs in a rush-hour slot.
  double rush_prob = 0.45;
  uint64_t seed = 1234;
};

/// Generates trips from the causal model of Fig. 2(a):
///   E -> C : candidate SD pairs are sampled proportionally to POI-driven
///            node popularity;
///   C -> T and E -> T : routes come from the PreferenceRouter.
/// OOD trips are drawn uniformly over nodes (min-hop constrained), so their
/// SD pairs do not follow E -> C — exactly the distribution shift the paper
/// evaluates.
class TripGenerator {
 public:
  TripGenerator(const roadnet::City* city, const PreferenceRouter* router,
                const TripGeneratorConfig& config);

  /// Samples the candidate SD-pair table (deterministic given config seed).
  /// Pairs are distinct, respect min_hops, and carry Zipf demand weights.
  std::vector<SdPair> SampleCandidatePairs();

  /// One trip for candidate pair `pair_id` of `pairs`.
  Trip GenerateTrip(const std::vector<SdPair>& pairs, int32_t pair_id);

  /// One trip whose SD pair is sampled uniformly (an OOD pair). `avoid`
  /// lists pairs that must not be produced (the candidate pairs).
  Trip GenerateOodTrip(const std::vector<SdPair>& avoid);

  /// Samples a departure slot (rush-biased per config).
  int SampleTimeSlot();

  util::Rng* rng() { return &rng_; }

 private:
  roadnet::NodeId SamplePopularNode();
  bool PairTooClose(roadnet::NodeId a, roadnet::NodeId b);

  const roadnet::City* city_;
  const PreferenceRouter* router_;
  TripGeneratorConfig config_;
  util::Rng rng_;
};

}  // namespace traj
}  // namespace causaltad

#endif  // CAUSALTAD_TRAJ_TRIP_GENERATOR_H_
