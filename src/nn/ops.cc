#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace causaltad {
namespace nn {
namespace {

using internal::MakeOp;

// True when b should be broadcast across a's rows: b is [1, a.cols] (or a
// has rank 2 and b is a 1-element scalar).
enum class BroadcastMode { kNone, kRow, kScalar };

BroadcastMode BroadcastOf(const Tensor& a, const Tensor& b) {
  if (a.SameShape(b)) return BroadcastMode::kNone;
  if (b.numel() == 1) return BroadcastMode::kScalar;
  if (a.ndim() == 2 && b.ndim() == 2 && b.dim(0) == 1 &&
      b.dim(1) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  if (a.ndim() == 2 && b.ndim() == 1 && b.dim(0) == a.dim(1)) {
    return BroadcastMode::kRow;
  }
  CAUSALTAD_CHECK(false) << "incompatible shapes for broadcast op";
  return BroadcastMode::kNone;
}

// Accumulates `g` (shaped like the op output / lhs) into rhs grad under the
// given broadcast mode.
void AccumulateBroadcastGrad(const Tensor& g, BroadcastMode mode, float sign,
                             Tensor* db) {
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < g.numel(); ++i) (*db)[i] += sign * g[i];
  } else if (mode == BroadcastMode::kScalar) {
    float total = 0.0f;
    for (int64_t i = 0; i < g.numel(); ++i) total += g[i];
    (*db)[0] += sign * total;
  } else {
    const int64_t rows = g.dim(0), cols = g.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) (*db)[c] += sign * gr[c];
    }
  }
}

Var AddLike(const Var& a, const Var& b, float sign_b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  const BroadcastMode mode = BroadcastOf(ta, tb);
  Tensor out = ta;
  if (mode == BroadcastMode::kNone) {
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += sign_b * tb[i];
  } else if (mode == BroadcastMode::kScalar) {
    const float v = sign_b * tb[0];
    for (int64_t i = 0; i < out.numel(); ++i) out[i] += v;
  } else {
    const int64_t rows = ta.dim(0), cols = ta.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      float* orow = out.data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += sign_b * tb[c];
    }
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, mode, sign_b]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        AccumulateBroadcastGrad(self->grad, mode, sign_b, &nb->grad);
      }
    };
  }
  return result;
}

// out = f(a) elementwise with derivative expressed from (input, output).
template <typename Fwd, typename Bwd>
Var ElementwiseUnary(const Var& a, Fwd fwd, Bwd bwd_factor) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, bwd_factor]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] +=
            self->grad[i] * bwd_factor(na->value[i], self->value[i]);
      }
    };
  }
  return result;
}

void SoftmaxRow(const float* logits, int64_t n, float* out) {
  float max_v = logits[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, logits[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = std::exp(logits[i] - max_v);
    total += out[i];
  }
  const float inv = 1.0f / total;
  for (int64_t i = 0; i < n; ++i) out[i] *= inv;
}

}  // namespace

Var Constant(Tensor value) { return Var(std::move(value), false); }

Var Add(const Var& a, const Var& b) { return AddLike(a, b, 1.0f); }
Var Sub(const Var& a, const Var& b) { return AddLike(a, b, -1.0f); }

Var Mul(const Var& a, const Var& b) {
  CAUSALTAD_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= b.value()[i];

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb]() {
      if (na->requires_grad) {
        na->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          na->grad[i] += self->grad[i] * nb->value[i];
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        for (int64_t i = 0; i < self->grad.numel(); ++i) {
          nb->grad[i] += self->grad[i] * na->value[i];
        }
      }
    };
  }
  return result;
}

Var ScalarMul(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, scalar]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i] * scalar;
      }
    };
  }
  return result;
}

Var ScalarAdd(const Var& a, float scalar) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += scalar;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      for (int64_t i = 0; i < self->grad.numel(); ++i) {
        na->grad[i] += self->grad[i];
      }
    };
  }
  return result;
}

Var MatMul(const Var& a, const Var& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  CAUSALTAD_CHECK_EQ(ta.ndim(), 2);
  CAUSALTAD_CHECK_EQ(tb.ndim(), 2);
  CAUSALTAD_CHECK_EQ(ta.dim(1), tb.dim(0));
  const int64_t m = ta.dim(0), k = ta.dim(1), n = tb.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ta.data() + i * k;
    float* orow = out.data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = tb.data() + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a, b}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    Node* nb = b.node().get();
    *slot = [self, na, nb, m, k, n]() {
      const Tensor& g = self->grad;
      if (na->requires_grad) {
        na->EnsureGrad();
        // dA = G · Bᵀ  → dA[i,p] += Σ_j G[i,j]·B[p,j]
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g.data() + i * n;
          float* darow = na->grad.data() + i * k;
          for (int64_t p = 0; p < k; ++p) {
            const float* brow = nb->value.data() + p * n;
            float acc = 0.0f;
            for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
            darow[p] += acc;
          }
        }
      }
      if (nb->requires_grad) {
        nb->EnsureGrad();
        // dB = Aᵀ · G  → dB[p,j] += Σ_i A[i,p]·G[i,j]
        for (int64_t i = 0; i < m; ++i) {
          const float* arow = na->value.data() + i * k;
          const float* grow = g.data() + i * n;
          for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            float* dbrow = nb->grad.data() + p * n;
            for (int64_t j = 0; j < n; ++j) dbrow[j] += av * grow[j];
          }
        }
      }
    };
  }
  return result;
}

Var Affine(const Var& x, const Var& w, const Var& b) {
  Var y = MatMul(x, w);
  if (!b.defined()) return y;
  return Add(y, b);
}

Var Tanh(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Exp(const Var& a) {
  return ElementwiseUnary(
      a, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Var Neg(const Var& a) { return ScalarMul(a, -1.0f); }

Var Sum(const Var& a) {
  float total = 0.0f;
  for (int64_t i = 0; i < a.value().numel(); ++i) total += a.value()[i];
  Tensor out({1, 1});
  out[0] = total;
  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t i = 0; i < na->grad.numel(); ++i) na->grad[i] += g;
    };
  }
  return result;
}

Var Mean(const Var& a) {
  return ScalarMul(Sum(a), 1.0f / static_cast<float>(a.value().numel()));
}

Var ConcatRows(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t cols = parts[0].value().dim(1);
  int64_t rows = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(1), cols);
    rows += p.value().dim(0);
  }
  Tensor out({rows, cols});
  int64_t offset = 0;
  for (const Var& p : parts) {
    std::copy(p.value().data(), p.value().data() + p.value().numel(),
              out.data() + offset);
    offset += p.value().numel();
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes]() {
      int64_t offset = 0;
      for (Node* n : nodes) {
        const int64_t count = n->value.numel();
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t i = 0; i < count; ++i) {
            n->grad[i] += self->grad[offset + i];
          }
        }
        offset += count;
      }
    };
  }
  return result;
}

Var ConcatCols(const std::vector<Var>& parts) {
  CAUSALTAD_CHECK(!parts.empty());
  const int64_t rows = parts[0].value().dim(0);
  int64_t cols = 0;
  for (const Var& p : parts) {
    CAUSALTAD_CHECK_EQ(p.value().ndim(), 2);
    CAUSALTAD_CHECK_EQ(p.value().dim(0), rows);
    cols += p.value().dim(1);
  }
  Tensor out({rows, cols});
  int64_t col_offset = 0;
  for (const Var& p : parts) {
    const int64_t pc = p.value().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(p.value().data() + r * pc, p.value().data() + (r + 1) * pc,
                out.data() + r * cols + col_offset);
    }
    col_offset += pc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), parts, &slot, &self);
  if (slot) {
    std::vector<Node*> nodes;
    nodes.reserve(parts.size());
    for (const Var& p : parts) nodes.push_back(p.node().get());
    *slot = [self, nodes, rows, cols]() {
      int64_t col_offset = 0;
      for (Node* n : nodes) {
        const int64_t pc = n->value.dim(1);
        if (n->requires_grad) {
          n->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t c = 0; c < pc; ++c) {
              n->grad[r * pc + c] += self->grad[r * cols + col_offset + c];
            }
          }
        }
        col_offset += pc;
      }
    };
  }
  return result;
}

Var GatherRows(const Var& table, std::span<const int32_t> ids) {
  const Tensor& t = table.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t d = t.dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    CAUSALTAD_DCHECK(ids[i] >= 0 && ids[i] < t.dim(0));
    std::copy(t.data() + ids[i] * d, t.data() + (ids[i] + 1) * d,
              out.data() + static_cast<int64_t>(i) * d);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {table}, &slot, &self);
  if (slot) {
    Node* nt = table.node().get();
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nt, ids_copy, d]() {
      nt->EnsureGrad();
      for (size_t i = 0; i < ids_copy.size(); ++i) {
        const float* g = self->grad.data() + static_cast<int64_t>(i) * d;
        float* dst = nt->grad.data() + ids_copy[i] * d;
        for (int64_t c = 0; c < d; ++c) dst[c] += g[c];
      }
    };
  }
  return result;
}

Var Softmax(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({rows, cols});
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(t.data() + r * cols, cols, out.data() + r * cols);
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, rows, cols]() {
      na->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self->value.data() + r * cols;
        const float* g = self->grad.data() + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c) dot += y[c] * g[c];
        float* da = na->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) da[c] += y[c] * (g[c] - dot);
      }
    };
  }
  return result;
}

Var SoftmaxCrossEntropy(const Var& logits, std::span<const int32_t> targets) {
  const Tensor& t = logits.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  CAUSALTAD_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));

  // Store probabilities for the backward pass.
  auto probs = std::make_shared<Tensor>(Tensor({rows, cols}));
  float loss = 0.0f;
  for (int64_t r = 0; r < rows; ++r) {
    SoftmaxRow(t.data() + r * cols, cols, probs->data() + r * cols);
    const int32_t target = targets[r];
    CAUSALTAD_DCHECK(target >= 0 && target < cols);
    const float p = std::max((*probs)[r * cols + target], 1e-12f);
    loss -= std::log(p);
  }
  Tensor out({1, 1});
  out[0] = loss;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {logits}, &slot, &self);
  if (slot) {
    Node* nl = logits.node().get();
    std::vector<int32_t> tgt(targets.begin(), targets.end());
    *slot = [self, nl, probs, tgt, rows, cols]() {
      nl->EnsureGrad();
      const float g = self->grad[0];
      for (int64_t r = 0; r < rows; ++r) {
        const float* p = probs->data() + r * cols;
        float* dl = nl->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) dl[c] += g * p[c];
        dl[tgt[r]] -= g;
      }
    };
  }
  return result;
}

Var GatherColsDot(const Var& h, const Var& w, const Var& b,
                  std::span<const int32_t> ids) {
  const Tensor& th = h.value();
  const Tensor& tw = w.value();
  CAUSALTAD_CHECK_EQ(th.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(0), 1);
  CAUSALTAD_CHECK_EQ(tw.ndim(), 2);
  CAUSALTAD_CHECK_EQ(th.dim(1), tw.dim(0));
  const int64_t d = th.dim(1);
  const int64_t big_c = tw.dim(1);
  const int64_t k = static_cast<int64_t>(ids.size());
  Tensor out({1, k});
  for (int64_t j = 0; j < k; ++j) {
    const int32_t col = ids[j];
    CAUSALTAD_DCHECK(col >= 0 && col < big_c);
    float acc = b.defined() ? b.value()[col] : 0.0f;
    const float* hv = th.data();
    for (int64_t i = 0; i < d; ++i) acc += hv[i] * tw.data()[i * big_c + col];
    out[j] = acc;
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {h, w, b}, &slot, &self);
  if (slot) {
    Node* nh = h.node().get();
    Node* nw = w.node().get();
    Node* nb = b.defined() ? b.node().get() : nullptr;
    std::vector<int32_t> ids_copy(ids.begin(), ids.end());
    *slot = [self, nh, nw, nb, ids_copy, d, big_c]() {
      const Tensor& g = self->grad;
      if (nh->requires_grad) {
        nh->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nh->grad[i] += gj * nw->value[i * big_c + col];
          }
        }
      }
      if (nw->requires_grad) {
        nw->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          const float gj = g[static_cast<int64_t>(j)];
          if (gj == 0.0f) continue;
          const int32_t col = ids_copy[j];
          for (int64_t i = 0; i < d; ++i) {
            nw->grad[i * big_c + col] += gj * nh->value[i];
          }
        }
      }
      if (nb != nullptr && nb->requires_grad) {
        nb->EnsureGrad();
        for (size_t j = 0; j < ids_copy.size(); ++j) {
          nb->grad[ids_copy[j]] += g[static_cast<int64_t>(j)];
        }
      }
    };
  }
  return result;
}

Var KlStandardNormal(const Var& mu, const Var& logvar) {
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  float total = 0.0f;
  for (int64_t i = 0; i < tm.numel(); ++i) {
    total += tm[i] * tm[i] + std::exp(tv[i]) - 1.0f - tv[i];
  }
  Tensor out({1, 1});
  out[0] = 0.5f * total;

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    *slot = [self, nm, nv]() {
      const float g = self->grad[0];
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < nm->grad.numel(); ++i) {
          nm->grad[i] += g * nm->value[i];
        }
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < nv->grad.numel(); ++i) {
          nv->grad[i] += g * 0.5f * (std::exp(nv->value[i]) - 1.0f);
        }
      }
    };
  }
  return result;
}

Var Reparameterize(const Var& mu, const Var& logvar, util::Rng* rng) {
  CAUSALTAD_CHECK(rng != nullptr);
  const Tensor& tm = mu.value();
  const Tensor& tv = logvar.value();
  CAUSALTAD_CHECK(tm.SameShape(tv));
  auto eps = std::make_shared<Tensor>(tm.shape());
  Tensor out = tm;
  for (int64_t i = 0; i < out.numel(); ++i) {
    (*eps)[i] = static_cast<float>(rng->Gaussian());
    out[i] += std::exp(0.5f * tv[i]) * (*eps)[i];
  }

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {mu, logvar}, &slot, &self);
  if (slot) {
    Node* nm = mu.node().get();
    Node* nv = logvar.node().get();
    *slot = [self, nm, nv, eps]() {
      const Tensor& g = self->grad;
      if (nm->requires_grad) {
        nm->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) nm->grad[i] += g[i];
      }
      if (nv->requires_grad) {
        nv->EnsureGrad();
        for (int64_t i = 0; i < g.numel(); ++i) {
          nv->grad[i] +=
              g[i] * 0.5f * std::exp(0.5f * nv->value[i]) * (*eps)[i];
        }
      }
    };
  }
  return result;
}

Var LogSumExpRow(const Var& a) {
  const Tensor& t = a.value();
  CAUSALTAD_CHECK_EQ(t.ndim(), 2);
  CAUSALTAD_CHECK_EQ(t.dim(0), 1);
  const int64_t n = t.dim(1);
  float max_v = t[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, t[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) total += std::exp(t[i] - max_v);
  Tensor out({1, 1});
  out[0] = max_v + std::log(total);

  std::function<void()>* slot = nullptr;
  Node* self = nullptr;
  Var result = MakeOp(std::move(out), {a}, &slot, &self);
  if (slot) {
    Node* na = a.node().get();
    *slot = [self, na, n]() {
      na->EnsureGrad();
      const float g = self->grad[0];
      const float lse = self->value[0];
      for (int64_t i = 0; i < n; ++i) {
        na->grad[i] += g * std::exp(na->value[i] - lse);
      }
    };
  }
  return result;
}

}  // namespace nn
}  // namespace causaltad
