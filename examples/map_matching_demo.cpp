// Map matching: the preprocessing step the paper assumes ("all trajectories
// can be mapped into a completed road sequence", Definition 2).
//
// This demo drives a vehicle along a ground-truth route, simulates noisy
// GPS fixes, recovers the route with the HMM map matcher, and reports how
// well the recovery matches the truth across noise levels.

#include <cstdio>

#include "roadnet/grid_city.h"
#include "traj/gps_sim.h"
#include "traj/map_matching.h"
#include "traj/router.h"

int main() {
  using namespace causaltad;

  roadnet::GridCityConfig city_config;
  city_config.rows = 10;
  city_config.cols = 10;
  city_config.seed = 7;
  const roadnet::City city = roadnet::BuildGridCity(city_config);
  const traj::PreferenceRouter router(&city, traj::RouterConfig{});
  const traj::HmmMapMatcher matcher(&city.network, traj::MapMatcherConfig{});

  util::Rng rng(123);
  std::printf("%-18s %-14s %-14s %-10s\n", "GPS noise (m)", "truth segs",
              "matched segs", "Jaccard");
  for (const double noise : {5.0, 10.0, 20.0, 35.0}) {
    double jaccard_sum = 0.0;
    int trials = 0;
    for (int t = 0; t < 5; ++t) {
      const auto src = static_cast<roadnet::NodeId>(
          rng.UniformInt(city.network.num_nodes()));
      const auto dst = static_cast<roadnet::NodeId>(
          rng.UniformInt(city.network.num_nodes()));
      if (src == dst) continue;
      const traj::Route truth = router.Sample(src, dst, 0, &rng);
      if (truth.size() < 6) continue;

      traj::GpsSimConfig gps_config;
      gps_config.interval_s = 4.0;
      gps_config.noise_sigma_m = noise;
      const traj::GpsTrace trace =
          traj::SimulateGps(city.network, truth, gps_config, &rng);

      const auto matched = matcher.Match(trace);
      if (!matched.ok()) {
        std::printf("  match failed: %s\n",
                    matched.status().ToString().c_str());
        continue;
      }
      const double jaccard = traj::RouteJaccard(truth, *matched);
      jaccard_sum += jaccard;
      ++trials;
      if (t == 0) {
        std::printf("%-18.0f %-14lld %-14lld %-10.3f\n", noise,
                    static_cast<long long>(truth.size()),
                    static_cast<long long>(matched->size()), jaccard);
      }
    }
    if (trials > 1) {
      std::printf("%-18.0f %-14s %-14s %-10.3f  (mean of %d trips)\n",
                  noise, "-", "-", jaccard_sum / trials, trials);
    }
  }
  std::printf("\nAt taxi-typical GPS noise (10-20 m) the HMM matcher "
              "recovers routes almost exactly,\nwhich is why the anomaly "
              "detectors can work on road-segment sequences.\n");
  return 0;
}
