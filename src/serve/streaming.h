#ifndef CAUSALTAD_SERVE_STREAMING_H_
#define CAUSALTAD_SERVE_STREAMING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/causal_tad.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace causaltad {
namespace serve {

/// Serving knobs. See README.md in this directory for the API contract
/// (ordering, deadlines, thread-safety).
struct StreamingOptions {
  /// Hard cap on the sessions advanced by one batched step (the admission
  /// batch size — also the row count of the fused [B, hidden] GRU step).
  int64_t max_batch_rows = 256;
  /// Deadline-bounded admission: StepIfReady() fires a partial batch once
  /// the oldest queued point has waited this long.
  double max_delay_ms = 2.0;
  /// Injectable monotonic clock in milliseconds (tests fake it); null uses
  /// the process steady clock.
  std::function<double()> now_ms;
  /// Cached SD-pair trip contexts (posterior, h0, sd_nll + kl) before the
  /// cache is reset. Concurrent orders between the same endpoints — the
  /// paper's ride-hailing workload — then share one SD encode.
  int64_t sd_cache_capacity = 4096;
};

using SessionId = int64_t;

class StreamingBatcher;

/// Non-owning handle over one trip's stream inside a StreamingBatcher.
/// Thin forwarding wrapper; copyable, does not End() on destruction.
class StreamingSession {
 public:
  StreamingSession() = default;
  StreamingSession(StreamingBatcher* batcher, SessionId id)
      : batcher_(batcher), id_(id) {}

  void Push(roadnet::SegmentId segment);
  void End();
  std::vector<double> Poll();
  SessionId id() const { return id_; }

 private:
  StreamingBatcher* batcher_ = nullptr;
  SessionId id_ = -1;
};

/// Multi-trip streaming engine: every concurrently-active trip owns one row
/// of a shared [capacity, hidden] state matrix, and one Step() advances all
/// sessions with a queued point by a single fused batched GRU step
/// (TgVae::StepNllRows, sharded across the worker pool) plus per-row
/// successor-masked softmaxes and scaling-table lookups. Per-point cost is
/// O(1) in trip length — this is the paper's online protocol (§V-D) served
/// batched, against CausalTad::BeginTrip's one-session-per-trip sessions.
///
/// Scores match Score(trip, k) / the per-trip online sessions exactly (the
/// same fused kernels run in both; the streaming tests assert parity).
/// kScalingOnly sessions hold no state row — their per-point ELBOs batch
/// through RpVae::SegmentNllBatch per step instead.
class StreamingBatcher {
 public:
  /// Serves the full debiased score (ScoreVariant::kFull, model λ).
  explicit StreamingBatcher(const core::CausalTad* model,
                            StreamingOptions options = {});
  /// Serves an ablation variant (λ ignored unless kFull).
  StreamingBatcher(const core::CausalTad* model, core::ScoreVariant variant,
                   double lambda, StreamingOptions options = {});

  /// Registers a new active trip; its SD pair and departure slot are the
  /// context fixed when the order is placed.
  SessionId BeginSession(roadnet::SegmentId source,
                         roadnet::SegmentId destination, int time_slot);
  /// Convenience: BeginSession from a trip's route endpoints, wrapped in a
  /// handle.
  StreamingSession Begin(const traj::Trip& trip);

  /// Queues the trip's next observed point. Points of one session are
  /// processed in feed order, at most one per Step (so a session that
  /// pushes a burst drains over several steps while other sessions
  /// interleave).
  void Push(SessionId id, roadnet::SegmentId segment);

  /// Marks the trip finished. Its state row is released (and the state
  /// matrix compacted when mostly free) once every queued point has been
  /// scored; queued points are still processed and Poll() keeps working.
  void End(SessionId id);

  /// Runs one batched advance over the queued points — up to
  /// max_batch_rows sessions, FIFO by queue arrival. Returns the number of
  /// points scored.
  int64_t Step();

  /// Steps until no queued point remains.
  void Flush();

  /// Deadline-bounded admission: Step() only if the batch is full or the
  /// oldest queued point has waited at least max_delay_ms. A serving pump
  /// loop calls this; returns the number of points scored (0 = not ready).
  int64_t StepIfReady();

  /// Drains the scores emitted for `id` since the last Poll, in feed
  /// order. A fully-polled ended session is forgotten.
  std::vector<double> Poll(SessionId id);

  /// Sessions holding a live state row / allocated rows / queued points —
  /// introspection for tests and ops dashboards.
  int64_t active_rows() const;
  int64_t capacity_rows() const;
  int64_t queued_points() const;

 private:
  struct Session {
    int64_t row = -1;  // shared-state row; -1 for kScalingOnly sessions
    roadnet::SegmentId last = roadnet::kInvalidSegment;
    bool has_last = false;
    bool ended = false;
    int table_slot = 0;  // scaling-table slot (kFull)
    int rp_slot = 0;     // RP-VAE slot (kScalingOnly)
    double base = 0.0;   // sd_nll + kl
    double nll = 0.0;
    double scaling = 0.0;
    bool in_ready = false;
    std::deque<roadnet::SegmentId> pending;
    std::vector<double> scores;
  };

  double Now() const;
  int64_t StepLocked();
  int64_t AllocRowLocked();
  void ReleaseRowLocked(Session* session);
  void MaybeForgetLocked(SessionId id);

  const core::CausalTad* model_;
  const core::TgVae* tg_;
  const core::RpVae* rp_;
  core::ScoreVariant variant_;
  double lambda_;
  StreamingOptions options_;
  // TG-VAE output weights transposed ([vocab, hidden]); shared with the
  // model's serving cache so a re-Fit under a live batcher cannot dangle.
  std::shared_ptr<const std::vector<float>> wt_;

  mutable std::mutex mu_;
  SessionId next_id_ = 0;
  std::unordered_map<SessionId, Session> sessions_;
  std::deque<SessionId> ready_;       // FIFO of sessions with queued points
  std::deque<double> ready_since_;    // arrival time of each ready_ entry
  int64_t queued_points_ = 0;
  std::vector<float> states_;         // [capacity, hidden] row-major
  int64_t capacity_ = 0;
  std::vector<int64_t> free_rows_;
  struct SdContext {
    std::vector<float> h0;
    double base = 0.0;
  };
  std::unordered_map<uint64_t, SdContext> sd_cache_;
};

}  // namespace serve
}  // namespace causaltad

#endif  // CAUSALTAD_SERVE_STREAMING_H_
