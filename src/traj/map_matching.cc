#include "traj/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace causaltad {
namespace traj {
namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

HmmMapMatcher::HmmMapMatcher(const roadnet::RoadNetwork* network,
                             const MapMatcherConfig& config)
    : network_(network),
      config_(config),
      engine_(network),
      proj_(network->num_nodes() > 0 ? network->node(0).pos
                                     : geo::LatLon{0, 0}) {
  CAUSALTAD_CHECK(network != nullptr);
  CAUSALTAD_CHECK_GT(network->num_segments(), 0);

  // Project all segment endpoints and compute the bounding box.
  const int64_t m = network->num_segments();
  seg_a_.resize(m);
  seg_b_.resize(m);
  min_x_ = min_y_ = std::numeric_limits<double>::infinity();
  double max_x = -min_x_, max_y = -min_y_;
  for (int64_t s = 0; s < m; ++s) {
    const roadnet::Segment& seg = network->segment(s);
    seg_a_[s] = proj_.Project(network->node(seg.from).pos);
    seg_b_[s] = proj_.Project(network->node(seg.to).pos);
    min_x_ = std::min({min_x_, seg_a_[s].x, seg_b_[s].x});
    min_y_ = std::min({min_y_, seg_a_[s].y, seg_b_[s].y});
    max_x = std::max({max_x, seg_a_[s].x, seg_b_[s].x});
    max_y = std::max({max_y, seg_a_[s].y, seg_b_[s].y});
  }

  cell_size_m_ = std::max(50.0, config_.candidate_radius_m);
  nx_ = std::max(1, static_cast<int>((max_x - min_x_) / cell_size_m_) + 1);
  ny_ = std::max(1, static_cast<int>((max_y - min_y_) / cell_size_m_) + 1);
  cells_.assign(static_cast<size_t>(nx_) * ny_, {});

  auto cell_of = [this](double x, double y) {
    int cx = std::clamp(static_cast<int>((x - min_x_) / cell_size_m_), 0,
                        nx_ - 1);
    int cy = std::clamp(static_cast<int>((y - min_y_) / cell_size_m_), 0,
                        ny_ - 1);
    return std::pair<int, int>{cx, cy};
  };
  for (int64_t s = 0; s < m; ++s) {
    const auto [ax, ay] = cell_of(seg_a_[s].x, seg_a_[s].y);
    const auto [bx, by] = cell_of(seg_b_[s].x, seg_b_[s].y);
    for (int cx = std::min(ax, bx); cx <= std::max(ax, bx); ++cx) {
      for (int cy = std::min(ay, by); cy <= std::max(ay, by); ++cy) {
        cells_[static_cast<size_t>(cy) * nx_ + cx].push_back(
            static_cast<roadnet::SegmentId>(s));
      }
    }
  }
}

double HmmMapMatcher::SegmentDistanceMeters(const geo::LatLon& p,
                                            roadnet::SegmentId seg) const {
  const geo::Vec2 q = proj_.Project(p);
  return geo::PointSegmentDistance(q, seg_a_[seg], seg_b_[seg]);
}

std::vector<roadnet::SegmentId> HmmMapMatcher::Candidates(
    const geo::LatLon& p) const {
  const geo::Vec2 q = proj_.Project(p);
  const int cx0 = std::clamp(
      static_cast<int>((q.x - config_.candidate_radius_m - min_x_) /
                       cell_size_m_),
      0, nx_ - 1);
  const int cx1 = std::clamp(
      static_cast<int>((q.x + config_.candidate_radius_m - min_x_) /
                       cell_size_m_),
      0, nx_ - 1);
  const int cy0 = std::clamp(
      static_cast<int>((q.y - config_.candidate_radius_m - min_y_) /
                       cell_size_m_),
      0, ny_ - 1);
  const int cy1 = std::clamp(
      static_cast<int>((q.y + config_.candidate_radius_m - min_y_) /
                       cell_size_m_),
      0, ny_ - 1);

  std::vector<std::pair<double, roadnet::SegmentId>> found;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (roadnet::SegmentId s : cells_[static_cast<size_t>(cy) * nx_ + cx]) {
        const double d = geo::PointSegmentDistance(q, seg_a_[s], seg_b_[s]);
        if (d <= config_.candidate_radius_m) found.push_back({d, s});
      }
    }
  }
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
  std::vector<roadnet::SegmentId> out;
  for (const auto& [d, s] : found) {
    if (static_cast<int>(out.size()) >= config_.max_candidates) break;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

util::StatusOr<Route> HmmMapMatcher::Match(const GpsTrace& trace) const {
  if (trace.points.empty()) {
    return util::Status::InvalidArgument("empty GPS trace");
  }

  // Candidate sets per fix; fixes with no candidates are dropped.
  std::vector<std::vector<roadnet::SegmentId>> cands;
  std::vector<const GpsPoint*> fixes;
  for (const GpsPoint& pt : trace.points) {
    auto c = Candidates(pt.pos);
    if (!c.empty()) {
      cands.push_back(std::move(c));
      fixes.push_back(&pt);
    }
  }
  if (cands.empty()) {
    return util::Status::NotFound("no fix has candidate segments");
  }

  // Viterbi.
  const size_t num_steps = cands.size();
  std::vector<std::vector<double>> score(num_steps);
  std::vector<std::vector<int>> back(num_steps);
  auto emission = [this](const GpsPoint& pt, roadnet::SegmentId s) {
    const double d = SegmentDistanceMeters(pt.pos, s);
    const double z = d / config_.gps_sigma_m;
    return -0.5 * z * z;
  };
  score[0].resize(cands[0].size());
  back[0].assign(cands[0].size(), -1);
  for (size_t a = 0; a < cands[0].size(); ++a) {
    score[0][a] = emission(*fixes[0], cands[0][a]);
  }

  for (size_t step = 1; step < num_steps; ++step) {
    const double gps_disp =
        geo::HaversineMeters(fixes[step - 1]->pos, fixes[step]->pos);
    const double search_radius =
        std::max(500.0, config_.search_radius_factor * (gps_disp + 50.0));
    score[step].assign(cands[step].size(), kNegInf);
    back[step].assign(cands[step].size(), -1);
    // One bounded network search per previous candidate.
    for (size_t a = 0; a < cands[step - 1].size(); ++a) {
      if (score[step - 1][a] == kNegInf) continue;
      const auto tree =
          engine_.SegmentSearch(cands[step - 1][a], /*costs=*/{},
                                /*blocked=*/nullptr, search_radius);
      for (size_t b = 0; b < cands[step].size(); ++b) {
        const roadnet::SegmentId sb = cands[step][b];
        double net_dist = tree.dist[sb];
        if (net_dist == std::numeric_limits<double>::infinity()) continue;
        const double trans =
            -std::abs(net_dist - gps_disp) / config_.transition_beta_m;
        const double cand_score =
            score[step - 1][a] + trans + emission(*fixes[step], sb);
        if (cand_score > score[step][b]) {
          score[step][b] = cand_score;
          back[step][b] = static_cast<int>(a);
        }
      }
    }
    // If every transition was pruned (GPS gap), restart the chain here.
    bool any = false;
    for (double v : score[step]) any |= (v != kNegInf);
    if (!any) {
      for (size_t b = 0; b < cands[step].size(); ++b) {
        score[step][b] = emission(*fixes[step], cands[step][b]);
        back[step][b] = -1;
      }
    }
  }

  // Backtrack chosen segments.
  std::vector<roadnet::SegmentId> chosen(num_steps);
  int best = 0;
  for (size_t b = 1; b < score.back().size(); ++b) {
    if (score.back()[b] > score.back()[best]) best = static_cast<int>(b);
  }
  for (size_t step = num_steps; step-- > 0;) {
    chosen[step] = cands[step][best];
    best = back[step][best];
    if (best < 0 && step > 0) {
      // Chain restart: greedily pick the best-scoring candidate upstream.
      best = 0;
      for (size_t b = 1; b < score[step - 1].size(); ++b) {
        if (score[step - 1][b] > score[step - 1][best]) {
          best = static_cast<int>(b);
        }
      }
    }
  }

  // Stitch consecutive chosen segments into a valid route.
  Route route;
  route.segments.push_back(chosen[0]);
  for (size_t step = 1; step < num_steps; ++step) {
    const roadnet::SegmentId prev_seg = route.segments.back();
    const roadnet::SegmentId next_seg = chosen[step];
    if (next_seg == prev_seg) continue;
    const roadnet::RouteResult gap =
        engine_.SegmentToSegment(prev_seg, next_seg);
    if (!gap.found) {
      return util::Status::NotFound("cannot stitch matched segments");
    }
    route.segments.insert(route.segments.end(), gap.segments.begin() + 1,
                          gap.segments.end());
  }
  CAUSALTAD_DCHECK(route.IsValid(*network_));
  return route;
}

}  // namespace traj
}  // namespace causaltad
