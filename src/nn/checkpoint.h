#ifndef CAUSALTAD_NN_CHECKPOINT_H_
#define CAUSALTAD_NN_CHECKPOINT_H_

#include <string>

#include "nn/modules.h"
#include "util/status.h"

namespace causaltad {
namespace nn {

/// Writes all named parameters of `module` to a binary checkpoint at `path`.
/// Format: magic/version header, param count, then (name, shape, float data)
/// records. Deterministic given the module's parameter values.
util::Status SaveCheckpoint(const std::string& path, const Module& module);

/// Restores parameters from `path` into `module`, matching records by name
/// and shape. Fails (without partial mutation of mismatched entries) when a
/// record is missing, extra, or shape-mismatched.
util::Status LoadCheckpoint(const std::string& path, Module* module);

}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_CHECKPOINT_H_
