#include "eval/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "models/iboat.h"
#include "models/rnn_vae.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace causaltad {
namespace eval {
namespace {

models::RnnVaeConfig BaseRnnConfig(const ExperimentData& data, Scale scale) {
  models::RnnVaeConfig cfg;
  cfg.vocab = data.vocab();
  switch (scale) {
    case Scale::kSmoke:
      cfg.emb_dim = 16;
      cfg.hidden_dim = 24;
      cfg.latent_dim = 12;
      break;
    case Scale::kDefault:
      cfg.emb_dim = 32;
      cfg.hidden_dim = 48;
      cfg.latent_dim = 24;
      break;
    case Scale::kFull:
      cfg.emb_dim = 64;
      cfg.hidden_dim = 96;
      cfg.latent_dim = 48;
      break;
  }
  return cfg;
}

core::CausalTadConfig CausalConfig(const ExperimentData& data, Scale scale) {
  core::CausalTadConfig cfg;
  const models::RnnVaeConfig base = BaseRnnConfig(data, scale);
  cfg.tg.vocab = data.vocab();
  cfg.tg.emb_dim = base.emb_dim;
  cfg.tg.hidden_dim = base.hidden_dim;
  cfg.tg.latent_dim = base.latent_dim;
  cfg.rp.vocab = data.vocab();
  cfg.rp.emb_dim = base.emb_dim;
  cfg.rp.hidden_dim = base.hidden_dim;
  cfg.rp.latent_dim = base.latent_dim;
  return cfg;
}

std::string CacheDir() {
  const char* env = std::getenv("CAUSALTAD_CACHE_DIR");
  return env != nullptr ? env : ".causaltad_cache";
}

bool CacheDisabled() {
  const char* env = std::getenv("CAUSALTAD_NO_CACHE");
  return env != nullptr && std::string(env) == "1";
}

}  // namespace

std::vector<std::string> BaselineNames() {
  return {"iBOAT", "VSAE",    "SAE",     "BetaVAE",
          "FactorVAE", "GM-VSAE", "DeepTEA"};
}

std::unique_ptr<models::TrajectoryScorer> MakeScorer(
    const std::string& name, const ExperimentData& data, Scale scale) {
  const models::RnnVaeConfig base = BaseRnnConfig(data, scale);
  if (name == "iBOAT") {
    return std::make_unique<models::Iboat>(&data.city.network);
  }
  if (name == "SAE") return models::MakeSae(base);
  if (name == "VSAE") return models::MakeVsae(base);
  if (name == "BetaVAE") return models::MakeBetaVae(base);
  if (name == "FactorVAE") return models::MakeFactorVae(base);
  if (name == "GM-VSAE") return models::MakeGmVsae(base);
  if (name == "DeepTEA") return models::MakeDeepTea(base);
  if (name == kCausalTadName) {
    return std::make_unique<core::CausalTad>(&data.city.network,
                                             CausalConfig(data, scale));
  }
  CAUSALTAD_CHECK(false) << "unknown scorer " << name;
  return nullptr;
}

models::FitOptions FitOptionsFor(Scale scale) {
  models::FitOptions options;
  options.lr = 3e-3f;
  options.batch_size = 16;
  switch (scale) {
    case Scale::kSmoke:
      options.epochs = 3;
      break;
    case Scale::kDefault:
      options.epochs = 12;
      break;
    case Scale::kFull:
      options.epochs = 20;
      break;
  }
  return options;
}

std::unique_ptr<models::TrajectoryScorer> FitOrLoad(
    const std::string& name, const ExperimentData& data,
    const std::string& city_name, Scale scale) {
  auto scorer = MakeScorer(name, data, scale);
  const std::string dir = CacheDir();
  const std::string path = dir + "/" + city_name + "_" + ScaleName(scale) +
                           "_" + name + ".bin";
  if (!CacheDisabled() && std::filesystem::exists(path)) {
    const util::Status status = scorer->Load(path);
    if (status.ok()) return scorer;
    std::fprintf(stderr, "cache load failed (%s), retraining: %s\n",
                 path.c_str(), status.ToString().c_str());
  }
  models::FitOptions options = FitOptionsFor(scale);
  // CAUSALTAD_TRAIN_VERBOSE=1 surfaces per-epoch wall time and trips/sec
  // from Fit(), making training-throughput regressions visible without a
  // full bench run.
  if (const char* env = std::getenv("CAUSALTAD_TRAIN_VERBOSE")) {
    options.verbose = std::string(env) == "1";
  }
  util::Stopwatch watch;
  scorer->Fit(data.train, options);
  const double secs = watch.ElapsedSeconds();
  std::fprintf(stderr, "[train] %s/%s: %.1fs (%.0f trips/s)\n",
               city_name.c_str(), name.c_str(), secs,
               data.train.size() / std::max(secs, 1e-9));
  if (!CacheDisabled()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const util::Status status = scorer->Save(path);
    if (!status.ok()) {
      std::fprintf(stderr, "cache save failed: %s\n",
                   status.ToString().c_str());
    }
  }
  return scorer;
}

std::vector<double> ScoreSet(const models::TrajectoryScorer& scorer,
                             const std::vector<traj::Trip>& trips,
                             double observed_ratio) {
  // One batched call: models with a no-grad fast path roll the whole set
  // through [B, hidden] states; everything else falls back to a Score loop.
  std::vector<int64_t> prefixes;
  prefixes.reserve(trips.size());
  for (const traj::Trip& trip : trips) {
    const int64_t n = trip.route.size();
    int64_t prefix = static_cast<int64_t>(std::ceil(observed_ratio * n));
    prefixes.push_back(std::max<int64_t>(1, std::min(prefix, n)));
  }
  return scorer.ScoreBatch(trips, prefixes);
}

std::vector<std::vector<double>> ScoreSetAtRatios(
    const models::TrajectoryScorer& scorer,
    const std::vector<traj::Trip>& trips, std::span<const double> ratios) {
  std::vector<std::vector<int64_t>> checkpoints(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    const int64_t n = trips[i].route.size();
    checkpoints[i].reserve(ratios.size());
    for (const double ratio : ratios) {
      const int64_t prefix = static_cast<int64_t>(std::ceil(ratio * n));
      checkpoints[i].push_back(std::max<int64_t>(1, std::min(prefix, n)));
    }
  }
  const std::vector<std::vector<double>> per_trip =
      scorer.ScoreCheckpoints(trips, checkpoints);
  std::vector<std::vector<double>> out(
      ratios.size(), std::vector<double>(trips.size(), 0.0));
  for (size_t i = 0; i < trips.size(); ++i) {
    for (size_t r = 0; r < ratios.size(); ++r) out[r][i] = per_trip[i][r];
  }
  return out;
}

EvalResult EvaluateCombo(const models::TrajectoryScorer& scorer,
                         const std::vector<traj::Trip>& normals,
                         const std::vector<traj::Trip>& anomalies,
                         double observed_ratio) {
  const std::vector<double> normal_scores =
      ScoreSet(scorer, normals, observed_ratio);
  const std::vector<double> anomaly_scores =
      ScoreSet(scorer, anomalies, observed_ratio);
  return EvaluateScores(normal_scores, anomaly_scores);
}

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::PrintHeader() const {
  std::string line = "|";
  std::string rule = "|";
  for (const std::string& c : columns_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %-11s|", c.c_str());
    line += buf;
    rule += "------------|";
  }
  std::printf("%s\n%s\n", line.c_str(), rule.c_str());
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line = "|";
  for (const std::string& c : cells) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %-11s|", c.c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace eval
}  // namespace causaltad
