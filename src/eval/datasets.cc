#include "eval/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "util/logging.h"

namespace causaltad {
namespace eval {

Scale ScaleFromEnv() {
  const char* env = std::getenv("CAUSALTAD_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string v(env);
  if (v == "smoke") return Scale::kSmoke;
  if (v == "full") return Scale::kFull;
  return Scale::kDefault;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kFull:
      return "full";
  }
  return "unknown";
}

namespace {

CityExperimentConfig BaseConfig(Scale scale) {
  CityExperimentConfig cfg;
  // Anomaly reroutes use the same generalized cost drivers do, so detours
  // stay on plausible streets (see DetourConfig::preference_gamma).
  cfg.detour.preference_gamma = cfg.router.preference_gamma;
  cfg.route_switch.preference_gamma = cfg.router.preference_gamma;
  switch (scale) {
    case Scale::kSmoke:
      cfg.city.rows = 8;
      cfg.city.cols = 8;
      cfg.city.num_pois = 3;
      cfg.gen.num_candidate_pairs = 10;
      cfg.gen.min_hops = 7;
      cfg.trips_per_pair = 12;
      cfg.min_trips_per_pair = 6;
      cfg.num_ood = 60;
      break;
    case Scale::kDefault:
      cfg.city.rows = 13;
      cfg.city.cols = 13;
      cfg.city.num_pois = 6;
      cfg.gen.num_candidate_pairs = 45;
      cfg.gen.min_hops = 11;
      cfg.trips_per_pair = 40;
      cfg.min_trips_per_pair = 8;
      cfg.num_ood = 500;
      break;
    case Scale::kFull:
      cfg.city.rows = 18;
      cfg.city.cols = 18;
      cfg.city.num_pois = 10;
      cfg.gen.num_candidate_pairs = 100;
      cfg.gen.min_hops = 14;
      cfg.trips_per_pair = 100;
      cfg.min_trips_per_pair = 12;
      cfg.num_ood = 1500;
      break;
  }
  return cfg;
}

}  // namespace

CityExperimentConfig XianConfig(Scale scale) {
  CityExperimentConfig cfg = BaseConfig(scale);
  cfg.name = "xian";
  cfg.city.origin = {34.26, 108.94};
  cfg.city.seed = 20240101;
  cfg.gen.seed = 20240102;
  cfg.seed = 20240103;
  return cfg;
}

CityExperimentConfig ChengduConfig(Scale scale) {
  CityExperimentConfig cfg = BaseConfig(scale);
  cfg.name = "chengdu";
  cfg.city.origin = {30.66, 104.06};
  cfg.city.seed = 20240201;
  cfg.gen.seed = 20240202;
  cfg.seed = 20240203;
  // Chengdu: denser city, larger corpus (the real dataset is ~2x Xi'an's).
  cfg.city.rows += 2;
  cfg.city.cols += 2;
  cfg.city.num_pois += 2;
  cfg.trips_per_pair = cfg.trips_per_pair * 3 / 2;
  return cfg;
}

ExperimentData BuildExperiment(const CityExperimentConfig& config) {
  ExperimentData data;
  data.city = roadnet::BuildGridCity(config.city);
  const traj::PreferenceRouter router(&data.city, config.router);
  traj::TripGenerator gen(&data.city, &router, config.gen);
  data.pairs = gen.SampleCandidatePairs();

  // Zipf allocation of trips per pair (popular pairs dominate training —
  // the imbalance that creates the confounding bias).
  const int num_pairs = static_cast<int>(data.pairs.size());
  const int64_t total_trips =
      static_cast<int64_t>(config.trips_per_pair) * num_pairs;
  double weight_sum = 0.0;
  for (const traj::SdPair& p : data.pairs) weight_sum += p.weight;
  std::vector<int64_t> quota(num_pairs);
  for (int i = 0; i < num_pairs; ++i) {
    quota[i] = std::max<int64_t>(
        config.min_trips_per_pair,
        static_cast<int64_t>(std::llround(
            total_trips * data.pairs[i].weight / weight_sum)));
  }

  // Per-pair trip generation and half/half split; keep per-pair route pools
  // for the Switch generator.
  std::map<int32_t, std::vector<traj::Route>> pair_pools;
  for (int32_t pid = 0; pid < num_pairs; ++pid) {
    std::vector<traj::Trip> trips;
    trips.reserve(quota[pid]);
    for (int64_t i = 0; i < quota[pid]; ++i) {
      trips.push_back(gen.GenerateTrip(data.pairs, pid));
      pair_pools[pid].push_back(trips.back().route);
    }
    const size_t half = trips.size() / 2;
    for (size_t i = 0; i < trips.size(); ++i) {
      (i < half ? data.train : data.id_test).push_back(std::move(trips[i]));
    }
  }

  // OOD normal trips + per-trip route pools for OOD Switch anomalies.
  std::vector<std::vector<traj::Route>> ood_pools;
  for (int i = 0; i < config.num_ood; ++i) {
    data.ood_test.push_back(gen.GenerateOodTrip(data.pairs));
    const traj::Trip& trip = data.ood_test.back();
    std::vector<traj::Route> pool;
    for (int r = 0; r < config.ood_pool_routes; ++r) {
      pool.push_back(router.Sample(trip.source_node, trip.dest_node,
                                   trip.time_slot, gen.rng()));
    }
    ood_pools.push_back(std::move(pool));
  }

  // Anomaly sets (paper §VI-A2). Failures (short routes etc.) are skipped;
  // counts stay close to the normal sets.
  traj::AnomalyGenerator anomaly(&data.city.network, config.seed ^ 0xA11);
  for (const traj::Trip& trip : data.id_test) {
    if (auto detour = anomaly.MakeDetour(trip, config.detour)) {
      data.id_detour.push_back(std::move(*detour));
    }
    if (auto sw = anomaly.MakeSwitch(trip, pair_pools[trip.sd_pair_id],
                                     config.route_switch)) {
      data.id_switch.push_back(std::move(*sw));
    }
  }
  for (size_t i = 0; i < data.ood_test.size(); ++i) {
    const traj::Trip& trip = data.ood_test[i];
    if (auto detour = anomaly.MakeDetour(trip, config.detour)) {
      data.ood_detour.push_back(std::move(*detour));
    }
    if (auto sw = anomaly.MakeSwitch(trip, ood_pools[i],
                                     config.route_switch)) {
      data.ood_switch.push_back(std::move(*sw));
    }
  }

  CAUSALTAD_CHECK(!data.train.empty());
  CAUSALTAD_CHECK(!data.id_detour.empty());
  CAUSALTAD_CHECK(!data.ood_switch.empty());
  return data;
}

std::vector<traj::Trip> MixShift(const std::vector<traj::Trip>& id_set,
                                 const std::vector<traj::Trip>& ood_set,
                                 double alpha, uint64_t seed) {
  CAUSALTAD_CHECK(alpha >= 0.0 && alpha <= 1.0);
  const int64_t total = std::min<int64_t>(
      static_cast<int64_t>(id_set.size()) + static_cast<int64_t>(
                                                ood_set.size()),
      std::max<int64_t>(static_cast<int64_t>(id_set.size()),
                        static_cast<int64_t>(ood_set.size())));
  // Clamp each side independently so the ID:OOD *ratio* follows alpha even
  // when one pool is exhausted (alpha=1 must mean pure OOD).
  int64_t num_ood = static_cast<int64_t>(std::llround(alpha * total));
  num_ood = std::min<int64_t>(num_ood, static_cast<int64_t>(ood_set.size()));
  int64_t num_id =
      static_cast<int64_t>(std::llround((1.0 - alpha) * total));
  num_id = std::min<int64_t>(num_id, static_cast<int64_t>(id_set.size()));

  std::vector<traj::Trip> mixed;
  util::Rng rng(seed);
  const auto id_order = rng.Permutation(static_cast<int64_t>(id_set.size()));
  const auto ood_order =
      rng.Permutation(static_cast<int64_t>(ood_set.size()));
  for (int64_t i = 0; i < num_id; ++i) mixed.push_back(id_set[id_order[i]]);
  for (int64_t i = 0; i < num_ood; ++i) {
    mixed.push_back(ood_set[ood_order[i]]);
  }
  return mixed;
}

std::vector<traj::Trip> Subsample(const std::vector<traj::Trip>& trips,
                                  int64_t max_count, uint64_t seed) {
  if (static_cast<int64_t>(trips.size()) <= max_count) return trips;
  util::Rng rng(seed);
  const auto order = rng.Permutation(static_cast<int64_t>(trips.size()));
  std::vector<traj::Trip> out;
  out.reserve(max_count);
  for (int64_t i = 0; i < max_count; ++i) out.push_back(trips[order[i]]);
  return out;
}

}  // namespace eval
}  // namespace causaltad
