// Reproduces Table II: ROC-AUC / PR-AUC on the out-of-distribution datasets
// (OOD & Detour, OOD & Switch) for both cities and all methods.
//
// Paper reference (Li et al., ICDE 2024, Table II): every baseline drops by
// 20-40% relative to Table I; CausalTAD degrades least and wins by
// 10.6%-32.7%; iBOAT falls below 0.5 (worse than random).

#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using causaltad::eval::BuildExperiment;
using causaltad::eval::EvaluateScores;
using causaltad::eval::ExperimentData;
using causaltad::eval::ScoreSet;
using causaltad::eval::TablePrinter;

void RunCity(const causaltad::eval::CityExperimentConfig& config,
             causaltad::eval::Scale scale) {
  std::printf("\n== Table II — %s (OOD test sets, scale=%s) ==\n",
              config.name.c_str(), causaltad::eval::ScaleName(scale));
  const ExperimentData data = BuildExperiment(config);
  std::printf("train=%zu ood_test=%zu ood_detour=%zu ood_switch=%zu\n",
              data.train.size(), data.ood_test.size(), data.ood_detour.size(),
              data.ood_switch.size());

  TablePrinter table({"Method", "Detour ROC", "Detour PR", "Switch ROC",
                      "Switch PR"});
  table.PrintHeader();
  std::vector<std::string> names = causaltad::eval::BaselineNames();
  names.push_back(causaltad::eval::kCausalTadName);
  for (const std::string& name : names) {
    const auto scorer =
        causaltad::eval::FitOrLoad(name, data, config.name, scale);
    const std::vector<double> normal = ScoreSet(*scorer, data.ood_test, 1.0);
    const std::vector<double> detour =
        ScoreSet(*scorer, data.ood_detour, 1.0);
    const std::vector<double> sw = ScoreSet(*scorer, data.ood_switch, 1.0);
    const auto res_detour = EvaluateScores(normal, detour);
    const auto res_switch = EvaluateScores(normal, sw);
    table.PrintRow({name, TablePrinter::Fmt(res_detour.roc_auc),
                    TablePrinter::Fmt(res_detour.pr_auc),
                    TablePrinter::Fmt(res_switch.roc_auc),
                    TablePrinter::Fmt(res_switch.pr_auc)});
  }
}

}  // namespace

int main() {
  const causaltad::eval::Scale scale = causaltad::eval::ScaleFromEnv();
  RunCity(causaltad::eval::XianConfig(scale), scale);
  RunCity(causaltad::eval::ChengduConfig(scale), scale);
  return 0;
}
