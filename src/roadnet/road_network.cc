#include "roadnet/road_network.h"

#include <algorithm>
#include <deque>
#include <string>

#include "util/csv.h"
#include "util/logging.h"

namespace causaltad {
namespace roadnet {

const char* RoadClassName(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kCollector:
      return "collector";
    case RoadClass::kLocal:
      return "local";
  }
  return "unknown";
}

std::span<const SegmentId> RoadNetwork::OutSegments(NodeId node) const {
  CAUSALTAD_DCHECK(node >= 0 && node < num_nodes());
  return {out_ids_.data() + out_offsets_[node],
          static_cast<size_t>(out_offsets_[node + 1] - out_offsets_[node])};
}

std::span<const SegmentId> RoadNetwork::InSegments(NodeId node) const {
  CAUSALTAD_DCHECK(node >= 0 && node < num_nodes());
  return {in_ids_.data() + in_offsets_[node],
          static_cast<size_t>(in_offsets_[node + 1] - in_offsets_[node])};
}

std::span<const SegmentId> RoadNetwork::Successors(SegmentId seg) const {
  CAUSALTAD_DCHECK(seg >= 0 && seg < num_segments());
  return {succ_ids_.data() + succ_offsets_[seg],
          static_cast<size_t>(succ_offsets_[seg + 1] - succ_offsets_[seg])};
}

bool RoadNetwork::IsSuccessor(SegmentId seg, SegmentId next) const {
  for (SegmentId s : Successors(seg)) {
    if (s == next) return true;
  }
  return false;
}

SegmentId RoadNetwork::FindSegment(NodeId from, NodeId to) const {
  for (SegmentId s : OutSegments(from)) {
    if (segments_[s].to == to) return s;
  }
  return kInvalidSegment;
}

geo::LatLon RoadNetwork::SegmentMidpoint(SegmentId seg) const {
  const Segment& s = segments_[seg];
  return {(nodes_[s.from].pos.lat + nodes_[s.to].pos.lat) / 2.0,
          (nodes_[s.from].pos.lon + nodes_[s.to].pos.lon) / 2.0};
}

namespace {

// BFS over nodes following `forward` (out) or backward (in) segments.
int64_t CountReachable(const RoadNetwork& net, NodeId start, bool forward) {
  std::vector<uint8_t> seen(net.num_nodes(), 0);
  std::deque<NodeId> queue{start};
  seen[start] = 1;
  int64_t count = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const auto segs = forward ? net.OutSegments(u) : net.InSegments(u);
    for (SegmentId s : segs) {
      const NodeId v = forward ? net.segment(s).to : net.segment(s).from;
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count;
}

}  // namespace

bool RoadNetwork::IsStronglyConnected() const {
  if (num_nodes() == 0) return true;
  return CountReachable(*this, 0, /*forward=*/true) == num_nodes() &&
         CountReachable(*this, 0, /*forward=*/false) == num_nodes();
}

void RoadNetwork::BuildIndexes() {
  const int64_t n = num_nodes();
  const int64_t m = num_segments();

  auto build_csr = [n](const std::vector<NodeId>& key, int64_t count,
                       std::vector<int64_t>* offsets,
                       std::vector<SegmentId>* ids) {
    offsets->assign(n + 1, 0);
    for (int64_t i = 0; i < count; ++i) (*offsets)[key[i] + 1]++;
    for (int64_t i = 0; i < n; ++i) (*offsets)[i + 1] += (*offsets)[i];
    ids->resize(count);
    std::vector<int64_t> cursor(offsets->begin(), offsets->end() - 1);
    for (int64_t i = 0; i < count; ++i) {
      (*ids)[cursor[key[i]]++] = static_cast<SegmentId>(i);
    }
  };

  std::vector<NodeId> from_keys(m), to_keys(m);
  for (int64_t i = 0; i < m; ++i) {
    from_keys[i] = segments_[i].from;
    to_keys[i] = segments_[i].to;
  }
  build_csr(from_keys, m, &out_offsets_, &out_ids_);
  build_csr(to_keys, m, &in_offsets_, &in_ids_);

  // Successor CSR: out-segments of seg.to, excluding the reverse twin.
  succ_offsets_.assign(m + 1, 0);
  for (int64_t s = 0; s < m; ++s) {
    for (SegmentId nxt : OutSegments(segments_[s].to)) {
      if (nxt != segments_[s].reverse) succ_offsets_[s + 1]++;
    }
  }
  for (int64_t s = 0; s < m; ++s) succ_offsets_[s + 1] += succ_offsets_[s];
  succ_ids_.resize(succ_offsets_[m]);
  for (int64_t s = 0; s < m; ++s) {
    int64_t cursor = succ_offsets_[s];
    for (SegmentId nxt : OutSegments(segments_[s].to)) {
      if (nxt != segments_[s].reverse) succ_ids_[cursor++] = nxt;
    }
  }
}

util::Status RoadNetwork::SaveCsv(const std::string& base_path) const {
  util::CsvTable nodes;
  nodes.header = {"id", "lat", "lon"};
  for (int64_t i = 0; i < num_nodes(); ++i) {
    nodes.rows.push_back({std::to_string(i), std::to_string(nodes_[i].pos.lat),
                          std::to_string(nodes_[i].pos.lon)});
  }
  CAUSALTAD_RETURN_IF_ERROR(util::WriteCsv(base_path + ".nodes.csv", nodes));

  util::CsvTable segs;
  segs.header = {"id",     "from",  "to",         "length_m",
                 "speed",  "pref",  "road_class", "reverse"};
  for (int64_t i = 0; i < num_segments(); ++i) {
    const Segment& s = segments_[i];
    segs.rows.push_back({std::to_string(i), std::to_string(s.from),
                         std::to_string(s.to), std::to_string(s.length_m),
                         std::to_string(s.speed_mps),
                         std::to_string(s.preference),
                         std::to_string(static_cast<int>(s.road_class)),
                         std::to_string(s.reverse)});
  }
  return util::WriteCsv(base_path + ".segments.csv", segs);
}

util::StatusOr<RoadNetwork> RoadNetwork::LoadCsv(const std::string& base_path) {
  auto nodes_or = util::ReadCsv(base_path + ".nodes.csv");
  if (!nodes_or.ok()) return nodes_or.status();
  auto segs_or = util::ReadCsv(base_path + ".segments.csv");
  if (!segs_or.ok()) return segs_or.status();

  RoadNetwork net;
  net.nodes_.reserve(nodes_or->rows.size());
  for (const auto& row : nodes_or->rows) {
    if (row.size() != 3) return util::Status::InvalidArgument("bad node row");
    net.nodes_.push_back({{std::stod(row[1]), std::stod(row[2])}});
  }
  net.segments_.reserve(segs_or->rows.size());
  for (const auto& row : segs_or->rows) {
    if (row.size() != 8) {
      return util::Status::InvalidArgument("bad segment row");
    }
    Segment s;
    s.from = static_cast<NodeId>(std::stol(row[1]));
    s.to = static_cast<NodeId>(std::stol(row[2]));
    s.length_m = std::stof(row[3]);
    s.speed_mps = std::stof(row[4]);
    s.preference = std::stof(row[5]);
    const int rc = std::stoi(row[6]);
    if (rc < 0 || rc > 2) {
      return util::Status::InvalidArgument("bad road class");
    }
    s.road_class = static_cast<RoadClass>(rc);
    s.reverse = static_cast<SegmentId>(std::stol(row[7]));
    if (s.from < 0 || s.from >= net.num_nodes() || s.to < 0 ||
        s.to >= net.num_nodes()) {
      return util::Status::InvalidArgument("segment endpoint out of range");
    }
    net.segments_.push_back(s);
  }
  net.BuildIndexes();
  return net;
}

NodeId RoadNetworkBuilder::AddNode(const geo::LatLon& pos) {
  nodes_.push_back({pos});
  return static_cast<NodeId>(nodes_.size() - 1);
}

SegmentId RoadNetworkBuilder::AddSegment(NodeId from, NodeId to,
                                         RoadClass road_class, float speed_mps,
                                         float preference, float length_m) {
  CAUSALTAD_CHECK(from >= 0 && from < num_nodes());
  CAUSALTAD_CHECK(to >= 0 && to < num_nodes());
  CAUSALTAD_CHECK_NE(from, to);
  Segment s;
  s.from = from;
  s.to = to;
  s.road_class = road_class;
  s.speed_mps = speed_mps;
  s.preference = preference;
  s.length_m =
      length_m > 0.0f
          ? length_m
          : static_cast<float>(
                geo::HaversineMeters(nodes_[from].pos, nodes_[to].pos));
  segments_.push_back(s);
  return static_cast<SegmentId>(segments_.size() - 1);
}

SegmentId RoadNetworkBuilder::AddTwoWaySegment(NodeId a, NodeId b,
                                               RoadClass road_class,
                                               float speed_mps,
                                               float preference) {
  const SegmentId fwd = AddSegment(a, b, road_class, speed_mps, preference);
  const SegmentId bwd = AddSegment(b, a, road_class, speed_mps, preference);
  segments_[fwd].reverse = bwd;
  segments_[bwd].reverse = fwd;
  return fwd;
}

RoadNetwork RoadNetworkBuilder::Build() {
  RoadNetwork net;
  net.nodes_ = std::move(nodes_);
  net.segments_ = std::move(segments_);
  nodes_.clear();
  segments_.clear();
  net.BuildIndexes();
  return net;
}

}  // namespace roadnet
}  // namespace causaltad
