#ifndef CAUSALTAD_ROADNET_ROAD_NETWORK_H_
#define CAUSALTAD_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "util/status.h"

namespace causaltad {
namespace roadnet {

using NodeId = int32_t;
using SegmentId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr SegmentId kInvalidSegment = -1;

/// Functional class of a road segment; drives speed and driver preference in
/// the synthetic city (the hidden confounder E of the paper).
enum class RoadClass : uint8_t {
  kArterial = 0,
  kCollector = 1,
  kLocal = 2,
};

const char* RoadClassName(RoadClass road_class);

/// A road-network node (intersection).
struct Node {
  geo::LatLon pos;
};

/// A directed road segment between two nodes.
struct Segment {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  float length_m = 0.0f;
  float speed_mps = 8.0f;
  /// Driver preference weight (the ground-truth confounder E); higher means
  /// drivers favour this segment when several routes are feasible.
  float preference = 1.0f;
  RoadClass road_class = RoadClass::kLocal;
  /// The opposite-direction twin, or kInvalidSegment for one-way segments.
  SegmentId reverse = kInvalidSegment;
};

/// Immutable directed road network with O(1) successor queries.
///
/// Built via RoadNetworkBuilder. Successors of segment s are the segments
/// leaving s.to, excluding s's reverse twin (no immediate U-turns), stored in
/// CSR form. Map-matched trajectories (Definition 2 in the paper) are
/// sequences of segments where each consecutive pair is a successor pair.
class RoadNetwork {
 public:
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Segment& segment(SegmentId id) const { return segments_[id]; }

  /// Segments leaving `node`.
  std::span<const SegmentId> OutSegments(NodeId node) const;

  /// Segments entering `node`.
  std::span<const SegmentId> InSegments(NodeId node) const;

  /// Legal continuations of `seg` (out-segments of seg.to minus the reverse
  /// twin). A trajectory <t1..tn> is valid iff t_{i+1} ∈ Successors(t_i).
  std::span<const SegmentId> Successors(SegmentId seg) const;

  /// True if `next` is a legal continuation of `seg`.
  bool IsSuccessor(SegmentId seg, SegmentId next) const;

  /// The segment from `from` to `to`, or kInvalidSegment.
  SegmentId FindSegment(NodeId from, NodeId to) const;

  /// Midpoint of a segment's straight-line geometry.
  geo::LatLon SegmentMidpoint(SegmentId seg) const;

  /// True if every node can reach every other node (needed by trip
  /// generation and the detour generator).
  bool IsStronglyConnected() const;

  /// Serializes nodes and segments to `<base>.nodes.csv` /
  /// `<base>.segments.csv`.
  util::Status SaveCsv(const std::string& base_path) const;
  static util::StatusOr<RoadNetwork> LoadCsv(const std::string& base_path);

 private:
  friend class RoadNetworkBuilder;

  void BuildIndexes();

  std::vector<Node> nodes_;
  std::vector<Segment> segments_;
  // CSR adjacency.
  std::vector<int64_t> out_offsets_;
  std::vector<SegmentId> out_ids_;
  std::vector<int64_t> in_offsets_;
  std::vector<SegmentId> in_ids_;
  std::vector<int64_t> succ_offsets_;
  std::vector<SegmentId> succ_ids_;
};

/// Incremental constructor for RoadNetwork.
class RoadNetworkBuilder {
 public:
  NodeId AddNode(const geo::LatLon& pos);

  /// Adds a one-way segment; length defaults to the haversine distance
  /// between endpoints when `length_m` <= 0.
  SegmentId AddSegment(NodeId from, NodeId to, RoadClass road_class,
                       float speed_mps, float preference,
                       float length_m = -1.0f);

  /// Adds both directions and links them as reverse twins; returns the
  /// forward id (the backward id is the returned value + 1).
  SegmentId AddTwoWaySegment(NodeId a, NodeId b, RoadClass road_class,
                             float speed_mps, float preference);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }

  /// Finalizes the network (builds CSR indexes). The builder is left empty.
  RoadNetwork Build();

 private:
  std::vector<Node> nodes_;
  std::vector<Segment> segments_;
};

}  // namespace roadnet
}  // namespace causaltad

#endif  // CAUSALTAD_ROADNET_ROAD_NETWORK_H_
