#include <gtest/gtest.h>

#include "geo/geo.h"

namespace causaltad {
namespace geo {
namespace {

TEST(HaversineTest, ZeroDistanceForSamePoint) {
  LatLon p{30.0, 104.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const double d = HaversineMeters({30.0, 104.0}, {31.0, 104.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(HaversineTest, Symmetric) {
  LatLon a{30.2, 104.1}, b{30.9, 103.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(LocalProjectionTest, RoundTripsNearOrigin) {
  LocalProjection proj({30.66, 104.06});
  for (double dlat = -0.05; dlat <= 0.05; dlat += 0.025) {
    for (double dlon = -0.05; dlon <= 0.05; dlon += 0.025) {
      const LatLon p{30.66 + dlat, 104.06 + dlon};
      const LatLon back = proj.Unproject(proj.Project(p));
      EXPECT_NEAR(back.lat, p.lat, 1e-9);
      EXPECT_NEAR(back.lon, p.lon, 1e-9);
    }
  }
}

TEST(LocalProjectionTest, MatchesHaversineOverCityScale) {
  LocalProjection proj({30.66, 104.06});
  const LatLon a{30.66, 104.06}, b{30.70, 104.10};
  const Vec2 pa = proj.Project(a), pb = proj.Project(b);
  const double planar = (pb - pa).Norm();
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 1e-3);
}

TEST(PointSegmentDistanceTest, PerpendicularFoot) {
  const double d = PointSegmentDistance({0, 1}, {-1, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(PointSegmentDistanceTest, ClampsToEndpoints) {
  const double d = PointSegmentDistance({3, 4}, {-1, 0}, {1, 0});
  EXPECT_NEAR(d, std::hypot(2.0, 4.0), 1e-12);
}

TEST(PointSegmentDistanceTest, DegenerateSegment) {
  const double d = PointSegmentDistance({3, 4}, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(d, 5.0);
}

TEST(ProjectOntoSegmentTest, ParameterInRange) {
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({0, 5}, {-1, 0}, {1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({-9, 5}, {-1, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({9, 5}, {-1, 0}, {1, 0}), 1.0);
}

TEST(PolylineTest, LengthAndInterpolation) {
  std::vector<Vec2> line = {{0, 0}, {3, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(PolylineLength(line), 7.0);
  Vec2 mid = InterpolateAlong(line, 3.0);
  EXPECT_DOUBLE_EQ(mid.x, 3.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
  Vec2 p = InterpolateAlong(line, 5.0);
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
  // Clamps beyond the ends.
  EXPECT_DOUBLE_EQ(InterpolateAlong(line, 100.0).y, 4.0);
  EXPECT_DOUBLE_EQ(InterpolateAlong(line, -5.0).x, 0.0);
}

}  // namespace
}  // namespace geo
}  // namespace causaltad
