#ifndef CAUSALTAD_CORE_CAUSAL_TAD_H_
#define CAUSALTAD_CORE_CAUSAL_TAD_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/rp_vae.h"
#include "core/tg_vae.h"
#include "models/scorer.h"
#include "roadnet/road_network.h"

namespace causaltad {
namespace core {

/// Full CausalTAD configuration.
struct CausalTadConfig {
  TgVaeConfig tg;
  RpVaeConfig rp;
  /// λ of Eq. (10): balances the likelihood and the scaling factor. The
  /// paper's grid search lands on 0.1.
  float lambda = 0.1f;
  /// Monte-Carlo samples per segment when precomputing scaling factors.
  int scaling_samples = 16;
  uint64_t scaling_seed = 4242;
  /// The paper's §V-E3 future-work extension: condition the RP-VAE on the
  /// departure time slot and factorize the scaling factor per
  /// (segment, slot). Off by default (published model).
  bool time_aware_scaling = false;
  int num_time_slots = 8;
  /// Centre the precomputed scaling factors to zero mean over the network
  /// (see ScalingTable::CenterInPlace). On by default; disable to ablate.
  bool center_scaling = true;
};

/// Which parts of the debiased score to use; kFull is CausalTAD, the other
/// two are the paper's Table III ablations.
enum class ScoreVariant {
  kFull,            // -log P(c,t) - λ Σ log E[1/P(t_i|e_i)]
  kLikelihoodOnly,  // TG-VAE alone (λ = 0)
  kScalingOnly,     // RP-VAE alone (its per-segment negative ELBO)
};

const char* ScoreVariantName(ScoreVariant variant);

/// CausalTAD — the paper's causal implicit generative model.
///
/// Trains TG-VAE and RP-VAE jointly on normal trips (Eq. 9), precomputes
/// the per-segment scaling table, and scores ongoing trajectories with the
/// debiased criterion of Eq. (10):
///
///   score(t, c) = -log P(c,t) - λ Σ_i log E_{e_i~P(E_i|t_i)}[1/P(t_i|e_i)]
///
/// Online updates are O(1) per incoming segment: one GRU step over the
/// successor-masked softmax plus a table lookup (paper §V-D).
class CausalTad : public models::TrajectoryScorer {
 public:
  CausalTad(const roadnet::RoadNetwork* network,
            const CausalTadConfig& config);
  ~CausalTad() override;

  std::string Name() const override { return "CausalTAD"; }
  void Fit(const std::vector<traj::Trip>& trips,
           const models::FitOptions& options) override;
  double Score(const traj::Trip& trip, int64_t prefix_len) const override;
  std::vector<double> ScoreBatch(
      std::span<const traj::Trip> trips,
      std::span<const int64_t> prefix_lens) const override;
  std::vector<std::vector<double>> ScoreCheckpoints(
      std::span<const traj::Trip> trips,
      std::span<const std::vector<int64_t>> checkpoints) const override;
  std::unique_ptr<models::OnlineScorer> BeginTrip(
      const traj::Trip& trip) const override;
  util::Status Save(const std::string& path) const override;
  util::Status Load(const std::string& path) override;

  /// Score under an explicit variant and λ (λ ignored unless kFull). Used
  /// by the ablation (Table III) and λ-sweep (Fig. 8) benches — no
  /// retraining needed, only re-scoring.
  double ScoreVariantLambda(const traj::Trip& trip, int64_t prefix_len,
                            ScoreVariant variant, double lambda) const;

  /// Batched twin of ScoreVariantLambda on the no-grad fast path: one
  /// [B, hidden] TG-VAE roll (and one RP-VAE batch per time slot for the
  /// scaling ablation) instead of B separate taped loops.
  std::vector<double> ScoreBatchVariantLambda(
      std::span<const traj::Trip> trips, std::span<const int64_t> prefix_lens,
      ScoreVariant variant, double lambda) const;

  /// Checkpointed twin of ScoreBatchVariantLambda: out[i][j] ==
  /// ScoreVariantLambda(trips[i], checkpoints[i][j], ...), computed from ONE
  /// incremental roll per trip (to its largest checkpoint) plus running
  /// prefix sums — an R-ratio observed-ratio sweep (fig6) costs one roll
  /// instead of R independent re-scores.
  std::vector<std::vector<double>> ScoreCheckpointsVariantLambda(
      std::span<const traj::Trip> trips,
      std::span<const std::vector<int64_t>> checkpoints, ScoreVariant variant,
      double lambda) const;

  /// Incremental session for an ablation variant (kLikelihoodOnly sessions
  /// are what the paper times as "TG-VAE" in Fig. 7(b)). O(1) per point:
  /// one fused no-grad GRU step, one successor-masked softmax, one
  /// scaling-table lookup.
  std::unique_ptr<models::OnlineScorer> BeginTripVariant(
      const traj::Trip& trip, ScoreVariant variant, double lambda) const;

  /// TG-VAE output weights transposed to [vocab, hidden] — derived serving
  /// state rebuilt alongside the scaling table (construction, Fit, Load).
  /// The streaming engine and the online sessions read successor-masked
  /// logits from it as contiguous dots. Shared ownership: a Fit()/Load()
  /// under live sessions swaps in a fresh buffer while they keep the one
  /// they started with (scores stay self-consistent, nothing dangles).
  std::shared_ptr<const std::vector<float>> packed_out_weights() const {
    return tg_out_wt_;
  }

  /// Per-segment decomposition for the paper's Fig. 4: the likelihood NLL
  /// of each transition and the (centred) scaling factor of each segment.
  struct SegmentDecomposition {
    double sd_nll = 0.0;
    double kl = 0.0;
    std::vector<double> step_nll;          // size n-1
    std::vector<double> log_scaling;       // size n (raw)
    std::vector<double> centered_scaling;  // size n (zero-mean over network)
  };
  SegmentDecomposition Decompose(const traj::Trip& trip) const;

  /// Re-derives the no-grad serving caches (packed TG output weights and,
  /// when the int8-embedding switch is on, the quantized tables) from the
  /// current fp32 parameters. Fit/Load call it automatically; call it after
  /// flipping nn::SetInt8Embeddings at runtime so serving reads see fresh
  /// quantized rows.
  void RebuildServingCache();

  void set_lambda(float lambda) { config_.lambda = lambda; }
  float lambda() const { return config_.lambda; }
  const ScalingTable& scaling_table() const { return scaling_table_; }
  const TgVae& tg_vae() const { return *tg_; }
  const RpVae& rp_vae() const { return *rp_; }

 private:
  struct Net;

  /// RP-VAE standalone score of a prefix (Table III "RP-VAE" row).
  double RpOnlyScore(const traj::Trip& trip, int64_t prefix_len) const;

  void RebuildScalingTable();

  const roadnet::RoadNetwork* network_;
  CausalTadConfig config_;
  std::unique_ptr<Net> net_;  // owns tg_/rp_ for checkpointing
  TgVae* tg_ = nullptr;
  RpVae* rp_ = nullptr;
  ScalingTable scaling_table_;
  std::shared_ptr<const std::vector<float>> tg_out_wt_;  // see packed_out_weights()
};

/// Non-owning adapter exposing one ablation variant of a fitted CausalTad
/// as a TrajectoryScorer (so the evaluation harness can treat "TG-VAE" and
/// "RP-VAE" as first-class methods, as in Table III).
class CausalTadVariant : public models::TrajectoryScorer {
 public:
  CausalTadVariant(const CausalTad* model, ScoreVariant variant)
      : model_(model), variant_(variant) {}

  std::string Name() const override { return ScoreVariantName(variant_); }
  void Fit(const std::vector<traj::Trip>&,
           const models::FitOptions&) override {
    // The underlying CausalTad is trained once; variants only re-score.
  }
  double Score(const traj::Trip& trip, int64_t prefix_len) const override {
    return model_->ScoreVariantLambda(trip, prefix_len, variant_,
                                      model_->lambda());
  }
  std::vector<double> ScoreBatch(
      std::span<const traj::Trip> trips,
      std::span<const int64_t> prefix_lens) const override {
    return model_->ScoreBatchVariantLambda(trips, prefix_lens, variant_,
                                           model_->lambda());
  }
  std::vector<std::vector<double>> ScoreCheckpoints(
      std::span<const traj::Trip> trips,
      std::span<const std::vector<int64_t>> checkpoints) const override {
    return model_->ScoreCheckpointsVariantLambda(trips, checkpoints, variant_,
                                                 model_->lambda());
  }
  std::unique_ptr<models::OnlineScorer> BeginTrip(
      const traj::Trip& trip) const override {
    if (models::OnlineRescoringForced()) {
      return TrajectoryScorer::BeginTrip(trip);
    }
    return model_->BeginTripVariant(trip, variant_, model_->lambda());
  }
  util::Status Save(const std::string&) const override {
    return util::Status::FailedPrecondition("variants are views; save the "
                                            "underlying CausalTad");
  }
  util::Status Load(const std::string&) override {
    return util::Status::FailedPrecondition("variants are views; load the "
                                            "underlying CausalTad");
  }

 private:
  const CausalTad* model_;
  ScoreVariant variant_;
};

}  // namespace core
}  // namespace causaltad

#endif  // CAUSALTAD_CORE_CAUSAL_TAD_H_
