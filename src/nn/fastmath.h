#ifndef CAUSALTAD_NN_FASTMATH_H_
#define CAUSALTAD_NN_FASTMATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace causaltad {
namespace nn {
namespace fastmath {

// Branch-free float transcendentals, accurate to ~2e-7 relative. Unlike the
// libm calls they replace, these are pure arithmetic (plus a float<->int
// bit cast), so loops over them auto-vectorize under -O2 -march=native —
// which is what keeps the fused GRU gates and the row softmaxes off the
// scalar libm path. Used by BOTH the op-composed forwards and the fused
// inference kernels so the two stay numerically identical.

/// e^x (Cephes-style: round to nearest n of x/ln2, degree-6 polynomial on
/// the remainder, scale by 2^n via exponent bits). Exact at x = 0;
/// propagates NaN (a diverged model must not produce finite scores).
inline float Exp(float x) {
  float c = x < 88.0f ? x : 88.0f;
  c = c > -87.0f ? c : -87.0f;
  const float fx = std::floor(c * 1.44269504088896341f + 0.5f);
  // Two-step Cody-Waite reduction keeps the remainder accurate.
  float z = c - fx * 0.693359375f;
  z -= fx * -2.12194440e-4f;
  const float zz = z * z;
  float p = 1.9875691500e-4f;
  p = p * z + 1.3981999507e-3f;
  p = p * z + 8.3334519073e-3f;
  p = p * z + 4.1665795894e-2f;
  p = p * z + 1.6666665459e-1f;
  p = p * z + 5.0000001201e-1f;
  p = p * zz + z + 1.0f;
  const int32_t e = (static_cast<int32_t>(fx) + 127) << 23;
  float scale;
  std::memcpy(&scale, &e, sizeof(scale));
  // Branch-free NaN passthrough (the clamp comparisons eat NaN), kept as a
  // select so the surrounding loops still vectorize.
  return x != x ? x : p * scale;
}

/// 1 / (1 + e^-x).
inline float Sigmoid(float x) { return 1.0f / (1.0f + Exp(-x)); }

/// tanh(x) = sign(x) · (1 - e^-2|x|) / (1 + e^-2|x|). Exact at x = 0.
inline float Tanh(float x) {
  const float e = Exp(-2.0f * std::fabs(x));
  const float t = (1.0f - e) / (1.0f + e);
  return std::copysign(t, x);
}

}  // namespace fastmath
}  // namespace nn
}  // namespace causaltad

#endif  // CAUSALTAD_NN_FASTMATH_H_
