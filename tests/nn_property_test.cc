// Parameterized property sweeps over the autodiff substrate: gradient
// correctness and algebraic identities across shapes and seeds, beyond the
// fixed-shape cases in nn_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/init.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace causaltad {
namespace nn {
namespace {

// Shared finite-difference checker (duplicated signature from nn_test.cc by
// design: each binary is self-contained).
void CheckGrads(const std::function<Var()>& forward, std::vector<Var> params,
                float eps = 1e-3f, float atol = 3e-3f, float rtol = 6e-2f) {
  Var loss = forward();
  ASSERT_EQ(loss.value().numel(), 1);
  for (Var& p : params) p.ZeroGrad();
  Backward(loss);
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var& p = params[pi];
    for (int64_t i = 0; i < p.value().numel(); ++i) {
      const float orig = p.value()[i];
      p.mutable_value()[i] = orig + eps;
      const float fp = forward().value().Item();
      p.mutable_value()[i] = orig - eps;
      const float fm = forward().value().Item();
      p.mutable_value()[i] = orig;
      const float numeric = (fp - fm) / (2 * eps);
      const float analytic = p.grad()[i];
      const float tol =
          atol + rtol * std::max(std::abs(numeric), std::abs(analytic));
      EXPECT_NEAR(analytic, numeric, tol)
          << "param " << pi << " element " << i;
    }
  }
}

Var Param(std::vector<int64_t> shape, uint64_t seed) {
  util::Rng rng(seed);
  return Var(GaussianInit(std::move(shape), 0.4, &rng), true);
}

// ---------------------------------------------------------------------------
// MatMul gradcheck across shapes.
// ---------------------------------------------------------------------------

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, GradCheck) {
  const auto [m, k, n] = GetParam();
  Var a = Param({m, k}, 100 + m);
  Var b = Param({k, n}, 200 + n);
  util::Rng wrng(300 + k);
  Var w = Constant(GaussianInit({m, n}, 1.0, &wrng));
  CheckGrads([&] { return Sum(Mul(MatMul(a, b), w)); }, {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(4, 2, 5), std::make_tuple(3, 8, 1),
                      std::make_tuple(2, 3, 9)));

// ---------------------------------------------------------------------------
// Softmax cross-entropy identities across widths.
// ---------------------------------------------------------------------------

class SoftmaxWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidthTest, CrossEntropyAtLeastLogOfUniform) {
  const int width = GetParam();
  // With all-equal logits, CE is exactly log(width) per row.
  Var logits = Var(Tensor::Zeros({2, width}), false);
  const std::vector<int32_t> targets = {0, width - 1};
  const float ce = SoftmaxCrossEntropy(logits, targets).value().Item();
  EXPECT_NEAR(ce, 2.0f * std::log(static_cast<float>(width)), 1e-4);
}

TEST_P(SoftmaxWidthTest, SoftmaxRowsSumToOne) {
  const int width = GetParam();
  Var a = Param({3, width}, 400 + width);
  const Var soft = Softmax(a);
  const Tensor& y = soft.value();
  for (int64_t r = 0; r < 3; ++r) {
    float total = 0;
    for (int64_t c = 0; c < width; ++c) total += y.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST_P(SoftmaxWidthTest, GatherColsDotConsistentWithAffine) {
  const int width = GetParam();
  Var h = Param({1, 5}, 500 + width);
  Var w = Param({5, width}, 600 + width);
  Var b = Param({1, width}, 700 + width);
  std::vector<int32_t> ids;
  for (int i = 0; i < width; i += 2) ids.push_back(i);
  const Tensor partial = GatherColsDot(h, w, b, ids).value();
  const Tensor full = Affine(h, w, b).value();
  for (size_t j = 0; j < ids.size(); ++j) {
    EXPECT_NEAR(partial[static_cast<int64_t>(j)], full[ids[j]], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidthTest,
                         ::testing::Values(2, 3, 8, 33, 128));

// ---------------------------------------------------------------------------
// GRU state-size sweep: gradients through multi-step unrolls.
// ---------------------------------------------------------------------------

class GruDimTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GruDimTest, ThreeStepUnrollGradCheck) {
  const auto [in_dim, hidden] = GetParam();
  util::Rng rng(31);
  GruCell cell("gru", in_dim, hidden, &rng);
  Var x1 = Param({1, in_dim}, 800);
  Var x2 = Param({1, in_dim}, 801);
  Var x3 = Param({1, in_dim}, 802);
  std::vector<Var> params = cell.Parameters();
  params.push_back(x2);  // checking a subset keeps the sweep fast
  CheckGrads(
      [&] {
        Var h = Constant(Tensor::Zeros({1, hidden}));
        h = cell.Step(x1, h);
        h = cell.Step(x2, h);
        h = cell.Step(x3, h);
        return Sum(Mul(h, h));
      },
      params);
}

INSTANTIATE_TEST_SUITE_P(Dims, GruDimTest,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(2, 5),
                                           std::make_tuple(6, 3)));

// ---------------------------------------------------------------------------
// KL and reparameterization identities across seeds.
// ---------------------------------------------------------------------------

class SeededVaeOpsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededVaeOpsTest, KlIsNonNegative) {
  Var mu = Param({2, 6}, GetParam());
  Var logvar = Param({2, 6}, GetParam() + 1);
  EXPECT_GE(KlStandardNormal(mu, logvar).value().Item(), 0.0f);
}

TEST_P(SeededVaeOpsTest, ReparameterizedSamplesHaveRightMoments) {
  const int64_t n = 4000;
  Var mu = Constant(Tensor::Full({1, n}, 2.0f));
  Var logvar = Constant(Tensor::Full({1, n}, std::log(0.25f)));
  util::Rng rng(GetParam());
  const Var sample = Reparameterize(mu, logvar, &rng);
  const Tensor& z = sample.value();
  double sum = 0, sum2 = 0;
  for (int64_t i = 0; i < n; ++i) {
    sum += z[i];
    sum2 += (z[i] - 2.0) * (z[i] - 2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_NEAR(sum2 / n, 0.25, 0.03);
}

TEST_P(SeededVaeOpsTest, AdamReducesQuadraticLoss) {
  util::Rng rng(GetParam());
  Var x = Var(GaussianInit({1, 8}, 2.0, &rng), true);
  Adam opt({x}, {.lr = 0.1f});
  auto loss_value = [&] { return Sum(Mul(x, x)).value().Item(); };
  const float before = loss_value();
  for (int step = 0; step < 50; ++step) {
    opt.ZeroGrad();
    Backward(Sum(Mul(x, x)));
    opt.Step();
  }
  EXPECT_LT(loss_value(), before * 0.1f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededVaeOpsTest,
                         ::testing::Values(11, 29, 47, 83));

// ---------------------------------------------------------------------------
// ConcatRows/GatherRows inverse relationship.
// ---------------------------------------------------------------------------

TEST(ConcatGatherTest, GatherAfterConcatRecoversParts) {
  Var a = Param({2, 3}, 900);
  Var b = Param({1, 3}, 901);
  const Var cat = ConcatRows({a, b});
  const std::vector<int32_t> last_row = {2};
  const Var gathered = GatherRows(cat, last_row);
  const Tensor& back = gathered.value();
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(back[c], b.value()[c]);
  }
}

}  // namespace
}  // namespace nn
}  // namespace causaltad
