#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "eval/datasets.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "models/iboat.h"
#include "models/rnn_vae.h"
#include "models/scorer.h"

namespace causaltad {
namespace models {
namespace {

using eval::BuildExperiment;
using eval::ExperimentData;
using eval::Scale;
using eval::XianConfig;

const ExperimentData& Data() {
  static const ExperimentData* data =
      new ExperimentData(BuildExperiment(XianConfig(Scale::kSmoke)));
  return *data;
}

RnnVaeConfig TinyConfig() {
  RnnVaeConfig cfg;
  cfg.vocab = Data().vocab();
  cfg.emb_dim = 16;
  cfg.hidden_dim = 24;
  cfg.latent_dim = 12;
  return cfg;
}

FitOptions QuickFit() {
  FitOptions options;
  options.epochs = 3;
  options.lr = 3e-3f;
  options.seed = 11;
  return options;
}

// ---------------------------------------------------------------------------
// Factory coverage.
// ---------------------------------------------------------------------------

TEST(FactoryTest, NamesMatchThePaper) {
  const RnnVaeConfig base = TinyConfig();
  EXPECT_EQ(MakeSae(base)->Name(), "SAE");
  EXPECT_EQ(MakeVsae(base)->Name(), "VSAE");
  EXPECT_EQ(MakeBetaVae(base)->Name(), "BetaVAE");
  EXPECT_EQ(MakeFactorVae(base)->Name(), "FactorVAE");
  EXPECT_EQ(MakeGmVsae(base)->Name(), "GM-VSAE");
  EXPECT_EQ(MakeDeepTea(base)->Name(), "DeepTEA");
}

// Every learned variant must fit and produce finite, deterministic scores.
class RnnVaeVariantTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RnnVaeVariantTest, FitsAndScoresDeterministically) {
  const std::string which = GetParam();
  const RnnVaeConfig base = TinyConfig();
  std::unique_ptr<TrajectoryScorer> scorer;
  if (which == "SAE") scorer = MakeSae(base);
  if (which == "VSAE") scorer = MakeVsae(base);
  if (which == "BetaVAE") scorer = MakeBetaVae(base);
  if (which == "FactorVAE") scorer = MakeFactorVae(base);
  if (which == "GM-VSAE") scorer = MakeGmVsae(base);
  if (which == "DeepTEA") scorer = MakeDeepTea(base);
  ASSERT_NE(scorer, nullptr);

  scorer->Fit(Data().train, QuickFit());
  const traj::Trip& trip = Data().id_test.front();
  const double s1 = scorer->ScoreFull(trip);
  const double s2 = scorer->ScoreFull(trip);
  EXPECT_TRUE(std::isfinite(s1));
  EXPECT_DOUBLE_EQ(s1, s2);  // inference uses the posterior mean

  // The batched no-grad fast path must match the per-trip tape path for
  // every model variant, at full and partial prefixes.
  std::vector<traj::Trip> batch(Data().id_test.begin(),
                                Data().id_test.begin() + 6);
  std::vector<int64_t> prefixes;
  for (size_t i = 0; i < batch.size(); ++i) {
    const int64_t n = batch[i].route.size();
    prefixes.push_back(i % 2 == 0 ? n : std::max<int64_t>(1, n / 2));
  }
  const std::vector<double> batched = scorer->ScoreBatch(batch, prefixes);
  ASSERT_EQ(batched.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const double per_trip = scorer->Score(batch[i], prefixes[i]);
    EXPECT_NEAR(batched[i], per_trip, 1e-5) << which << " trip " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, RnnVaeVariantTest,
                         ::testing::Values("SAE", "VSAE", "BetaVAE",
                                           "FactorVAE", "GM-VSAE",
                                           "DeepTEA"));

// ---------------------------------------------------------------------------
// VSAE behavioural checks.
// ---------------------------------------------------------------------------

class VsaeTest : public ::testing::Test {
 protected:
  static TrajectoryScorer& Fitted() {
    static std::unique_ptr<TrajectoryScorer> scorer = [] {
      auto s = MakeVsae(TinyConfig());
      FitOptions options = QuickFit();
      options.epochs = 6;
      s->Fit(Data().train, options);
      return s;
    }();
    return *scorer;
  }
};

TEST_F(VsaeTest, SeparatesDetoursFromNormalsInDistribution) {
  const auto& d = Data();
  std::vector<double> normal, anomaly;
  for (const auto& t : d.id_test) normal.push_back(Fitted().ScoreFull(t));
  for (const auto& t : d.id_detour) anomaly.push_back(Fitted().ScoreFull(t));
  const double auc = eval::EvaluateScores(normal, anomaly).roc_auc;
  EXPECT_GT(auc, 0.7) << "VSAE should detect detours on trained pairs";
}

TEST_F(VsaeTest, PrefixScoreEqualsScoreOfTruncatedTrip) {
  const traj::Trip& trip = Data().id_test.front();
  const int64_t k = trip.route.size() / 2;
  ASSERT_GE(k, 2);
  traj::Trip truncated = trip;
  truncated.route.segments.resize(k);
  EXPECT_NEAR(Fitted().Score(trip, k), Fitted().ScoreFull(truncated), 1e-6);
}

TEST_F(VsaeTest, DefaultOnlineScorerMatchesBatchPrefixScores) {
  const traj::Trip& trip = Data().id_test[1];
  auto online = Fitted().BeginTrip(trip);
  for (int64_t k = 1; k <= trip.route.size(); ++k) {
    const double incremental = online->Update(trip.route.segments[k - 1]);
    // The incremental session runs the fused no-grad kernels, so parity
    // with the taped Score() is relative to the score's float32 magnitude
    // (tests/streaming_test.cc covers every method the same way).
    const double reference = Fitted().Score(trip, k);
    EXPECT_NEAR(incremental, reference,
                1e-6 * std::max(1.0, std::abs(reference)))
        << "k=" << k;
  }
}

TEST_F(VsaeTest, SaveLoadPreservesScores) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_vsae.bin")
          .string();
  ASSERT_TRUE(Fitted().Save(path).ok());
  auto restored = MakeVsae(TinyConfig());
  ASSERT_TRUE(restored->Load(path).ok());
  for (int i = 0; i < 5; ++i) {
    const traj::Trip& t = Data().id_test[i];
    EXPECT_NEAR(restored->ScoreFull(t), Fitted().ScoreFull(t), 1e-6);
  }
  std::remove(path.c_str());
}

TEST_F(VsaeTest, LoadRejectsWrongArchitecture) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_vsae2.bin")
          .string();
  ASSERT_TRUE(Fitted().Save(path).ok());
  RnnVaeConfig other = TinyConfig();
  other.hidden_dim += 8;
  auto restored = MakeVsae(other);
  EXPECT_FALSE(restored->Load(path).ok());
  std::remove(path.c_str());
}

TEST(RnnVaeTrainingTest, LossDecreasesOverEpochs) {
  auto probe = [&](int epochs) {
    auto s = MakeVsae(TinyConfig());
    FitOptions options = QuickFit();
    options.epochs = epochs;
    s->Fit(Data().train, options);
    double total = 0;
    for (const auto& t : Data().train) total += s->ScoreFull(t);
    return total / Data().train.size();
  };
  EXPECT_LT(probe(6), probe(1));
}

// ---------------------------------------------------------------------------
// iBOAT.
// ---------------------------------------------------------------------------

class IboatTest : public ::testing::Test {
 protected:
  static Iboat& Fitted() {
    static Iboat* scorer = [] {
      auto* s = new Iboat(&Data().city.network);
      s->Fit(Data().train, FitOptions{});
      return s;
    }();
    return *scorer;
  }
};

TEST_F(IboatTest, TrainingRouteScoresNearZero) {
  // A trip whose exact route appears in the references is fully supported.
  const traj::Trip& trip = Data().train.front();
  EXPECT_LT(Fitted().ScoreFull(trip), 0.2);
}

TEST_F(IboatTest, ScoreIsInUnitInterval) {
  for (const auto* split : {&Data().id_test, &Data().id_detour}) {
    for (const auto& t : *split) {
      const double s = Fitted().ScoreFull(t);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_F(IboatTest, DetectsDetoursOnTrainedPairs) {
  std::vector<double> normal, anomaly;
  for (const auto& t : Data().id_test) normal.push_back(Fitted().ScoreFull(t));
  for (const auto& t : Data().id_detour) {
    anomaly.push_back(Fitted().ScoreFull(t));
  }
  EXPECT_GT(eval::EvaluateScores(normal, anomaly).roc_auc, 0.6);
}

TEST_F(IboatTest, OnlineScorerMatchesBatch) {
  const traj::Trip& trip = Data().id_detour.front();
  auto online = Fitted().BeginTrip(trip);
  double last = 0;
  for (const auto seg : trip.route.segments) last = online->Update(seg);
  EXPECT_NEAR(last, Fitted().ScoreFull(trip), 1e-12);
}

TEST_F(IboatTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_iboat.bin")
          .string();
  ASSERT_TRUE(Fitted().Save(path).ok());
  Iboat restored(&Data().city.network);
  ASSERT_TRUE(restored.Load(path).ok());
  for (int i = 0; i < 5; ++i) {
    const traj::Trip& t = Data().id_test[i];
    EXPECT_DOUBLE_EQ(restored.ScoreFull(t), Fitted().ScoreFull(t));
  }
  std::remove(path.c_str());
}

TEST_F(IboatTest, OodPairBorrowsNearestReferences) {
  // Scores for OOD trips must still be defined (references borrowed).
  for (int i = 0; i < 5; ++i) {
    const double s = Fitted().ScoreFull(Data().ood_test[i]);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace models
}  // namespace causaltad
