#include "traj/trip_generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace causaltad {
namespace traj {

TripGenerator::TripGenerator(const roadnet::City* city,
                             const PreferenceRouter* router,
                             const TripGeneratorConfig& config)
    : city_(city), router_(router), config_(config), rng_(config.seed) {
  CAUSALTAD_CHECK(city != nullptr);
  CAUSALTAD_CHECK(router != nullptr);
}

roadnet::NodeId TripGenerator::SamplePopularNode() {
  return static_cast<roadnet::NodeId>(
      rng_.Categorical(city_->node_popularity));
}

bool TripGenerator::PairTooClose(roadnet::NodeId a, roadnet::NodeId b) {
  if (a == b) return true;
  const roadnet::ShortestPathEngine engine(&city_->network);
  const int64_t hops = engine.HopDistance(a, b);
  return hops < config_.min_hops;
}

std::vector<SdPair> TripGenerator::SampleCandidatePairs() {
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> seen;
  std::vector<SdPair> pairs;
  int attempts = 0;
  const int max_attempts = config_.num_candidate_pairs * 200;
  while (static_cast<int>(pairs.size()) < config_.num_candidate_pairs) {
    CAUSALTAD_CHECK_LT(attempts++, max_attempts)
        << "cannot find enough candidate SD pairs; relax min_hops";
    const roadnet::NodeId s = SamplePopularNode();
    const roadnet::NodeId d = SamplePopularNode();
    if (PairTooClose(s, d)) continue;
    if (!seen.insert({s, d}).second) continue;
    pairs.push_back({s, d, 1.0});
  }
  // Zipf demand weights over a random permutation of the pairs.
  const std::vector<int64_t> order =
      rng_.Permutation(static_cast<int64_t>(pairs.size()));
  for (size_t rank = 0; rank < order.size(); ++rank) {
    pairs[order[rank]].weight =
        1.0 / std::pow(static_cast<double>(rank + 1), config_.pair_zipf_s);
  }
  return pairs;
}

int TripGenerator::SampleTimeSlot() {
  CAUSALTAD_CHECK_EQ(config_.num_time_slots, 8);
  // Slots 2,3,6,7 are rush (see PreferenceRouter::IsRushSlot).
  static constexpr int kRush[] = {2, 3, 6, 7};
  static constexpr int kOff[] = {0, 1, 4, 5};
  if (rng_.Bernoulli(config_.rush_prob)) {
    return kRush[rng_.UniformInt(4)];
  }
  return kOff[rng_.UniformInt(4)];
}

Trip TripGenerator::GenerateTrip(const std::vector<SdPair>& pairs,
                                 int32_t pair_id) {
  CAUSALTAD_CHECK_GE(pair_id, 0);
  CAUSALTAD_CHECK_LT(pair_id, static_cast<int32_t>(pairs.size()));
  const SdPair& pair = pairs[pair_id];
  Trip trip;
  trip.source_node = pair.source;
  trip.dest_node = pair.dest;
  trip.time_slot = SampleTimeSlot();
  trip.sd_pair_id = pair_id;
  trip.route = router_->Sample(pair.source, pair.dest, trip.time_slot, &rng_);
  CAUSALTAD_CHECK(!trip.route.empty());
  return trip;
}

Trip TripGenerator::GenerateOodTrip(const std::vector<SdPair>& avoid) {
  std::set<std::pair<roadnet::NodeId, roadnet::NodeId>> avoid_set;
  for (const SdPair& p : avoid) avoid_set.insert({p.source, p.dest});
  int attempts = 0;
  while (true) {
    CAUSALTAD_CHECK_LT(attempts++, 10000) << "cannot sample an OOD pair";
    const roadnet::NodeId s =
        static_cast<roadnet::NodeId>(rng_.UniformInt(city_->network.num_nodes()));
    const roadnet::NodeId d =
        static_cast<roadnet::NodeId>(rng_.UniformInt(city_->network.num_nodes()));
    if (PairTooClose(s, d)) continue;
    if (avoid_set.count({s, d})) continue;
    Trip trip;
    trip.source_node = s;
    trip.dest_node = d;
    trip.time_slot = SampleTimeSlot();
    trip.sd_pair_id = -1;
    trip.route = router_->Sample(s, d, trip.time_slot, &rng_);
    CAUSALTAD_CHECK(!trip.route.empty());
    return trip;
  }
}

}  // namespace traj
}  // namespace causaltad
