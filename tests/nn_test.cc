#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "nn/autograd.h"
#include "nn/checkpoint.h"
#include "nn/init.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace causaltad {
namespace nn {
namespace {

// ---------------------------------------------------------------------------
// Numeric gradient checking harness.
// ---------------------------------------------------------------------------

// Builds the graph via `forward`, runs Backward, then compares every
// parameter gradient against central finite differences of the forward value.
void CheckGrads(const std::function<Var()>& forward, std::vector<Var> params,
                float eps = 1e-3f, float atol = 3e-3f, float rtol = 6e-2f) {
  Var loss = forward();
  ASSERT_EQ(loss.value().numel(), 1);
  for (Var& p : params) p.ZeroGrad();
  Backward(loss);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var& p = params[pi];
    for (int64_t i = 0; i < p.value().numel(); ++i) {
      const float orig = p.value()[i];
      p.mutable_value()[i] = orig + eps;
      const float fp = forward().value().Item();
      p.mutable_value()[i] = orig - eps;
      const float fm = forward().value().Item();
      p.mutable_value()[i] = orig;
      const float numeric = (fp - fm) / (2 * eps);
      const float analytic = p.grad()[i];
      const float tol =
          atol + rtol * std::max(std::abs(numeric), std::abs(analytic));
      EXPECT_NEAR(analytic, numeric, tol)
          << "param " << pi << " element " << i;
    }
  }
}

Var Param(std::vector<int64_t> shape, uint64_t seed) {
  util::Rng rng(seed);
  return Var(GaussianInit(std::move(shape), 0.5, &rng),
             /*requires_grad=*/true);
}

// ---------------------------------------------------------------------------
// Tensor basics.
// ---------------------------------------------------------------------------

TEST(TensorTest, ShapesAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  t.At(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
}

TEST(TensorTest, FromVectorValidatesSize) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).Item(), 2.5f);
}

// ---------------------------------------------------------------------------
// Per-op gradient checks.
// ---------------------------------------------------------------------------

TEST(GradCheck, AddSameShape) {
  Var a = Param({2, 3}, 1), b = Param({2, 3}, 2);
  CheckGrads([&] { return Sum(Add(a, b)); }, {a, b});
}

TEST(GradCheck, AddRowBroadcast) {
  Var a = Param({3, 4}, 3), b = Param({1, 4}, 4);
  // Weight rows unevenly so broadcast reduction is actually exercised.
  Var w = Constant(Tensor::FromVector({3, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9,
                                               10, 11, 12}));
  CheckGrads([&] { return Sum(Mul(Add(a, b), w)); }, {a, b});
}

TEST(GradCheck, SubScalarBroadcast) {
  Var a = Param({2, 2}, 5), b = Param({1, 1}, 6);
  CheckGrads([&] { return Sum(Mul(Sub(a, b), Sub(a, b))); }, {a, b});
}

TEST(GradCheck, MulElementwise) {
  Var a = Param({2, 3}, 7), b = Param({2, 3}, 8);
  CheckGrads([&] { return Sum(Mul(a, b)); }, {a, b});
}

TEST(GradCheck, MatMul) {
  Var a = Param({2, 3}, 9), b = Param({3, 4}, 10);
  Var w = Constant(GaussianInit({2, 4}, 1.0, [] {
                     static util::Rng rng(99);
                     return &rng;
                   }()));
  CheckGrads([&] { return Sum(Mul(MatMul(a, b), w)); }, {a, b});
}

TEST(GradCheck, Affine) {
  Var x = Param({2, 3}, 11), w = Param({3, 2}, 12), b = Param({1, 2}, 13);
  CheckGrads([&] { return Sum(Tanh(Affine(x, w, b))); }, {x, w, b});
}

TEST(GradCheck, UnaryOps) {
  Var a = Param({2, 3}, 14);
  CheckGrads([&] { return Sum(Tanh(a)); }, {a});
  CheckGrads([&] { return Sum(Sigmoid(a)); }, {a});
  CheckGrads([&] { return Sum(Exp(ScalarMul(a, 0.3f))); }, {a});
  CheckGrads([&] { return Mean(Mul(a, a)); }, {a});
  CheckGrads([&] { return Sum(Neg(a)); }, {a});
  CheckGrads([&] { return Sum(ScalarAdd(Mul(a, a), 2.0f)); }, {a});
}

TEST(GradCheck, ReluAwayFromKink) {
  // Values well away from 0 so finite differences are clean.
  Var a = Var(Tensor::FromVector({1, 4}, {-2.0f, -0.7f, 0.8f, 1.5f}), true);
  CheckGrads([&] { return Sum(Relu(a)); }, {a});
}

TEST(GradCheck, ConcatRowsAndCols) {
  Var a = Param({1, 3}, 15), b = Param({2, 3}, 16), c = Param({1, 3}, 17);
  Var w = Constant(Tensor::FromVector(
      {4, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  CheckGrads([&] { return Sum(Mul(ConcatRows({a, b, c}), w)); }, {a, b, c});

  Var d = Param({2, 2}, 18), e = Param({2, 1}, 19);
  Var w2 = Constant(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
  CheckGrads([&] { return Sum(Mul(ConcatCols({d, e}), w2)); }, {d, e});
}

TEST(GradCheck, GatherRowsScatterAddsRepeats) {
  Var table = Param({5, 3}, 20);
  const std::vector<int32_t> ids = {1, 3, 1, 0};  // repeated row 1
  Var w = Constant(Tensor::FromVector(
      {4, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
  CheckGrads([&] { return Sum(Mul(GatherRows(table, ids), w)); }, {table});
}

TEST(GradCheck, SoftmaxComposedToScalar) {
  Var a = Param({2, 4}, 21);
  Var w = Constant(
      Tensor::FromVector({2, 4}, {0.3f, -1, 2, 0.5f, 1, -0.2f, 0.1f, 3}));
  CheckGrads([&] { return Sum(Mul(Softmax(a), w)); }, {a});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Var logits = Param({3, 5}, 22);
  const std::vector<int32_t> targets = {2, 0, 4};
  CheckGrads([&] { return SoftmaxCrossEntropy(logits, targets); }, {logits});
}

TEST(SoftmaxCrossEntropyTest, MatchesManualComputation) {
  Var logits = Var(Tensor::FromVector({1, 3}, {1.0f, 2.0f, 3.0f}), true);
  const std::vector<int32_t> targets = {1};
  Var loss = SoftmaxCrossEntropy(logits, targets);
  const double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(loss.value().Item(), -std::log(std::exp(2.0) / denom), 1e-5);
}

TEST(GradCheck, GatherColsDot) {
  Var h = Param({1, 4}, 23), w = Param({4, 6}, 24), b = Param({1, 6}, 25);
  const std::vector<int32_t> ids = {5, 0, 2};
  const std::vector<int32_t> targets = {1};
  CheckGrads(
      [&] {
        return SoftmaxCrossEntropy(GatherColsDot(h, w, b, ids), targets);
      },
      {h, w, b});
}

TEST(GatherColsDotTest, MatchesFullMatmulOnSubset) {
  Var h = Param({1, 4}, 26), w = Param({4, 6}, 27), b = Param({1, 6}, 28);
  const std::vector<int32_t> ids = {3, 1};
  Var partial = GatherColsDot(h, w, b, ids);
  Var full = Affine(h, w, b);
  EXPECT_NEAR(partial.value()[0], full.value()[3], 1e-5);
  EXPECT_NEAR(partial.value()[1], full.value()[1], 1e-5);
}

TEST(GradCheck, KlStandardNormal) {
  Var mu = Param({1, 4}, 29), logvar = Param({1, 4}, 30);
  CheckGrads([&] { return KlStandardNormal(mu, logvar); }, {mu, logvar});
}

TEST(KlTest, ZeroAtStandardNormal) {
  Var mu = Var(Tensor::Zeros({1, 4}), true);
  Var logvar = Var(Tensor::Zeros({1, 4}), true);
  EXPECT_NEAR(KlStandardNormal(mu, logvar).value().Item(), 0.0f, 1e-7);
}

TEST(GradCheck, ReparameterizeWithFixedSeed) {
  Var mu = Param({1, 3}, 31), logvar = Param({1, 3}, 32);
  // Same seed every forward call => same eps => valid finite differences.
  CheckGrads(
      [&] {
        util::Rng rng(777);
        Var z = Reparameterize(mu, logvar, &rng);
        return Sum(Mul(z, z));
      },
      {mu, logvar});
}

TEST(GradCheck, LogSumExpRow) {
  Var a = Param({1, 6}, 33);
  CheckGrads([&] { return LogSumExpRow(a); }, {a});
}

TEST(LogSumExpTest, StableForLargeValues) {
  Var a = Var(Tensor::FromVector({1, 2}, {1000.0f, 1000.0f}), false);
  EXPECT_NEAR(LogSumExpRow(a).value().Item(), 1000.0f + std::log(2.0f), 1e-3);
}

TEST(GradCheck, GruCellStep) {
  util::Rng rng(41);
  GruCell cell("gru", 3, 4, &rng);
  Var x = Param({1, 3}, 42);
  Var h = Param({1, 4}, 43);
  std::vector<Var> params = cell.Parameters();
  params.push_back(x);
  params.push_back(h);
  CheckGrads([&] { return Sum(Mul(cell.Step(x, h), cell.Step(x, h))); },
             params);
}

TEST(GradCheck, TwoStepGruBackpropagatesThroughTime) {
  util::Rng rng(44);
  GruCell cell("gru", 2, 3, &rng);
  Var x1 = Param({1, 2}, 45), x2 = Param({1, 2}, 46);
  std::vector<Var> params = cell.Parameters();
  params.push_back(x1);
  params.push_back(x2);
  CheckGrads(
      [&] {
        Var h0 = Constant(Tensor::Zeros({1, 3}));
        Var h1 = cell.Step(x1, h0);
        Var h2 = cell.Step(x2, h1);
        return Sum(Mul(h2, h2));
      },
      params);
}

// ---------------------------------------------------------------------------
// Autograd mechanics.
// ---------------------------------------------------------------------------

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Var a = Var(Tensor::Scalar(2.0f), true);
  Var loss1 = Sum(Mul(a, a));
  Backward(loss1);
  EXPECT_NEAR(a.grad()[0], 4.0f, 1e-6);
  Var loss2 = Sum(Mul(a, a));
  Backward(loss2);
  EXPECT_NEAR(a.grad()[0], 8.0f, 1e-6);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  Var a = Var(Tensor::Scalar(3.0f), true);
  Var b = ScalarMul(a, 2.0f);
  Var loss = Sum(Add(Mul(b, b), Mul(a, a)));  // 4a² + a² => d/da = 10a
  Backward(loss);
  EXPECT_NEAR(a.grad()[0], 30.0f, 1e-4);
}

TEST(AutogradTest, NoGradThroughConstants) {
  Var a = Constant(Tensor::Scalar(1.0f));
  Var b = Var(Tensor::Scalar(2.0f), true);
  Var loss = Sum(Mul(a, b));
  Backward(loss);
  EXPECT_NEAR(b.grad()[0], 1.0f, 1e-6);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Var a = Var(Tensor::Scalar(1.0f), true);
  Var x = a;
  for (int i = 0; i < 5000; ++i) x = ScalarMul(x, 1.0001f);
  Backward(Sum(x));
  EXPECT_GT(a.grad()[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Inference fast path: no-grad guard, packed MatMul, fused GRU step.
// ---------------------------------------------------------------------------

TEST(TensorTest, ReshapeIsInPlaceRankConversion) {
  Tensor t = Tensor::FromVector({6}, {1, 2, 3, 4, 5, 6});
  const float* data = t.data();
  t.Reshape({2, 3});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.At(1, 0), 4.0f);
  EXPECT_EQ(t.data(), data);  // same storage, no copy
  t.Reshape({6});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t[5], 6.0f);
}

TEST(InferenceGuardTest, ForwardsAllocateZeroTapeNodes) {
  util::Rng rng(60);
  GruCell cell("gru", 5, 7, &rng);
  Var x = Param({3, 5}, 61);
  Var h = Param({3, 7}, 62);

  // A taped forward creates tape nodes...
  const int64_t before_taped = TapeNodesCreated();
  Var taped = cell.Step(x, h);
  EXPECT_GT(TapeNodesCreated(), before_taped);
  EXPECT_TRUE(taped.requires_grad());

  // ...the same forward under the guard creates none, for any op.
  const int64_t before = TapeNodesCreated();
  {
    InferenceGuard guard;
    EXPECT_TRUE(InferenceGuard::active());
    Var y = cell.Step(x, h);
    y = Tanh(Affine(y, Param({7, 4}, 63), Param({1, 4}, 64)));
    y = Softmax(y);
    EXPECT_EQ(y.value().rows(), 3);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_FALSE(InferenceGuard::active());
  EXPECT_EQ(TapeNodesCreated(), before);
}

TEST(InferenceGuardTest, GuardedValuesMatchTapedValues) {
  util::Rng rng(65);
  Mlp mlp("m", {6, 10, 3}, &rng);
  Var x = Param({4, 6}, 66);
  const Tensor taped = Softmax(mlp.Forward(x)).value();
  Tensor guarded;
  {
    InferenceGuard guard;
    guarded = Softmax(mlp.Forward(x)).value();
  }
  ASSERT_TRUE(guarded.SameShape(taped));
  for (int64_t i = 0; i < taped.numel(); ++i) {
    EXPECT_FLOAT_EQ(guarded[i], taped[i]);
  }
}

TEST(MatMulPackedTest, MatchesNaiveTripleLoopOnOddShapes) {
  // Shapes deliberately not multiples of the 4x unroll.
  const int64_t m = 3, k = 5, n = 7;
  Var a = Param({m, k}, 67), b = Param({k, n}, 68);
  const Tensor out = MatMul(a, b).value();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a.value().At(i, p) * b.value().At(p, j);
      }
      EXPECT_NEAR(out.At(i, j), acc, 1e-5f);
    }
  }
}

TEST(GruFusedTest, StepFusedMatchesStepPerRowAndBatched) {
  util::Rng rng(70);
  GruCell cell("gru", 6, 9, &rng);
  const int64_t batch = 5;
  Var x = Param({batch, 6}, 71);
  Var h = Param({batch, 9}, 72);

  const Tensor reference = cell.Step(x, h).value();
  Tensor fused;
  {
    InferenceGuard guard;
    const int64_t before = TapeNodesCreated();
    fused = cell.StepFused(x, h).value();
    EXPECT_EQ(TapeNodesCreated(), before);
  }
  ASSERT_TRUE(fused.SameShape(reference));
  for (int64_t i = 0; i < reference.numel(); ++i) {
    EXPECT_NEAR(fused[i], reference[i], 1e-5f) << "element " << i;
  }
}

TEST(GruFusedTest, FallsBackToTapedStepWhenGradsAreRecorded) {
  util::Rng rng(73);
  GruCell cell("gru", 3, 4, &rng);
  Var x = Param({1, 3}, 74);
  Var h = Param({1, 4}, 75);
  // Outside a guard with requires_grad inputs, StepFused must behave as the
  // op-composed Step, including backprop.
  Var y = cell.StepFused(x, h);
  EXPECT_TRUE(y.requires_grad());
  std::vector<Var> params = cell.Parameters();
  params.push_back(x);
  params.push_back(h);
  CheckGrads([&] { return Sum(Mul(cell.StepFused(x, h), cell.StepFused(x, h))); },
             params);
}

// ---------------------------------------------------------------------------
// Modules, optimizer, checkpointing.
// ---------------------------------------------------------------------------

TEST(ModuleTest, NamedParametersAreHierarchical) {
  util::Rng rng(50);
  Mlp mlp("enc", {4, 8, 2}, &rng);
  auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);  // 2 layers x (w, b)
  EXPECT_EQ(named[0].name, "enc.fc0.w");
  EXPECT_EQ(named[3].name, "enc.fc1.b");
  EXPECT_EQ(mlp.NumParams(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(AdamTest, ConvergesOnLeastSquares) {
  util::Rng rng(51);
  // Fit y = 2x + 1 with a 1-d linear model.
  Linear model("fit", 1, 1, &rng);
  Adam opt(model.Parameters(), {.lr = 0.05f});
  for (int step = 0; step < 400; ++step) {
    opt.ZeroGrad();
    Var loss;
    for (float xv : {-1.0f, 0.0f, 1.0f, 2.0f}) {
      Var x = Constant(Tensor::FromVector({1, 1}, {xv}));
      Var target = Constant(Tensor::FromVector({1, 1}, {2 * xv + 1}));
      Var err = Sub(model.Forward(x), target);
      Var sq = Mul(err, err);
      loss = loss.defined() ? Add(loss, sq) : sq;
    }
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(model.w().value()[0], 2.0f, 0.05f);
  EXPECT_NEAR(model.b().value()[0], 1.0f, 0.05f);
}

TEST(ClipGradTest, ScalesDownLargeGradients) {
  Var a = Var(Tensor::FromVector({1, 2}, {3.0f, 4.0f}), true);
  a.grad()[0] = 30.0f;
  a.grad()[1] = 40.0f;  // norm 50
  std::vector<Var> params = {a};
  ClipGradNorm(params, 5.0);
  EXPECT_NEAR(GlobalGradNorm(params), 5.0, 1e-4);
  EXPECT_NEAR(a.grad()[0] / a.grad()[1], 0.75f, 1e-5);
}

TEST(ClipGradTest, LeavesSmallGradientsAlone) {
  Var a = Var(Tensor::FromVector({1, 2}, {1.0f, 1.0f}), true);
  a.grad()[0] = 0.3f;
  a.grad()[1] = 0.4f;
  std::vector<Var> params = {a};
  ClipGradNorm(params, 5.0);
  EXPECT_FLOAT_EQ(a.grad()[0], 0.3f);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_ckpt_test.bin")
          .string();
  util::Rng rng(52);
  Mlp a("model", {3, 5, 2}, &rng);
  ASSERT_TRUE(SaveCheckpoint(path, a).ok());

  util::Rng rng2(999);
  Mlp b("model", {3, 5, 2}, &rng2);
  ASSERT_TRUE(LoadCheckpoint(path, &b).ok());
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].var.value().numel(), pb[i].var.value().numel());
    for (int64_t j = 0; j < pa[i].var.value().numel(); ++j) {
      EXPECT_FLOAT_EQ(pa[i].var.value()[j], pb[i].var.value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "causaltad_ckpt_test2.bin")
          .string();
  util::Rng rng(53);
  Mlp a("model", {3, 5, 2}, &rng);
  ASSERT_TRUE(SaveCheckpoint(path, a).ok());
  Mlp b("model", {3, 6, 2}, &rng);
  EXPECT_FALSE(LoadCheckpoint(path, &b).ok());
  Mlp c("other", {3, 5, 2}, &rng);
  EXPECT_FALSE(LoadCheckpoint(path, &c).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  util::Rng rng(54);
  Mlp m("model", {2, 2}, &rng);
  EXPECT_FALSE(LoadCheckpoint("/nonexistent/ckpt.bin", &m).ok());
}

}  // namespace
}  // namespace nn
}  // namespace causaltad
